//! The histogram proxy application (paper Fig. 5c) — including the C vs.
//! Rust initialization difference the paper analyzes.
//!
//! ```text
//! cargo run --release --example histogram            # scaled-down
//! cargo run --release --example histogram -- --paper # 64 MiB, 20k iterations
//! ```

use cricket_repro::prelude::*;
use proxy_apps::histogram::{run, HistogramConfig};

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let cfg = if paper {
        HistogramConfig::paper()
    } else {
        HistogramConfig {
            byte_count: 4 << 20,
            iterations: 500,
        }
    };
    println!(
        "histogram: {} MiB input, {} iterations per phase (64-bin + 256-bin)",
        cfg.byte_count >> 20,
        cfg.iterations
    );
    println!(
        "{:<10} {:>12} {:>14} {:>10} {:>10} {:>8}",
        "config", "time [s]", "API calls", "64b ms", "256b ms", "valid"
    );
    for env in EnvConfig::table1() {
        let (ctx, setup) = simulated(env);
        let t0 = setup.seconds();
        let report = run(&ctx, &cfg).expect("run");
        let secs = setup.seconds() - t0;
        println!(
            "{:<10} {:>12.3} {:>14} {:>10.1} {:>10.1} {:>8}",
            env.label(),
            secs,
            report.stats.api_calls,
            report.ms64,
            report.ms256,
            report.valid
        );
    }
    println!();
    println!(
        "note: the C row pays glibc rand() per byte at init and the <<<...>>>\n\
         launch-compat marshalling per launch — the effects behind the paper's\n\
         'Rust 37.6% faster (27.3% excluding initialization)' finding."
    );
}
