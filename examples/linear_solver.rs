//! The cuSolverDn_LinearSolver proxy application (paper Fig. 5b).
//!
//! ```text
//! cargo run --release --example linear_solver            # scaled-down
//! cargo run --release --example linear_solver -- --paper # 900x900, 1000 iters
//! ```

use cricket_repro::prelude::*;
use proxy_apps::linear_solver::{run, LinearSolverConfig};

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let cfg = if paper {
        LinearSolverConfig::paper()
    } else {
        LinearSolverConfig {
            n: 256,
            iterations: 50,
            warmups: 2,
        }
    };
    println!(
        "cuSolverDn_LinearSolver: {}x{} LU, {} iterations",
        cfg.n, cfg.n, cfg.iterations
    );
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>8}",
        "config", "time [s]", "API calls", "moved GiB", "valid"
    );
    for env in EnvConfig::table1() {
        let (ctx, setup) = simulated(env);
        let t0 = setup.seconds();
        let report = run(&ctx, &cfg).expect("run");
        let secs = setup.seconds() - t0;
        println!(
            "{:<10} {:>12.3} {:>14} {:>12.3} {:>8}",
            env.label(),
            secs,
            report.stats.api_calls,
            (report.stats.bytes_h2d + report.stats.bytes_d2h) as f64 / (1 << 30) as f64,
            report.valid
        );
    }
}
