//! A GPU fleet: N Cricket servers sharded behind a portmap directory.
//!
//! Each shard owns its own vgpu device set, scheduler, and clock, and
//! registers with the directory with live load reports. Tenants resolve
//! their shard exactly once, at connect time (`Endpoint::directory`),
//! then talk to it directly — placement never touches the per-call path.
//! Killing a shard leaves a stale directory entry; the next tenant's
//! connect discovers the dead listener and fails over to the next-ranked
//! candidate.
//!
//! ```text
//! cargo run --release --example fleet
//! ```

use cricket_repro::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

fn spread(dir: &ShardDirectory) -> BTreeMap<u32, u32> {
    dir.candidates(Placement::Spread)
        .expect("directory dump")
        .into_iter()
        .map(|s| (s.port, s.effective_sessions()))
        .collect()
}

fn main() -> ClientResult<()> {
    let mut fleet = FleetBuilder::new(3)
        .heartbeat(Duration::from_millis(50))
        .launch()
        .expect("launch fleet");
    let dir = fleet.directory();
    println!(
        "fleet up: directory {} + {} shards {:?}",
        fleet.dir_addr(),
        fleet.len(),
        fleet.shard_addrs()
    );

    // Twelve tenants connect through the directory; Spread placement plus
    // connect-time assignment bumps land them 4-4-4 across the shards.
    let endpoint = Endpoint::directory(fleet.dir_addr())?;
    let mut tenants = Vec::new();
    for i in 0..12u32 {
        let ctx = Context::connect(&endpoint)?;
        {
            let buf = ctx.upload(&vec![i as f32; 4096])?;
            assert_eq!(buf.copy_to_vec()?[0], i as f32);
        }
        tenants.push(ctx); // keep the session open to hold shard load
    }
    println!("placed 12 tenants; sessions per shard: {:?}", spread(&dir));

    // Crash a shard: its directory entry goes stale, its listener dies.
    let dead = fleet.shard_addrs()[0];
    assert!(fleet.kill_shard(0));
    println!("killed shard {dead} (no deregistration — stale entry remains)");

    // New tenants keep arriving: connects that rank the corpse first fail
    // over to the survivors without the application noticing.
    for i in 0..4u32 {
        let ctx = Context::connect(&endpoint)?;
        let buf = ctx.upload(&vec![-(i as f32); 1024])?;
        assert_eq!(buf.copy_to_vec()?[0], -(i as f32));
    }
    println!(
        "4 post-crash tenants placed on survivors; sessions per shard: {:?}",
        spread(&dir)
    );

    drop(tenants);
    fleet.shutdown();
    println!("fleet example ✓");
    Ok(())
}
