//! The matrixMul proxy application (paper Fig. 5a) across environments.
//!
//! ```text
//! cargo run --release --example matrix_mul            # scaled-down
//! cargo run --release --example matrix_mul -- --paper # full 100k iterations
//! ```

use cricket_repro::prelude::*;
use proxy_apps::matrix_mul::{run, MatrixMulConfig};

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let cfg = if paper {
        MatrixMulConfig::paper()
    } else {
        MatrixMulConfig {
            iterations: 2_000,
            ..MatrixMulConfig::paper()
        }
    };
    println!(
        "matrixMul: A {}x{}, B {}x{}, {} iterations",
        cfg.ha, cfg.wa, cfg.wa, cfg.wb, cfg.iterations
    );
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>8}",
        "config", "time [s]", "API calls", "moved MiB", "valid"
    );

    for env in EnvConfig::table1() {
        let (ctx, setup) = simulated(env);
        let t0 = setup.seconds();
        let report = run(&ctx, &cfg).expect("run");
        let secs = setup.seconds() - t0;
        println!(
            "{:<10} {:>12.3} {:>14} {:>12.2} {:>8}",
            env.label(),
            secs,
            report.stats.api_calls,
            (report.stats.bytes_h2d + report.stats.bytes_d2h) as f64 / (1024.0 * 1024.0),
            report.valid
        );
    }
}
