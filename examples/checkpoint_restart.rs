//! Checkpoint / restart: Cricket's runtime-reorganization capability
//! (paper §1, §5 — "runtime reorganization of tasks through
//! checkpoint/restart").
//!
//! A client populates GPU state (memory + loaded module), captures a
//! checkpoint over RPC, the "GPU node" is torn down, and the state is
//! restored into a *fresh* server. The client's handles keep working.
//!
//! ```text
//! cargo run --release --example checkpoint_restart
//! ```

use cricket_repro::prelude::*;

fn main() -> ClientResult<()> {
    // ---- phase 1: populate state on GPU node A ----
    let setup_a = SimSetup::new();
    let ctx = setup_a.context(EnvConfig::RustyHermit);

    let image = CubinBuilder::new()
        .kernel("saxpy", &[8, 8, 4, 4])
        .code(b"saxpy SASS")
        .build(true);
    let module = ctx.load_module(&image)?;
    let saxpy = module.function("saxpy")?;

    const N: usize = 4096;
    let x = ctx.upload(&vec![2.0f32; N])?;
    let y = ctx.upload(&vec![1.0f32; N])?;
    let params = ParamBuilder::new()
        .ptr(y.ptr())
        .ptr(x.ptr())
        .f32(10.0)
        .u32(N as u32)
        .build();
    ctx.launch(
        &saxpy,
        (16, 1, 1).into(),
        (256, 1, 1).into(),
        0,
        None,
        &params,
    )?;
    ctx.synchronize()?;
    println!("node A: y = 10*x + y computed (y[0] = 21)");

    // ---- checkpoint over RPC ----
    let snapshot = ctx.with_raw(|r| r.checkpoint())?;
    println!(
        "checkpoint captured: {} KiB (XDR-encoded: memory, modules, handles)",
        snapshot.len() / 1024
    );

    // ---- phase 2: "migrate" to a fresh GPU node B ----
    let setup_b = SimSetup::new();
    let ctx_b = setup_b.context(EnvConfig::RustyHermit);
    ctx_b.with_raw(|r| r.restore(&snapshot))?;
    println!("node B: snapshot restored into a fresh server");

    // The old handles — device pointers AND the function handle — are valid
    // on node B because restore places them at their original values.
    let params = ParamBuilder::new()
        .ptr(y.ptr())
        .ptr(x.ptr())
        .f32(1.0)
        .u32(N as u32)
        .build();
    ctx_b.with_raw(|r| {
        r.launch_kernel(
            saxpy.handle(),
            (16, 1, 1).into(),
            (256, 1, 1).into(),
            0,
            0,
            &params,
        )
    })?;
    ctx_b.with_raw(|r| r.device_synchronize())?;
    let y_after = ctx_b.with_raw(|r| r.memcpy_dtoh(y.ptr(), (N * 4) as u64))?;
    let first = f32::from_le_bytes(y_after[0..4].try_into().unwrap());
    assert_eq!(first, 23.0, "restored state must continue: 21 + 2 = 23");
    println!("node B: continued computation on restored state: y[0] = {first} ✓");

    // Keep the buffers alive until here so node A frees are clean.
    drop(params);
    Ok(())
}
