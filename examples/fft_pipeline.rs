//! Remote FFT signal filtering through the cuFFT procedures — added to the
//! protocol *after the fact*, demonstrating the paper's §3.5 extensibility
//! claim: new CUDA APIs are listed in `cricket.x`, the client stubs
//! regenerate themselves at build time, and only the server needs an
//! implementation ("no new implementation is required in RPC-Lib").
//!
//! The pipeline: synthesize a noisy two-tone signal on a Unikraft client,
//! FFT it on the remote GPU, zero everything above a cutoff bin, inverse
//! FFT, and check that the surviving tone dominates.
//!
//! ```text
//! cargo run --release --example fft_pipeline
//! ```

use cricket_repro::prelude::*;
use cricket_repro::vgpu::fft::{CUFFT_FORWARD, CUFFT_INVERSE, CUFFT_Z2Z};

const N: usize = 4096;
const KEEP_BIN: usize = 17; // low-frequency tone we keep
const KILL_BIN: usize = 900; // high-frequency "noise" tone we filter out
const CUTOFF: usize = 64;

fn main() -> ClientResult<()> {
    let (ctx, setup) = simulated(EnvConfig::Unikraft);

    // Two-tone signal, interleaved complex f64.
    let mut signal = vec![0f64; 2 * N];
    for i in 0..N {
        let t = i as f64 / N as f64;
        let v = (2.0 * std::f64::consts::PI * KEEP_BIN as f64 * t).sin()
            + 0.8 * (2.0 * std::f64::consts::PI * KILL_BIN as f64 * t).sin();
        signal[2 * i] = v;
    }

    let plan = ctx.with_raw(|r| r.fft_plan_1d(N as i32, CUFFT_Z2Z, 1))?;
    let dev_buf = ctx.upload(&signal)?;

    // The whole filter chain below is *asynchronous*: each call enqueues
    // onto the session's stream and returns at submission; only the final
    // download synchronizes. Time the two phases separately.
    let issue_t0 = setup.clock.now_ns();

    // Forward transform, in place.
    ctx.with_raw(|r| r.fft_exec_z2z(plan, dev_buf.ptr(), dev_buf.ptr(), CUFFT_FORWARD))?;

    // Low-pass: zero bins [CUTOFF, N-CUTOFF) — both positive and negative
    // frequencies. cudaMemset on the interior of the device buffer.
    let start = (2 * CUTOFF * 8) as u64;
    let len = (2 * (N - 2 * CUTOFF) * 8) as u64;
    ctx.with_raw(|r| r.memset(dev_buf.ptr() + start, 0, len))?;

    // Inverse transform (unnormalized, like cuFFT: scale by 1/N on the host).
    ctx.with_raw(|r| r.fft_exec_z2z(plan, dev_buf.ptr(), dev_buf.ptr(), CUFFT_INVERSE))?;
    let issued_ns = setup.clock.now_ns() - issue_t0;

    // The download is the synchronization point: it waits for the stream.
    let filtered: Vec<f64> = dev_buf.copy_to_vec()?;
    let drained_ns = setup.clock.now_ns() - issue_t0 - issued_ns;

    // Run the same async chain once more with adaptive RPC coalescing on:
    // the three calls are recorded client-side and travel as a single
    // CRICKET_BATCH_EXEC round trip at the flush.
    let rpcs_per_op_before = ctx.with_raw(|r| r.rpcs_per_op());
    ctx.with_raw(|r| r.enable_batching());
    ctx.with_raw(|r| r.fft_exec_z2z(plan, dev_buf.ptr(), dev_buf.ptr(), CUFFT_FORWARD))?;
    ctx.with_raw(|r| r.memset(dev_buf.ptr() + start, 0, len))?;
    ctx.with_raw(|r| r.fft_exec_z2z(plan, dev_buf.ptr(), dev_buf.ptr(), CUFFT_INVERSE))?;
    ctx.with_raw(|r| r.flush_batch())?;
    let rpcs_per_op_after = ctx.with_raw(|r| r.rpcs_per_op());

    ctx.with_raw(|r| r.fft_destroy(plan))?;

    // The kept tone must survive; the killed tone must be gone.
    let amplitude_at = |bin: usize| -> f64 {
        // Project onto sin(2π·bin·t).
        let mut acc = 0.0;
        for i in 0..N {
            let t = i as f64 / N as f64;
            acc +=
                (filtered[2 * i] / N as f64) * (2.0 * std::f64::consts::PI * bin as f64 * t).sin();
        }
        2.0 * acc / N as f64
    };
    let kept = amplitude_at(KEEP_BIN);
    let killed = amplitude_at(KILL_BIN);
    println!("tone amplitudes after remote low-pass filter:");
    println!("  bin {KEEP_BIN:>4} (pass band): {kept:.4}  (expected ≈ 1.0)");
    println!("  bin {KILL_BIN:>4} (stop band): {killed:.4}  (expected ≈ 0.0)");
    assert!(kept > 0.95, "pass-band tone must survive");
    assert!(killed.abs() < 1e-6, "stop-band tone must be filtered");

    let stats = ctx.stats();
    println!(
        "\nfilter ran remotely in {:.3} ms virtual time, {} CUDA API calls \
         (cufftPlan1d/ExecZ2Z came from cricket.x, zero client-code changes)",
        setup.seconds() * 1e3,
        stats.api_calls
    );
    println!(
        "FFT→memset→iFFT issued asynchronously in {:.1} µs; the download \
         then drained the stream in {:.1} µs",
        issued_ns as f64 / 1e3,
        drained_ns as f64 / 1e3,
    );
    println!(
        "RPC round trips per async op: {rpcs_per_op_before:.3} before coalescing, \
         {rpcs_per_op_after:.3} after (3 calls → 1 CRICKET_BATCH_EXEC)",
    );
    assert!(rpcs_per_op_after < rpcs_per_op_before);
    Ok(())
}
