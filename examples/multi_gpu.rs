//! All four GPUs of the paper's evaluation node.
//!
//! "The GPU Node has ... one NVIDIA A100 GPU, two T4 GPUs, and one P40 GPU.
//!  While we verified our solution with all of these GPU generations, we
//!  limited this evaluation to using the A100" (paper §4). This example is
//! that verification: run the same kernel on every device via
//! `cudaSetDevice`, then move data between devices with a peer copy.
//!
//! ```text
//! cargo run --release --example multi_gpu
//! ```

use cricket_repro::prelude::*;

fn main() -> ClientResult<()> {
    let (ctx, _setup) = simulated(EnvConfig::RustyHermit);
    let count = ctx.device_count()?;
    println!("GPU node exposes {count} devices:");

    let image = CubinBuilder::new()
        .kernel("saxpy", &[8, 8, 4, 4])
        .code(b"saxpy SASS")
        .build(true);

    const N: usize = 1 << 24; // 16M elements: kernel time >> launch latency
    let mut per_device_ms = Vec::new();
    for ordinal in 0..count {
        ctx.with_raw(|r| r.set_device(ordinal))?;
        let props = ctx.device_properties(ordinal)?;

        // Module, buffers and events all live on the selected device.
        let module = ctx.load_module(&image)?;
        let saxpy = module.function("saxpy")?;
        let x = ctx.upload(&vec![1.0f32; N])?;
        let y = ctx.upload(&vec![2.0f32; N])?;
        let params = ParamBuilder::new()
            .ptr(y.ptr())
            .ptr(x.ptr())
            .f32(3.0)
            .u32(N as u32)
            .build();
        let start = ctx.event()?;
        let stop = ctx.event()?;
        start.record(None)?;
        for _ in 0..5 {
            ctx.launch(
                &saxpy,
                ((N as u32).div_ceil(256), 1, 1).into(),
                (256, 1, 1).into(),
                0,
                None,
                &params,
            )?;
        }
        stop.record(None)?;
        let ms = start.elapsed_ms(&stop)?;
        let result = y.copy_to_vec()?;
        assert_eq!(result[0], 2.0 + 5.0 * 3.0, "saxpy on device {ordinal}");
        println!(
            "  device {ordinal}: {:<22} 5x saxpy(n={N}) in {ms:.3} ms device time ✓",
            props.name
        );
        per_device_ms.push((props.name, ms));
    }

    // Older generations are memory-bandwidth bound on saxpy and must be
    // measurably slower than the A100 (1555 vs ~330 GB/s).
    assert!(
        per_device_ms[1].1 > 2.0 * per_device_ms[0].1,
        "the T4 should be much slower than the A100: {per_device_ms:?}"
    );
    assert!(
        per_device_ms[3].1 > 2.0 * per_device_ms[0].1,
        "the P40 should be much slower than the A100: {per_device_ms:?}"
    );

    // Peer copy: fill a buffer on the A100, copy it to the P40.
    ctx.with_raw(|r| r.set_device(0))?;
    let src = ctx.upload(&vec![0xa5u8; 4096])?;
    ctx.with_raw(|r| r.set_device(3))?;
    let dst = ctx.alloc::<u8>(4096)?;
    ctx.with_raw(|r| r.memcpy_dtod(dst.ptr(), src.ptr(), 4096))?;
    assert_eq!(dst.copy_to_vec()?, vec![0xa5u8; 4096]);
    println!("  peer copy A100 → P40 via host staging validated ✓");
    Ok(())
}
