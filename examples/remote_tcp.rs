//! Remote execution over *real* TCP: the same application code that runs
//! against the simulated network paths also runs against a real
//! `cricket-server` process — the paper's §3.5 point that RPC-Lib only
//! needs `std` networking, so the identical binary logic works on Linux.
//!
//! This example starts the server in-process on a loopback listener via
//! `ServerBuilder` and connects to it exactly like an external client
//! would (`cricket-server --listen 127.0.0.1:20495` +
//! `Context::connect(&Endpoint::addr(...))`).
//!
//! ```text
//! cargo run --release --example remote_tcp
//! ```

use cricket_repro::prelude::*;
use cricket_server::ServerConfig;

fn main() -> ClientResult<()> {
    // GPU node: real TCP listener on an ephemeral port.
    let handle = ServerBuilder::new("127.0.0.1:0")
        .config(ServerConfig::default())
        .serve()
        .expect("bind");
    let addr = handle.addr();
    println!("cricket-server listening on {addr}");

    // Application node: plain TCP client.
    let ctx = Context::connect(&Endpoint::Addr(addr))?;
    println!("connected; devices = {}", ctx.device_count()?);

    let image = CubinBuilder::new()
        .kernel("vectorAdd", &[8, 8, 8, 4])
        .code(b"SASS")
        .build(false);
    let module = ctx.load_module(&image)?;
    let f = module.function("vectorAdd")?;

    const N: usize = 100_000;
    let a: Vec<f32> = (0..N).map(|i| (i % 100) as f32).collect();
    let b: Vec<f32> = (0..N).map(|i| ((i * 3) % 100) as f32).collect();
    let da = ctx.upload(&a)?;
    let db = ctx.upload(&b)?;
    let dc = ctx.alloc::<f32>(N)?;
    let params = ParamBuilder::new()
        .ptr(dc.ptr())
        .ptr(da.ptr())
        .ptr(db.ptr())
        .u32(N as u32)
        .build();
    let wall = std::time::Instant::now();
    ctx.launch(
        &f,
        ((N as u32).div_ceil(256), 1, 1).into(),
        (256, 1, 1).into(),
        0,
        None,
        &params,
    )?;
    ctx.synchronize()?;
    let c = dc.copy_to_vec()?;
    assert!(c
        .iter()
        .enumerate()
        .all(|(i, &v)| v == ((i % 100) + (i * 3) % 100) as f32));
    println!(
        "vectorAdd of {N} elements over real TCP validated in {:.1} ms wall time ✓",
        wall.elapsed().as_secs_f64() * 1e3
    );

    drop((da, db, dc, module, params));
    drop(ctx);
    handle.shutdown();
    Ok(())
}
