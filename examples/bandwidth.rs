//! The bandwidthTest proxy application (paper Fig. 7) across environments,
//! including the paper's §4.2 offload ablation.
//!
//! ```text
//! cargo run --release --example bandwidth            # 64 MiB transfers
//! cargo run --release --example bandwidth -- --paper # 512 MiB transfers
//! ```

use cricket_repro::prelude::*;
use proxy_apps::bandwidth::{run, BandwidthConfig};

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let cfg = if paper {
        BandwidthConfig::paper()
    } else {
        BandwidthConfig {
            bytes: 64 << 20,
            iterations: 1,
        }
    };
    println!("bandwidthTest: {} MiB per transfer\n", cfg.bytes >> 20);
    println!(
        "{:<24} {:>14} {:>14}",
        "config", "H2D [MiB/s]", "D2H [MiB/s]"
    );
    let mut envs: Vec<EnvConfig> = EnvConfig::table1().to_vec();
    envs.push(EnvConfig::LinuxVmNoOffload);
    envs.push(EnvConfig::RustyHermitLegacy);
    for env in envs {
        let (ctx, _setup) = simulated(env);
        let r = run(&ctx, &cfg).expect("run");
        println!(
            "{:<24} {:>14.1} {:>14.1}",
            env.label(),
            r.h2d_mib_s,
            r.d2h_mib_s
        );
    }

    // Small transfers are round-trip-bound, not wire-bound: each 4 KiB
    // copy pays a full RPC. Adaptive coalescing folds them into
    // CRICKET_BATCH_EXEC batches, so the same copies need a fraction of
    // the round trips.
    const SMALL: usize = 4 << 10;
    const COUNT: usize = 256;
    println!(
        "\nsmall transfers (Hermit): {COUNT} x {} KiB H2D, eager vs. coalesced",
        SMALL >> 10
    );
    let chunk = vec![0x5Au8; SMALL];
    for batched in [false, true] {
        let (ctx, setup) = simulated(EnvConfig::RustyHermit);
        if batched {
            ctx.with_raw(|r| r.enable_batching());
        }
        let buf = ctx.alloc::<u8>(SMALL).expect("alloc");
        let t0 = setup.clock.now_ns();
        ctx.with_raw(|r| -> ClientResult<()> {
            let rpc0 = r.rpc().stats().calls;
            for _ in 0..COUNT {
                r.memcpy_htod(buf.ptr(), &chunk)?;
            }
            r.device_synchronize()?;
            let elapsed = setup.clock.now_ns() - t0;
            let rpcs = r.rpc().stats().calls - rpc0;
            let mib_s = (SMALL * COUNT) as f64 / (1 << 20) as f64 / (elapsed as f64 / 1e9);
            println!(
                "{:<24} {:>14.1} MiB/s  {:>5} RPCs  ({:.3} per copy)",
                if batched { "coalesced" } else { "eager" },
                mib_s,
                rpcs,
                rpcs as f64 / COUNT as f64
            );
            Ok(())
        })
        .expect("small-transfer run");
    }
}
