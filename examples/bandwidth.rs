//! The bandwidthTest proxy application (paper Fig. 7) across environments,
//! including the paper's §4.2 offload ablation.
//!
//! ```text
//! cargo run --release --example bandwidth            # 64 MiB transfers
//! cargo run --release --example bandwidth -- --paper # 512 MiB transfers
//! ```

use cricket_repro::prelude::*;
use proxy_apps::bandwidth::{run, BandwidthConfig};

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let cfg = if paper {
        BandwidthConfig::paper()
    } else {
        BandwidthConfig {
            bytes: 64 << 20,
            iterations: 1,
        }
    };
    println!("bandwidthTest: {} MiB per transfer\n", cfg.bytes >> 20);
    println!(
        "{:<24} {:>14} {:>14}",
        "config", "H2D [MiB/s]", "D2H [MiB/s]"
    );
    let mut envs: Vec<EnvConfig> = EnvConfig::table1().to_vec();
    envs.push(EnvConfig::LinuxVmNoOffload);
    envs.push(EnvConfig::RustyHermitLegacy);
    for env in envs {
        let (ctx, _setup) = simulated(env);
        let r = run(&ctx, &cfg).expect("run");
        println!(
            "{:<24} {:>14.1} {:>14.1}",
            env.label(),
            r.h2d_mib_s,
            r.d2h_mib_s
        );
    }
}
