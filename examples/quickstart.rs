//! Quickstart: add two vectors on a (simulated) remote GPU from a
//! RustyHermit unikernel — the paper's headline capability.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Flow: build a kernel image ("nvcc"), connect the unikernel client to a
//! Cricket server, allocate device memory safely (freed on drop — the
//! paper's lifetime guarantee), upload, launch, download, validate.

use cricket_repro::prelude::*;

fn main() -> ClientResult<()> {
    // One simulated GPU node + a client inside a RustyHermit unikernel.
    let (ctx, setup) = simulated(EnvConfig::RustyHermit);

    println!("devices visible through Cricket: {}", ctx.device_count()?);
    let props = ctx.device_properties(0)?;
    println!(
        "device 0: {} ({} SMs, {} GiB)",
        props.name,
        props.multi_processor_count,
        props.total_global_mem >> 30
    );

    // The kernel image a real deployment gets from `nvcc -cubin`.
    let image = CubinBuilder::new()
        .kernel("vectorAdd", &[8, 8, 8, 4])
        .code(b"vectorAdd SASS")
        .build(true); // compressed: the loader really decompresses it
    let module = ctx.load_module(&image)?;
    let vector_add = module.function("vectorAdd")?;

    const N: usize = 1 << 16;
    let a: Vec<f32> = (0..N).map(|i| i as f32).collect();
    let b: Vec<f32> = (0..N).map(|i| (N - i) as f32).collect();

    let da = ctx.upload(&a)?;
    let db = ctx.upload(&b)?;
    let dc = ctx.alloc::<f32>(N)?;

    let params = ParamBuilder::new()
        .ptr(dc.ptr())
        .ptr(da.ptr())
        .ptr(db.ptr())
        .u32(N as u32)
        .build();
    ctx.launch(
        &vector_add,
        ((N as u32).div_ceil(256), 1, 1).into(),
        (256, 1, 1).into(),
        0,
        None,
        &params,
    )?;
    ctx.synchronize()?;

    let c = dc.copy_to_vec()?;
    assert!(c.iter().all(|&v| v == N as f32), "validation failed");
    println!("vectorAdd of {N} elements validated ✓");

    let stats = ctx.stats();
    println!(
        "CUDA API calls: {}, H2D: {} KiB, D2H: {} KiB",
        stats.api_calls,
        stats.bytes_h2d / 1024,
        stats.bytes_d2h / 1024
    );
    println!(
        "virtual time on the unikernel's clock: {:.3} ms",
        setup.seconds() * 1e3
    );
    Ok(())
}
