//! Multi-tenant GPU sharing: many unikernels, one GPU, configurable
//! schedulers — the deployment model the paper argues Cricket enables
//! ("the assignment of entire GPUs ... to a virtual environment is
//! inefficient because [unikernels] are typically deployed in larger
//! numbers and only execute a single application each").
//!
//! Four unikernel clients hammer one simulated A100 under each scheduling
//! policy; the example prints how fairly ops were served.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use cricket_repro::prelude::*;
use cricket_server::{make_rpc_server, CricketServer, SchedulerPolicy, ServerConfig, SimTransport};
use simnet::SimClock;
use std::sync::Arc;
use unikernel::{Guest, GuestKind};

fn run_policy(policy: SchedulerPolicy) {
    let clock = SimClock::new();
    let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
    server.scheduler.set_policy(policy);
    if policy == SchedulerPolicy::Priority {
        // Session 0 is latency-critical; the rest are batch.
        server.scheduler.set_priority(0, 1);
        for s in 1..4 {
            server.scheduler.set_priority(s, 100);
        }
    }
    let rpc = make_rpc_server(Arc::clone(&server));

    drop(rpc); // each tenant registers its own sessioned dispatcher below
    let mut handles = Vec::new();
    for session in 0..4u32 {
        let clock = Arc::clone(&clock);
        let server2 = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            // Each tenant is its own unikernel with its own session id.
            let inner = Arc::new(oncrpc::RpcServer::new());
            inner.register(
                cricket_proto::CRICKET_CUDA,
                cricket_proto::CRICKET_V1,
                Arc::new(cricket_proto::CricketV1Dispatch(
                    cricket_server::service::Sessioned::new(server2, session),
                )),
            );
            let t = SimTransport::new(inner, Guest::new(GuestKind::RustyHermit), clock);
            let ctx = Context::from_client(CricketClient::new(
                Box::new(t),
                cricket_client::env::ClientFlavor::RustRpcLib,
                None,
            ));
            let buf = ctx.upload(&vec![session as f32; 1024]).unwrap();
            for _ in 0..50 {
                let back = buf.copy_to_vec().unwrap();
                assert!(back.iter().all(|&v| v == session as f32));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let served = server.scheduler.served();
    let mut sessions: Vec<_> = served.iter().collect();
    sessions.sort();
    let line: Vec<String> = sessions
        .iter()
        .map(|(s, n)| format!("session {s}: {n} ops"))
        .collect();
    println!("{policy:?}: {}", line.join(", "));
}

fn main() {
    println!("4 RustyHermit tenants sharing one simulated A100\n");
    for policy in [
        SchedulerPolicy::Fifo,
        SchedulerPolicy::RoundRobin,
        SchedulerPolicy::Priority,
    ] {
        run_policy(policy);
    }
    println!("\nall tenants' data stayed isolated and correct under contention ✓");
}
