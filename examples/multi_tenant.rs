//! Multi-tenant GPU sharing: many unikernels, one GPU, configurable
//! schedulers — the deployment model the paper argues Cricket enables
//! ("the assignment of entire GPUs ... to a virtual environment is
//! inefficient because [unikernels] are typically deployed in larger
//! numbers and only execute a single application each").
//!
//! Two demonstrations:
//!
//! 1. **Asynchronous overlap** — two tenants issue kernel launches that
//!    *enqueue* onto per-session streams instead of holding the device;
//!    the pipelined schedule finishes in measurably less virtual time than
//!    running the tenants back-to-back.
//! 2. **Scheduler fairness** — four unikernel clients hammer one simulated
//!    A100 under each scheduling policy; the example prints how ops and
//!    device time were apportioned.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use cricket_repro::prelude::*;
use cricket_server::{CricketServer, SchedulerPolicy, ServerConfig, SimTransport};
use simnet::SimClock;
use std::sync::Arc;
use unikernel::{Guest, GuestKind};

/// Elements per vector (16 MiB of f32): heavy enough that device time per
/// launch (~30 µs) dwarfs the per-call dispatch cost (~10 µs), so queues
/// actually back up and overlap is visible.
const N: usize = 1 << 22;
const LAUNCHES: usize = 48;

struct Tenant {
    api: cricket_server::service::Sessioned,
    func: u64,
    params: Vec<u8>,
    c: u64,
}

impl Tenant {
    /// Set up one tenant session: load the vectorAdd module and stage two
    /// input vectors on the device.
    fn new(server: Arc<CricketServer>, session: u32) -> Self {
        use cricket_proto::CricketV1Service;
        let api = cricket_server::service::Sessioned::new(server, session);
        let image = CubinBuilder::new()
            .kernel("vectorAdd", &[8, 8, 8, 4])
            .code(b"vectorAdd SASS")
            .build(true);
        let module = api
            .cu_module_load_data(&image)
            .unwrap()
            .into_result()
            .unwrap();
        let func = api
            .cu_module_get_function(module, "vectorAdd")
            .unwrap()
            .into_result()
            .unwrap();
        let bytes = (N * 4) as u64;
        let a = api.cuda_malloc(bytes).unwrap().into_result().unwrap();
        let b = api.cuda_malloc(bytes).unwrap().into_result().unwrap();
        let c = api.cuda_malloc(bytes).unwrap().into_result().unwrap();
        api.cuda_memcpy_htod(a, &le_bytes(1.0)).unwrap();
        api.cuda_memcpy_htod(b, &le_bytes(2.0)).unwrap();
        let params = ParamBuilder::new()
            .ptr(c)
            .ptr(a)
            .ptr(b)
            .u32(N as u32)
            .build();
        Self {
            api,
            func,
            params,
            c,
        }
    }

    /// One asynchronous vectorAdd launch on the tenant's default stream
    /// (stream 0 is remapped server-side to a per-session stream, so
    /// different tenants' kernels can overlap on the device timeline).
    fn launch(&self) {
        use cricket_proto::CricketV1Service;
        let grid = ((N as u32).div_ceil(256), 1, 1).into();
        let block = (256, 1, 1).into();
        let r = self
            .api
            .cuda_launch_kernel(self.func, grid, block, 0, 0, &self.params)
            .unwrap();
        assert_eq!(r, 0);
    }

    fn synchronize(&self) {
        use cricket_proto::CricketV1Service;
        assert_eq!(self.api.cuda_device_synchronize().unwrap(), 0);
    }
}

/// A whole device vector of one value, as the little-endian wire bytes.
fn le_bytes(value: f32) -> Vec<u8> {
    value
        .to_le_bytes()
        .iter()
        .copied()
        .cycle()
        .take(N * 4)
        .collect()
}

/// Part 1: the same two workloads, serial vs pipelined, on one device.
fn overlap_demo() {
    use cricket_proto::CricketV1Service;
    let clock = SimClock::new();
    let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
    let ta = Tenant::new(Arc::clone(&server), 1);
    let tb = Tenant::new(Arc::clone(&server), 2);

    // Back-to-back: tenant A runs to completion, then tenant B.
    let t0 = clock.now_ns();
    for t in [&ta, &tb] {
        for _ in 0..LAUNCHES {
            t.launch();
        }
        t.synchronize();
    }
    let serial_ns = clock.now_ns() - t0;

    // Pipelined: launches interleave; each enqueue returns at submission,
    // so B's kernels land on its own stream while A's are still running.
    let t1 = clock.now_ns();
    for _ in 0..LAUNCHES {
        ta.launch();
        tb.launch();
    }
    ta.synchronize();
    tb.synchronize();
    let pipelined_ns = clock.now_ns() - t1;

    // The result is still correct: 1.0 + 2.0 everywhere.
    let back = ta
        .api
        .cuda_memcpy_dtoh(ta.c, 64)
        .unwrap()
        .into_result()
        .unwrap();
    assert!(back
        .chunks_exact(4)
        .all(|w| f32::from_le_bytes(w.try_into().unwrap()) == 3.0));

    let (busy_span, device_time) = server.device_utilization(0).unwrap();
    println!("two tenants × {LAUNCHES} vectorAdd launches ({N} elements):");
    println!("  serial    : {:>8.3} ms virtual", serial_ns as f64 / 1e6);
    println!(
        "  pipelined : {:>8.3} ms virtual",
        pipelined_ns as f64 / 1e6
    );
    println!(
        "  speedup   : {:>8.2}×   (device busy {:.3} ms for {:.3} ms of work → overlap {:.2}×)",
        serial_ns as f64 / pipelined_ns as f64,
        busy_span as f64 / 1e6,
        device_time as f64 / 1e6,
        device_time as f64 / busy_span as f64,
    );
    assert!(
        pipelined_ns * 4 < serial_ns * 3,
        "pipelined {pipelined_ns} ns should beat serial {serial_ns} ns by ≥ 25%"
    );
}

/// Part 2: four full unikernel clients under each scheduling policy.
fn run_policy(policy: SchedulerPolicy) {
    let clock = SimClock::new();
    let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
    server.scheduler.set_policy(policy);
    if policy == SchedulerPolicy::Priority {
        // Session 0 is latency-critical; the rest are batch.
        server.scheduler.set_priority(0, 1);
        for s in 1..4 {
            server.scheduler.set_priority(s, 100);
        }
    }
    let mut handles = Vec::new();
    for session in 0..4u32 {
        let clock = Arc::clone(&clock);
        let server2 = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            // Each tenant is its own unikernel with its own session id.
            let inner = Arc::new(oncrpc::RpcServer::new());
            inner.register(
                cricket_proto::CRICKET_CUDA,
                cricket_proto::CRICKET_V1,
                Arc::new(cricket_proto::CricketV1Dispatch(
                    cricket_server::service::Sessioned::new(server2, session),
                )),
            );
            let t = SimTransport::new(inner, Guest::new(GuestKind::RustyHermit), clock);
            let ctx = Context::from_client(CricketClient::over(
                t,
                cricket_client::env::ClientFlavor::RustRpcLib,
                None,
            ));
            let buf = ctx.upload(&vec![session as f32; 1024]).unwrap();
            for _ in 0..50 {
                let back = buf.copy_to_vec().unwrap();
                assert!(back.iter().all(|&v| v == session as f32));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let ops = server.scheduler.served_ops();
    let ns = server.scheduler.served_ns();
    let mut sessions: Vec<_> = ops.keys().collect();
    sessions.sort();
    let line: Vec<String> = sessions
        .iter()
        .map(|s| {
            format!(
                "session {s}: {} ops / {:.2} ms device",
                ops[s],
                *ns.get(s).unwrap_or(&0) as f64 / 1e6
            )
        })
        .collect();
    println!("{policy:?}: {}", line.join(", "));
}

fn main() {
    println!("async stream engine: pipelined vs serial tenants\n");
    overlap_demo();

    println!("\n4 RustyHermit tenants sharing one simulated A100\n");
    for policy in [
        SchedulerPolicy::Fifo,
        SchedulerPolicy::RoundRobin,
        SchedulerPolicy::Priority,
    ] {
        run_policy(policy);
    }
    println!("\nall tenants' data stayed isolated and correct under contention ✓");
}
