//! Multi-tenant GPU sharing: many unikernels, one GPU, configurable
//! schedulers — the deployment model the paper argues Cricket enables
//! ("the assignment of entire GPUs ... to a virtual environment is
//! inefficient because [unikernels] are typically deployed in larger
//! numbers and only execute a single application each").
//!
//! Four demonstrations:
//!
//! 1. **Asynchronous overlap** — two tenants issue kernel launches that
//!    *enqueue* onto per-session streams instead of holding the device;
//!    the pipelined schedule finishes in measurably less virtual time than
//!    running the tenants back-to-back.
//! 2. **Scheduler fairness** — four unikernel clients hammer one simulated
//!    A100 under each scheduling policy; the example prints how ops and
//!    device time were apportioned.
//! 3. **Weighted fair queuing** — four tenants with WFQ weights 1..=4
//!    compete with synchronous transfers; the served device-time shares
//!    track the weights.
//! 4. **Per-tenant quotas and admission control** — a tenant clamps its
//!    own device-time rate over the wire (`cricketQosSet`) and sees its
//!    over-quota calls shed with `CRICKET_BUSY` (surfacing as
//!    `ClientError::Busy` with a retry-after hint), and a server at its
//!    session watermark sheds a *new* session while established ones keep
//!    running.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use cricket_repro::prelude::*;
use cricket_server::{CricketServer, SchedulerPolicy, ServerConfig, SimTransport};
use simnet::SimClock;
use std::sync::Arc;
use unikernel::{Guest, GuestKind};

/// Elements per vector (16 MiB of f32): heavy enough that device time per
/// launch (~30 µs) dwarfs the per-call dispatch cost (~10 µs), so queues
/// actually back up and overlap is visible.
const N: usize = 1 << 22;
const LAUNCHES: usize = 48;

struct Tenant {
    api: cricket_server::service::Sessioned,
    func: u64,
    params: Vec<u8>,
    c: u64,
    fill: Vec<u8>,
}

impl Tenant {
    /// Set up one tenant session: load the vectorAdd module and stage two
    /// input vectors on the device.
    fn new(server: Arc<CricketServer>, session: u32) -> Self {
        use cricket_proto::CricketV1Service;
        let api = cricket_server::service::Sessioned::new(server, session);
        let image = CubinBuilder::new()
            .kernel("vectorAdd", &[8, 8, 8, 4])
            .code(b"vectorAdd SASS")
            .build(true);
        let module = api
            .cu_module_load_data(&image)
            .unwrap()
            .into_result()
            .unwrap();
        let func = api
            .cu_module_get_function(module, "vectorAdd")
            .unwrap()
            .into_result()
            .unwrap();
        let bytes = (N * 4) as u64;
        let a = api.cuda_malloc(bytes).unwrap().into_result().unwrap();
        let b = api.cuda_malloc(bytes).unwrap().into_result().unwrap();
        let c = api.cuda_malloc(bytes).unwrap().into_result().unwrap();
        api.cuda_memcpy_htod(a, &le_bytes(1.0)).unwrap();
        api.cuda_memcpy_htod(b, &le_bytes(2.0)).unwrap();
        let params = ParamBuilder::new()
            .ptr(c)
            .ptr(a)
            .ptr(b)
            .u32(N as u32)
            .build();
        Self {
            api,
            func,
            params,
            c,
            fill: le_bytes(1.0),
        }
    }

    /// One asynchronous vectorAdd launch on the tenant's default stream
    /// (stream 0 is remapped server-side to a per-session stream, so
    /// different tenants' kernels can overlap on the device timeline).
    fn launch(&self) {
        use cricket_proto::CricketV1Service;
        let grid = ((N as u32).div_ceil(256), 1, 1).into();
        let block = (256, 1, 1).into();
        let r = self
            .api
            .cuda_launch_kernel(self.func, grid, block, 0, 0, &self.params)
            .unwrap();
        assert_eq!(r, 0);
    }

    /// One synchronous full-buffer H2D copy — holds a scheduler turn for
    /// the whole 16 MiB transfer, the op the WFQ weight demo arbitrates.
    fn refill(&self) {
        use cricket_proto::CricketV1Service;
        assert_eq!(self.api.cuda_memcpy_htod(self.c, &self.fill).unwrap(), 0);
    }

    fn synchronize(&self) {
        use cricket_proto::CricketV1Service;
        assert_eq!(self.api.cuda_device_synchronize().unwrap(), 0);
    }
}

/// A whole device vector of one value, as the little-endian wire bytes.
fn le_bytes(value: f32) -> Vec<u8> {
    value
        .to_le_bytes()
        .iter()
        .copied()
        .cycle()
        .take(N * 4)
        .collect()
}

/// Part 1: the same two workloads, serial vs pipelined, on one device.
fn overlap_demo() {
    use cricket_proto::CricketV1Service;
    let clock = SimClock::new();
    let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
    let ta = Tenant::new(Arc::clone(&server), 1);
    let tb = Tenant::new(Arc::clone(&server), 2);

    // Back-to-back: tenant A runs to completion, then tenant B.
    let t0 = clock.now_ns();
    for t in [&ta, &tb] {
        for _ in 0..LAUNCHES {
            t.launch();
        }
        t.synchronize();
    }
    let serial_ns = clock.now_ns() - t0;

    // Pipelined: launches interleave; each enqueue returns at submission,
    // so B's kernels land on its own stream while A's are still running.
    let t1 = clock.now_ns();
    for _ in 0..LAUNCHES {
        ta.launch();
        tb.launch();
    }
    ta.synchronize();
    tb.synchronize();
    let pipelined_ns = clock.now_ns() - t1;

    // The result is still correct: 1.0 + 2.0 everywhere.
    let back = ta
        .api
        .cuda_memcpy_dtoh(ta.c, 64)
        .unwrap()
        .into_result()
        .unwrap();
    assert!(back
        .chunks_exact(4)
        .all(|w| f32::from_le_bytes(w.try_into().unwrap()) == 3.0));

    let (busy_span, device_time) = server.device_utilization(0).unwrap();
    println!("two tenants × {LAUNCHES} vectorAdd launches ({N} elements):");
    println!("  serial    : {:>8.3} ms virtual", serial_ns as f64 / 1e6);
    println!(
        "  pipelined : {:>8.3} ms virtual",
        pipelined_ns as f64 / 1e6
    );
    println!(
        "  speedup   : {:>8.2}×   (device busy {:.3} ms for {:.3} ms of work → overlap {:.2}×)",
        serial_ns as f64 / pipelined_ns as f64,
        busy_span as f64 / 1e6,
        device_time as f64 / 1e6,
        device_time as f64 / busy_span as f64,
    );
    assert!(
        pipelined_ns * 4 < serial_ns * 3,
        "pipelined {pipelined_ns} ns should beat serial {serial_ns} ns by ≥ 25%"
    );
}

/// Part 2: four full unikernel clients under each scheduling policy.
fn run_policy(policy: SchedulerPolicy) {
    let clock = SimClock::new();
    let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
    server.scheduler.set_policy(policy);
    if policy == SchedulerPolicy::Priority {
        // Session 0 is latency-critical; the rest are batch.
        server.scheduler.set_priority(0, 1);
        for s in 1..4 {
            server.scheduler.set_priority(s, 100);
        }
    }
    let mut handles = Vec::new();
    for session in 0..4u32 {
        let clock = Arc::clone(&clock);
        let server2 = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            // Each tenant is its own unikernel with its own session id.
            let inner = Arc::new(oncrpc::RpcServer::new());
            inner.register(
                cricket_proto::CRICKET_CUDA,
                cricket_proto::CRICKET_V1,
                Arc::new(cricket_proto::CricketV1Dispatch(
                    cricket_server::service::Sessioned::new(server2, session),
                )),
            );
            let t = SimTransport::new(inner, Guest::new(GuestKind::RustyHermit), clock);
            let ctx = Context::from_client(CricketClient::over(
                t,
                cricket_client::env::ClientFlavor::RustRpcLib,
                None,
            ));
            let buf = ctx.upload(&vec![session as f32; 1024]).unwrap();
            for _ in 0..50 {
                let back = buf.copy_to_vec().unwrap();
                assert!(back.iter().all(|&v| v == session as f32));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let ops = server.scheduler.served_ops();
    let ns = server.scheduler.served_ns();
    let mut sessions: Vec<_> = ops.keys().collect();
    sessions.sort();
    let line: Vec<String> = sessions
        .iter()
        .map(|s| {
            format!(
                "session {s}: {} ops / {:.2} ms device",
                ops[s],
                *ns.get(s).unwrap_or(&0) as f64 / 1e6
            )
        })
        .collect();
    println!("{policy:?}: {}", line.join(", "));
}

/// Part 3: weighted fair queuing. Four tenants with weights 1..=4 each
/// offer synchronous-transfer work proportional to their weight; when the
/// first tenant drains its load, every session's share of served device
/// time should track its weight share (weight 4 ≈ 4× weight 1's).
///
/// The per-op size matters on small machines: each 16 MiB copy costs
/// enough real CPU that the OS preempts a tenant thread mid-workload, so
/// all four threads genuinely compete at the scheduler instead of running
/// to completion one after another.
fn wfq_weights_demo() {
    use std::sync::{Barrier, Mutex};
    const ROUNDS: usize = 8;
    let clock = SimClock::new();
    let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
    server.scheduler.set_policy(SchedulerPolicy::Wfq);
    let tenants: Vec<_> = (1..=4u32)
        .map(|s| {
            server.scheduler.set_weight(s, s); // weight == session id
            Tenant::new(Arc::clone(&server), s)
        })
        .collect();
    // Setup (module loads, input staging) ran serially above; measure only
    // the contended phase.
    let base = server.scheduler.served_ns();
    let snapshot: Arc<Mutex<Option<std::collections::HashMap<u32, u64>>>> =
        Arc::new(Mutex::new(None));
    let barrier = Arc::new(Barrier::new(tenants.len()));
    let joins: Vec<_> = tenants
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            let server = Arc::clone(&server);
            let snapshot = Arc::clone(&snapshot);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..ROUNDS * (i + 1) {
                    t.refill();
                }
                // First tenant done: freeze the ledger while everyone else
                // is still backlogged.
                let mut snap = snapshot.lock().unwrap();
                if snap.is_none() {
                    *snap = Some(server.scheduler.served_ns());
                }
            })
        })
        .collect();
    for j in joins {
        j.join().unwrap();
    }
    let snap = snapshot.lock().unwrap().take().unwrap();
    let served: std::collections::HashMap<u32, u64> =
        (1..=4u32).map(|s| (s, snap[&s] - base[&s])).collect();
    let total: u64 = served.values().sum();
    for s in 1..=4u32 {
        println!(
            "  weight {s}: {:>6.3} ms device time served = {:.1}% (fair share {:.1}%)",
            served[&s] as f64 / 1e6,
            served[&s] as f64 / total as f64 * 100.0,
            s as f64 / 10.0 * 100.0,
        );
    }
    let ratio = served[&4] as f64 / served[&1].max(1) as f64;
    assert!(
        ratio >= 2.0,
        "weight-4 tenant should be served ≥ 2× the weight-1 tenant's device time (got {ratio:.2}×)"
    );
}

/// Part 4: per-tenant quotas and overload admission, both through the RPC
/// layer (deterministic: the token bucket runs on the virtual clock).
fn quota_demo() {
    use cricket_client::{ClientError, CricketClient, EnvConfig};
    use cricket_server::make_session_rpc;

    let connect = |server: &Arc<CricketServer>,
                   clock: &Arc<simnet::SimClock>,
                   session: u32|
     -> CricketClient {
        let env = EnvConfig::RustyHermit;
        let rpc = Arc::new(make_session_rpc(Arc::clone(server), session));
        let transport = SimTransport::new(rpc, env.guest(), Arc::clone(clock));
        let mut client =
            CricketClient::new(Box::new(transport), env.flavor(), Some(Arc::clone(clock)));
        // Surface every CRICKET_BUSY instead of silently retrying, so the
        // demo can count sheds.
        client.rpc().set_retry_policy(oncrpc::RetryPolicy {
            max_attempts: 1,
            base_delay: std::time::Duration::from_micros(1),
            max_delay: std::time::Duration::from_micros(1),
            retry_non_idempotent: false,
        });
        client
    };

    // Rate quota: the tenant clamps itself to 1 µs of device time per
    // second of virtual clock, then hammers the device.
    let clock = SimClock::new();
    let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
    let mut greedy = connect(&server, &clock, 5);
    let target = greedy.malloc(1 << 20).unwrap();
    greedy
        .set_qos(&cricket_proto::QosParams {
            session: 5,
            weight: 1,
            priority: 100,
            rate_ns_per_s: 1_000,
            burst_ns: 6_000,
            max_resident_bytes: 0,
        })
        .unwrap();
    let mut shed = 0u32;
    let mut hint_ns = 0u64;
    for _ in 0..12 {
        match greedy.memset(target, 0xAB, 1 << 20) {
            Ok(()) => {}
            Err(ClientError::Busy { retry_after_ns }) => {
                shed += 1;
                hint_ns = retry_after_ns;
            }
            Err(other) => panic!("expected Busy, got {other}"),
        }
    }
    println!(
        "  rate quota : {shed}/12 over-quota memsets shed busy (retry-after hint {:.3} ms)",
        hint_ns as f64 / 1e6
    );
    assert!(
        shed >= 6,
        "an over-quota tenant should have most calls shed (got {shed}/12)"
    );
    assert!(hint_ns > 0, "busy errors should carry a retry-after hint");

    // Admission control: watermark at 2 sessions — two tenants get in and
    // keep working, the third is shed before it can establish.
    let clock = SimClock::new();
    let server = CricketServer::new(
        ServerConfig {
            qos: cricket_server::QosServerConfig {
                max_sessions: 2,
                ..Default::default()
            },
            ..Default::default()
        },
        Arc::clone(&clock),
    );
    let mut first = connect(&server, &clock, 1);
    let mut second = connect(&server, &clock, 2);
    first.malloc(4096).unwrap();
    second.malloc(4096).unwrap();
    let mut third = connect(&server, &clock, 3);
    let refusal = third
        .malloc(4096)
        .expect_err("the third session should be shed");
    assert!(refusal.is_busy(), "expected Busy, got {refusal}");
    // Established sessions are unaffected by the watermark.
    first.malloc(4096).unwrap();
    println!(
        "  admission  : 2 sessions live at watermark, third shed busy, established ones unaffected"
    );
}

fn main() {
    println!("async stream engine: pipelined vs serial tenants\n");
    overlap_demo();

    println!("\n4 RustyHermit tenants sharing one simulated A100\n");
    for policy in [
        SchedulerPolicy::Fifo,
        SchedulerPolicy::RoundRobin,
        SchedulerPolicy::Priority,
    ] {
        run_policy(policy);
    }

    println!("\nweighted fair queuing: 4 tenants, weights 1..=4, proportional offered load\n");
    wfq_weights_demo();

    println!("\nquotas and admission control over the RPC layer\n");
    quota_demo();

    println!("\nall tenants' data stayed isolated and correct under contention ✓");
}
