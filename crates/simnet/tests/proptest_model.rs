//! Property tests on the cost model: monotonicity and sanity bounds that
//! must hold for *any* parameterization the harness might sweep.

use proptest::prelude::*;
use simnet::{segment_plan, GuestCosts, NetPath, Wire};

fn any_bytes() -> impl Strategy<Value = usize> {
    prop_oneof![0usize..4096, 4096usize..10_000_000]
}

proptest! {
    #[test]
    fn tx_cost_monotone_in_size(a in any_bytes(), b in any_bytes()) {
        let g = GuestCosts::native_linux();
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(g.tx_cost(small).total_ns() <= g.tx_cost(large).total_ns());
        prop_assert!(g.rx_cost(small).total_ns() <= g.rx_cost(large).total_ns());
    }

    #[test]
    fn rpc_round_monotone_in_payload(req in any_bytes(), resp in any_bytes()) {
        let p = NetPath::to_gpu_node(GuestCosts::native_linux());
        let base = p.rpc_round(0, 0, 0).total_ns();
        let t = p.rpc_round(req, resp, 0).total_ns();
        prop_assert!(t >= base);
        // Adding server exec time adds exactly that amount.
        prop_assert_eq!(p.rpc_round(req, resp, 12_345).total_ns(), t + 12_345);
    }

    #[test]
    fn bandwidth_never_exceeds_wire(bytes in 1usize..64_000_000) {
        let p = NetPath::to_gpu_node(GuestCosts::native_linux());
        let bw = p.bulk_bandwidth_bps(bytes, true);
        prop_assert!(bw <= p.wire.bandwidth_bps * 1.01, "{bw}");
        let bw = p.bulk_bandwidth_bps(bytes, false);
        prop_assert!(bw <= p.wire.bandwidth_bps * 1.01, "{bw}");
    }

    #[test]
    fn segment_plan_accounts_every_byte(
        bytes in 0usize..10_000_000,
        mtu in 60usize..65_000,
        tso: bool,
        csum: bool,
    ) {
        let plan = segment_plan(bytes, mtu, tso, csum);
        let payload_per_mtu = mtu.saturating_sub(40).max(1);
        // Segments must be able to carry all bytes, without one spare.
        prop_assert!(plan.wire_segments * payload_per_mtu >= bytes);
        if plan.wire_segments > 1 {
            prop_assert!((plan.wire_segments - 1) * payload_per_mtu < bytes);
        }
        prop_assert!(plan.software_segments <= plan.wire_segments);
        prop_assert_eq!(plan.checksum_bytes, if csum { 0 } else { bytes });
    }

    #[test]
    fn disabling_offloads_never_helps(bytes in 1usize..32_000_000) {
        let mut with = GuestCosts::native_linux();
        with.virtualized = true;
        with.vmexit_ns = 10_000;
        let mut without = with.clone();
        without.offloads.tso = false;
        without.offloads.tx_csum = false;
        without.offloads.scatter_gather = false;
        prop_assert!(
            with.tx_cost(bytes).total_ns() <= without.tx_cost(bytes).total_ns(),
            "offloads must never hurt"
        );
    }

    #[test]
    fn wire_times_additive(a in 0usize..10_000_000, b in 0usize..10_000_000) {
        let w = Wire::ethernet_100g();
        let sum = w.serialize_ns(a) + w.serialize_ns(b);
        let joint = w.serialize_ns(a + b);
        // Integer truncation allows 1-2 ns slack.
        prop_assert!(joint.abs_diff(sum) <= 2);
    }
}
