//! Physical link model: 100 Gbit/s Ethernet configured for IPoIB, MTU 9000
//! (the paper's interconnect).

/// A point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wire {
    /// Usable bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// One-way propagation + switch latency in nanoseconds.
    pub latency_ns: u64,
    /// Link MTU in bytes (IP MTU; the paper configures 9000).
    pub mtu: usize,
}

impl Wire {
    /// The paper's interconnect: ConnectX-5 at 100 Gbit/s, IPoIB, MTU 9000.
    /// IPoIB on 100 Gb EDR yields roughly 90 Gbit/s of usable TCP goodput;
    /// one-way latency of a cut-through switch + NIC pair ≈ 1.5 µs.
    pub fn ethernet_100g() -> Self {
        Self {
            bandwidth_bps: 90e9 / 8.0,
            latency_ns: 1_500,
            mtu: 9000,
        }
    }

    /// Serialization time for `bytes` on the wire (no latency term).
    pub fn serialize_ns(&self, bytes: usize) -> u64 {
        (bytes as f64 / self.bandwidth_bps * crate::NS_PER_SEC) as u64
    }

    /// One-way time for a message of `bytes`: latency + serialization.
    pub fn one_way_ns(&self, bytes: usize) -> u64 {
        self.latency_ns + self.serialize_ns(bytes)
    }

    /// Bytes per second as a pipeline stage rate (for bulk transfers).
    pub fn rate_ns_per_byte(&self) -> f64 {
        crate::NS_PER_SEC / self.bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_scales_linearly() {
        let w = Wire::ethernet_100g();
        let t1 = w.serialize_ns(1 << 20);
        let t2 = w.serialize_ns(2 << 20);
        assert!((t2 as i64 - 2 * t1 as i64).unsigned_abs() <= 2);
    }

    #[test]
    fn hundred_gig_is_fast() {
        let w = Wire::ethernet_100g();
        // 1 MiB at ~90 Gbit/s ≈ 93 µs.
        let t = w.serialize_ns(1 << 20);
        assert!((80_000..110_000).contains(&t), "unexpected {t} ns");
    }

    #[test]
    fn one_way_includes_latency() {
        let w = Wire::ethernet_100g();
        assert_eq!(w.one_way_ns(0), w.latency_ns);
        assert!(w.one_way_ns(9000) > w.latency_ns);
    }
}
