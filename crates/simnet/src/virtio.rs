//! Virtio virtqueue model (split ring, virtio-net).
//!
//! The guest posts buffers into a descriptor ring and *kicks* the device; a
//! kick from inside a VM is a vm-exit to the hypervisor, which is the largest
//! fixed cost on the virtualized data path. Received packets land in
//! guest-posted RX buffers; with `VIRTIO_NET_F_MRG_RXBUF` (one of the paper's
//! RustyHermit contributions) large packets can span several smaller buffers
//! instead of requiring worst-case-sized buffers, halving RX copies in
//! practice.

/// Static configuration of a virtqueue pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtqueueConfig {
    /// Ring size (descriptors).
    pub ring_size: usize,
    /// Segments the guest batches per kick (drivers suppress notifications
    /// while the device is still processing; 1 = kick per segment).
    pub kick_batch: usize,
    /// Merged RX buffers negotiated.
    pub mrg_rxbuf: bool,
}

impl VirtqueueConfig {
    /// Typical Linux virtio-net defaults.
    pub fn linux_default() -> Self {
        Self {
            ring_size: 256,
            kick_batch: 8,
            mrg_rxbuf: true,
        }
    }
}

/// Accounting for moving `segments` buffers through the TX queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxAccounting {
    /// Number of kicks (vm-exits when virtualized).
    pub kicks: usize,
    /// Descriptors consumed.
    pub descriptors: usize,
}

/// Accounting for receiving `segments` buffers from the RX queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxAccounting {
    /// Interrupt deliveries into the guest.
    pub interrupts: usize,
    /// Copies out of the ring into stack/socket buffers. Without merged RX
    /// buffers the guest must copy through a reassembly buffer (2 copies per
    /// segment); with them, 1.
    pub copies_per_segment: usize,
}

/// TX-side accounting for a burst of `segments`.
pub fn tx_accounting(cfg: &VirtqueueConfig, segments: usize) -> TxAccounting {
    let kicks = segments.div_ceil(cfg.kick_batch.max(1)).max(1);
    TxAccounting {
        kicks,
        descriptors: segments,
    }
}

/// RX-side accounting for a burst of `segments`, with interrupt coalescing
/// factor `coalesce` (NAPI-style polling batches).
pub fn rx_accounting(cfg: &VirtqueueConfig, segments: usize, coalesce: usize) -> RxAccounting {
    RxAccounting {
        interrupts: segments.div_ceil(coalesce.max(1)).max(1),
        copies_per_segment: if cfg.mrg_rxbuf { 1 } else { 2 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kick_batching() {
        let cfg = VirtqueueConfig {
            ring_size: 256,
            kick_batch: 8,
            mrg_rxbuf: true,
        };
        assert_eq!(tx_accounting(&cfg, 1).kicks, 1);
        assert_eq!(tx_accounting(&cfg, 8).kicks, 1);
        assert_eq!(tx_accounting(&cfg, 9).kicks, 2);
        assert_eq!(tx_accounting(&cfg, 64).kicks, 8);
    }

    #[test]
    fn kick_per_segment_without_batching() {
        let cfg = VirtqueueConfig {
            ring_size: 256,
            kick_batch: 1,
            mrg_rxbuf: false,
        };
        assert_eq!(tx_accounting(&cfg, 10).kicks, 10);
    }

    #[test]
    fn mrg_rxbuf_halves_copies() {
        let with = VirtqueueConfig {
            ring_size: 256,
            kick_batch: 1,
            mrg_rxbuf: true,
        };
        let without = VirtqueueConfig {
            mrg_rxbuf: false,
            ..with
        };
        assert_eq!(rx_accounting(&with, 16, 4).copies_per_segment, 1);
        assert_eq!(rx_accounting(&without, 16, 4).copies_per_segment, 2);
    }

    #[test]
    fn interrupt_coalescing() {
        let cfg = VirtqueueConfig::linux_default();
        assert_eq!(rx_accounting(&cfg, 64, 16).interrupts, 4);
        assert_eq!(rx_accounting(&cfg, 1, 16).interrupts, 1);
    }

    #[test]
    fn zero_segments_still_one_event() {
        let cfg = VirtqueueConfig::linux_default();
        assert_eq!(tx_accounting(&cfg, 0).kicks, 1);
        assert_eq!(rx_accounting(&cfg, 0, 4).interrupts, 1);
    }
}
