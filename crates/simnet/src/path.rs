//! End-to-end path model: client guest ↔ wire ↔ Cricket server node.

use crate::profile::GuestCosts;
use crate::wire::Wire;

/// A configured client→server network path.
///
/// The server side is always the paper's native-Linux GPU node; the client
/// side varies across the five evaluated configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct NetPath {
    /// Client-side environment costs.
    pub client: GuestCosts,
    /// Server-side (GPU node) environment costs.
    pub server: GuestCosts,
    /// The physical link.
    pub wire: Wire,
}

/// Timing breakdown of one RPC round trip, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RpcTiming {
    /// Client transmit leg (request).
    pub client_tx_ns: u64,
    /// Wire time, both directions (latency + bottleneck-adjusted streams).
    pub wire_ns: u64,
    /// Server receive leg (request).
    pub server_rx_ns: u64,
    /// Server-side execution (Cricket dispatch + simulated CUDA work).
    pub server_exec_ns: u64,
    /// Server transmit leg (reply).
    pub server_tx_ns: u64,
    /// Client receive leg (reply).
    pub client_rx_ns: u64,
}

impl RpcTiming {
    /// Total round-trip time.
    pub fn total_ns(&self) -> u64 {
        self.client_tx_ns
            + self.wire_ns
            + self.server_rx_ns
            + self.server_exec_ns
            + self.server_tx_ns
            + self.client_rx_ns
    }
}

impl NetPath {
    /// Build a path from a client profile over the paper's 100 GbE link to a
    /// native-Linux server.
    pub fn to_gpu_node(client: GuestCosts) -> Self {
        Self {
            client,
            server: GuestCosts::native_linux(),
            wire: Wire::ethernet_100g(),
        }
    }

    /// Time one RPC round trip carrying `req_bytes` of request payload and
    /// `resp_bytes` of reply payload, with `server_exec_ns` of server-side
    /// work (dispatch + device time).
    ///
    /// Fixed per-message costs are serial (a request must be fully sent
    /// before the server can parse it); the byte-proportional parts of each
    /// leg are pipelined, so each leg's stream time is the *maximum* of the
    /// sender CPU, wire serialization, and receiver CPU rates — this is what
    /// makes bandwidth emerge from the slowest stage, as the paper observes
    /// (single-core sender bound for RPC-argument transfers).
    pub fn rpc_round(&self, req_bytes: usize, resp_bytes: usize, server_exec_ns: u64) -> RpcTiming {
        let ctx = self.client.tx_cost(req_bytes);
        let srx = self.server.rx_cost(req_bytes);
        let stx = self.server.tx_cost(resp_bytes);
        let crx = self.client.rx_cost(resp_bytes);

        let req_stream = ctx
            .bulk_ns
            .max(self.wire.serialize_ns(req_bytes))
            .max(srx.bulk_ns);
        let resp_stream = stx
            .bulk_ns
            .max(self.wire.serialize_ns(resp_bytes))
            .max(crx.bulk_ns);

        RpcTiming {
            client_tx_ns: ctx.fixed_ns,
            wire_ns: 2 * self.wire.latency_ns + req_stream + resp_stream,
            server_rx_ns: srx.fixed_ns,
            server_exec_ns,
            server_tx_ns: stx.fixed_ns,
            client_rx_ns: crx.fixed_ns,
        }
    }

    /// Effective one-direction bandwidth in bytes/second for a bulk transfer
    /// of `bytes`, including the RPC envelope (used by the Fig. 7 harness as
    /// a cross-check; the harness itself measures through the full stack).
    pub fn bulk_bandwidth_bps(&self, bytes: usize, host_to_device: bool) -> f64 {
        let t = if host_to_device {
            self.rpc_round(bytes, 64, 0)
        } else {
            self.rpc_round(64, bytes, 0)
        };
        bytes as f64 / (t.total_ns() as f64 / crate::NS_PER_SEC)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn native_path() -> NetPath {
        NetPath::to_gpu_node(GuestCosts::native_linux())
    }

    #[test]
    fn small_rpc_round_lands_near_calibration_target() {
        // Native small Cricket call ≈ 20–40 µs (paper-scale anchor).
        let t = native_path().rpc_round(48, 32, 8_000);
        let total = t.total_ns();
        assert!(
            (15_000..45_000).contains(&total),
            "native round trip {total} ns out of calibration band"
        );
    }

    #[test]
    fn server_exec_adds_linearly() {
        let p = native_path();
        let a = p.rpc_round(48, 32, 0).total_ns();
        let b = p.rpc_round(48, 32, 100_000).total_ns();
        assert_eq!(b - a, 100_000);
    }

    #[test]
    fn bulk_bandwidth_is_bottleneck_bound() {
        let p = native_path();
        let bw = p.bulk_bandwidth_bps(512 << 20, true);
        // Must not exceed the wire and must be within 2x of it (native is
        // near wire speed per the calibration).
        assert!(bw <= p.wire.bandwidth_bps * 1.01, "bw {bw}");
        assert!(bw >= p.wire.bandwidth_bps * 0.4, "bw {bw}");
    }

    #[test]
    fn larger_payload_takes_longer() {
        let p = native_path();
        let small = p.rpc_round(1 << 10, 32, 0).total_ns();
        let big = p.rpc_round(8 << 20, 32, 0).total_ns();
        assert!(big > small * 10);
    }

    #[test]
    fn direction_symmetry_for_symmetric_profiles() {
        // With identical guests on both ends, H2D and D2H differ only via
        // tx/rx asymmetries of the same table — they should be within 2x.
        let p = native_path();
        let h2d = p.bulk_bandwidth_bps(64 << 20, true);
        let d2h = p.bulk_bandwidth_bps(64 << 20, false);
        let ratio = h2d / d2h;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }
}
