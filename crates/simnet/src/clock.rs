//! Virtual time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically advancing virtual clock, shared by every component of a
/// simulated deployment (guest, wire, Cricket server, GPU).
///
/// All benchmark harnesses report times read from this clock, so runs are
/// deterministic and independent of host machine speed. The clock is
/// thread-safe (the TCP-mode tests drive it from several threads), but the
/// figure harnesses use it single-threaded.
#[derive(Debug, Default)]
pub struct SimClock {
    now_ns: AtomicU64,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Current virtual time in nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }

    /// Advance by `delta_ns`, returning the new time.
    #[inline]
    pub fn advance(&self, delta_ns: u64) -> u64 {
        self.now_ns.fetch_add(delta_ns, Ordering::Relaxed) + delta_ns
    }

    /// Advance to at least `t_ns` (no-op if already past). Returns the new
    /// current time. Used when waiting on an absolute completion time, e.g.
    /// stream synchronization against queued kernel work.
    pub fn advance_to(&self, t_ns: u64) -> u64 {
        let mut cur = self.now_ns.load(Ordering::Relaxed);
        while cur < t_ns {
            match self
                .now_ns
                .compare_exchange_weak(cur, t_ns, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return t_ns,
                Err(actual) => cur = actual,
            }
        }
        cur
    }

    /// Reset to zero (between benchmark runs).
    pub fn reset(&self) {
        self.now_ns.store(0, Ordering::Relaxed);
    }
}

/// A span measured on a [`SimClock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimSpan {
    /// Start timestamp (ns).
    pub start_ns: u64,
    /// End timestamp (ns).
    pub end_ns: u64,
}

impl SimSpan {
    /// Duration in nanoseconds.
    pub fn ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Duration in seconds.
    pub fn secs(&self) -> f64 {
        self.ns() as f64 / crate::NS_PER_SEC
    }
}

/// Measure `f` on `clock`.
pub fn measure<R>(clock: &SimClock, f: impl FnOnce() -> R) -> (R, SimSpan) {
    let start_ns = clock.now_ns();
    let r = f();
    let end_ns = clock.now_ns();
    (r, SimSpan { start_ns, end_ns })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let c = SimClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.advance(100), 100);
        assert_eq!(c.advance(50), 150);
        assert_eq!(c.now_ns(), 150);
    }

    #[test]
    fn advance_to_is_idempotent_backwards() {
        let c = SimClock::new();
        c.advance(1000);
        assert_eq!(c.advance_to(500), 1000, "never goes backwards");
        assert_eq!(c.advance_to(2000), 2000);
    }

    #[test]
    fn measure_spans() {
        let c = SimClock::new();
        let (v, span) = measure(&c, || {
            c.advance(42);
            "done"
        });
        assert_eq!(v, "done");
        assert_eq!(span.ns(), 42);
        assert!((span.secs() - 42e-9).abs() < 1e-15);
    }

    #[test]
    fn reset_zeroes() {
        let c = SimClock::new();
        c.advance(5);
        c.reset();
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    fn concurrent_advances_sum() {
        let c = SimClock::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.advance(3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now_ns(), 4 * 1000 * 3);
    }
}
