//! TCP segmentation engine.
//!
//! When TCP segmentation offload (TSO) is available, the guest hands the NIC
//! (or vhost backend) super-segments of up to 64 KiB and the hardware slices
//! them; without TSO the guest's own stack produces one segment per MTU and
//! pays per-segment CPU. This is the mechanism the paper blames for most of
//! the unikernels' bandwidth gap (§4.2), so it is modeled explicitly.

/// Maximum super-segment size with TSO (64 KiB, the TCP length field limit).
pub const TSO_SEGMENT: usize = 65_536;

/// The plan for transmitting one buffer through a TCP stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentPlan {
    /// Segments the *guest software* must produce (what per-segment CPU is
    /// charged for).
    pub software_segments: usize,
    /// Segments that appear on the wire (always per-MTU).
    pub wire_segments: usize,
    /// Bytes of payload the guest must checksum in software
    /// (0 when checksum offload is active).
    pub checksum_bytes: usize,
    /// Total payload bytes.
    pub payload_bytes: usize,
}

/// Compute the transmission plan for `bytes` of payload.
///
/// `mtu` is the link MTU; `tso` selects hardware segmentation; `csum_offload`
/// selects hardware checksumming.
pub fn segment_plan(bytes: usize, mtu: usize, tso: bool, csum_offload: bool) -> SegmentPlan {
    assert!(mtu > 0, "mtu must be positive");
    let payload_per_mtu = mtu.saturating_sub(40).max(1); // IP + TCP headers
    let wire_segments = bytes.div_ceil(payload_per_mtu).max(1);
    let software_segments = if tso {
        bytes.div_ceil(TSO_SEGMENT).max(1)
    } else {
        wire_segments
    };
    let checksum_bytes = if csum_offload { 0 } else { bytes };
    SegmentPlan {
        software_segments,
        wire_segments,
        checksum_bytes,
        payload_bytes: bytes,
    }
}

/// Functionally slice `data` into per-MTU payload segments (used by the
/// unikernel guest data path for correctness tests; timing uses
/// [`segment_plan`]).
pub fn slice_segments(data: &[u8], mtu: usize) -> impl Iterator<Item = &[u8]> {
    let payload_per_mtu = mtu.saturating_sub(40).max(1);
    data.chunks(payload_per_mtu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tso_reduces_software_segments() {
        let bytes = 1 << 20;
        let no_tso = segment_plan(bytes, 9000, false, true);
        let tso = segment_plan(bytes, 9000, true, true);
        assert_eq!(no_tso.software_segments, bytes.div_ceil(8960));
        assert_eq!(tso.software_segments, 16);
        // Wire segment count is identical: TSO changes who does the work.
        assert_eq!(no_tso.wire_segments, tso.wire_segments);
    }

    #[test]
    fn checksum_offload_zeroes_checksum_bytes() {
        assert_eq!(segment_plan(5000, 9000, false, true).checksum_bytes, 0);
        assert_eq!(segment_plan(5000, 9000, false, false).checksum_bytes, 5000);
    }

    #[test]
    fn small_message_is_one_segment() {
        let p = segment_plan(100, 9000, false, false);
        assert_eq!(p.software_segments, 1);
        assert_eq!(p.wire_segments, 1);
        let p = segment_plan(0, 9000, true, true);
        assert_eq!(p.software_segments, 1, "empty send still costs a segment");
    }

    #[test]
    fn slice_segments_covers_all_bytes() {
        let data: Vec<u8> = (0..25_000u32).map(|i| i as u8).collect();
        let rejoined: Vec<u8> = slice_segments(&data, 9000).flatten().copied().collect();
        assert_eq!(rejoined, data);
        assert_eq!(
            slice_segments(&data, 9000).count(),
            segment_plan(data.len(), 9000, false, true).wire_segments
        );
    }

    #[test]
    fn mtu_1500_makes_more_segments_than_9000() {
        let a = segment_plan(1 << 20, 1500, false, true);
        let b = segment_plan(1 << 20, 9000, false, true);
        assert!(a.wire_segments > 5 * b.wire_segments);
    }
}
