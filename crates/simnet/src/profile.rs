//! Guest-side cost profiles.
//!
//! A [`GuestCosts`] table describes how expensive the network send/receive
//! paths of one execution environment are, in terms of the mechanisms the
//! paper discusses: syscalls, guest context switches, vm-exits (virtio
//! kicks/interrupts), per-segment stack processing, software checksums and
//! buffer copies. The concrete per-environment tables (native Linux, Linux
//! VM, Unikraft, RustyHermit) are built by the `unikernel` crate from
//! negotiated virtio features; [`GuestCosts::native_linux`] lives here
//! because the Cricket server side always runs native Linux.

use crate::segment::{segment_plan, TSO_SEGMENT};
use crate::virtio::{rx_accounting, tx_accounting, VirtqueueConfig};

/// Offload features negotiated between guest driver and device.
///
/// Mirrors `VIRTIO_NET_F_*`: `tx_csum` ↔ `F_CSUM` (device computes TX
/// checksums), `rx_csum` ↔ `F_GUEST_CSUM` (device validates RX checksums),
/// `mrg_rxbuf` ↔ `F_MRG_RXBUF`, `tso` ↔ `F_HOST_TSO4/6`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffloadFeatures {
    /// TCP segmentation offload (guest hands 64 KiB super-segments down).
    pub tso: bool,
    /// Transmit checksum offload.
    pub tx_csum: bool,
    /// Receive checksum offload.
    pub rx_csum: bool,
    /// Merged receive buffers.
    pub mrg_rxbuf: bool,
    /// Scatter-gather DMA (avoids linearizing copies on TX).
    pub scatter_gather: bool,
}

impl OffloadFeatures {
    /// Everything on (modern native Linux / virtio with full negotiation).
    pub fn all() -> Self {
        Self {
            tso: true,
            tx_csum: true,
            rx_csum: true,
            mrg_rxbuf: true,
            scatter_gather: true,
        }
    }

    /// Everything off (the paper's §4.2 ablation).
    pub fn none() -> Self {
        Self {
            tso: false,
            tx_csum: false,
            rx_csum: false,
            mrg_rxbuf: false,
            scatter_gather: false,
        }
    }
}

/// Fixed + per-unit CPU costs of one environment's network data path.
#[derive(Debug, Clone, PartialEq)]
pub struct GuestCosts {
    /// Environment name (diagnostics and reports).
    pub name: String,
    /// Whether kicks/interrupts cross a hypervisor boundary (vm-exits).
    pub virtualized: bool,
    /// Cost of entering the kernel for a send/recv call. Unikernels run in a
    /// single address space, so this is a function call (~100 ns); Linux
    /// pays a real syscall.
    pub syscall_ns: u64,
    /// Guest-internal context switch charged when a blocked receiver wakes
    /// up. Zero for unikernels (no separate kernel threads to switch to) —
    /// the paper: "no classic context switches within the guest".
    pub context_switch_ns: u64,
    /// Cost of one virtio kick or interrupt crossing the hypervisor
    /// (vm-exit + host-side handling + re-entry). Zero when not virtualized.
    pub vmexit_ns: u64,
    /// Fixed per-send stack traversal cost.
    pub tx_fixed_ns: u64,
    /// Fixed per-receive stack traversal cost.
    pub rx_fixed_ns: u64,
    /// Per-software-segment TX processing cost.
    pub tx_seg_ns: u64,
    /// Per-wire-segment RX processing cost.
    pub rx_seg_ns: u64,
    /// memcpy cost per byte (ns). ~0.05 ns/B ≈ 20 GB/s single core.
    pub copy_ns_per_byte: f64,
    /// Software Internet-checksum cost per byte (ns), charged only when the
    /// corresponding offload is missing. ~0.4 ns/B ≈ 2.5 GB/s.
    pub csum_ns_per_byte: f64,
    /// Extra copies on the TX path beyond the unavoidable one
    /// (0 with scatter-gather, 1 without; +1 inside vhost for VMs).
    pub tx_extra_copies: u32,
    /// Virtqueue configuration (ring size, kick batching, mrg_rxbuf).
    pub virtq: VirtqueueConfig,
    /// RX interrupt coalescing factor (segments per interrupt).
    pub rx_coalesce: usize,
    /// Generic receive offload: the host/device merges wire segments into
    /// 64 KiB units before the guest processes them (the RX analogue of
    /// TSO; negotiated via `VIRTIO_NET_F_GUEST_TSO4` by Linux guests, not
    /// yet by the unikernels). Independent of the TX offloads, so the
    /// paper's §4.2 TX-side ablation leaves it on.
    pub rx_gro: bool,
    /// Negotiated offloads.
    pub offloads: OffloadFeatures,
    /// Link MTU seen by the stack.
    pub mtu: usize,
}

/// A data-path cost split into a size-independent and a size-dependent part,
/// so round-trip latency (fixed-dominated) and streaming bandwidth
/// (bulk-dominated, pipelined) can both be derived from one table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParts {
    /// Cost paid regardless of payload size (first segment, first kick,
    /// syscall, fixed stack traversal).
    pub fixed_ns: u64,
    /// Additional cost that scales with the payload.
    pub bulk_ns: u64,
}

impl CostParts {
    /// Total serial cost.
    pub fn total_ns(&self) -> u64 {
        self.fixed_ns + self.bulk_ns
    }
}

impl GuestCosts {
    /// Native Linux on the paper's EPYC nodes: no virtualization, full
    /// offloads. Calibrated so a small Cricket RPC round trip lands near
    /// 30 µs and bulk single-core sends near 10 GB/s of the paper's setup.
    pub fn native_linux() -> Self {
        Self {
            name: "native-linux".into(),
            virtualized: false,
            syscall_ns: 1_300,
            context_switch_ns: 1_200,
            vmexit_ns: 0,
            tx_fixed_ns: 1_500,
            rx_fixed_ns: 1_600,
            tx_seg_ns: 500,
            rx_seg_ns: 600,
            copy_ns_per_byte: 0.05,
            csum_ns_per_byte: 0.40,
            tx_extra_copies: 0,
            virtq: VirtqueueConfig::linux_default(),
            rx_coalesce: 16,
            rx_gro: true,
            offloads: OffloadFeatures::all(),
            mtu: 9000,
        }
    }

    /// Effective software segment size on TX (TSO super-segments or MTU).
    pub fn tx_unit(&self) -> usize {
        if self.offloads.tso {
            TSO_SEGMENT
        } else {
            self.mtu.saturating_sub(40).max(1)
        }
    }

    /// CPU cost of transmitting `bytes` of payload.
    pub fn tx_cost(&self, bytes: usize) -> CostParts {
        let plan = segment_plan(bytes, self.mtu, self.offloads.tso, self.offloads.tx_csum);
        let acc = tx_accounting(&self.virtq, plan.software_segments);
        let vmexit = if self.virtualized { self.vmexit_ns } else { 0 };

        let seg_total = plan.software_segments as u64 * self.tx_seg_ns;
        let kick_total = acc.kicks as u64 * vmexit;
        let copies = 1 + self.tx_extra_copies + if self.offloads.scatter_gather { 0 } else { 1 };
        let byte_costs = (plan.checksum_bytes as f64 * self.csum_ns_per_byte
            + bytes as f64 * self.copy_ns_per_byte * copies as f64) as u64;

        // First segment + first kick are unavoidable per message → fixed.
        let fixed_ns = self.syscall_ns + self.tx_fixed_ns + self.tx_seg_ns + vmexit;
        let bulk_ns = (seg_total - self.tx_seg_ns) + (kick_total - vmexit) + byte_costs;
        CostParts { fixed_ns, bulk_ns }
    }

    /// CPU cost of receiving `bytes` of payload.
    pub fn rx_cost(&self, bytes: usize) -> CostParts {
        // With GRO the device/host merges wire segments into 64 KiB units
        // before the guest touches them, so per-segment RX work amortizes
        // the way TSO amortizes TX work. Linux guests negotiate it; the
        // unikernels do not, which is half of their Fig. 7 gap.
        let rx_mtu = if self.rx_gro {
            TSO_SEGMENT + 40
        } else {
            self.mtu
        };
        let plan = segment_plan(bytes, rx_mtu, false, self.offloads.rx_csum);
        let acc = rx_accounting(&self.virtq, plan.wire_segments, self.rx_coalesce);
        let vmexit = if self.virtualized { self.vmexit_ns } else { 0 };

        let seg_total = plan.wire_segments as u64 * self.rx_seg_ns;
        let intr_total = acc.interrupts as u64 * vmexit;
        let byte_costs = (plan.checksum_bytes as f64 * self.csum_ns_per_byte
            + bytes as f64 * self.copy_ns_per_byte * acc.copies_per_segment as f64)
            as u64;

        let fixed_ns =
            self.syscall_ns + self.rx_fixed_ns + self.rx_seg_ns + vmexit + self.context_switch_ns;
        let bulk_ns = (seg_total - self.rx_seg_ns) + (intr_total - vmexit) + byte_costs;
        CostParts { fixed_ns, bulk_ns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_small_message_costs_are_fixed_dominated() {
        let g = GuestCosts::native_linux();
        let tx = g.tx_cost(64);
        assert!(tx.fixed_ns > tx.bulk_ns);
        // Native small send ≈ 3.3 µs per the calibration note.
        assert!((2_000..6_000).contains(&tx.total_ns()), "{tx:?}");
        let rx = g.rx_cost(64);
        assert!((3_000..8_000).contains(&rx.total_ns()), "{rx:?}");
    }

    #[test]
    fn bulk_cost_scales_linearly() {
        let g = GuestCosts::native_linux();
        let a = g.tx_cost(10 << 20).bulk_ns;
        let b = g.tx_cost(20 << 20).bulk_ns;
        let ratio = b as f64 / a as f64;
        assert!((1.9..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn disabling_tx_csum_charges_checksum_bytes() {
        let mut g = GuestCosts::native_linux();
        let with = g.tx_cost(1 << 20).total_ns();
        g.offloads.tx_csum = false;
        let without = g.tx_cost(1 << 20).total_ns();
        let delta = without - with;
        let expected = (1u64 << 20) as f64 * g.csum_ns_per_byte;
        assert!(
            (delta as f64 - expected).abs() / expected < 0.05,
            "delta {delta}, expected {expected}"
        );
    }

    #[test]
    fn disabling_tso_multiplies_segment_work() {
        let mut g = GuestCosts::native_linux();
        let with = g.tx_cost(4 << 20);
        g.offloads.tso = false;
        let without = g.tx_cost(4 << 20);
        // 4 MiB / 8960 B ≈ 469 software segments instead of 64; the extra
        // ~405 segments cost ~200 µs at 500 ns each.
        let delta = without.bulk_ns - with.bulk_ns;
        assert!(
            (150_000..300_000).contains(&delta),
            "delta {delta} ns (with={with:?}, without={without:?})"
        );
    }

    #[test]
    fn vmexits_charged_only_when_virtualized() {
        let mut g = GuestCosts::native_linux();
        g.vmexit_ns = 10_000;
        let not_virt = g.tx_cost(64).total_ns();
        g.virtualized = true;
        let virt = g.tx_cost(64).total_ns();
        assert_eq!(virt - not_virt, 10_000);
    }

    #[test]
    fn scatter_gather_removes_a_copy() {
        let mut g = GuestCosts::native_linux();
        let with = g.tx_cost(1 << 20).total_ns();
        g.offloads.scatter_gather = false;
        let without = g.tx_cost(1 << 20).total_ns();
        let expected = ((1u64 << 20) as f64 * g.copy_ns_per_byte) as u64;
        let delta = without - with;
        assert!(delta.abs_diff(expected) < expected / 10, "delta {delta}");
    }

    #[test]
    fn mrg_rxbuf_halves_rx_copy_bytes() {
        let mut g = GuestCosts::native_linux();
        let with = g.rx_cost(1 << 20).total_ns();
        g.virtq.mrg_rxbuf = false;
        let without = g.rx_cost(1 << 20).total_ns();
        let expected = ((1u64 << 20) as f64 * g.copy_ns_per_byte) as u64;
        assert!(
            (without - with).abs_diff(expected) < expected / 10,
            "with={with} without={without}"
        );
    }
}
