//! Network-path simulation for the Cricket-in-unikernels reproduction.
//!
//! The paper's evaluation hardware — two nodes on 100 Gbit/s Ethernet (IPoIB),
//! QEMU/KVM with virtio-net — is not available here, so this crate provides a
//! *mechanistic* stand-in: the paper attributes every performance difference
//! between its five configurations to concrete mechanisms (TCP segmentation
//! offload, checksum offload, merged receive buffers, scatter-gather, virtio
//! kicks/vm-exits, guest context switches, extra copies), and this crate
//! models exactly those mechanisms, charging their costs to a shared
//! [`SimClock`].
//!
//! The actual RPC bytes still flow through the real XDR / record-marking /
//! dispatch code; only *time* is simulated. Costs are split into
//!
//! * **per-event** costs (syscalls, vm-exits, context switches, per-segment
//!   processing) — dominant for the paper's Fig. 6 micro-benchmarks, and
//! * **per-byte** costs (software checksums, copies, wire serialization) —
//!   dominant for the Fig. 7 bandwidth tests, where the pipeline bottleneck
//!   stage sets the rate.
//!
//! Calibration anchors (constants in [`profile`]) come from the paper's text;
//! see DESIGN.md §4 for the target shapes.

pub mod checksum;
pub mod clock;
pub mod path;
pub mod profile;
pub mod segment;
pub mod virtio;
pub mod wire;

pub use clock::SimClock;
pub use path::{NetPath, RpcTiming};
pub use profile::{GuestCosts, OffloadFeatures};
pub use segment::{segment_plan, SegmentPlan};
pub use wire::Wire;

/// Nanoseconds per second, as f64 (for rate math).
pub const NS_PER_SEC: f64 = 1e9;

/// One mebibyte.
pub const MIB: usize = 1 << 20;
