//! Internet checksum (RFC 1071), as computed by guests that lack
//! `VIRTIO_NET_F_CSUM` offloading.
//!
//! The paper's §3.1 lists enabling `VIRTIO_NET_F_CSUM` / `GUEST_CSUM` in
//! RustyHermit among its contributions; in this reproduction the checksum is
//! really computed over payload bytes on the non-offloaded paths (and its
//! per-byte cost is charged to the virtual clock), so the offload features
//! change actual work, not just a constant.

/// Compute the 16-bit ones'-complement Internet checksum of `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data)
}

/// Ones'-complement 16-bit sum (before final inversion), with odd trailing
/// byte treated as high-order (RFC 1071 big-endian convention).
pub fn ones_complement_sum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    // Fold carries.
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// Verify a packet whose checksum field has been folded into `data`
/// (sum over data including checksum must be 0xffff).
pub fn verify(data: &[u8]) -> bool {
    ones_complement_sum(data) == 0xffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // RFC 1071 §3 example: 00 01 f2 03 f4 f5 f6 f7 → sum 0xddf2.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data), 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length() {
        // Trailing byte is padded with zero (treated as high byte).
        assert_eq!(ones_complement_sum(&[0xab]), 0xab00);
        assert_eq!(ones_complement_sum(&[0x12, 0x34, 0x56]), 0x1234 + 0x5600);
    }

    #[test]
    fn empty_is_zero_sum() {
        assert_eq!(ones_complement_sum(&[]), 0);
        assert_eq!(internet_checksum(&[]), 0xffff);
    }

    #[test]
    fn checksum_verifies_after_insertion() {
        let mut packet = vec![0x45, 0x00, 0x01, 0x02, 0x03, 0x04, 0x00, 0x00];
        // Checksum over packet with zeroed field (last two bytes).
        let csum = internet_checksum(&packet);
        packet[6..8].copy_from_slice(&csum.to_be_bytes());
        assert!(verify(&packet));
        packet[0] ^= 1; // corrupt
        assert!(!verify(&packet));
    }

    #[test]
    fn carry_folding() {
        // All-0xff data exercises repeated carry folds.
        let data = vec![0xffu8; 64];
        assert_eq!(ones_complement_sum(&data), 0xffff);
        assert_eq!(internet_checksum(&data), 0);
    }
}
