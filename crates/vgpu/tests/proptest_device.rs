//! Property tests for the simulated GPU: allocator invariants under random
//! operation sequences, fatbin codec round-trips, module container fuzzing.

use proptest::prelude::*;
use vgpu::memory::{MemoryManager, ALLOC_ALIGN};
use vgpu::module::{Cubin, CubinBuilder};
use vgpu::{fatbin, VgpuError};

/// Random alloc/free program against the allocator; checks the core
/// invariants after every step: alignment, no overlap between live blocks,
/// exact free-byte accounting.
#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    FreeIdx(usize),
    Write(usize, u8, u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..100_000).prop_map(Op::Alloc),
        any::<usize>().prop_map(Op::FreeIdx),
        (any::<usize>(), any::<u8>(), 1u16..512).prop_map(|(i, v, n)| Op::Write(i, v, n)),
    ]
}

proptest! {
    #[test]
    fn allocator_invariants_hold_under_random_programs(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let total = 16u64 << 20;
        let mut mm = MemoryManager::new(total);
        let mut live: Vec<(u64, u64)> = Vec::new(); // (ptr, rounded size)

        for op in ops {
            match op {
                Op::Alloc(size) => {
                    if let Ok(ptr) = mm.alloc(size) {
                        prop_assert_eq!(ptr % ALLOC_ALIGN, 0);
                        let rounded = size.max(1).div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
                        // No overlap with any live block.
                        for &(p, s) in &live {
                            prop_assert!(
                                ptr + rounded <= p || p + s <= ptr,
                                "overlap: new {ptr:#x}+{rounded} with {p:#x}+{s}"
                            );
                        }
                        live.push((ptr, rounded));
                    }
                }
                Op::FreeIdx(i) => {
                    if !live.is_empty() {
                        let (ptr, _) = live.swap_remove(i % live.len());
                        mm.free(ptr).unwrap();
                        // Double free must fail.
                        prop_assert_eq!(mm.free(ptr), Err(VgpuError::InvalidFree(ptr)));
                    }
                }
                Op::Write(i, v, n) => {
                    if !live.is_empty() {
                        let (ptr, size) = live[i % live.len()];
                        let n = (n as u64).min(size);
                        mm.write(ptr, &vec![v; n as usize]).unwrap();
                        prop_assert_eq!(mm.read(ptr, n).unwrap(), &vec![v; n as usize][..]);
                    }
                }
            }
            // Accounting: free + live == total.
            let live_bytes: u64 = live.iter().map(|&(_, s)| s).sum();
            prop_assert_eq!(mm.free_bytes() + live_bytes, total);
        }
    }

    #[test]
    fn fatbin_roundtrip_arbitrary_data(
        data in proptest::collection::vec(any::<u8>(), 0..20_000),
    ) {
        let c = fatbin::compress(&data);
        prop_assert_eq!(fatbin::decompress(&c).unwrap(), data);
    }

    #[test]
    fn fatbin_roundtrip_compressible_data(
        word in proptest::collection::vec(any::<u8>(), 1..32),
        repeats in 1usize..2_000,
    ) {
        let data: Vec<u8> = word.iter().cycle().take(word.len() * repeats).copied().collect();
        let c = fatbin::compress(&data);
        prop_assert_eq!(fatbin::decompress(&c).unwrap(), data);
    }

    #[test]
    fn fatbin_decompress_never_panics_on_garbage(
        data in proptest::collection::vec(any::<u8>(), 0..4_096),
    ) {
        let _ = fatbin::decompress(&data);
    }

    #[test]
    fn cubin_parse_never_panics_on_garbage(
        mut data in proptest::collection::vec(any::<u8>(), 0..4_096),
    ) {
        let _ = Cubin::parse(&data);
        // Also with a valid magic prepended.
        let mut with_magic = b"VCUB".to_vec();
        with_magic.append(&mut data);
        let _ = Cubin::parse(&with_magic);
    }

    #[test]
    fn cubin_roundtrip_arbitrary_metadata(
        kernels in proptest::collection::vec(
            ("[a-zA-Z][a-zA-Z0-9_]{0,24}", proptest::collection::vec(1u32..64, 0..8)),
            0..6),
        code in proptest::collection::vec(any::<u8>(), 0..2_000),
        compressed: bool,
    ) {
        let mut b = CubinBuilder::new().code(&code);
        for (name, params) in &kernels {
            b = b.kernel(name, params);
        }
        let image = b.build(compressed);
        let cubin = Cubin::parse(&image).unwrap();
        prop_assert_eq!(cubin.kernels.len(), kernels.len());
        for ((name, params), meta) in kernels.iter().zip(&cubin.kernels) {
            prop_assert_eq!(&meta.name, name);
            prop_assert_eq!(&meta.param_sizes, params);
        }
        prop_assert_eq!(cubin.code, code);
    }
}
