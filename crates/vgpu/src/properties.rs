//! Device property tables for the GPUs in the paper's evaluation node
//! ("one NVIDIA A100 GPU, two T4 GPUs, and one P40 GPU").

/// Static properties of a simulated GPU, the subset `cudaGetDeviceProperties`
/// exposes that the proxy applications and the timing model consult.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProperties {
    /// Marketing name.
    pub name: String,
    /// Total device memory in bytes.
    pub total_global_mem: u64,
    /// Number of streaming multiprocessors.
    pub multi_processor_count: i32,
    /// Core clock in kHz.
    pub clock_rate_khz: i32,
    /// Compute capability major.
    pub major: i32,
    /// Compute capability minor.
    pub minor: i32,
    /// Warp size (32 on all NVIDIA parts).
    pub warp_size: i32,
    /// Max threads per block.
    pub max_threads_per_block: i32,
    /// Peak memory bandwidth in bytes/second (drives the timing model).
    pub memory_bandwidth_bps: u64,
    /// Peak fp32 throughput in FLOP/s.
    pub fp32_flops: u64,
    /// Peak fp64 throughput in FLOP/s.
    pub fp64_flops: u64,
    /// Fixed kernel-launch overhead on-device, nanoseconds.
    pub launch_overhead_ns: u64,
    /// PCIe copy bandwidth (host↔device through the server), bytes/second.
    pub pcie_bandwidth_bps: u64,
}

impl DeviceProperties {
    /// NVIDIA A100-PCIE-40GB (Ampere, the GPU the evaluation uses).
    pub fn a100() -> Self {
        Self {
            name: "NVIDIA A100-PCIE-40GB".into(),
            total_global_mem: 40 << 30,
            multi_processor_count: 108,
            clock_rate_khz: 1_410_000,
            major: 8,
            minor: 0,
            warp_size: 32,
            max_threads_per_block: 1024,
            memory_bandwidth_bps: 1_555_000_000_000,
            fp32_flops: 19_500_000_000_000,
            fp64_flops: 9_700_000_000_000,
            launch_overhead_ns: 3_500,
            pcie_bandwidth_bps: 25_000_000_000,
        }
    }

    /// NVIDIA T4 (Turing).
    pub fn t4() -> Self {
        Self {
            name: "NVIDIA T4".into(),
            total_global_mem: 16 << 30,
            multi_processor_count: 40,
            clock_rate_khz: 1_590_000,
            major: 7,
            minor: 5,
            warp_size: 32,
            max_threads_per_block: 1024,
            memory_bandwidth_bps: 320_000_000_000,
            fp32_flops: 8_100_000_000_000,
            fp64_flops: 254_000_000_000,
            launch_overhead_ns: 4_000,
            pcie_bandwidth_bps: 12_000_000_000,
        }
    }

    /// NVIDIA Tesla P40 (Pascal).
    pub fn p40() -> Self {
        Self {
            name: "NVIDIA Tesla P40".into(),
            total_global_mem: 24 << 30,
            multi_processor_count: 30,
            clock_rate_khz: 1_531_000,
            major: 6,
            minor: 1,
            warp_size: 32,
            max_threads_per_block: 1024,
            memory_bandwidth_bps: 346_000_000_000,
            fp32_flops: 11_800_000_000_000,
            fp64_flops: 367_000_000_000,
            launch_overhead_ns: 4_500,
            pcie_bandwidth_bps: 12_000_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_shape() {
        let p = DeviceProperties::a100();
        assert_eq!(p.major, 8);
        assert_eq!(p.multi_processor_count, 108);
        assert_eq!(p.total_global_mem, 40 << 30);
        assert!(p.fp32_flops > p.fp64_flops);
    }

    #[test]
    fn generations_ordered_by_capability() {
        let (a, t, p) = (
            DeviceProperties::a100(),
            DeviceProperties::t4(),
            DeviceProperties::p40(),
        );
        assert!(a.major > t.major && t.major > p.major);
        assert!(a.memory_bandwidth_bps > t.memory_bandwidth_bps);
    }
}
