//! Cubin-like module container.
//!
//! The paper extends Cricket to load kernels from `cubin` files via the
//! `cuModule` API: the client reads a compiled kernel image and ships it to
//! the server, which extracts metadata — "kernel names, kernel parameter
//! information and global variables" — decompressing the image when the
//! compiler compressed it (§3.3). This module defines the reproduction's
//! container with exactly those ingredients.
//!
//! Layout (little-endian):
//!
//! ```text
//! "VCUB" | version u32 | flags u32 | body...
//! body (LZSS-compressed when flags&1):
//!   kernel_count u32
//!     { name_len u32, name bytes, param_count u32, param_sizes u32... } ...
//!   global_count u32
//!     { name_len u32, name bytes, size u64 } ...
//!   code_len u32, code bytes
//! ```

use crate::error::{VgpuError, VgpuResult};
use crate::fatbin;

/// Magic prefix of a module image.
pub const MAGIC: &[u8; 4] = b"VCUB";
/// Container version this code writes and accepts.
pub const VERSION: u32 = 1;
/// Flag bit: body is LZSS-compressed.
pub const FLAG_COMPRESSED: u32 = 1;

/// Metadata of one kernel exported by a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelMeta {
    /// Kernel symbol name (what `cuModuleGetFunction` looks up).
    pub name: String,
    /// Size in bytes of each parameter, in order. Pointers are 8 bytes.
    pub param_sizes: Vec<u32>,
}

impl KernelMeta {
    /// Total parameter-buffer size, each parameter 8-byte aligned (the ABI
    /// the launch marshalling uses).
    pub fn param_bytes(&self) -> usize {
        self.param_sizes.len() * 8
    }
}

/// Metadata of one module-scope global variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalMeta {
    /// Symbol name.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
}

/// A parsed module image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cubin {
    /// Exported kernels.
    pub kernels: Vec<KernelMeta>,
    /// Module globals.
    pub globals: Vec<GlobalMeta>,
    /// Device code blob (opaque to the loader; kernels resolve to builtin
    /// implementations by name).
    pub code: Vec<u8>,
}

impl Cubin {
    /// Parse (and decompress, if flagged) a module image.
    pub fn parse(image: &[u8]) -> VgpuResult<Self> {
        if image.len() < 12 || &image[0..4] != MAGIC {
            return Err(VgpuError::BadModule("missing VCUB magic".into()));
        }
        let version = u32::from_le_bytes(image[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(VgpuError::BadModule(format!(
                "unsupported container version {version}"
            )));
        }
        let flags = u32::from_le_bytes(image[8..12].try_into().unwrap());
        let body_raw = &image[12..];
        let body;
        let body = if flags & FLAG_COMPRESSED != 0 {
            body = fatbin::decompress(body_raw)?;
            &body[..]
        } else {
            body_raw
        };
        let mut r = Reader { buf: body, pos: 0 };

        let kernel_count = r.u32()?;
        if kernel_count > 4096 {
            return Err(VgpuError::BadModule(format!(
                "implausible kernel count {kernel_count}"
            )));
        }
        let mut kernels = Vec::with_capacity(kernel_count as usize);
        for _ in 0..kernel_count {
            let name = r.string()?;
            let param_count = r.u32()?;
            if param_count > 256 {
                return Err(VgpuError::BadModule(format!(
                    "kernel `{name}` has implausible parameter count {param_count}"
                )));
            }
            let mut param_sizes = Vec::with_capacity(param_count as usize);
            for _ in 0..param_count {
                param_sizes.push(r.u32()?);
            }
            kernels.push(KernelMeta { name, param_sizes });
        }

        let global_count = r.u32()?;
        if global_count > 4096 {
            return Err(VgpuError::BadModule("implausible global count".into()));
        }
        let mut globals = Vec::with_capacity(global_count as usize);
        for _ in 0..global_count {
            let name = r.string()?;
            let size = r.u64()?;
            globals.push(GlobalMeta { name, size });
        }

        let code_len = r.u32()? as usize;
        let code = r.bytes(code_len)?.to_vec();
        if r.pos != body.len() {
            return Err(VgpuError::BadModule("trailing bytes in module body".into()));
        }
        Ok(Self {
            kernels,
            globals,
            code,
        })
    }

    /// Find a kernel's metadata by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelMeta> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> VgpuResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(VgpuError::BadModule("truncated module body".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u32(&mut self) -> VgpuResult<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> VgpuResult<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn string(&mut self) -> VgpuResult<String> {
        let len = self.u32()? as usize;
        if len > 4096 {
            return Err(VgpuError::BadModule("implausible name length".into()));
        }
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| VgpuError::BadModule("non-UTF-8 symbol name".into()))
    }
}

/// Builder for module images (what `nvcc` would produce).
#[derive(Debug, Default)]
pub struct CubinBuilder {
    kernels: Vec<KernelMeta>,
    globals: Vec<GlobalMeta>,
    code: Vec<u8>,
}

impl CubinBuilder {
    /// Start an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Export a kernel with the given parameter sizes.
    pub fn kernel(mut self, name: &str, param_sizes: &[u32]) -> Self {
        self.kernels.push(KernelMeta {
            name: name.into(),
            param_sizes: param_sizes.to_vec(),
        });
        self
    }

    /// Declare a module global.
    pub fn global(mut self, name: &str, size: u64) -> Self {
        self.globals.push(GlobalMeta {
            name: name.into(),
            size,
        });
        self
    }

    /// Attach a device code blob.
    pub fn code(mut self, code: &[u8]) -> Self {
        self.code = code.to_vec();
        self
    }

    /// Serialize, optionally compressing the body.
    pub fn build(self, compressed: bool) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&(self.kernels.len() as u32).to_le_bytes());
        for k in &self.kernels {
            body.extend_from_slice(&(k.name.len() as u32).to_le_bytes());
            body.extend_from_slice(k.name.as_bytes());
            body.extend_from_slice(&(k.param_sizes.len() as u32).to_le_bytes());
            for &s in &k.param_sizes {
                body.extend_from_slice(&s.to_le_bytes());
            }
        }
        body.extend_from_slice(&(self.globals.len() as u32).to_le_bytes());
        for g in &self.globals {
            body.extend_from_slice(&(g.name.len() as u32).to_le_bytes());
            body.extend_from_slice(g.name.as_bytes());
            body.extend_from_slice(&g.size.to_le_bytes());
        }
        body.extend_from_slice(&(self.code.len() as u32).to_le_bytes());
        body.extend_from_slice(&self.code);

        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        if compressed {
            out.extend_from_slice(&FLAG_COMPRESSED.to_le_bytes());
            out.extend_from_slice(&fatbin::compress(&body));
        } else {
            out.extend_from_slice(&0u32.to_le_bytes());
            out.extend_from_slice(&body);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CubinBuilder {
        CubinBuilder::new()
            .kernel("matrixMul", &[8, 8, 8, 4, 4])
            .kernel("histogram64", &[8, 8, 4])
            .global("g_seed", 8)
            .code(b"fake SASS fake SASS fake SASS")
    }

    #[test]
    fn roundtrip_uncompressed() {
        let image = sample().build(false);
        let cubin = Cubin::parse(&image).unwrap();
        assert_eq!(cubin.kernels.len(), 2);
        assert_eq!(
            cubin.kernel("matrixMul").unwrap().param_sizes,
            [8, 8, 8, 4, 4]
        );
        assert_eq!(cubin.kernel("matrixMul").unwrap().param_bytes(), 40);
        assert_eq!(cubin.globals[0].name, "g_seed");
        assert_eq!(cubin.code, b"fake SASS fake SASS fake SASS");
        assert!(cubin.kernel("nope").is_none());
    }

    #[test]
    fn roundtrip_compressed() {
        let plain = sample().build(false);
        let compressed = sample().build(true);
        assert_ne!(plain, compressed);
        assert_eq!(
            Cubin::parse(&plain).unwrap(),
            Cubin::parse(&compressed).unwrap()
        );
    }

    #[test]
    fn compression_actually_shrinks_large_modules() {
        let code = b"repetitive device code block ".repeat(200);
        let plain = CubinBuilder::new().code(&code).build(false);
        let compressed = CubinBuilder::new().code(&code).build(true);
        assert!(compressed.len() < plain.len() / 2);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            Cubin::parse(b"ELF\x7f___________"),
            Err(VgpuError::BadModule(_))
        ));
        assert!(Cubin::parse(b"VC").is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut image = sample().build(false);
        image[4] = 9;
        assert!(Cubin::parse(&image).is_err());
    }

    #[test]
    fn truncations_rejected_everywhere() {
        let image = sample().build(false);
        for cut in (12..image.len()).step_by(7) {
            assert!(Cubin::parse(&image[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn corrupt_compressed_body_rejected() {
        let mut image = sample().build(true);
        let n = image.len();
        image.truncate(n - 3);
        assert!(Cubin::parse(&image).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut image = sample().build(false);
        image.extend_from_slice(b"junk");
        assert!(Cubin::parse(&image).is_err());
    }
}
