//! Analytic kernel-duration model.
//!
//! Kernel execution time is estimated with a roofline: the longer of the
//! compute time (FLOPs at a fraction of peak) and the memory time (bytes at
//! a fraction of peak bandwidth), plus a fixed on-device launch overhead.
//! The paper's phenomena do not depend on exact kernel times — its proxy
//! apps are I/O-bound with "many kernels with small execution times" — but
//! plausible durations make the cuSolver experiment (where device time does
//! matter) come out at the right scale.

use crate::properties::DeviceProperties;

/// Achievable fraction of peak FLOP/s for a tuned kernel.
pub const FLOPS_EFFICIENCY: f64 = 0.60;
/// Achievable fraction of peak memory bandwidth.
pub const BW_EFFICIENCY: f64 = 0.80;

/// Floating-point precision of a kernel's arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// fp32 arithmetic.
    F32,
    /// fp64 arithmetic.
    F64,
}

/// Workload descriptor of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes moved to/from device memory.
    pub bytes: f64,
    /// Arithmetic precision.
    pub precision: Precision,
}

impl Workload {
    /// A pure memory-bound workload.
    pub fn memory(bytes: f64) -> Self {
        Self {
            flops: 0.0,
            bytes,
            precision: Precision::F32,
        }
    }
}

/// Estimated duration of `work` on `props`, in nanoseconds.
pub fn kernel_duration_ns(props: &DeviceProperties, work: &Workload) -> u64 {
    let peak_flops = match work.precision {
        Precision::F32 => props.fp32_flops as f64,
        Precision::F64 => props.fp64_flops as f64,
    } * FLOPS_EFFICIENCY;
    let peak_bw = props.memory_bandwidth_bps as f64 * BW_EFFICIENCY;
    let compute_ns = work.flops / peak_flops * 1e9;
    let memory_ns = work.bytes / peak_bw * 1e9;
    props.launch_overhead_ns + compute_ns.max(memory_ns) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_kernel_is_pure_overhead() {
        let p = DeviceProperties::a100();
        let d = kernel_duration_ns(
            &p,
            &Workload {
                flops: 0.0,
                bytes: 0.0,
                precision: Precision::F32,
            },
        );
        assert_eq!(d, p.launch_overhead_ns);
    }

    #[test]
    fn compute_bound_scales_with_flops() {
        let p = DeviceProperties::a100();
        let w1 = Workload {
            flops: 1e9,
            bytes: 0.0,
            precision: Precision::F32,
        };
        let w2 = Workload { flops: 2e9, ..w1 };
        let d1 = kernel_duration_ns(&p, &w1) - p.launch_overhead_ns;
        let d2 = kernel_duration_ns(&p, &w2) - p.launch_overhead_ns;
        assert!((d2 as f64 / d1 as f64 - 2.0).abs() < 0.05);
    }

    #[test]
    fn fp64_slower_than_fp32_on_a100() {
        let p = DeviceProperties::a100();
        let f32w = Workload {
            flops: 1e12,
            bytes: 0.0,
            precision: Precision::F32,
        };
        let f64w = Workload {
            precision: Precision::F64,
            ..f32w
        };
        assert!(kernel_duration_ns(&p, &f64w) > kernel_duration_ns(&p, &f32w));
    }

    #[test]
    fn roofline_picks_the_bottleneck() {
        let p = DeviceProperties::a100();
        // Memory-bound: 1 GiB moved, trivial flops.
        let mem = Workload::memory(1e9);
        let d = kernel_duration_ns(&p, &mem) - p.launch_overhead_ns;
        let expected = 1e9 / (p.memory_bandwidth_bps as f64 * BW_EFFICIENCY) * 1e9;
        assert!((d as f64 - expected).abs() / expected < 0.05);
    }

    #[test]
    fn matrix_mul_sample_scale() {
        // The CUDA-sample matrixMul config (320x320 by 320x640 fp32):
        // 2*320*320*640 = 131 MFLOP → ~11 µs on an A100 at 60% of peak.
        let p = DeviceProperties::a100();
        let w = Workload {
            flops: 2.0 * 320.0 * 320.0 * 640.0,
            bytes: (320.0 * 320.0 + 320.0 * 640.0 + 320.0 * 640.0) * 4.0,
            precision: Precision::F32,
        };
        let d = kernel_duration_ns(&p, &w);
        assert!((8_000..25_000).contains(&d), "duration {d} ns");
    }
}
