//! Events with CUDA ordering semantics on the virtual clock.
//!
//! Streams themselves are per-stream command queues ([`crate::queue`]): a
//! FIFO of device work where each command starts after all previously
//! enqueued work on that stream has finished. An event records the stream's
//! completion frontier at record time; `cudaEventElapsedTime` measures
//! between two recorded events in device time — which is how the proxy
//! applications time their kernels, exactly like the CUDA samples.

/// State of one event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventState {
    /// Device timestamp captured by the last `cudaEventRecord`, if any.
    pub recorded_at_ns: Option<u64>,
}

impl EventState {
    /// Record against a stream frontier.
    pub fn record(&mut self, stream_completes_at_ns: u64) {
        self.recorded_at_ns = Some(stream_completes_at_ns);
    }

    /// Elapsed milliseconds between two recorded events (CUDA returns f32
    /// milliseconds). `None` if either event was never recorded.
    pub fn elapsed_ms(start: &EventState, stop: &EventState) -> Option<f32> {
        match (start.recorded_at_ns, stop.recorded_at_ns) {
            (Some(a), Some(b)) => Some((b.saturating_sub(a)) as f32 / 1e6),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{CommandKind, CommandQueue};

    #[test]
    fn events_measure_stream_time() {
        let mut q = CommandQueue::default();
        let mut start = EventState::default();
        let mut stop = EventState::default();
        start.record(q.frontier_ns());
        let k = CommandKind::Kernel { func: 1 };
        q.enqueue(0, 1, k, 3_000_000); // 3 ms of kernels
        q.enqueue(0, 2, k, 1_500_000);
        stop.record(q.frontier_ns());
        let ms = EventState::elapsed_ms(&start, &stop).unwrap();
        assert!((ms - 4.5).abs() < 1e-6);
    }

    #[test]
    fn unrecorded_events_yield_none() {
        let e = EventState::default();
        let mut r = EventState::default();
        r.record(5);
        assert!(EventState::elapsed_ms(&e, &r).is_none());
        assert!(EventState::elapsed_ms(&r, &e).is_none());
    }
}
