//! Streams and events with CUDA ordering semantics on the virtual clock.
//!
//! A stream is a FIFO of device work; work enqueued on a stream starts after
//! all previously enqueued work on that stream has finished. An event
//! records the stream's completion frontier at record time;
//! `cudaEventElapsedTime` measures between two recorded events in device
//! time — which is how the proxy applications time their kernels, exactly
//! like the CUDA samples.

/// State of one stream: the virtual time at which all enqueued work is done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamState {
    /// Completion frontier (ns on the shared clock).
    pub completes_at_ns: u64,
    /// Number of operations enqueued (telemetry).
    pub ops_enqueued: u64,
}

impl StreamState {
    /// Enqueue `duration_ns` of device work at current time `now_ns`;
    /// returns the new completion time.
    pub fn enqueue(&mut self, now_ns: u64, duration_ns: u64) -> u64 {
        let start = self.completes_at_ns.max(now_ns);
        self.completes_at_ns = start + duration_ns;
        self.ops_enqueued += 1;
        self.completes_at_ns
    }

    /// Nanoseconds a host thread at `now_ns` must wait for completion.
    pub fn wait_ns(&self, now_ns: u64) -> u64 {
        self.completes_at_ns.saturating_sub(now_ns)
    }
}

/// State of one event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventState {
    /// Device timestamp captured by the last `cudaEventRecord`, if any.
    pub recorded_at_ns: Option<u64>,
}

impl EventState {
    /// Record against a stream frontier.
    pub fn record(&mut self, stream_completes_at_ns: u64) {
        self.recorded_at_ns = Some(stream_completes_at_ns);
    }

    /// Elapsed milliseconds between two recorded events (CUDA returns f32
    /// milliseconds). `None` if either event was never recorded.
    pub fn elapsed_ms(start: &EventState, stop: &EventState) -> Option<f32> {
        match (start.recorded_at_ns, stop.recorded_at_ns) {
            (Some(a), Some(b)) => Some((b.saturating_sub(a)) as f32 / 1e6),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_serializes_work() {
        let mut s = StreamState::default();
        assert_eq!(s.enqueue(100, 50), 150);
        // Second op enqueued while first still running: starts at 150.
        assert_eq!(s.enqueue(120, 30), 180);
        // Op enqueued after an idle gap starts at now.
        assert_eq!(s.enqueue(500, 10), 510);
        assert_eq!(s.ops_enqueued, 3);
    }

    #[test]
    fn wait_time() {
        let mut s = StreamState::default();
        s.enqueue(0, 1000);
        assert_eq!(s.wait_ns(200), 800);
        assert_eq!(s.wait_ns(1000), 0);
        assert_eq!(s.wait_ns(2000), 0);
    }

    #[test]
    fn events_measure_stream_time() {
        let mut s = StreamState::default();
        let mut start = EventState::default();
        let mut stop = EventState::default();
        start.record(s.completes_at_ns);
        s.enqueue(0, 3_000_000); // 3 ms of kernels
        s.enqueue(0, 1_500_000);
        stop.record(s.completes_at_ns);
        let ms = EventState::elapsed_ms(&start, &stop).unwrap();
        assert!((ms - 4.5).abs() < 1e-6);
    }

    #[test]
    fn unrecorded_events_yield_none() {
        let e = EventState::default();
        let mut r = EventState::default();
        r.record(5);
        assert!(EventState::elapsed_ms(&e, &r).is_none());
        assert!(EventState::elapsed_ms(&r, &e).is_none());
    }
}
