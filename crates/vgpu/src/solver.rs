//! cuSolverDn-like dense LU factorization and solve.
//!
//! Implements the three calls the `cuSolverDn_LinearSolver` proxy app uses:
//! `DnDgetrf_bufferSize`, `DnDgetrf` (LU with partial pivoting, LAPACK
//! conventions: column-major, in-place, 1-based `ipiv`, `info`), and
//! `DnDgetrs` (triangular solves). Like the real library, factorization
//! cost dominates (2/3·n³ fp64 FLOPs).
//!
//! Because the paper's benchmark solves the *same* system 1000 times, the
//! solver memoizes factorizations by content hash of the input matrix:
//! repeated identical calls replay the stored LU and pivots (the observable
//! memory state is identical to recomputation) while still charging full
//! device time.

use crate::device::Device;
use crate::error::{VgpuError, VgpuResult};
use crate::memory::{bytes_to_f64, f64_to_bytes};
use crate::timemodel::{kernel_duration_ns, Precision, Workload};
use std::collections::HashMap;

/// A cuSolverDn context (one per `cusolverDnCreate`).
#[derive(Default)]
pub struct SolverDn {
    /// content-hash → factorization result.
    memo: HashMap<u64, GetrfMemo>,
    /// Memoization hits (telemetry).
    pub memo_hits: u64,
    /// Factorizations computed.
    pub factorizations: u64,
}

struct GetrfMemo {
    lu: Vec<u8>,
    ipiv: Vec<i32>,
    info: i32,
    duration_ns: u64,
}

/// Device↔host round trip per pivot column inside `dgetrf` (PCIe latency +
/// stream synchronization), the latency term that dominates mid-sized LU.
pub const PIVOT_SYNC_NS: u64 = 25_000;

/// 8-byte-stride multiply-xor hash (fast enough for multi-MiB inputs).
fn hash_bytes(seed: u64, data: &[u8]) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().unwrap());
        h = (h ^ w).wrapping_mul(0x1000_0000_01b3).rotate_left(23);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = [0u8; 8];
        w[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(w)).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl SolverDn {
    /// Create a context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Workspace size in f64 elements for an m×n factorization (mirrors the
    /// real API's bufferSize query; our implementation needs n scratch).
    pub fn dgetrf_buffer_size(&self, m: i32, n: i32) -> VgpuResult<i32> {
        if m <= 0 || n <= 0 {
            return Err(VgpuError::InvalidValue("nonpositive dimension".into()));
        }
        Ok(n.max(m))
    }

    /// LU factorization with partial pivoting, in place at `a_ptr`
    /// (column-major m×n, leading dimension `lda`). Writes `min(m,n)`
    /// 1-based pivot indices to `ipiv_ptr` (i32) and the LAPACK `info`
    /// to `info_ptr`. Returns device time.
    #[allow(clippy::too_many_arguments)]
    pub fn dgetrf(
        &mut self,
        dev: &mut Device,
        m: i32,
        n: i32,
        a_ptr: u64,
        lda: i32,
        _workspace_ptr: u64,
        ipiv_ptr: u64,
        info_ptr: u64,
    ) -> VgpuResult<u64> {
        if m <= 0 || n <= 0 || lda < m {
            return Err(VgpuError::InvalidValue(format!(
                "dgetrf(m={m}, n={n}, lda={lda})"
            )));
        }
        let (m, n, lda) = (m as usize, n as usize, lda as usize);
        let bytes = (lda * n * 8) as u64;
        let a_in = dev.mem.read(a_ptr, bytes)?;

        let mut key = hash_bytes(0x9e37_79b9, a_in);
        key = hash_bytes(key, &(m as u64).to_le_bytes());
        key = hash_bytes(key, &(n as u64).to_le_bytes());
        key = hash_bytes(key, &(lda as u64).to_le_bytes());

        let (lu, ipiv, info, duration) = if let Some(memo) = self.memo.get(&key) {
            self.memo_hits += 1;
            (
                memo.lu.clone(),
                memo.ipiv.clone(),
                memo.info,
                memo.duration_ns,
            )
        } else {
            self.factorizations += 1;
            let mut a = bytes_to_f64(a_in);
            let (ipiv, info) = lu_factor(&mut a, m, n, lda);
            let lu = f64_to_bytes(&a);
            let work = Workload {
                flops: 2.0 / 3.0 * (m.min(n) as f64).powi(3) + (m as f64 * n as f64), // pivot search passes
                bytes: 3.0 * (m * n * 8) as f64,
                precision: Precision::F64,
            };
            // Partial pivoting reads each column's pivot back to the host
            // (a device→host sync per column) — the reason cuSolver LU is
            // latency-bound on mid-sized matrices. ~25 µs per column on
            // PCIe: for n=900 this is ~22.5 ms and dominates the roofline
            // term, matching the paper's observation that the Fig. 5b app
            // has the *smallest* relative network overhead.
            let pivot_sync = m.min(n) as u64 * PIVOT_SYNC_NS;
            let duration = kernel_duration_ns(dev.properties(), &work) + pivot_sync;
            self.memo.insert(
                key,
                GetrfMemo {
                    lu: lu.clone(),
                    ipiv: ipiv.clone(),
                    info,
                    duration_ns: duration,
                },
            );
            (lu, ipiv, info, duration)
        };

        dev.mem.write(a_ptr, &lu)?;
        let ipiv_bytes: Vec<u8> = ipiv.iter().flat_map(|v| v.to_le_bytes()).collect();
        dev.mem.write(ipiv_ptr, &ipiv_bytes)?;
        dev.mem.write(info_ptr, &info.to_le_bytes())?;
        Ok(duration)
    }

    /// Solve op(A)·X = B using a factorization produced by [`Self::dgetrf`].
    /// `trans`: 0 = N, 1 = T. B is n×nrhs column-major at `b_ptr`,
    /// overwritten with X. Returns device time.
    #[allow(clippy::too_many_arguments)]
    pub fn dgetrs(
        &mut self,
        dev: &mut Device,
        trans: i32,
        n: i32,
        nrhs: i32,
        a_ptr: u64,
        lda: i32,
        ipiv_ptr: u64,
        b_ptr: u64,
        ldb: i32,
        info_ptr: u64,
    ) -> VgpuResult<u64> {
        if n <= 0 || nrhs <= 0 || lda < n || ldb < n {
            return Err(VgpuError::InvalidValue(format!(
                "dgetrs(n={n}, nrhs={nrhs}, lda={lda}, ldb={ldb})"
            )));
        }
        if trans != 0 && trans != 1 {
            return Err(VgpuError::InvalidValue(format!("dgetrs trans={trans}")));
        }
        let (n, nrhs, lda, ldb) = (n as usize, nrhs as usize, lda as usize, ldb as usize);
        let lu = bytes_to_f64(dev.mem.read(a_ptr, (lda * n * 8) as u64)?);
        let ipiv_raw = dev.mem.read(ipiv_ptr, (n * 4) as u64)?;
        let ipiv: Vec<i32> = ipiv_raw
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        for (k, &p) in ipiv.iter().enumerate() {
            if p < 1 || p as usize > n {
                return Err(VgpuError::InvalidValue(format!(
                    "ipiv[{k}] = {p} out of range 1..={n}"
                )));
            }
        }
        let mut b = bytes_to_f64(dev.mem.read(b_ptr, (ldb * nrhs * 8) as u64)?);

        if trans == 0 {
            lu_solve_notrans(&lu, &ipiv, &mut b, n, nrhs, lda, ldb);
        } else {
            lu_solve_trans(&lu, &ipiv, &mut b, n, nrhs, lda, ldb);
        }

        dev.mem.write(b_ptr, &f64_to_bytes(&b))?;
        dev.mem.write(info_ptr, &0i32.to_le_bytes())?;
        let work = Workload {
            flops: 2.0 * (n * n * nrhs) as f64,
            bytes: ((n * n + 2 * n * nrhs) * 8) as f64,
            precision: Precision::F64,
        };
        Ok(kernel_duration_ns(dev.properties(), &work))
    }
}

/// Right-looking LU with partial pivoting. Returns (1-based ipiv, info).
fn lu_factor(a: &mut [f64], m: usize, n: usize, lda: usize) -> (Vec<i32>, i32) {
    let mn = m.min(n);
    let mut ipiv = vec![0i32; mn];
    let mut info = 0i32;
    for k in 0..mn {
        // Pivot: largest magnitude in column k at/below the diagonal.
        let mut piv = k;
        let mut max = a[k * lda + k].abs();
        for i in k + 1..m {
            let v = a[k * lda + i].abs();
            if v > max {
                max = v;
                piv = i;
            }
        }
        ipiv[k] = (piv + 1) as i32;
        if max == 0.0 {
            if info == 0 {
                info = (k + 1) as i32;
            }
            continue;
        }
        if piv != k {
            for j in 0..n {
                a.swap(j * lda + k, j * lda + piv);
            }
        }
        let diag = a[k * lda + k];
        for i in k + 1..m {
            a[k * lda + i] /= diag;
        }
        for j in k + 1..n {
            let akj = a[j * lda + k];
            if akj != 0.0 {
                for i in k + 1..m {
                    a[j * lda + i] -= a[k * lda + i] * akj;
                }
            }
        }
    }
    (ipiv, info)
}

fn lu_solve_notrans(
    lu: &[f64],
    ipiv: &[i32],
    b: &mut [f64],
    n: usize,
    nrhs: usize,
    lda: usize,
    ldb: usize,
) {
    for col in 0..nrhs {
        let x = &mut b[col * ldb..col * ldb + n];
        // Apply row interchanges.
        for (k, &piv) in ipiv.iter().enumerate().take(n) {
            let p = (piv - 1) as usize;
            if p != k {
                x.swap(k, p);
            }
        }
        // Ly = Pb (unit lower).
        for k in 0..n {
            let xk = x[k];
            if xk != 0.0 {
                for i in k + 1..n {
                    x[i] -= lu[k * lda + i] * xk;
                }
            }
        }
        // Ux = y.
        for k in (0..n).rev() {
            x[k] /= lu[k * lda + k];
            let xk = x[k];
            if xk != 0.0 {
                for i in 0..k {
                    x[i] -= lu[k * lda + i] * xk;
                }
            }
        }
    }
}

fn lu_solve_trans(
    lu: &[f64],
    ipiv: &[i32],
    b: &mut [f64],
    n: usize,
    nrhs: usize,
    lda: usize,
    ldb: usize,
) {
    for col in 0..nrhs {
        let x = &mut b[col * ldb..col * ldb + n];
        // U^T y = b (lower-triangular forward pass over U^T).
        for k in 0..n {
            let mut acc = x[k];
            for i in 0..k {
                acc -= lu[k * lda + i] * x[i];
            }
            x[k] = acc / lu[k * lda + k];
        }
        // L^T z = y (unit upper pass): L^T(k,i) = L(i,k) = lu[k*lda + i].
        for k in (0..n).rev() {
            let mut acc = x[k];
            for i in k + 1..n {
                acc -= lu[k * lda + i] * x[i];
            }
            x[k] = acc;
        }
        // x = P^T z: undo interchanges in reverse.
        for k in (0..n).rev() {
            let p = (ipiv[k] - 1) as usize;
            if p != k {
                x.swap(k, p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::bytes_to_f64 as b2f64;

    /// Build a well-conditioned test system and return
    /// (device, a_ptr, b_ptr, ipiv_ptr, info_ptr, work_ptr, a, x_true).
    fn setup(n: usize) -> (Device, u64, u64, u64, u64, u64, Vec<f64>, Vec<f64>) {
        let mut dev = Device::a100();
        // Diagonally dominant matrix (column-major).
        let mut a = vec![0f64; n * n];
        for j in 0..n {
            for i in 0..n {
                a[j * n + i] = if i == j {
                    n as f64 + 1.0
                } else {
                    ((i * 7 + j * 3) % 5) as f64 * 0.25
                };
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - n as f64 / 2.0).collect();
        // b = A x.
        let mut b = vec![0f64; n];
        for j in 0..n {
            for i in 0..n {
                b[i] += a[j * n + i] * x_true[j];
            }
        }
        let (pa, _) = dev.malloc((n * n * 8) as u64).unwrap();
        let (pb, _) = dev.malloc((n * 8) as u64).unwrap();
        let (pipiv, _) = dev.malloc((n * 4) as u64).unwrap();
        let (pinfo, _) = dev.malloc(4).unwrap();
        let (pwork, _) = dev.malloc((n * 8) as u64).unwrap();
        dev.memcpy_htod(pa, &f64_to_bytes(&a)).unwrap();
        dev.memcpy_htod(pb, &f64_to_bytes(&b)).unwrap();
        (dev, pa, pb, pipiv, pinfo, pwork, a, x_true)
    }

    #[test]
    fn factor_and_solve_recovers_x() {
        let n = 24;
        let (mut dev, pa, pb, pipiv, pinfo, pwork, _a, x_true) = setup(n);
        let mut ctx = SolverDn::new();
        assert!(ctx.dgetrf_buffer_size(n as i32, n as i32).unwrap() >= n as i32);
        ctx.dgetrf(
            &mut dev, n as i32, n as i32, pa, n as i32, pwork, pipiv, pinfo,
        )
        .unwrap();
        let info = i32::from_le_bytes(dev.mem.read(pinfo, 4).unwrap().try_into().unwrap());
        assert_eq!(info, 0);
        ctx.dgetrs(
            &mut dev, 0, n as i32, 1, pa, n as i32, pipiv, pb, n as i32, pinfo,
        )
        .unwrap();
        let x = b2f64(dev.mem.read(pb, (n * 8) as u64).unwrap());
        for i in 0..n {
            assert!(
                (x[i] - x_true[i]).abs() < 1e-9 * (1.0 + x_true[i].abs()),
                "x[{i}] = {}, expected {}",
                x[i],
                x_true[i]
            );
        }
    }

    #[test]
    fn transposed_solve_recovers_x() {
        let n = 16;
        let (mut dev, pa, _pb, pipiv, pinfo, pwork, a, x_true) = setup(n);
        // b' = A^T x.
        let mut bt = vec![0f64; n];
        for j in 0..n {
            for i in 0..n {
                bt[j] += a[j * n + i] * x_true[i];
            }
        }
        let (pbt, _) = dev.malloc((n * 8) as u64).unwrap();
        dev.memcpy_htod(pbt, &f64_to_bytes(&bt)).unwrap();
        let mut ctx = SolverDn::new();
        ctx.dgetrf(
            &mut dev, n as i32, n as i32, pa, n as i32, pwork, pipiv, pinfo,
        )
        .unwrap();
        ctx.dgetrs(
            &mut dev, 1, n as i32, 1, pa, n as i32, pipiv, pbt, n as i32, pinfo,
        )
        .unwrap();
        let x = b2f64(dev.mem.read(pbt, (n * 8) as u64).unwrap());
        for i in 0..n {
            assert!(
                (x[i] - x_true[i]).abs() < 1e-8 * (1.0 + x_true[i].abs()),
                "x[{i}] = {}, expected {}",
                x[i],
                x_true[i]
            );
        }
    }

    #[test]
    fn memoization_replays_identical_factorizations() {
        let n = 12;
        let (mut dev, pa, _pb, pipiv, pinfo, pwork, a, _x) = setup(n);
        let mut ctx = SolverDn::new();
        ctx.dgetrf(
            &mut dev, n as i32, n as i32, pa, n as i32, pwork, pipiv, pinfo,
        )
        .unwrap();
        let lu1 = dev.mem.read(pa, (n * n * 8) as u64).unwrap().to_vec();
        // Re-upload the same A (as the benchmark does each iteration).
        dev.memcpy_htod(pa, &f64_to_bytes(&a)).unwrap();
        ctx.dgetrf(
            &mut dev, n as i32, n as i32, pa, n as i32, pwork, pipiv, pinfo,
        )
        .unwrap();
        let lu2 = dev.mem.read(pa, (n * n * 8) as u64).unwrap().to_vec();
        assert_eq!(lu1, lu2);
        assert_eq!(ctx.factorizations, 1);
        assert_eq!(ctx.memo_hits, 1);
    }

    #[test]
    fn singular_matrix_sets_info() {
        let mut dev = Device::a100();
        let n = 3usize;
        let a = vec![0f64; n * n]; // all-zero: singular at step 1
        let (pa, _) = dev.malloc(72).unwrap();
        let (pipiv, _) = dev.malloc(12).unwrap();
        let (pinfo, _) = dev.malloc(4).unwrap();
        let (pwork, _) = dev.malloc(24).unwrap();
        dev.memcpy_htod(pa, &f64_to_bytes(&a)).unwrap();
        let mut ctx = SolverDn::new();
        ctx.dgetrf(&mut dev, 3, 3, pa, 3, pwork, pipiv, pinfo)
            .unwrap();
        let info = i32::from_le_bytes(dev.mem.read(pinfo, 4).unwrap().try_into().unwrap());
        assert_eq!(info, 1);
    }

    #[test]
    fn invalid_arguments_rejected() {
        let mut dev = Device::a100();
        let mut ctx = SolverDn::new();
        assert!(ctx.dgetrf_buffer_size(0, 5).is_err());
        assert!(ctx
            .dgetrf(&mut dev, 4, 4, 0x1000, 2 /* lda < m */, 0, 0, 0)
            .is_err());
        assert!(ctx
            .dgetrs(
                &mut dev, 7, /* bad trans */
                4, 1, 0x1000, 4, 0x2000, 0x3000, 4, 0x4000
            )
            .is_err());
    }

    #[test]
    fn corrupt_ipiv_rejected() {
        let n = 4;
        let (mut dev, pa, pb, pipiv, pinfo, pwork, _a, _x) = setup(n);
        let mut ctx = SolverDn::new();
        ctx.dgetrf(
            &mut dev, n as i32, n as i32, pa, n as i32, pwork, pipiv, pinfo,
        )
        .unwrap();
        dev.memcpy_htod(pipiv, &99i32.to_le_bytes()).unwrap();
        assert!(ctx
            .dgetrs(&mut dev, 0, n as i32, 1, pa, n as i32, pipiv, pb, n as i32, pinfo)
            .is_err());
    }

    #[test]
    fn hash_discriminates() {
        assert_ne!(hash_bytes(0, b"aaaa"), hash_bytes(0, b"aaab"));
        assert_ne!(hash_bytes(0, b"12345678"), hash_bytes(0, b"123456789"));
        assert_eq!(hash_bytes(7, b"same"), hash_bytes(7, b"same"));
        assert_ne!(hash_bytes(7, b"same"), hash_bytes(8, b"same"));
    }
}
