//! cuFFT-like 1D complex FFT on device memory.
//!
//! The paper lists cuFFT among the CUDA libraries applications use through
//! Cricket (§3.3). This module provides the server-side implementation for
//! the `CUFFT_*` procedures: plan management and batched 1D complex-to-
//! complex transforms in fp32 (`C2C`) and fp64 (`Z2Z`), with cuFFT
//! conventions — interleaved complex layout, `FORWARD = -1` / `INVERSE = 1`,
//! and **no normalization** on the inverse transform.
//!
//! Adding this library required **no change to the client runtime**: the
//! procedures were added to `cricket.x`, the stubs regenerated themselves at
//! build time, and only the server gained an implementation — exactly the
//! workflow the paper describes in §3.5.

use crate::device::Device;
use crate::error::{VgpuError, VgpuResult};
use crate::memory::{bytes_to_f32, bytes_to_f64, f32_to_bytes, f64_to_bytes};
use crate::timemodel::{kernel_duration_ns, Precision, Workload};

/// cufftType value for complex-to-complex single precision.
pub const CUFFT_C2C: i32 = 0x29;
/// cufftType value for complex-to-complex double precision.
pub const CUFFT_Z2Z: i32 = 0x69;
/// Transform direction: forward.
pub const CUFFT_FORWARD: i32 = -1;
/// Transform direction: inverse (unnormalized, like cuFFT).
pub const CUFFT_INVERSE: i32 = 1;

/// A 1D FFT plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FftPlan {
    /// Transform length (must be a power of two in this implementation,
    /// like cuFFT's fast path).
    pub n: usize,
    /// Number of independent transforms per execution.
    pub batch: usize,
    /// `CUFFT_C2C` or `CUFFT_Z2Z`.
    pub kind: i32,
}

impl FftPlan {
    /// Validate and create a plan (cufftPlan1d).
    pub fn plan_1d(n: i32, kind: i32, batch: i32) -> VgpuResult<Self> {
        if n <= 0 || batch <= 0 {
            return Err(VgpuError::InvalidValue(format!(
                "cufftPlan1d(n={n}, batch={batch})"
            )));
        }
        let n = n as usize;
        if !n.is_power_of_two() {
            return Err(VgpuError::InvalidValue(format!(
                "transform length {n} is not a power of two"
            )));
        }
        if kind != CUFFT_C2C && kind != CUFFT_Z2Z {
            return Err(VgpuError::InvalidValue(format!("cufftType {kind:#x}")));
        }
        Ok(Self {
            n,
            batch: batch as usize,
            kind,
        })
    }

    /// Bytes per batch element (interleaved complex).
    pub fn elem_bytes(&self) -> usize {
        match self.kind {
            CUFFT_C2C => 8,
            _ => 16,
        }
    }

    /// Total buffer size in bytes.
    pub fn buffer_bytes(&self) -> u64 {
        (self.n * self.batch * self.elem_bytes()) as u64
    }
}

/// In-place iterative radix-2 Cooley-Tukey over interleaved complex data.
fn fft_radix2(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cur_r, mut cur_i) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr0, vi0) = (re[i + k + len / 2], im[i + k + len / 2]);
                let vr = vr0 * cur_r - vi0 * cur_i;
                let vi = vr0 * cur_i + vi0 * cur_r;
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let next_r = cur_r * wr - cur_i * wi;
                cur_i = cur_r * wi + cur_i * wr;
                cur_r = next_r;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Execute a transform: `idata` → `odata` (may alias), per cuFFT exec
/// semantics. Returns device time.
pub fn exec(
    dev: &mut Device,
    plan: &FftPlan,
    idata: u64,
    odata: u64,
    direction: i32,
) -> VgpuResult<u64> {
    if direction != CUFFT_FORWARD && direction != CUFFT_INVERSE {
        return Err(VgpuError::InvalidValue(format!(
            "cufft direction {direction}"
        )));
    }
    let inverse = direction == CUFFT_INVERSE;
    let bytes = plan.buffer_bytes();
    let input = dev.mem.read(idata, bytes)?.to_vec();

    let output = match plan.kind {
        CUFFT_C2C => {
            let vals = bytes_to_f32(&input);
            let mut out = Vec::with_capacity(vals.len());
            for b in 0..plan.batch {
                let base = b * plan.n * 2;
                let mut re: Vec<f64> = (0..plan.n).map(|i| vals[base + 2 * i] as f64).collect();
                let mut im: Vec<f64> = (0..plan.n).map(|i| vals[base + 2 * i + 1] as f64).collect();
                fft_radix2(&mut re, &mut im, inverse);
                for i in 0..plan.n {
                    out.push(re[i] as f32);
                    out.push(im[i] as f32);
                }
            }
            f32_to_bytes(&out)
        }
        _ => {
            let vals = bytes_to_f64(&input);
            let mut out = Vec::with_capacity(vals.len());
            for b in 0..plan.batch {
                let base = b * plan.n * 2;
                let mut re: Vec<f64> = (0..plan.n).map(|i| vals[base + 2 * i]).collect();
                let mut im: Vec<f64> = (0..plan.n).map(|i| vals[base + 2 * i + 1]).collect();
                fft_radix2(&mut re, &mut im, inverse);
                for i in 0..plan.n {
                    out.push(re[i]);
                    out.push(im[i]);
                }
            }
            f64_to_bytes(&out)
        }
    };
    dev.mem.write(odata, &output)?;

    let n = plan.n as f64;
    let work = Workload {
        // 5 n log2 n real FLOPs per complex FFT (the classic count).
        flops: 5.0 * n * n.log2() * plan.batch as f64,
        bytes: 2.0 * bytes as f64,
        precision: if plan.kind == CUFFT_C2C {
            Precision::F32
        } else {
            Precision::F64
        },
    };
    Ok(kernel_duration_ns(dev.properties(), &work))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive DFT reference.
    fn dft(re: &[f64], im: &[f64], inverse: bool) -> (Vec<f64>, Vec<f64>) {
        let n = re.len();
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut out_r = vec![0.0; n];
        let mut out_i = vec![0.0; n];
        for k in 0..n {
            for t in 0..n {
                let ang = sign * 2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                out_r[k] += re[t] * ang.cos() - im[t] * ang.sin();
                out_i[k] += re[t] * ang.sin() + im[t] * ang.cos();
            }
        }
        (out_r, out_i)
    }

    #[test]
    fn plan_validation() {
        assert!(FftPlan::plan_1d(1024, CUFFT_C2C, 4).is_ok());
        assert!(
            FftPlan::plan_1d(1000, CUFFT_C2C, 1).is_err(),
            "non power of two"
        );
        assert!(FftPlan::plan_1d(0, CUFFT_C2C, 1).is_err());
        assert!(FftPlan::plan_1d(64, 0x12, 1).is_err(), "bad type");
        assert!(FftPlan::plan_1d(64, CUFFT_Z2Z, 0).is_err());
        assert_eq!(
            FftPlan::plan_1d(64, CUFFT_Z2Z, 2).unwrap().buffer_bytes(),
            64 * 2 * 16
        );
    }

    #[test]
    fn radix2_matches_naive_dft() {
        let n = 32;
        let re0: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let im0: Vec<f64> = (0..n).map(|i| ((i * 3) % 4) as f64 * 0.5).collect();
        let (dr, di) = dft(&re0, &im0, false);
        let mut re = re0.clone();
        let mut im = im0.clone();
        fft_radix2(&mut re, &mut im, false);
        for k in 0..n {
            assert!((re[k] - dr[k]).abs() < 1e-9, "re[{k}]");
            assert!((im[k] - di[k]).abs() < 1e-9, "im[{k}]");
        }
    }

    #[test]
    fn forward_then_inverse_scales_by_n() {
        // cuFFT convention: IFFT(FFT(x)) = n * x.
        let mut dev = Device::a100();
        let plan = FftPlan::plan_1d(256, CUFFT_Z2Z, 1).unwrap();
        let data: Vec<f64> = (0..512).map(|i| ((i * 13) % 17) as f64 * 0.25).collect();
        let (buf, _) = dev.malloc(plan.buffer_bytes()).unwrap();
        dev.memcpy_htod(buf, &f64_to_bytes(&data)).unwrap();
        exec(&mut dev, &plan, buf, buf, CUFFT_FORWARD).unwrap();
        exec(&mut dev, &plan, buf, buf, CUFFT_INVERSE).unwrap();
        let (out, _) = dev.memcpy_dtoh(buf, plan.buffer_bytes()).unwrap();
        let out = bytes_to_f64(&out);
        for i in 0..data.len() {
            assert!(
                (out[i] - 256.0 * data[i]).abs() < 1e-6 * (1.0 + data[i].abs()) * 256.0,
                "out[{i}] = {}, expected {}",
                out[i],
                256.0 * data[i]
            );
        }
    }

    #[test]
    fn c2c_single_precision_roundtrip() {
        let mut dev = Device::a100();
        let plan = FftPlan::plan_1d(128, CUFFT_C2C, 2).unwrap();
        let data: Vec<f32> = (0..128 * 2 * 2).map(|i| (i % 11) as f32 - 5.0).collect();
        let (src, _) = dev.malloc(plan.buffer_bytes()).unwrap();
        let (dst, _) = dev.malloc(plan.buffer_bytes()).unwrap();
        dev.memcpy_htod(src, &f32_to_bytes(&data)).unwrap();
        exec(&mut dev, &plan, src, dst, CUFFT_FORWARD).unwrap();
        exec(&mut dev, &plan, dst, dst, CUFFT_INVERSE).unwrap();
        let (out, _) = dev.memcpy_dtoh(dst, plan.buffer_bytes()).unwrap();
        let out = bytes_to_f32(&out);
        for i in 0..data.len() {
            assert!(
                (out[i] - 128.0 * data[i]).abs() < 0.05 * (1.0 + 128.0 * data[i].abs()),
                "out[{i}] = {} expected {}",
                out[i],
                128.0 * data[i]
            );
        }
    }

    #[test]
    fn parsevals_theorem_holds() {
        // Energy in time domain == energy in frequency domain / n.
        let mut dev = Device::a100();
        let n = 512;
        let plan = FftPlan::plan_1d(n, CUFFT_Z2Z, 1).unwrap();
        let data: Vec<f64> = (0..n as usize * 2)
            .map(|i| ((i * 31) % 23) as f64 * 0.1 - 1.0)
            .collect();
        let energy_time: f64 = data.chunks(2).map(|c| c[0] * c[0] + c[1] * c[1]).sum();
        let (buf, _) = dev.malloc(plan.buffer_bytes()).unwrap();
        dev.memcpy_htod(buf, &f64_to_bytes(&data)).unwrap();
        exec(&mut dev, &plan, buf, buf, CUFFT_FORWARD).unwrap();
        let (out, _) = dev.memcpy_dtoh(buf, plan.buffer_bytes()).unwrap();
        let out = bytes_to_f64(&out);
        let energy_freq: f64 = out.chunks(2).map(|c| c[0] * c[0] + c[1] * c[1]).sum();
        let ratio = energy_freq / (n as f64) / energy_time;
        assert!((ratio - 1.0).abs() < 1e-9, "Parseval ratio {ratio}");
    }

    #[test]
    fn invalid_direction_rejected() {
        let mut dev = Device::a100();
        let plan = FftPlan::plan_1d(64, CUFFT_C2C, 1).unwrap();
        let (buf, _) = dev.malloc(plan.buffer_bytes()).unwrap();
        assert!(exec(&mut dev, &plan, buf, buf, 0).is_err());
    }

    #[test]
    fn duration_scales_superlinearly_with_n() {
        let mut dev = Device::a100();
        let small = FftPlan::plan_1d(1 << 10, CUFFT_C2C, 1).unwrap();
        let large = FftPlan::plan_1d(1 << 14, CUFFT_C2C, 1).unwrap();
        let (b1, _) = dev.malloc(small.buffer_bytes()).unwrap();
        let (b2, _) = dev.malloc(large.buffer_bytes()).unwrap();
        let t1 = exec(&mut dev, &small, b1, b1, CUFFT_FORWARD).unwrap();
        let t2 = exec(&mut dev, &large, b2, b2, CUFFT_FORWARD).unwrap();
        assert!(t2 > t1);
    }
}
