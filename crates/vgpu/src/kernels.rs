//! Builtin kernel implementations.
//!
//! Each kernel the proxy applications launch exists here as a Rust function
//! that really executes against device memory, plus an *access analysis*
//! used for (a) the memoization cache keys and (b) the timing model's
//! workload estimate. Kernels follow the semantics of their CUDA-sample
//! namesakes (matrixMul, histogram) so the ported applications validate
//! their results exactly as the originals do.
//!
//! Parameter ABI: the launch parameter blob contains one little-endian
//! 8-byte slot per parameter (pointers and scalars alike), matching how the
//! client stub marshals `void* args[]`.

use crate::error::{VgpuError, VgpuResult};
use crate::memory::{bytes_to_f32, bytes_to_u32, f32_to_bytes, u32_to_bytes, MemoryManager};
use crate::timemodel::{Precision, Workload};

/// CUDA dim3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dim3 {
    /// X extent.
    pub x: u32,
    /// Y extent.
    pub y: u32,
    /// Z extent.
    pub z: u32,
}

impl Dim3 {
    /// 1×1×1.
    pub fn one() -> Self {
        Self { x: 1, y: 1, z: 1 }
    }

    /// Linear geometry (x, 1, 1).
    pub fn linear(x: u32) -> Self {
        Self { x, y: 1, z: 1 }
    }

    /// Total element count.
    pub fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }
}

/// One kernel launch request.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchConfig {
    /// Grid dimensions (blocks).
    pub grid: Dim3,
    /// Block dimensions (threads).
    pub block: Dim3,
    /// Dynamic shared memory bytes.
    pub shared_mem: u32,
    /// Stream handle (0 = default stream).
    pub stream: u64,
}

/// Typed view over the parameter blob.
#[derive(Debug, Clone, Copy)]
pub struct Params<'a>(&'a [u8]);

impl<'a> Params<'a> {
    /// Wrap a parameter blob, validating slot alignment.
    pub fn new(blob: &'a [u8]) -> VgpuResult<Self> {
        if !blob.len().is_multiple_of(8) {
            return Err(VgpuError::InvalidValue(format!(
                "parameter blob of {} bytes is not 8-byte aligned",
                blob.len()
            )));
        }
        Ok(Self(blob))
    }

    /// Number of 8-byte parameter slots.
    pub fn len(&self) -> usize {
        self.0.len() / 8
    }

    /// True when no parameters were passed.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    fn slot(&self, i: usize) -> VgpuResult<[u8; 8]> {
        self.0
            .get(i * 8..i * 8 + 8)
            .map(|s| s.try_into().unwrap())
            .ok_or_else(|| VgpuError::InvalidValue(format!("missing kernel parameter {i}")))
    }

    /// Parameter `i` as a device pointer / u64.
    pub fn ptr(&self, i: usize) -> VgpuResult<u64> {
        Ok(u64::from_le_bytes(self.slot(i)?))
    }

    /// Parameter `i` as u32 (low half of the slot).
    pub fn u32(&self, i: usize) -> VgpuResult<u32> {
        let s = self.slot(i)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Parameter `i` as i32.
    pub fn i32(&self, i: usize) -> VgpuResult<i32> {
        Ok(self.u32(i)? as i32)
    }

    /// Parameter `i` as f32 (low half of the slot).
    pub fn f32(&self, i: usize) -> VgpuResult<f32> {
        Ok(f32::from_bits(self.u32(i)?))
    }

    /// Parameter `i` as f64.
    pub fn f64(&self, i: usize) -> VgpuResult<f64> {
        Ok(f64::from_bits(u64::from_le_bytes(self.slot(i)?)))
    }
}

/// Marshal parameter values into a blob (client-side helper, also used by
/// tests). Every value occupies one 8-byte slot.
#[derive(Debug, Default, Clone)]
pub struct ParamBuilder {
    blob: Vec<u8>,
}

impl ParamBuilder {
    /// Empty parameter list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a device pointer / u64.
    pub fn ptr(mut self, v: u64) -> Self {
        self.blob.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a u32 scalar.
    pub fn u32(mut self, v: u32) -> Self {
        self.blob.extend_from_slice(&(v as u64).to_le_bytes());
        self
    }

    /// Append an i32 scalar.
    pub fn i32(self, v: i32) -> Self {
        self.u32(v as u32)
    }

    /// Append an f32 scalar.
    pub fn f32(self, v: f32) -> Self {
        self.u32(v.to_bits())
    }

    /// Append an f64 scalar.
    pub fn f64(mut self, v: f64) -> Self {
        self.blob.extend_from_slice(&v.to_bits().to_le_bytes());
        self
    }

    /// Finish, returning the blob.
    pub fn build(self) -> Vec<u8> {
        self.blob
    }
}

/// Memory ranges a launch will read and write, plus its workload estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// Ranges read (pointer, bytes).
    pub reads: Vec<(u64, u64)>,
    /// Ranges written (pointer, bytes).
    pub writes: Vec<(u64, u64)>,
    /// Timing-model workload.
    pub workload: Workload,
}

/// A builtin kernel: access analysis + real execution.
pub struct Builtin {
    /// Kernel symbol name.
    pub name: &'static str,
    /// Parameter slot count the kernel expects.
    pub param_count: usize,
    /// Compute the access set and workload for a launch (no side effects).
    pub analyze: fn(&LaunchConfig, Params<'_>) -> VgpuResult<Access>,
    /// Execute the kernel against device memory.
    pub execute: fn(&mut MemoryManager, &LaunchConfig, Params<'_>) -> VgpuResult<()>,
}

/// Look up a builtin kernel by symbol name.
pub fn lookup(name: &str) -> Option<&'static Builtin> {
    REGISTRY.iter().find(|b| b.name == name)
}

/// All builtin kernels (for module validation and docs).
pub fn registry() -> &'static [Builtin] {
    REGISTRY
}

// ---------------------------------------------------------------------------
// empty kernel — the Fig. 6c micro-benchmark target
// ---------------------------------------------------------------------------

fn empty_analyze(_cfg: &LaunchConfig, _p: Params<'_>) -> VgpuResult<Access> {
    Ok(Access {
        reads: vec![],
        writes: vec![],
        workload: Workload {
            flops: 0.0,
            bytes: 0.0,
            precision: Precision::F32,
        },
    })
}

fn empty_execute(_m: &mut MemoryManager, _cfg: &LaunchConfig, _p: Params<'_>) -> VgpuResult<()> {
    Ok(())
}

// ---------------------------------------------------------------------------
// vectorAdd(C, A, B, n) — quickstart example
// ---------------------------------------------------------------------------

fn vector_add_analyze(_cfg: &LaunchConfig, p: Params<'_>) -> VgpuResult<Access> {
    let (c, a, b, n) = (p.ptr(0)?, p.ptr(1)?, p.ptr(2)?, p.u32(3)? as u64);
    Ok(Access {
        reads: vec![(a, n * 4), (b, n * 4)],
        writes: vec![(c, n * 4)],
        workload: Workload {
            flops: n as f64,
            bytes: (n * 12) as f64,
            precision: Precision::F32,
        },
    })
}

fn vector_add_execute(m: &mut MemoryManager, cfg: &LaunchConfig, p: Params<'_>) -> VgpuResult<()> {
    let (c, a, b, n) = (p.ptr(0)?, p.ptr(1)?, p.ptr(2)?, p.u32(3)? as u64);
    let threads = cfg.grid.count() * cfg.block.count();
    if threads < n {
        return Err(VgpuError::LaunchFailure(format!(
            "vectorAdd launched with {threads} threads for {n} elements"
        )));
    }
    let av = bytes_to_f32(m.read(a, n * 4)?);
    let bv = bytes_to_f32(m.read(b, n * 4)?);
    let cv: Vec<f32> = av.iter().zip(&bv).map(|(x, y)| x + y).collect();
    m.write(c, &f32_to_bytes(&cv))
}

// ---------------------------------------------------------------------------
// matrixMulCUDA(C, A, B, wA, wB) — the Fig. 5a workload
//
// Geometry follows the CUDA sample: block = (32, 32), grid = (wB/32, hA/32),
// so hA = grid.y * 32. C (hA×wB) = A (hA×wA) × B (wA×wB), row-major.
// ---------------------------------------------------------------------------

fn matrix_mul_dims(
    cfg: &LaunchConfig,
    p: Params<'_>,
) -> VgpuResult<(u64, u64, u64, u64, u64, u64)> {
    let (c, a, b) = (p.ptr(0)?, p.ptr(1)?, p.ptr(2)?);
    let wa = p.u32(3)? as u64;
    let wb = p.u32(4)? as u64;
    let ha = cfg.grid.y as u64 * cfg.block.y as u64;
    if wa == 0 || wb == 0 || ha == 0 {
        return Err(VgpuError::InvalidValue(
            "matrixMul with zero dimension".into(),
        ));
    }
    Ok((c, a, b, wa, wb, ha))
}

fn matrix_mul_analyze(cfg: &LaunchConfig, p: Params<'_>) -> VgpuResult<Access> {
    let (c, a, b, wa, wb, ha) = matrix_mul_dims(cfg, p)?;
    Ok(Access {
        reads: vec![(a, ha * wa * 4), (b, wa * wb * 4)],
        writes: vec![(c, ha * wb * 4)],
        workload: Workload {
            flops: 2.0 * ha as f64 * wa as f64 * wb as f64,
            bytes: ((ha * wa + wa * wb + ha * wb) * 4) as f64,
            precision: Precision::F32,
        },
    })
}

fn matrix_mul_execute(m: &mut MemoryManager, cfg: &LaunchConfig, p: Params<'_>) -> VgpuResult<()> {
    let (c, a, b, wa, wb, ha) = matrix_mul_dims(cfg, p)?;
    let av = bytes_to_f32(m.read(a, ha * wa * 4)?);
    let bv = bytes_to_f32(m.read(b, wa * wb * 4)?);
    let mut cv = vec![0f32; (ha * wb) as usize];
    // Straightforward ikj loop; cache-friendly on row-major data.
    for i in 0..ha as usize {
        for k in 0..wa as usize {
            let aik = av[i * wa as usize + k];
            let brow = &bv[k * wb as usize..(k + 1) * wb as usize];
            let crow = &mut cv[i * wb as usize..(i + 1) * wb as usize];
            for (cj, bj) in crow.iter_mut().zip(brow) {
                *cj += aik * bj;
            }
        }
    }
    m.write(c, &f32_to_bytes(&cv))
}

// ---------------------------------------------------------------------------
// histogram64 / histogram256 — the Fig. 5c workload
//
// Semantics follow the CUDA sample: the input is an array of bytes; the
// 64-bin variant bins by the top 6 bits of each byte (byte >> 2), the
// 256-bin variant by the full byte. Each block produces a partial histogram
// over a strided share of the data; a merge kernel reduces the partials.
// Partial layout: partial[block * BINS + bin] (u32 counts).
// ---------------------------------------------------------------------------

fn histogram_analyze(bins: u64) -> impl Fn(&LaunchConfig, Params<'_>) -> VgpuResult<Access> {
    move |cfg, p| {
        let (partial, data, byte_count) = (p.ptr(0)?, p.ptr(1)?, p.u32(2)? as u64);
        let blocks = cfg.grid.count();
        Ok(Access {
            reads: vec![(data, byte_count)],
            writes: vec![(partial, blocks * bins * 4)],
            workload: Workload {
                flops: byte_count as f64,
                bytes: (byte_count + blocks * bins * 4) as f64,
                precision: Precision::F32,
            },
        })
    }
}

fn histogram_execute(
    bins: usize,
    shift: u32,
) -> impl Fn(&mut MemoryManager, &LaunchConfig, Params<'_>) -> VgpuResult<()> {
    move |m, cfg, p| {
        let (partial, data, byte_count) = (p.ptr(0)?, p.ptr(1)?, p.u32(2)? as u64);
        let blocks = cfg.grid.count() as usize;
        if blocks == 0 {
            return Err(VgpuError::InvalidValue("histogram with zero blocks".into()));
        }
        let input = m.read(data, byte_count)?.to_vec();
        let mut partials = vec![0u32; blocks * bins];
        // Block b handles bytes b, b+blocks, b+2*blocks, ... (strided), like
        // the sample's grid-stride loop.
        for (idx, &byte) in input.iter().enumerate() {
            let block = idx % blocks;
            let bin = (byte >> shift) as usize;
            partials[block * bins + bin] += 1;
        }
        m.write(partial, &u32_to_bytes(&partials))
    }
}

fn merge_histogram_analyze(bins: u64) -> impl Fn(&LaunchConfig, Params<'_>) -> VgpuResult<Access> {
    move |_cfg, p| {
        let (out, partial, count) = (p.ptr(0)?, p.ptr(1)?, p.u32(2)? as u64);
        Ok(Access {
            reads: vec![(partial, count * bins * 4)],
            writes: vec![(out, bins * 4)],
            workload: Workload {
                flops: (count * bins) as f64,
                bytes: ((count + 1) * bins * 4) as f64,
                precision: Precision::F32,
            },
        })
    }
}

fn merge_histogram_execute(
    bins: usize,
) -> impl Fn(&mut MemoryManager, &LaunchConfig, Params<'_>) -> VgpuResult<()> {
    move |m, _cfg, p| {
        let (out, partial, count) = (p.ptr(0)?, p.ptr(1)?, p.u32(2)? as usize);
        let partials = bytes_to_u32(m.read(partial, (count * bins * 4) as u64)?);
        let mut merged = vec![0u32; bins];
        for block in 0..count {
            for bin in 0..bins {
                merged[bin] += partials[block * bins + bin];
            }
        }
        m.write(out, &u32_to_bytes(&merged))
    }
}

// Monomorphized wrappers (fn pointers cannot capture).
fn hist64_analyze(c: &LaunchConfig, p: Params<'_>) -> VgpuResult<Access> {
    histogram_analyze(64)(c, p)
}
fn hist64_execute(m: &mut MemoryManager, c: &LaunchConfig, p: Params<'_>) -> VgpuResult<()> {
    histogram_execute(64, 2)(m, c, p)
}
fn merge64_analyze(c: &LaunchConfig, p: Params<'_>) -> VgpuResult<Access> {
    merge_histogram_analyze(64)(c, p)
}
fn merge64_execute(m: &mut MemoryManager, c: &LaunchConfig, p: Params<'_>) -> VgpuResult<()> {
    merge_histogram_execute(64)(m, c, p)
}
fn hist256_analyze(c: &LaunchConfig, p: Params<'_>) -> VgpuResult<Access> {
    histogram_analyze(256)(c, p)
}
fn hist256_execute(m: &mut MemoryManager, c: &LaunchConfig, p: Params<'_>) -> VgpuResult<()> {
    histogram_execute(256, 0)(m, c, p)
}
fn merge256_analyze(c: &LaunchConfig, p: Params<'_>) -> VgpuResult<Access> {
    merge_histogram_analyze(256)(c, p)
}
fn merge256_execute(m: &mut MemoryManager, c: &LaunchConfig, p: Params<'_>) -> VgpuResult<()> {
    merge_histogram_execute(256)(m, c, p)
}

// ---------------------------------------------------------------------------
// saxpy(Y, X, alpha, n) — used by tests and the multi-tenant example
// ---------------------------------------------------------------------------

fn saxpy_analyze(_cfg: &LaunchConfig, p: Params<'_>) -> VgpuResult<Access> {
    let (y, x, _alpha, n) = (p.ptr(0)?, p.ptr(1)?, p.f32(2)?, p.u32(3)? as u64);
    Ok(Access {
        reads: vec![(x, n * 4), (y, n * 4)],
        writes: vec![(y, n * 4)],
        workload: Workload {
            flops: 2.0 * n as f64,
            bytes: (n * 12) as f64,
            precision: Precision::F32,
        },
    })
}

fn saxpy_execute(m: &mut MemoryManager, _cfg: &LaunchConfig, p: Params<'_>) -> VgpuResult<()> {
    let (y, x, alpha, n) = (p.ptr(0)?, p.ptr(1)?, p.f32(2)?, p.u32(3)? as u64);
    let xv = bytes_to_f32(m.read(x, n * 4)?);
    let mut yv = bytes_to_f32(m.read(y, n * 4)?);
    for (yi, xi) in yv.iter_mut().zip(&xv) {
        *yi += alpha * xi;
    }
    m.write(y, &f32_to_bytes(&yv))
}

static REGISTRY: &[Builtin] = &[
    Builtin {
        name: "empty",
        param_count: 0,
        analyze: empty_analyze,
        execute: empty_execute,
    },
    Builtin {
        name: "vectorAdd",
        param_count: 4,
        analyze: vector_add_analyze,
        execute: vector_add_execute,
    },
    Builtin {
        name: "matrixMulCUDA",
        param_count: 5,
        analyze: matrix_mul_analyze,
        execute: matrix_mul_execute,
    },
    Builtin {
        name: "histogram64Kernel",
        param_count: 3,
        analyze: hist64_analyze,
        execute: hist64_execute,
    },
    Builtin {
        name: "mergeHistogram64Kernel",
        param_count: 3,
        analyze: merge64_analyze,
        execute: merge64_execute,
    },
    Builtin {
        name: "histogram256Kernel",
        param_count: 3,
        analyze: hist256_analyze,
        execute: hist256_execute,
    },
    Builtin {
        name: "mergeHistogram256Kernel",
        param_count: 3,
        analyze: merge256_analyze,
        execute: merge256_execute,
    },
    Builtin {
        name: "saxpy",
        param_count: 4,
        analyze: saxpy_analyze,
        execute: saxpy_execute,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::f64_to_bytes;

    fn mem() -> MemoryManager {
        MemoryManager::new(64 << 20)
    }

    fn cfg(grid: Dim3, block: Dim3) -> LaunchConfig {
        LaunchConfig {
            grid,
            block,
            shared_mem: 0,
            stream: 0,
        }
    }

    #[test]
    fn registry_lookup() {
        assert!(lookup("matrixMulCUDA").is_some());
        assert!(lookup("histogram256Kernel").is_some());
        assert!(lookup("no_such_kernel").is_none());
        assert_eq!(lookup("vectorAdd").unwrap().param_count, 4);
    }

    #[test]
    fn param_builder_roundtrip() {
        let blob = ParamBuilder::new()
            .ptr(0xdead_beef)
            .u32(42)
            .f32(1.5)
            .f64(-2.25)
            .i32(-7)
            .build();
        let p = Params::new(&blob).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.ptr(0).unwrap(), 0xdead_beef);
        assert_eq!(p.u32(1).unwrap(), 42);
        assert_eq!(p.f32(2).unwrap(), 1.5);
        assert_eq!(p.f64(3).unwrap(), -2.25);
        assert_eq!(p.i32(4).unwrap(), -7);
        assert!(p.ptr(5).is_err());
        let _ = f64_to_bytes(&[]); // silence unused import on some cfgs
    }

    #[test]
    fn unaligned_params_rejected() {
        assert!(Params::new(&[0u8; 7]).is_err());
        assert!(Params::new(&[]).unwrap().is_empty());
    }

    #[test]
    fn vector_add_computes() {
        let mut m = mem();
        let n = 1000u64;
        let a = m.alloc(n * 4).unwrap();
        let b = m.alloc(n * 4).unwrap();
        let c = m.alloc(n * 4).unwrap();
        let av: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let bv: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
        m.write(a, &f32_to_bytes(&av)).unwrap();
        m.write(b, &f32_to_bytes(&bv)).unwrap();
        let blob = ParamBuilder::new()
            .ptr(c)
            .ptr(a)
            .ptr(b)
            .u32(n as u32)
            .build();
        let k = lookup("vectorAdd").unwrap();
        (k.execute)(
            &mut m,
            &cfg(Dim3::linear(4), Dim3::linear(256)),
            Params::new(&blob).unwrap(),
        )
        .unwrap();
        let cv = bytes_to_f32(m.read(c, n * 4).unwrap());
        for (i, v) in cv.iter().enumerate().take(n as usize) {
            assert_eq!(*v, 3.0 * i as f32);
        }
    }

    #[test]
    fn vector_add_underprovisioned_launch_fails() {
        let mut m = mem();
        let a = m.alloc(4096).unwrap();
        let blob = ParamBuilder::new().ptr(a).ptr(a).ptr(a).u32(1024).build();
        let k = lookup("vectorAdd").unwrap();
        let err = (k.execute)(
            &mut m,
            &cfg(Dim3::linear(1), Dim3::linear(256)),
            Params::new(&blob).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, VgpuError::LaunchFailure(_)));
    }

    #[test]
    fn matrix_mul_matches_reference() {
        let mut m = mem();
        let (ha, wa, wb) = (64usize, 32usize, 96usize);
        let a = m.alloc((ha * wa * 4) as u64).unwrap();
        let b = m.alloc((wa * wb * 4) as u64).unwrap();
        let c = m.alloc((ha * wb * 4) as u64).unwrap();
        let av: Vec<f32> = (0..ha * wa).map(|i| (i % 7) as f32 * 0.5).collect();
        let bv: Vec<f32> = (0..wa * wb).map(|i| (i % 5) as f32 - 2.0).collect();
        m.write(a, &f32_to_bytes(&av)).unwrap();
        m.write(b, &f32_to_bytes(&bv)).unwrap();
        let blob = ParamBuilder::new()
            .ptr(c)
            .ptr(a)
            .ptr(b)
            .u32(wa as u32)
            .u32(wb as u32)
            .build();
        let k = lookup("matrixMulCUDA").unwrap();
        let launch = cfg(
            Dim3 {
                x: (wb / 32) as u32,
                y: (ha / 32) as u32,
                z: 1,
            },
            Dim3 { x: 32, y: 32, z: 1 },
        );
        (k.execute)(&mut m, &launch, Params::new(&blob).unwrap()).unwrap();
        let cv = bytes_to_f32(m.read(c, (ha * wb * 4) as u64).unwrap());
        // Reference: naive triple loop.
        for i in [0usize, 5, 63] {
            for j in [0usize, 17, 95] {
                let mut acc = 0f32;
                for k in 0..wa {
                    acc += av[i * wa + k] * bv[k * wb + j];
                }
                assert!(
                    (cv[i * wb + j] - acc).abs() <= 1e-3 * acc.abs().max(1.0),
                    "C[{i},{j}] = {} expected {acc}",
                    cv[i * wb + j]
                );
            }
        }
    }

    #[test]
    fn histogram_roundtrip_64_and_256() {
        let mut m = mem();
        let bytes: Vec<u8> = (0..10_000u32).map(|i| (i * 37 % 256) as u8).collect();
        let data = m.alloc(bytes.len() as u64).unwrap();
        m.write(data, &bytes).unwrap();
        for (bins, shift, hist, merge) in [
            (64usize, 2u32, "histogram64Kernel", "mergeHistogram64Kernel"),
            (256, 0, "histogram256Kernel", "mergeHistogram256Kernel"),
        ] {
            let blocks = 24u32;
            let partial = m.alloc((blocks as usize * bins * 4) as u64).unwrap();
            let out = m.alloc((bins * 4) as u64).unwrap();
            let blob = ParamBuilder::new()
                .ptr(partial)
                .ptr(data)
                .u32(bytes.len() as u32)
                .build();
            (lookup(hist).unwrap().execute)(
                &mut m,
                &cfg(Dim3::linear(blocks), Dim3::linear(64)),
                Params::new(&blob).unwrap(),
            )
            .unwrap();
            let blob = ParamBuilder::new()
                .ptr(out)
                .ptr(partial)
                .u32(blocks)
                .build();
            (lookup(merge).unwrap().execute)(
                &mut m,
                &cfg(Dim3::linear(bins as u32), Dim3::linear(64)),
                Params::new(&blob).unwrap(),
            )
            .unwrap();
            let result = bytes_to_u32(m.read(out, (bins * 4) as u64).unwrap());
            let mut expected = vec![0u32; bins];
            for &b in &bytes {
                expected[(b >> shift) as usize] += 1;
            }
            assert_eq!(result, expected, "{bins}-bin histogram");
            assert_eq!(result.iter().sum::<u32>() as usize, bytes.len());
            m.free(partial).unwrap();
            m.free(out).unwrap();
        }
    }

    #[test]
    fn saxpy_updates_in_place() {
        let mut m = mem();
        let n = 128u64;
        let x = m.alloc(n * 4).unwrap();
        let y = m.alloc(n * 4).unwrap();
        m.write(x, &f32_to_bytes(&vec![2.0; n as usize])).unwrap();
        m.write(y, &f32_to_bytes(&vec![1.0; n as usize])).unwrap();
        let blob = ParamBuilder::new()
            .ptr(y)
            .ptr(x)
            .f32(3.0)
            .u32(n as u32)
            .build();
        (lookup("saxpy").unwrap().execute)(
            &mut m,
            &cfg(Dim3::linear(1), Dim3::linear(128)),
            Params::new(&blob).unwrap(),
        )
        .unwrap();
        let yv = bytes_to_f32(m.read(y, n * 4).unwrap());
        assert!(yv.iter().all(|&v| v == 7.0));
    }

    #[test]
    fn analyze_reports_sane_access_sets() {
        let blob = ParamBuilder::new()
            .ptr(0x100)
            .ptr(0x200)
            .ptr(0x300)
            .u32(64)
            .u32(32)
            .build();
        let k = lookup("matrixMulCUDA").unwrap();
        let launch = cfg(Dim3 { x: 1, y: 2, z: 1 }, Dim3 { x: 32, y: 32, z: 1 });
        let acc = (k.analyze)(&launch, Params::new(&blob).unwrap()).unwrap();
        // hA = 64, wA = 64, wB = 32.
        assert_eq!(acc.reads[0], (0x200, 64 * 64 * 4));
        assert_eq!(acc.reads[1], (0x300, 64 * 32 * 4));
        assert_eq!(acc.writes[0], (0x100, 64 * 32 * 4));
        assert!(acc.workload.flops > 0.0);
    }
}
