//! Error codes mirroring the CUDA error space (the subset Cricket forwards).

use std::fmt;

/// Numeric CUDA error codes as they appear on the wire (matches the
/// `cuda_error` enum in `cricket.x`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(i32)]
pub enum CudaCode {
    /// Success.
    Success = 0,
    /// An argument was out of range or otherwise invalid.
    InvalidValue = 1,
    /// Device memory exhausted.
    MemoryAllocation = 2,
    /// Device/runtime not initialized.
    Initialization = 3,
    /// Bad device ordinal.
    InvalidDevice = 101,
    /// Unknown stream/event/module/function handle.
    InvalidHandle = 400,
    /// Named symbol not found in a module.
    NotFound = 500,
    /// A kernel failed during execution.
    LaunchFailure = 719,
}

/// Errors from the simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VgpuError {
    /// Allocation failed: requested bytes and remaining free bytes.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes free (total, possibly fragmented).
        free: u64,
    },
    /// The pointer does not fall inside any live allocation.
    InvalidPointer(u64),
    /// `cudaFree` of a pointer that is not an allocation base (or was
    /// already freed) — the class of bug the paper's safe Rust wrapper
    /// ("GPU allocations work like local heap allocations") eliminates.
    InvalidFree(u64),
    /// An access ran past the end of its allocation.
    OutOfBounds {
        /// Offending pointer.
        ptr: u64,
        /// Bytes requested at that pointer.
        len: u64,
        /// Bytes actually available there.
        available: u64,
    },
    /// Unknown module/function/stream/event handle.
    InvalidHandle(u64),
    /// Module image could not be parsed.
    BadModule(String),
    /// Kernel execution failed.
    LaunchFailure(String),
    /// Bad device ordinal.
    InvalidDevice(i32),
    /// Invalid argument (geometry, sizes, enum values...).
    InvalidValue(String),
    /// A snapshot raced a free: a block enumerated for capture vanished
    /// before its bytes were read. The checkpoint is abandoned (the caller
    /// can retry); the server must not crash.
    CheckpointRace {
        /// Base address of the block that disappeared mid-capture.
        base: u64,
    },
}

impl VgpuError {
    /// The CUDA error code this error maps to on the wire.
    pub fn code(&self) -> CudaCode {
        match self {
            VgpuError::OutOfMemory { .. } => CudaCode::MemoryAllocation,
            VgpuError::InvalidPointer(_) | VgpuError::InvalidFree(_) => CudaCode::InvalidValue,
            VgpuError::OutOfBounds { .. } => CudaCode::InvalidValue,
            VgpuError::InvalidHandle(_) => CudaCode::InvalidHandle,
            VgpuError::BadModule(_) => CudaCode::NotFound,
            VgpuError::LaunchFailure(_) => CudaCode::LaunchFailure,
            VgpuError::InvalidDevice(_) => CudaCode::InvalidDevice,
            VgpuError::InvalidValue(_) => CudaCode::InvalidValue,
            VgpuError::CheckpointRace { .. } => CudaCode::InvalidValue,
        }
    }
}

impl fmt::Display for VgpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VgpuError::OutOfMemory { requested, free } => {
                write!(
                    f,
                    "out of device memory: requested {requested}, free {free}"
                )
            }
            VgpuError::InvalidPointer(p) => write!(f, "invalid device pointer {p:#x}"),
            VgpuError::InvalidFree(p) => write!(f, "invalid free of {p:#x}"),
            VgpuError::OutOfBounds {
                ptr,
                len,
                available,
            } => write!(
                f,
                "access of {len} bytes at {ptr:#x} exceeds allocation ({available} available)"
            ),
            VgpuError::InvalidHandle(h) => write!(f, "invalid handle {h:#x}"),
            VgpuError::BadModule(m) => write!(f, "bad module image: {m}"),
            VgpuError::LaunchFailure(m) => write!(f, "kernel launch failure: {m}"),
            VgpuError::InvalidDevice(d) => write!(f, "invalid device ordinal {d}"),
            VgpuError::InvalidValue(m) => write!(f, "invalid value: {m}"),
            VgpuError::CheckpointRace { base } => {
                write!(f, "checkpoint raced a free: block {base:#x} vanished")
            }
        }
    }
}

impl std::error::Error for VgpuError {}

/// Result alias for device operations.
pub type VgpuResult<T> = Result<T, VgpuError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_wire_numbers() {
        assert_eq!(CudaCode::Success as i32, 0);
        assert_eq!(CudaCode::MemoryAllocation as i32, 2);
        assert_eq!(CudaCode::InvalidHandle as i32, 400);
        assert_eq!(CudaCode::LaunchFailure as i32, 719);
    }

    #[test]
    fn error_to_code_mapping() {
        assert_eq!(
            VgpuError::OutOfMemory {
                requested: 1,
                free: 0
            }
            .code(),
            CudaCode::MemoryAllocation
        );
        assert_eq!(VgpuError::InvalidHandle(9).code(), CudaCode::InvalidHandle);
        assert_eq!(
            VgpuError::LaunchFailure("x".into()).code(),
            CudaCode::LaunchFailure
        );
    }

    #[test]
    fn display_is_informative() {
        let e = VgpuError::OutOfBounds {
            ptr: 0x100,
            len: 64,
            available: 32,
        };
        let s = e.to_string();
        assert!(s.contains("0x100") && s.contains("64") && s.contains("32"));
    }
}
