//! Per-stream command queues: the asynchronous execution engine.
//!
//! A [`CommandQueue`] is a FIFO of device commands on one stream. Enqueuing
//! is cheap for the host (a few hundred ns of submission cost); each command
//! carries its *device-time* cost and completes on the stream's virtual
//! timeline: a command starts at `max(stream frontier, now)` and completes
//! `duration` later. Commands **retire strictly in issue order within a
//! stream**; across streams the timelines are independent, so overlapping
//! work on two streams costs the device `max`, not the sum, of the two
//! timelines — exactly CUDA's concurrency contract.
//!
//! Everything is driven by the shared [`simnet::SimClock`], so a given
//! sequence of enqueues and waits produces bit-identical timelines on every
//! run: determinism is part of the API contract (chaos replays and the
//! EXPERIMENTS.md figures depend on it).

use std::collections::VecDeque;

/// What a queued command is, for telemetry and retire-order assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// cuLaunchKernel of function `func`.
    Kernel { func: u64 },
    /// Host→device transfer.
    MemcpyH2D { bytes: u64 },
    /// Device→host transfer.
    MemcpyD2H { bytes: u64 },
    /// Device→device copy.
    MemcpyD2D { bytes: u64 },
    /// cudaMemset.
    Memset { bytes: u64 },
    /// Library routine executed on-device (cuBLAS / cuSOLVER / cuFFT).
    Library { what: &'static str },
}

/// A command in flight on a stream's virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Command {
    /// Device-global issue sequence number (monotonic across all streams).
    pub seq: u64,
    /// What the command is.
    pub kind: CommandKind,
    /// Virtual time the host enqueued it.
    pub enqueued_at_ns: u64,
    /// Virtual time it starts on the device: `max(frontier, enqueued_at)`.
    pub starts_at_ns: u64,
    /// Virtual time it completes: `starts_at + duration`.
    pub completes_at_ns: u64,
}

impl Command {
    /// Device time this command occupies.
    pub fn duration_ns(&self) -> u64 {
        self.completes_at_ns - self.starts_at_ns
    }
}

/// Receipt for an asynchronous submission: what the host paid now
/// (`submit_ns`) versus what the device will spend later (`queued_ns`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Submit {
    /// Stream the command went to.
    pub stream: u64,
    /// Issue sequence number of the command.
    pub seq: u64,
    /// Host-side submission cost in ns (charged to the caller's clock).
    pub submit_ns: u64,
    /// Device-time cost enqueued (charged to the session's time ledger).
    pub queued_ns: u64,
    /// Virtual time at which the command will complete.
    pub completes_at_ns: u64,
}

/// Aggregate over many [`Submit`] receipts: the per-batch receipt a server
/// returns when a whole slice of commands is issued under one turn.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SubmitAggregate {
    /// Receipts absorbed.
    pub ops: u32,
    /// Total host-side submission cost.
    pub submit_ns: u64,
    /// Total device time enqueued (ledger charge).
    pub queued_ns: u64,
    /// Latest completion frontier across the absorbed commands.
    pub last_completes_at_ns: u64,
}

impl SubmitAggregate {
    /// Fold one receipt into the aggregate.
    pub fn absorb(&mut self, sub: &Submit) {
        self.ops += 1;
        self.submit_ns += sub.submit_ns;
        self.queued_ns += sub.queued_ns;
        self.last_completes_at_ns = self.last_completes_at_ns.max(sub.completes_at_ns);
    }
}

/// A command that has completed and left its queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired {
    /// Stream it ran on.
    pub stream: u64,
    /// Issue sequence number.
    pub seq: u64,
    /// What it was.
    pub kind: CommandKind,
    /// When it started on the device.
    pub starts_at_ns: u64,
    /// When it completed.
    pub completes_at_ns: u64,
}

/// One stream's FIFO of pending commands plus its completion frontier.
#[derive(Debug, Default)]
pub struct CommandQueue {
    pending: VecDeque<Command>,
    /// Completion frontier: virtual time at which all enqueued work is done.
    frontier_ns: u64,
    /// Commands ever enqueued (telemetry).
    pub ops_enqueued: u64,
    /// Commands retired so far (telemetry).
    pub ops_retired: u64,
}

impl CommandQueue {
    /// Enqueue `duration_ns` of device work at virtual time `now_ns`.
    /// The command starts when all prior work on this stream is done.
    pub fn enqueue(
        &mut self,
        now_ns: u64,
        seq: u64,
        kind: CommandKind,
        duration_ns: u64,
    ) -> Command {
        let starts_at_ns = self.frontier_ns.max(now_ns);
        let cmd = Command {
            seq,
            kind,
            enqueued_at_ns: now_ns,
            starts_at_ns,
            completes_at_ns: starts_at_ns + duration_ns,
        };
        self.frontier_ns = cmd.completes_at_ns;
        self.ops_enqueued += 1;
        self.pending.push_back(cmd);
        cmd
    }

    /// Completion frontier (ns): when everything enqueued so far is done.
    pub fn frontier_ns(&self) -> u64 {
        self.frontier_ns
    }

    /// Place an *idle* queue at an exact completion frontier.
    ///
    /// Used when reconstructing a stream on a migration destination: the
    /// source fences the stream (retires all pending work), ships its
    /// frontier, and the destination recreates the queue at that frontier so
    /// subsequent enqueues produce the same absolute virtual timestamps the
    /// source would have produced. Restoring a non-empty queue would reorder
    /// in-flight commands, so that is rejected.
    pub fn restore_frontier(&mut self, ns: u64) -> bool {
        if !self.pending.is_empty() {
            return false;
        }
        self.frontier_ns = ns;
        true
    }

    /// Nanoseconds a host thread at `now_ns` must wait for this stream to
    /// drain.
    pub fn wait_ns(&self, now_ns: u64) -> u64 {
        self.frontier_ns.saturating_sub(now_ns)
    }

    /// Commands still pending (not yet retired at the last observation).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Iterate pending commands front (oldest) to back.
    pub fn iter_pending(&self) -> impl Iterator<Item = &Command> {
        self.pending.iter()
    }

    /// Pop every command whose completion time has passed, appending it to
    /// `sink` tagged with `stream`. Front-to-back pop is what enforces the
    /// issue-order retire invariant: a command can never leave the queue
    /// before one issued ahead of it on the same stream.
    pub fn retire_until(&mut self, now_ns: u64, stream: u64, sink: &mut Vec<Retired>) {
        while let Some(front) = self.pending.front() {
            if front.completes_at_ns > now_ns {
                break;
            }
            let c = self.pending.pop_front().expect("front checked");
            self.ops_retired += 1;
            sink.push(Retired {
                stream,
                seq: c.seq,
                kind: c.kind,
                starts_at_ns: c.starts_at_ns,
                completes_at_ns: c.completes_at_ns,
            });
        }
    }
}

/// A merged union of half-open busy intervals `[start, end)`.
///
/// The device feeds every retired command's `[starts_at, completes_at)` in
/// here; the union's total length is the device's *busy span* — the wall of
/// virtual time during which at least one stream had work running. Comparing
/// the busy span to the sum of per-command durations measures cross-stream
/// overlap: `sum / span > 1` means streams genuinely ran concurrently.
#[derive(Debug, Default, Clone)]
pub struct IntervalUnion {
    /// Disjoint, sorted, non-adjacent intervals.
    spans: Vec<(u64, u64)>,
}

impl IntervalUnion {
    /// Insert `[start, end)`, merging with any overlapping/adjacent spans.
    pub fn add(&mut self, start: u64, end: u64) {
        if end <= start {
            return;
        }
        // Find insertion window: all spans that overlap or touch [start,end).
        let lo = self.spans.partition_point(|&(_, e)| e < start);
        let hi = self.spans.partition_point(|&(s, _)| s <= end);
        if lo == hi {
            self.spans.insert(lo, (start, end));
            return;
        }
        let merged = (self.spans[lo].0.min(start), self.spans[hi - 1].1.max(end));
        self.spans.splice(lo..hi, std::iter::once(merged));
    }

    /// Total length of the union.
    pub fn total_ns(&self) -> u64 {
        self.spans.iter().map(|&(s, e)| e - s).sum()
    }

    /// Number of disjoint spans (telemetry/tests).
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.spans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(func: u64) -> CommandKind {
        CommandKind::Kernel { func }
    }

    #[test]
    fn queue_serializes_work_in_issue_order() {
        let mut q = CommandQueue::default();
        let a = q.enqueue(100, 1, k(7), 50);
        assert_eq!((a.starts_at_ns, a.completes_at_ns), (100, 150));
        // Second op enqueued while the first still runs: starts at 150.
        let b = q.enqueue(120, 2, k(7), 30);
        assert_eq!((b.starts_at_ns, b.completes_at_ns), (150, 180));
        // After an idle gap, work starts at now.
        let c = q.enqueue(500, 3, k(7), 10);
        assert_eq!((c.starts_at_ns, c.completes_at_ns), (500, 510));
        assert_eq!(q.ops_enqueued, 3);
        assert_eq!(q.frontier_ns(), 510);
    }

    #[test]
    fn wait_time_counts_down_to_zero() {
        let mut q = CommandQueue::default();
        q.enqueue(0, 1, k(1), 1000);
        assert_eq!(q.wait_ns(200), 800);
        assert_eq!(q.wait_ns(1000), 0);
        assert_eq!(q.wait_ns(2000), 0);
    }

    #[test]
    fn retire_is_strictly_in_issue_order_and_time_gated() {
        let mut q = CommandQueue::default();
        q.enqueue(0, 10, k(1), 100);
        q.enqueue(0, 11, k(2), 100);
        q.enqueue(0, 12, k(3), 100);
        let mut out = Vec::new();
        q.retire_until(99, 5, &mut out);
        assert!(out.is_empty(), "nothing complete before t=100");
        q.retire_until(250, 5, &mut out);
        let seqs: Vec<u64> = out.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![10, 11], "first two complete at 100 and 200");
        assert_eq!(out[0].stream, 5);
        assert_eq!(q.pending_len(), 1);
        q.retire_until(300, 5, &mut out);
        assert_eq!(out.last().unwrap().seq, 12);
        assert_eq!(q.ops_retired, 3);
    }

    #[test]
    fn two_queues_overlap_instead_of_summing() {
        // 1000 ns of work on each of two streams, enqueued at t=0:
        // both complete at t=1000; the device is busy 1000 ns, not 2000.
        let mut q0 = CommandQueue::default();
        let mut q1 = CommandQueue::default();
        q0.enqueue(0, 1, k(1), 1000);
        q1.enqueue(0, 2, k(2), 1000);
        let device_done = q0.frontier_ns().max(q1.frontier_ns());
        assert_eq!(device_done, 1000);
        let serial_sum = 2000;
        assert!(device_done < serial_sum);
    }

    #[test]
    fn interval_union_merges_overlaps() {
        let mut u = IntervalUnion::default();
        u.add(0, 100);
        u.add(50, 150); // overlaps → [0,150)
        u.add(200, 300); // disjoint
        u.add(150, 200); // bridges the gap → [0,300)
        assert_eq!(u.total_ns(), 300);
        assert_eq!(u.span_count(), 1);
        u.add(400, 400); // empty interval ignored
        assert_eq!(u.span_count(), 1);
        u.add(500, 600);
        assert_eq!(u.total_ns(), 400);
        assert_eq!(u.span_count(), 2);
    }

    #[test]
    fn interval_union_out_of_order_inserts() {
        let mut u = IntervalUnion::default();
        u.add(300, 400);
        u.add(0, 50);
        u.add(100, 200);
        assert_eq!(u.total_ns(), 250);
        assert_eq!(u.span_count(), 3);
        // A span swallowing everything.
        u.add(0, 500);
        assert_eq!(u.total_ns(), 500);
        assert_eq!(u.span_count(), 1);
    }

    #[test]
    fn overlap_factor_from_union() {
        // Two streams, staggered: s0 busy [0,1000), s1 busy [500,1500).
        let mut u = IntervalUnion::default();
        u.add(0, 1000);
        u.add(500, 1500);
        let span = u.total_ns(); // 1500
        let sum = 1000 + 1000; // 2000
        assert_eq!(span, 1500);
        assert!(sum as f64 / span as f64 > 1.3);
    }
}
