//! The device facade: the driver-level API the Cricket server calls.
//!
//! The device is split into **shared state** (memory, modules, functions,
//! events, the memo cache) and **per-stream [`CommandQueue`]s** holding work
//! in flight. Asynchronous operations (kernel launches, async copies,
//! memsets, library routines) *enqueue*: they cost the host only a small
//! submission fee (returned in a [`Submit`] receipt) while the device-time
//! cost rides the stream's virtual timeline. Synchronization points
//! (stream/event/device synchronize, sync D2H copies, frees) *wait*: they
//! return the nanoseconds the host must block until the relevant timeline
//! drains. Commands retire strictly in issue order per stream; overlapping
//! work on different streams costs the device the max, not the sum, of the
//! timelines.
//!
//! Everything is charged to the shared virtual clock by the caller (the
//! Cricket server service), so identical workloads produce identical
//! timelines — determinism is part of the contract.

use crate::error::{VgpuError, VgpuResult};
use crate::kernels::{self, Dim3, LaunchConfig, Params};
use crate::memory::MemoryManager;
use crate::module::Cubin;
use crate::properties::DeviceProperties;
use crate::queue::{CommandKind, CommandQueue, IntervalUnion, Retired, Submit};
use crate::stream::EventState;
use crate::timemodel::{kernel_duration_ns, Workload};
use simnet::SimClock;
use std::collections::HashMap;
use std::sync::Arc;

/// First value handed out for module/function/stream/event handles.
/// Distinct ranges make stray-handle bugs visible in logs.
const HANDLE_BASE: u64 = 0x10;

/// Submission cost of a kernel launch on the device front-end (ns).
const KERNEL_SUBMIT_NS: u64 = 600;
/// Submission cost of an async copy/memset/library enqueue (ns).
const ENQUEUE_SUBMIT_NS: u64 = 500;
/// Retired-command log high-water mark; oldest entries are dropped beyond
/// this so long-running servers don't grow without bound.
const RETIRED_LOG_CAP: usize = 4096;

/// Execution statistics (memoization effectiveness, launch counts).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Kernel launches requested.
    pub launches: u64,
    /// Launches satisfied from the memo cache (time advanced, no compute).
    pub memo_hits: u64,
    /// Total device-time nanoseconds of all enqueued work.
    pub device_time_ns: u64,
}

struct FunctionEntry {
    module: u64,
    builtin: &'static kernels::Builtin,
}

#[derive(Hash, PartialEq, Eq, Clone)]
struct MemoKey {
    func: u64,
    params: Vec<u8>,
    input_versions: Vec<u64>,
}

struct MemoEntry {
    /// (base pointer, version after execution) for every written range.
    out_versions: Vec<(u64, u64)>,
}

/// A simulated GPU device.
pub struct Device {
    props: DeviceProperties,
    /// Device memory (public for the solver/BLAS libraries, which run
    /// server-side against device memory like their CUDA namesakes).
    pub mem: MemoryManager,
    clock: Arc<SimClock>,
    modules: HashMap<u64, Cubin>,
    functions: HashMap<u64, FunctionEntry>,
    streams: HashMap<u64, CommandQueue>,
    events: HashMap<u64, EventState>,
    next_handle: u64,
    memo: HashMap<MemoKey, MemoEntry>,
    /// Device-global issue sequence; total order over all enqueues.
    issue_seq: u64,
    /// Completed commands, retired in per-stream issue order.
    retired: Vec<Retired>,
    /// Union of busy intervals of retired commands (overlap telemetry).
    busy: IntervalUnion,
    /// Execution statistics.
    pub stats: ExecStats,
}

impl Device {
    /// Create a device with the given properties on a shared clock.
    pub fn new(props: DeviceProperties, clock: Arc<SimClock>) -> Self {
        Self::with_bases(props, clock, crate::memory::HEAP_BASE, HANDLE_BASE)
    }

    /// Create a device with explicit heap/handle address bases. Multi-GPU
    /// servers give each device disjoint ranges so that any pointer or
    /// handle identifies its device.
    pub fn with_bases(
        props: DeviceProperties,
        clock: Arc<SimClock>,
        heap_base: u64,
        handle_base: u64,
    ) -> Self {
        let mem = MemoryManager::with_base(props.total_global_mem, heap_base);
        let mut streams = HashMap::new();
        streams.insert(0, CommandQueue::default()); // default stream
        Self {
            props,
            mem,
            clock,
            modules: HashMap::new(),
            functions: HashMap::new(),
            streams,
            events: HashMap::new(),
            next_handle: handle_base.max(HANDLE_BASE),
            memo: HashMap::new(),
            issue_seq: 0,
            retired: Vec::new(),
            busy: IntervalUnion::default(),
            stats: ExecStats::default(),
        }
    }

    /// An A100 on a fresh clock (tests, examples).
    pub fn a100() -> Self {
        Self::new(DeviceProperties::a100(), SimClock::new())
    }

    /// Device properties.
    pub fn properties(&self) -> &DeviceProperties {
        &self.props
    }

    /// The clock this device charges time to.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    fn new_handle(&mut self) -> u64 {
        let h = self.next_handle;
        self.next_handle += 1;
        h
    }

    fn next_seq(&mut self) -> u64 {
        self.issue_seq += 1;
        self.issue_seq
    }

    /// (free, total) device memory.
    pub fn mem_info(&self) -> (u64, u64) {
        (self.mem.free_bytes(), self.mem.total())
    }

    // -- observation / retirement ----------------------------------------

    /// Retire every command whose completion time has passed on the shared
    /// clock, in issue order per stream. Called at the top of device entry
    /// points so the retired log and busy span track the clock.
    pub fn observe(&mut self) {
        let now = self.clock.now_ns();
        let mut batch = Vec::new();
        // Deterministic iteration: stream handle order.
        let mut handles: Vec<u64> = self.streams.keys().copied().collect();
        handles.sort_unstable();
        for h in handles {
            let q = self.streams.get_mut(&h).expect("handle from keys");
            q.retire_until(now, h, &mut batch);
        }
        // Global retire order: by completion time, ties by issue seq.
        batch.sort_by_key(|r| (r.completes_at_ns, r.seq));
        for r in &batch {
            self.busy.add(r.starts_at_ns, r.completes_at_ns);
        }
        self.retired.extend(batch);
        if self.retired.len() > RETIRED_LOG_CAP {
            let excess = self.retired.len() - RETIRED_LOG_CAP;
            self.retired.drain(..excess);
        }
    }

    /// Drain the retired-command log (retires completed work first).
    pub fn take_retired(&mut self) -> Vec<Retired> {
        self.observe();
        std::mem::take(&mut self.retired)
    }

    /// Commands enqueued but not yet retired across all streams.
    pub fn pending_ops(&self) -> usize {
        self.streams.values().map(|q| q.pending_len()).sum()
    }

    /// Total virtual time during which at least one stream had work running,
    /// counting work enqueued so far (pending commands included). Comparing
    /// this to the sum of per-command durations measures cross-stream
    /// overlap.
    pub fn busy_span_ns(&mut self) -> u64 {
        self.observe();
        let mut u = self.busy.clone();
        for q in self.streams.values() {
            for c in q.iter_pending() {
                u.add(c.starts_at_ns, c.completes_at_ns);
            }
        }
        u.total_ns()
    }

    /// Whether `handle` names a live stream.
    pub fn has_stream(&self, handle: u64) -> bool {
        self.streams.contains_key(&handle)
    }

    fn queue_mut(&mut self, stream: u64) -> VgpuResult<&mut CommandQueue> {
        self.streams
            .get_mut(&stream)
            .ok_or(VgpuError::InvalidHandle(stream))
    }

    /// Enqueue `duration_ns` on `stream`, charging device-time stats.
    fn enqueue_on(
        &mut self,
        stream: u64,
        kind: CommandKind,
        duration_ns: u64,
        submit_ns: u64,
    ) -> VgpuResult<Submit> {
        let now = self.clock.now_ns();
        let seq = self.next_seq();
        let q = self.queue_mut(stream)?;
        let cmd = q.enqueue(now, seq, kind, duration_ns);
        self.stats.device_time_ns += duration_ns;
        Ok(Submit {
            stream,
            seq,
            submit_ns,
            queued_ns: duration_ns,
            completes_at_ns: cmd.completes_at_ns,
        })
    }

    // -- memory ---------------------------------------------------------

    /// cudaMalloc. Returns (pointer, device-time ns).
    pub fn malloc(&mut self, size: u64) -> VgpuResult<(u64, u64)> {
        let ptr = self.mem.alloc(size)?;
        // Driver-side bookkeeping: page-table and allocator work, roughly
        // constant (cudaMalloc is ~10 µs on real systems; most of that is
        // host driver time which the server-exec model charges separately).
        Ok((ptr, 1_500))
    }

    /// cudaFree. Returns device-time ns (including the implicit
    /// synchronization with all outstanding work, as on real devices).
    /// `cudaFree(0)` is a valid no-op (the classic context-init idiom).
    pub fn free(&mut self, ptr: u64) -> VgpuResult<u64> {
        if ptr == 0 {
            return Ok(500);
        }
        self.observe();
        let wait = self.wait_all_ns();
        self.mem.free(ptr)?;
        Ok(1_000 + wait)
    }

    /// Synchronous cudaMemcpy host→device on the default stream.
    /// Returns the wait in ns until the transfer completes.
    pub fn memcpy_htod(&mut self, dst: u64, data: &[u8]) -> VgpuResult<u64> {
        let sub = self.memcpy_htod_stream(dst, data, 0)?;
        Ok(sub.completes_at_ns.saturating_sub(self.clock.now_ns()))
    }

    /// cudaMemcpy host→device ordered on `stream`: the transfer is enqueued
    /// behind prior work on the stream. The returned [`Submit`] carries the
    /// completion time; a synchronous caller blocks until then (CUDA's
    /// sync-memcpy contract).
    pub fn memcpy_htod_stream(&mut self, dst: u64, data: &[u8], stream: u64) -> VgpuResult<Submit> {
        self.observe();
        self.mem.write(dst, data)?;
        let dur = self.pcie_ns(data.len());
        self.enqueue_on(
            stream,
            CommandKind::MemcpyH2D {
                bytes: data.len() as u64,
            },
            dur,
            0,
        )
    }

    /// Synchronous cudaMemcpy device→host on the default stream.
    /// Returns (bytes, wait ns).
    pub fn memcpy_dtoh(&mut self, src: u64, len: u64) -> VgpuResult<(Vec<u8>, u64)> {
        let (bytes, sub) = self.memcpy_dtoh_stream(src, len, 0)?;
        let wait = sub.completes_at_ns.saturating_sub(self.clock.now_ns());
        Ok((bytes, wait))
    }

    /// cudaMemcpy device→host ordered on `stream`: waits for prior work on
    /// the stream, then the PCIe transfer (the "sync D2H memcpy waits" rule
    /// — the only memcpy that must always block).
    pub fn memcpy_dtoh_stream(
        &mut self,
        src: u64,
        len: u64,
        stream: u64,
    ) -> VgpuResult<(Vec<u8>, Submit)> {
        self.observe();
        let bytes = self.mem.read(src, len)?.to_vec();
        let dur = self.pcie_ns(bytes.len());
        let sub = self.enqueue_on(
            stream,
            CommandKind::MemcpyD2H {
                bytes: bytes.len() as u64,
            },
            dur,
            0,
        )?;
        Ok((bytes, sub))
    }

    /// cudaMemcpy device→device: asynchronous, enqueued on `stream`.
    pub fn memcpy_dtod(&mut self, dst: u64, src: u64, len: u64, stream: u64) -> VgpuResult<Submit> {
        self.observe();
        self.mem.copy_dtod(dst, src, len)?;
        // On-device copy at memory bandwidth (read + write).
        let dur = kernel_duration_ns(&self.props, &Workload::memory(2.0 * len as f64));
        self.enqueue_on(
            stream,
            CommandKind::MemcpyD2D { bytes: len },
            dur,
            ENQUEUE_SUBMIT_NS,
        )
    }

    /// cudaMemset: asynchronous, enqueued on `stream`.
    pub fn memset(&mut self, ptr: u64, value: i32, len: u64, stream: u64) -> VgpuResult<Submit> {
        self.observe();
        self.mem.memset(ptr, value as u8, len)?;
        let dur = kernel_duration_ns(&self.props, &Workload::memory(len as f64));
        self.enqueue_on(
            stream,
            CommandKind::Memset { bytes: len },
            dur,
            ENQUEUE_SUBMIT_NS,
        )
    }

    /// Enqueue a library routine (cuBLAS / cuSOLVER / cuFFT) whose result
    /// was just computed server-side: the device-time cost rides `stream`'s
    /// timeline instead of blocking the host.
    pub fn enqueue_library(
        &mut self,
        stream: u64,
        what: &'static str,
        duration_ns: u64,
    ) -> VgpuResult<Submit> {
        self.observe();
        self.enqueue_on(
            stream,
            CommandKind::Library { what },
            duration_ns,
            ENQUEUE_SUBMIT_NS,
        )
    }

    fn pcie_ns(&self, bytes: usize) -> u64 {
        (bytes as f64 / self.props.pcie_bandwidth_bps as f64 * 1e9) as u64
    }

    // -- modules --------------------------------------------------------

    /// cuModuleLoadData: parse (and decompress) a cubin image, resolving
    /// each exported kernel against the builtin registry.
    pub fn module_load(&mut self, image: &[u8]) -> VgpuResult<(u64, u64)> {
        let cubin = Cubin::parse(image)?;
        for k in &cubin.kernels {
            let b = kernels::lookup(&k.name).ok_or_else(|| {
                VgpuError::BadModule(format!("kernel `{}` has no device implementation", k.name))
            })?;
            if b.param_count != k.param_sizes.len() {
                return Err(VgpuError::BadModule(format!(
                    "kernel `{}` declares {} params, device expects {}",
                    k.name,
                    k.param_sizes.len(),
                    b.param_count
                )));
            }
        }
        let h = self.new_handle();
        // JIT/verification cost scales with image size.
        let t = 20_000 + (image.len() as u64) / 64;
        self.modules.insert(h, cubin);
        Ok((h, t))
    }

    /// cuModuleGetFunction.
    pub fn module_get_function(&mut self, module: u64, name: &str) -> VgpuResult<(u64, u64)> {
        let cubin = self
            .modules
            .get(&module)
            .ok_or(VgpuError::InvalidHandle(module))?;
        let meta = cubin
            .kernel(name)
            .ok_or_else(|| VgpuError::BadModule(format!("no kernel `{name}` in module")))?;
        let builtin = kernels::lookup(&meta.name).expect("validated at load");
        let h = self.new_handle();
        self.functions.insert(h, FunctionEntry { module, builtin });
        Ok((h, 800))
    }

    /// cuModuleUnload. Invalidate the module's functions too.
    pub fn module_unload(&mut self, module: u64) -> VgpuResult<u64> {
        if self.modules.remove(&module).is_none() {
            return Err(VgpuError::InvalidHandle(module));
        }
        self.functions.retain(|_, f| f.module != module);
        Ok(2_000)
    }

    // -- launches -------------------------------------------------------

    /// cuLaunchKernel: enqueue a kernel on a stream. Returns a [`Submit`]
    /// receipt; the host pays only `submit_ns`, the kernel itself runs "on
    /// the device", advancing the stream's timeline by its duration.
    pub fn launch_kernel(
        &mut self,
        func: u64,
        grid: Dim3,
        block: Dim3,
        shared_mem: u32,
        stream: u64,
        params: &[u8],
    ) -> VgpuResult<Submit> {
        self.observe();
        let entry = self
            .functions
            .get(&func)
            .ok_or(VgpuError::InvalidHandle(func))?;
        let builtin = entry.builtin;
        if !self.streams.contains_key(&stream) {
            return Err(VgpuError::InvalidHandle(stream));
        }
        if block.count() > self.props.max_threads_per_block as u64 || block.count() == 0 {
            return Err(VgpuError::InvalidValue(format!(
                "block of {} threads invalid (max {})",
                block.count(),
                self.props.max_threads_per_block
            )));
        }
        if grid.count() == 0 {
            return Err(VgpuError::InvalidValue("empty grid".into()));
        }
        let cfg = LaunchConfig {
            grid,
            block,
            shared_mem,
            stream,
        };
        let p = Params::new(params)?;
        if p.len() != builtin.param_count {
            return Err(VgpuError::InvalidValue(format!(
                "kernel `{}` expects {} params, got {}",
                builtin.name,
                builtin.param_count,
                p.len()
            )));
        }

        let access = (builtin.analyze)(&cfg, p)?;
        let duration = kernel_duration_ns(&self.props, &access.workload);

        // Memoization: identical launch on identical inputs whose outputs
        // still hold the previous result → pure time accounting.
        let input_versions: Vec<u64> = access
            .reads
            .iter()
            .map(|&(ptr, _)| self.mem.version_of(ptr))
            .collect::<VgpuResult<_>>()?;
        let key = MemoKey {
            func,
            params: params.to_vec(),
            input_versions,
        };
        let cache_ok = self.memo.get(&key).is_some_and(|entry| {
            entry
                .out_versions
                .iter()
                .all(|&(ptr, v)| self.mem.version_of(ptr) == Ok(v))
        });

        self.stats.launches += 1;
        if cache_ok {
            self.stats.memo_hits += 1;
        } else {
            (builtin.execute)(&mut self.mem, &cfg, p)?;
            let out_versions = access
                .writes
                .iter()
                .map(|&(ptr, _)| Ok((ptr, self.mem.version_of(ptr)?)))
                .collect::<VgpuResult<Vec<_>>>()?;
            self.memo.insert(key, MemoEntry { out_versions });
        }

        self.enqueue_on(
            stream,
            CommandKind::Kernel { func },
            duration,
            KERNEL_SUBMIT_NS,
        )
    }

    /// Remaining wait for a stream, without consuming it.
    fn stream_wait(&self, stream: u64) -> u64 {
        self.streams
            .get(&stream)
            .map(|q| q.wait_ns(self.clock.now_ns()))
            .unwrap_or(0)
    }

    /// Remaining wait until every stream drains.
    fn wait_all_ns(&self) -> u64 {
        let now = self.clock.now_ns();
        self.streams
            .values()
            .map(|q| q.wait_ns(now))
            .max()
            .unwrap_or(0)
    }

    // -- checkpoint/restore support --------------------------------------
    //
    // These APIs exist for the Cricket server's checkpoint/restart feature:
    // a snapshot must restore handles at their original values so clients
    // holding them keep working after a restore.

    /// Enumerate loaded modules as (handle, reserialized image).
    pub fn snapshot_modules(&self) -> Vec<(u64, Vec<u8>)> {
        let mut out: Vec<(u64, Vec<u8>)> = self
            .modules
            .iter()
            .map(|(&h, cubin)| {
                let mut b = crate::module::CubinBuilder::new().code(&cubin.code);
                for k in &cubin.kernels {
                    b = b.kernel(&k.name, &k.param_sizes);
                }
                for g in &cubin.globals {
                    b = b.global(&g.name, g.size);
                }
                (h, b.build(false))
            })
            .collect();
        out.sort_by_key(|&(h, _)| h);
        out
    }

    /// Enumerate function handles as (handle, module handle, kernel name).
    pub fn snapshot_functions(&self) -> Vec<(u64, u64, String)> {
        let mut out: Vec<(u64, u64, String)> = self
            .functions
            .iter()
            .map(|(&h, f)| (h, f.module, f.builtin.name.to_string()))
            .collect();
        out.sort_by_key(|&(h, _, _)| h);
        out
    }

    /// Enumerate stream handles (excluding the default stream).
    pub fn snapshot_streams(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.streams.keys().copied().filter(|&h| h != 0).collect();
        v.sort_unstable();
        v
    }

    /// Enumerate event handles.
    pub fn snapshot_events(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.events.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Next handle value (to restore the counter).
    pub fn next_handle_value(&self) -> u64 {
        self.next_handle
    }

    /// Restore-only: place a module at an exact handle.
    pub fn restore_module(&mut self, handle: u64, image: &[u8]) -> VgpuResult<()> {
        let cubin = Cubin::parse(image)?;
        self.modules.insert(handle, cubin);
        Ok(())
    }

    /// Restore-only: place a function handle.
    pub fn restore_function(&mut self, handle: u64, module: u64, name: &str) -> VgpuResult<()> {
        if !self.modules.contains_key(&module) {
            return Err(VgpuError::InvalidHandle(module));
        }
        let builtin = kernels::lookup(name)
            .ok_or_else(|| VgpuError::BadModule(format!("unknown kernel `{name}`")))?;
        self.functions
            .insert(handle, FunctionEntry { module, builtin });
        Ok(())
    }

    /// Restore-only: place a stream handle.
    pub fn restore_stream(&mut self, handle: u64) {
        self.streams.insert(handle, CommandQueue::default());
    }

    /// Restore-only: place an event handle.
    pub fn restore_event(&mut self, handle: u64) {
        self.events.insert(handle, EventState::default());
    }

    /// Restore-only: set the handle counter.
    pub fn restore_next_handle(&mut self, next: u64) {
        self.next_handle = next.max(HANDLE_BASE);
    }

    // -- live-migration support -------------------------------------------
    //
    // Migration streams an incremental checkpoint while the source keeps
    // serving, then fences all streams (the CRAC-style snapshot barrier) and
    // ships per-stream completion frontiers + event timestamps so the
    // destination's virtual timeline continues byte-identically.

    /// Enumerate every stream's completion frontier, *including* the default
    /// stream 0 (whose existence is implicit and not listed by
    /// [`snapshot_streams`]).
    pub fn snapshot_stream_frontiers(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self
            .streams
            .iter()
            .map(|(&h, q)| (h, q.frontier_ns()))
            .collect();
        v.sort_unstable();
        v
    }

    /// Restore-only: place a stream at an exact completion frontier. The
    /// stream is (re)created idle; see [`CommandQueue::restore_frontier`].
    pub fn restore_stream_at(&mut self, handle: u64, frontier_ns: u64) {
        let q = self.streams.entry(handle).or_default();
        if !q.restore_frontier(frontier_ns) {
            // A non-idle queue here means restore ran on a live device; fence
            // it first so the frontier restore is well-defined.
            q.retire_until(u64::MAX, handle, &mut self.retired);
            let q = self.streams.get_mut(&handle).expect("just inserted");
            let _ = q.restore_frontier(frontier_ns);
        }
    }

    /// Enumerate event record timestamps as (handle, recorded_at_ns).
    pub fn snapshot_event_states(&self) -> Vec<(u64, Option<u64>)> {
        let mut v: Vec<(u64, Option<u64>)> = self
            .events
            .iter()
            .map(|(&h, e)| (h, e.recorded_at_ns))
            .collect();
        v.sort_unstable();
        v
    }

    /// Restore-only: place an event with an exact recorded timestamp.
    pub fn restore_event_at(&mut self, handle: u64, recorded_at_ns: Option<u64>) {
        self.events.insert(handle, EventState { recorded_at_ns });
    }

    /// Snapshot barrier: force-retire all pending commands on every stream.
    ///
    /// Execution in this engine is eager (memory effects land at enqueue;
    /// queues only model device *time*), so fencing cannot change memory —
    /// it guarantees the final migration delta is taken with zero commands
    /// in flight. Returns the post-fence device completion frontier.
    pub fn fence_all_streams(&mut self) -> u64 {
        let mut handles: Vec<u64> = self.streams.keys().copied().collect();
        handles.sort_unstable();
        for h in handles {
            if let Some(q) = self.streams.get_mut(&h) {
                q.retire_until(u64::MAX, h, &mut self.retired);
            }
        }
        self.streams
            .values()
            .map(|q| q.frontier_ns())
            .max()
            .unwrap_or(0)
    }

    /// Total pending commands across all streams (migration barrier check).
    pub fn pending_commands(&self) -> usize {
        self.streams.values().map(|q| q.pending_len()).sum()
    }

    // -- streams & events -------------------------------------------------

    /// cudaStreamCreate.
    pub fn stream_create(&mut self) -> (u64, u64) {
        let h = self.new_handle();
        self.streams.insert(h, CommandQueue::default());
        (h, 900)
    }

    /// cudaStreamDestroy (waits for pending work, like CUDA). Pending
    /// commands are deemed complete once the wait elapses, so they are
    /// force-retired into the log rather than lost.
    pub fn stream_destroy(&mut self, stream: u64) -> VgpuResult<u64> {
        if stream == 0 {
            return Err(VgpuError::InvalidValue(
                "cannot destroy default stream".into(),
            ));
        }
        self.observe();
        let wait = self.stream_wait(stream);
        let mut q = self
            .streams
            .remove(&stream)
            .ok_or(VgpuError::InvalidHandle(stream))?;
        q.retire_until(u64::MAX, stream, &mut self.retired);
        Ok(500 + wait)
    }

    /// cudaStreamSynchronize: returns the wait time the host must spend.
    pub fn stream_synchronize(&mut self, stream: u64) -> VgpuResult<u64> {
        self.observe();
        if !self.streams.contains_key(&stream) {
            return Err(VgpuError::InvalidHandle(stream));
        }
        Ok(self.stream_wait(stream))
    }

    /// cudaDeviceSynchronize: wait for all streams.
    pub fn device_synchronize(&mut self) -> u64 {
        self.observe();
        self.wait_all_ns()
    }

    /// cudaDeviceReset: drop all state.
    pub fn device_reset(&mut self) -> u64 {
        let wait = self.device_synchronize();
        // Pending work is deemed complete after the wait; keep the log
        // coherent before dropping the queues.
        for (&h, q) in self.streams.iter_mut() {
            q.retire_until(u64::MAX, h, &mut self.retired);
        }
        let total = self.props.total_global_mem;
        self.mem = MemoryManager::new(total);
        self.modules.clear();
        self.functions.clear();
        self.streams.clear();
        self.streams.insert(0, CommandQueue::default());
        self.events.clear();
        self.memo.clear();
        wait + 50_000
    }

    /// cudaEventCreate.
    pub fn event_create(&mut self) -> (u64, u64) {
        let h = self.new_handle();
        self.events.insert(h, EventState::default());
        (h, 400)
    }

    /// cudaEventDestroy.
    pub fn event_destroy(&mut self, event: u64) -> VgpuResult<u64> {
        self.events
            .remove(&event)
            .ok_or(VgpuError::InvalidHandle(event))?;
        Ok(300)
    }

    /// cudaEventRecord: capture the stream's completion frontier. The event
    /// "completes" when the stream drains past everything enqueued before
    /// the record — enqueue semantics, no host wait.
    pub fn event_record(&mut self, event: u64, stream: u64) -> VgpuResult<u64> {
        let frontier = self
            .streams
            .get(&stream)
            .ok_or(VgpuError::InvalidHandle(stream))?
            .frontier_ns()
            .max(self.clock.now_ns());
        let e = self
            .events
            .get_mut(&event)
            .ok_or(VgpuError::InvalidHandle(event))?;
        e.record(frontier);
        Ok(400)
    }

    /// cudaEventSynchronize: wait until the event's timestamp.
    pub fn event_synchronize(&mut self, event: u64) -> VgpuResult<u64> {
        let e = self
            .events
            .get(&event)
            .ok_or(VgpuError::InvalidHandle(event))?;
        Ok(e.recorded_at_ns
            .map(|t| t.saturating_sub(self.clock.now_ns()))
            .unwrap_or(0))
    }

    /// cudaEventElapsedTime in milliseconds.
    pub fn event_elapsed_ms(&self, start: u64, stop: u64) -> VgpuResult<f32> {
        let a = self
            .events
            .get(&start)
            .ok_or(VgpuError::InvalidHandle(start))?;
        let b = self
            .events
            .get(&stop)
            .ok_or(VgpuError::InvalidHandle(stop))?;
        EventState::elapsed_ms(a, b)
            .ok_or_else(|| VgpuError::InvalidValue("event not recorded".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::ParamBuilder;
    use crate::memory::{bytes_to_f32, f32_to_bytes};
    use crate::module::CubinBuilder;

    fn loaded_device() -> (Device, u64) {
        let mut d = Device::a100();
        let image = CubinBuilder::new()
            .kernel("vectorAdd", &[8, 8, 8, 4])
            .kernel("matrixMulCUDA", &[8, 8, 8, 4, 4])
            .kernel("empty", &[])
            .code(b"sass")
            .build(true);
        let (module, _) = d.module_load(&image).unwrap();
        (d, module)
    }

    #[test]
    fn module_load_and_function_lookup() {
        let (mut d, module) = loaded_device();
        let (f, _) = d.module_get_function(module, "vectorAdd").unwrap();
        assert!(f >= HANDLE_BASE);
        assert!(d.module_get_function(module, "missing").is_err());
        assert!(d.module_get_function(999, "vectorAdd").is_err());
    }

    #[test]
    fn module_with_unknown_kernel_rejected() {
        let mut d = Device::a100();
        let image = CubinBuilder::new()
            .kernel("notARealKernel", &[8])
            .build(false);
        assert!(matches!(
            d.module_load(&image),
            Err(VgpuError::BadModule(_))
        ));
    }

    #[test]
    fn module_with_wrong_param_count_rejected() {
        let mut d = Device::a100();
        let image = CubinBuilder::new()
            .kernel("vectorAdd", &[8, 8])
            .build(false);
        assert!(d.module_load(&image).is_err());
    }

    #[test]
    fn unload_invalidates_functions() {
        let (mut d, module) = loaded_device();
        let (f, _) = d.module_get_function(module, "empty").unwrap();
        d.module_unload(module).unwrap();
        let err = d
            .launch_kernel(f, Dim3::one(), Dim3::one(), 0, 0, &[])
            .unwrap_err();
        assert!(matches!(err, VgpuError::InvalidHandle(_)));
    }

    #[test]
    fn end_to_end_vector_add() {
        let (mut d, module) = loaded_device();
        let (f, _) = d.module_get_function(module, "vectorAdd").unwrap();
        let n = 256u64;
        let (a, _) = d.malloc(n * 4).unwrap();
        let (b, _) = d.malloc(n * 4).unwrap();
        let (c, _) = d.malloc(n * 4).unwrap();
        d.memcpy_htod(a, &f32_to_bytes(&vec![1.0; n as usize]))
            .unwrap();
        d.memcpy_htod(b, &f32_to_bytes(&vec![2.5; n as usize]))
            .unwrap();
        let params = ParamBuilder::new()
            .ptr(c)
            .ptr(a)
            .ptr(b)
            .u32(n as u32)
            .build();
        d.launch_kernel(f, Dim3::linear(1), Dim3::linear(256), 0, 0, &params)
            .unwrap();
        let wait = d.stream_synchronize(0).unwrap();
        d.clock().advance(wait);
        let (out, _) = d.memcpy_dtoh(c, n * 4).unwrap();
        assert!(bytes_to_f32(&out).iter().all(|&v| v == 3.5));
    }

    #[test]
    fn launch_validates_geometry_and_params() {
        let (mut d, module) = loaded_device();
        let (f, _) = d.module_get_function(module, "empty").unwrap();
        // Too many threads per block.
        assert!(d
            .launch_kernel(
                f,
                Dim3::one(),
                Dim3 {
                    x: 2048,
                    y: 1,
                    z: 1
                },
                0,
                0,
                &[]
            )
            .is_err());
        // Zero grid.
        assert!(d
            .launch_kernel(f, Dim3 { x: 0, y: 1, z: 1 }, Dim3::one(), 0, 0, &[])
            .is_err());
        // Wrong param count.
        assert!(d
            .launch_kernel(f, Dim3::one(), Dim3::one(), 0, 0, &[0u8; 8])
            .is_err());
        // Bad stream handle.
        assert!(d
            .launch_kernel(f, Dim3::one(), Dim3::one(), 0, 777, &[])
            .is_err());
    }

    #[test]
    fn memoization_kicks_in_for_repeated_launches() {
        let (mut d, module) = loaded_device();
        let (f, _) = d.module_get_function(module, "vectorAdd").unwrap();
        let n = 64u64;
        let (a, _) = d.malloc(n * 4).unwrap();
        let (b, _) = d.malloc(n * 4).unwrap();
        let (c, _) = d.malloc(n * 4).unwrap();
        d.memcpy_htod(a, &f32_to_bytes(&vec![1.0; n as usize]))
            .unwrap();
        d.memcpy_htod(b, &f32_to_bytes(&vec![2.0; n as usize]))
            .unwrap();
        let params = ParamBuilder::new()
            .ptr(c)
            .ptr(a)
            .ptr(b)
            .u32(n as u32)
            .build();
        for _ in 0..10 {
            d.launch_kernel(f, Dim3::linear(1), Dim3::linear(64), 0, 0, &params)
                .unwrap();
        }
        assert_eq!(d.stats.launches, 10);
        assert_eq!(d.stats.memo_hits, 9);
        // Rewriting an input invalidates the cache.
        d.memcpy_htod(a, &f32_to_bytes(&vec![5.0; n as usize]))
            .unwrap();
        d.launch_kernel(f, Dim3::linear(1), Dim3::linear(64), 0, 0, &params)
            .unwrap();
        assert_eq!(d.stats.memo_hits, 9);
        let wait = d.device_synchronize();
        d.clock().advance(wait);
        let (out, _) = d.memcpy_dtoh(c, n * 4).unwrap();
        assert!(bytes_to_f32(&out).iter().all(|&v| v == 7.0));
    }

    #[test]
    fn memo_still_charges_device_time() {
        let (mut d, module) = loaded_device();
        let (f, _) = d.module_get_function(module, "empty").unwrap();
        for _ in 0..5 {
            d.launch_kernel(f, Dim3::one(), Dim3::one(), 0, 0, &[])
                .unwrap();
        }
        let per_launch = d.properties().launch_overhead_ns;
        assert_eq!(d.stats.device_time_ns, 5 * per_launch);
    }

    #[test]
    fn streams_and_events_measure_device_time() {
        let (mut d, module) = loaded_device();
        let (f, _) = d.module_get_function(module, "empty").unwrap();
        let (s, _) = d.stream_create();
        let (e0, _) = d.event_create();
        let (e1, _) = d.event_create();
        d.event_record(e0, s).unwrap();
        for _ in 0..3 {
            d.launch_kernel(f, Dim3::one(), Dim3::one(), 0, s, &[])
                .unwrap();
        }
        d.event_record(e1, s).unwrap();
        let ms = d.event_elapsed_ms(e0, e1).unwrap();
        let expected = 3.0 * d.properties().launch_overhead_ns as f32 / 1e6;
        assert!((ms - expected).abs() < 1e-6, "ms={ms} expected={expected}");
        let wait = d.stream_synchronize(s).unwrap();
        assert!(wait > 0);
        d.clock().advance(wait);
        assert_eq!(d.stream_synchronize(s).unwrap(), 0);
        d.event_destroy(e0).unwrap();
        d.event_destroy(e1).unwrap();
        d.stream_destroy(s).unwrap();
        assert!(d.stream_destroy(s).is_err());
    }

    #[test]
    fn default_stream_cannot_be_destroyed() {
        let mut d = Device::a100();
        assert!(d.stream_destroy(0).is_err());
    }

    #[test]
    fn elapsed_on_unrecorded_event_is_error() {
        let mut d = Device::a100();
        let (e0, _) = d.event_create();
        let (e1, _) = d.event_create();
        assert!(d.event_elapsed_ms(e0, e1).is_err());
    }

    #[test]
    fn device_reset_clears_everything() {
        let (mut d, module) = loaded_device();
        let (p, _) = d.malloc(1024).unwrap();
        d.device_reset();
        assert!(d.mem.read(p, 1).is_err());
        assert!(d.module_get_function(module, "empty").is_err());
        assert_eq!(d.mem_info().0, d.mem_info().1);
    }

    #[test]
    fn mem_info_reflects_allocations() {
        let mut d = Device::a100();
        let (free0, total) = d.mem_info();
        assert_eq!(free0, total);
        let (_p, _) = d.malloc(1 << 20).unwrap();
        let (free1, _) = d.mem_info();
        assert_eq!(free0 - free1, 1 << 20);
    }

    // -- async engine ----------------------------------------------------

    #[test]
    fn cross_stream_overlap_is_max_not_sum() {
        let (mut d, module) = loaded_device();
        let (f, _) = d.module_get_function(module, "empty").unwrap();
        let (s1, _) = d.stream_create();
        let (s2, _) = d.stream_create();
        let t0 = d.clock().now_ns();
        let a = d
            .launch_kernel(f, Dim3::one(), Dim3::one(), 0, s1, &[])
            .unwrap();
        let b = d
            .launch_kernel(f, Dim3::one(), Dim3::one(), 0, s2, &[])
            .unwrap();
        let per = d.properties().launch_overhead_ns;
        // Both timelines start at t0: the device finishes both after one
        // kernel duration, not two.
        assert_eq!(a.completes_at_ns, t0 + per);
        assert_eq!(b.completes_at_ns, t0 + per);
        let wait = d.device_synchronize();
        assert_eq!(wait, per, "overlap: max of timelines, not sum");
        d.clock().advance(wait);
        assert_eq!(d.device_synchronize(), 0);
    }

    #[test]
    fn same_stream_commands_retire_in_issue_order() {
        let (mut d, module) = loaded_device();
        let (f, _) = d.module_get_function(module, "empty").unwrap();
        let (s, _) = d.stream_create();
        let mut seqs = Vec::new();
        for _ in 0..4 {
            let sub = d
                .launch_kernel(f, Dim3::one(), Dim3::one(), 0, s, &[])
                .unwrap();
            seqs.push(sub.seq);
        }
        let wait = d.stream_synchronize(s).unwrap();
        d.clock().advance(wait);
        let retired: Vec<_> = d
            .take_retired()
            .into_iter()
            .filter(|r| r.stream == s)
            .map(|r| r.seq)
            .collect();
        assert_eq!(retired, seqs, "retire order == issue order");
    }

    #[test]
    fn partial_retirement_respects_clock() {
        let (mut d, module) = loaded_device();
        let (f, _) = d.module_get_function(module, "empty").unwrap();
        let per = d.properties().launch_overhead_ns;
        for _ in 0..3 {
            d.launch_kernel(f, Dim3::one(), Dim3::one(), 0, 0, &[])
                .unwrap();
        }
        assert_eq!(d.pending_ops(), 3);
        d.clock().advance(per + per / 2); // 1.5 kernels in
        d.observe();
        assert_eq!(d.pending_ops(), 2, "only the first kernel has completed");
        d.clock().advance(2 * per);
        d.observe();
        assert_eq!(d.pending_ops(), 0);
    }

    #[test]
    fn busy_span_counts_overlap_once() {
        let (mut d, module) = loaded_device();
        let (f, _) = d.module_get_function(module, "empty").unwrap();
        let (s1, _) = d.stream_create();
        let (s2, _) = d.stream_create();
        let per = d.properties().launch_overhead_ns;
        d.launch_kernel(f, Dim3::one(), Dim3::one(), 0, s1, &[])
            .unwrap();
        d.launch_kernel(f, Dim3::one(), Dim3::one(), 0, s2, &[])
            .unwrap();
        let span = d.busy_span_ns();
        assert_eq!(span, per, "two overlapped kernels occupy one duration");
        assert_eq!(d.stats.device_time_ns, 2 * per, "but both are charged");
    }

    #[test]
    fn sync_htod_waits_for_prior_stream_work() {
        let (mut d, module) = loaded_device();
        let (f, _) = d.module_get_function(module, "empty").unwrap();
        let (p, _) = d.malloc(64).unwrap();
        let per = d.properties().launch_overhead_ns;
        d.launch_kernel(f, Dim3::one(), Dim3::one(), 0, 0, &[])
            .unwrap();
        let wait = d.memcpy_htod(p, &[0u8; 64]).unwrap();
        assert!(wait >= per, "sync copy is ordered behind the kernel");
    }

    #[test]
    fn enqueue_library_rides_the_stream_timeline() {
        let mut d = Device::a100();
        let (s, _) = d.stream_create();
        let sub = d.enqueue_library(s, "gemm", 10_000).unwrap();
        assert_eq!(sub.queued_ns, 10_000);
        let sub2 = d.enqueue_library(s, "gemm", 5_000).unwrap();
        assert_eq!(sub2.completes_at_ns, sub.completes_at_ns + 5_000);
        assert!(d.enqueue_library(777, "gemm", 1).is_err());
        assert_eq!(d.stream_synchronize(s).unwrap(), 15_000);
    }

    #[test]
    fn fence_then_frontier_restore_continues_the_timeline() {
        // Source device: enqueue work on two streams, fence, snapshot
        // frontiers + event timestamps.
        let mut src = Device::a100();
        let (s, _) = src.stream_create();
        let (ev, _) = src.event_create();
        src.enqueue_library(s, "gemm", 10_000).unwrap();
        src.enqueue_library(0, "gemm", 4_000).unwrap();
        src.event_record(ev, s).unwrap();
        assert!(src.pending_commands() > 0);
        let device_frontier = src.fence_all_streams();
        assert_eq!(src.pending_commands(), 0);
        assert_eq!(device_frontier, 10_000);
        let frontiers = src.snapshot_stream_frontiers();
        assert!(frontiers.contains(&(0, 4_000)));
        assert!(frontiers.contains(&(s, 10_000)));
        let events = src.snapshot_event_states();
        assert_eq!(events, vec![(ev, Some(10_000))]);

        // Destination device built from the snapshot: the next enqueue on
        // each stream lands at the same absolute virtual time the source
        // would have produced.
        let mut dst = Device::a100();
        for &(h, f) in &frontiers {
            dst.restore_stream_at(h, f);
        }
        for &(h, rec) in &events {
            dst.restore_event_at(h, rec);
        }
        let sub = dst.enqueue_library(s, "gemm", 1_000).unwrap();
        assert_eq!(sub.completes_at_ns, 11_000);
        let sub0 = dst.enqueue_library(0, "gemm", 1_000).unwrap();
        assert_eq!(sub0.completes_at_ns, 5_000);
        // Event timestamp survives for elapsed-time queries.
        assert_eq!(dst.snapshot_event_states(), vec![(ev, Some(10_000))]);
    }
}
