//! Fat-binary style compression.
//!
//! NVIDIA compresses the device code inside fatbins/cubins with a
//! proprietary LZ variant; the paper's authors had to reverse-engineer it so
//! Cricket could extract kernel metadata from compressed images
//! (their `cuda-fatbin-decompression` project, reference [2] of the paper).
//! This module reproduces the *mechanism* with an LZSS scheme of our own:
//! the loader must genuinely decompress images before it can read kernel
//! names and parameter layouts.
//!
//! Format: little-endian `u32` uncompressed length, then a token stream of
//! flag bytes (LSB-first; 1 = literal byte follows, 0 = match) where a match
//! is two bytes encoding a 12-bit backward distance (1-based) and a 4-bit
//! length with bias 3 (lengths 4..=18).

use crate::error::{VgpuError, VgpuResult};

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 18;

/// Compress `data` with the LZSS scheme.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());

    // Chained hash table over 3-byte prefixes for match finding.
    const HASH_SIZE: usize = 1 << 13;
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; data.len().max(1)];
    let hash = |d: &[u8]| -> usize {
        ((d[0] as usize) << 6 ^ (d[1] as usize) << 3 ^ (d[2] as usize)) & (HASH_SIZE - 1)
    };

    let mut i = 0;
    let mut flag_pos = None::<usize>;
    let mut flag_bit = 8;
    let push_flag =
        |out: &mut Vec<u8>, bit: bool, flag_pos: &mut Option<usize>, flag_bit: &mut usize| {
            if *flag_bit == 8 {
                out.push(0);
                *flag_pos = Some(out.len() - 1);
                *flag_bit = 0;
            }
            if bit {
                let p = flag_pos.expect("flag byte exists");
                out[p] |= 1 << *flag_bit;
            }
            *flag_bit += 1;
        };

    while i < data.len() {
        let mut best_len = 0;
        let mut best_dist = 0;
        if i + MIN_MATCH <= data.len() {
            let mut cand = head[hash(&data[i..])];
            let mut chain = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chain < 32 {
                let max = (data.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < max && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l == MAX_MATCH {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
        }

        if best_len >= MIN_MATCH {
            push_flag(&mut out, false, &mut flag_pos, &mut flag_bit);
            let dist = (best_dist - 1) as u16; // 12 bits
            let len = (best_len - MIN_MATCH + 1) as u16; // 4 bits, 1..=15
            let word = (dist << 4) | len;
            out.extend_from_slice(&word.to_le_bytes());
            // Insert hash entries for the covered positions.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= data.len() {
                    let h = hash(&data[i..]);
                    prev[i] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
        } else {
            push_flag(&mut out, true, &mut flag_pos, &mut flag_bit);
            out.push(data[i]);
            if i + MIN_MATCH <= data.len() {
                let h = hash(&data[i..]);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    out
}

/// Decompress an LZSS stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> VgpuResult<Vec<u8>> {
    if data.len() < 4 {
        return Err(VgpuError::BadModule("compressed image too short".into()));
    }
    let expected = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
    // Guard against absurd declared sizes relative to the input.
    if expected > data.len().saturating_mul(EXPANSION_LIMIT) + 64 {
        return Err(VgpuError::BadModule(format!(
            "declared size {expected} implausible for {} compressed bytes",
            data.len()
        )));
    }
    let mut out = Vec::with_capacity(expected);
    let mut i = 4;
    while out.len() < expected {
        if i >= data.len() {
            return Err(VgpuError::BadModule("truncated compressed stream".into()));
        }
        let flags = data[i];
        i += 1;
        for bit in 0..8 {
            if out.len() >= expected {
                break;
            }
            if flags & (1 << bit) != 0 {
                let Some(&b) = data.get(i) else {
                    return Err(VgpuError::BadModule("truncated literal".into()));
                };
                out.push(b);
                i += 1;
            } else {
                if i + 1 >= data.len() {
                    return Err(VgpuError::BadModule("truncated match token".into()));
                }
                let word = u16::from_le_bytes([data[i], data[i + 1]]);
                i += 2;
                let dist = (word >> 4) as usize + 1;
                let len = (word & 0xf) as usize + MIN_MATCH - 1;
                if dist > out.len() {
                    return Err(VgpuError::BadModule(format!(
                        "match distance {dist} exceeds output {}",
                        out.len()
                    )));
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}

/// Max plausible expansion ratio (LZSS with 18-byte matches from 2-byte
/// tokens ≈ 9×; allow headroom).
const EXPANSION_LIMIT: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        for data in [
            &b""[..],
            &b"a"[..],
            &b"hello hello hello hello"[..],
            &[0u8; 1000][..],
        ] {
            let c = compress(data);
            assert_eq!(decompress(&c).unwrap(), data);
        }
    }

    #[test]
    fn repetitive_data_compresses() {
        let data: Vec<u8> = b"__cuda_kernel_matrixMul_fp32_tile32"
            .iter()
            .cycle()
            .take(10_000)
            .copied()
            .collect();
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 3,
            "expected >3x compression, got {} -> {}",
            data.len(),
            c.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_data_roundtrips() {
        // Pseudo-random bytes (xorshift) — no exploitable matches.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn truncated_streams_rejected() {
        let data = b"some compressible compressible data".repeat(20);
        let c = compress(&data);
        for cut in [0, 2, 4, 5, c.len() / 2, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn absurd_declared_size_rejected() {
        let mut c = vec![0xff, 0xff, 0xff, 0x7f]; // ~2 GiB declared
        c.push(0xff);
        c.push(b'x');
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn bad_match_distance_rejected() {
        // Declared length 4, first token is a match with distance > output.
        let mut c = (4u32).to_le_bytes().to_vec();
        c.push(0x00); // flags: 8 matches
        c.extend_from_slice(&((100u16) << 4 | 1).to_le_bytes());
        assert!(decompress(&c).is_err());
    }
}
