//! vGPU — a simulated NVIDIA GPU device.
//!
//! The paper evaluates on a real A100 behind the Cricket server. This crate
//! is the substitution (see DESIGN.md §2): a device with
//!
//! * a **device memory manager** ([`memory`]) — first-fit free-list with
//!   CUDA's 256-byte alignment, interior-pointer resolution, double-free
//!   detection and OOM behavior;
//! * a **module system** ([`module`], [`fatbin`]) — a `cubin`-like container
//!   holding kernel metadata (names, parameter layout) and code, optionally
//!   compressed with an LZ scheme the loader must really decompress,
//!   mirroring the paper's compressed-fatbin contribution;
//! * a **kernel registry** ([`kernels`]) — the kernels the proxy apps launch
//!   (vector add, tiled matrix multiply, 64/256-bin histograms, ...) as Rust
//!   functions that *really execute* against device memory, plus an analytic
//!   A100 timing model ([`timemodel`]) charging virtual nanoseconds;
//! * **per-stream command queues and events** ([`queue`], [`stream`]) with
//!   CUDA ordering semantics on the shared [`simnet::SimClock`]: async work
//!   enqueues and retires in issue order per stream, overlapping across
//!   streams; only synchronization points wait;
//! * host-side **libraries** ([`blas`], [`solver`], [`fft`]) standing in
//!   for cuBLAS GEMM, cuSolverDn LU factor/solve and cuFFT 1D transforms,
//!   executing on device memory.
//!
//! The facade is [`Device`]: the driver-level API the Cricket server calls.
//!
//! Because the proxy applications launch the *same* kernel on the *same*
//! inputs tens of thousands of times (exactly like the CUDA samples they
//! port), the device memoizes kernel results keyed by parameter blob and
//! input-buffer versions: the first launch computes, subsequent identical
//! launches only advance the clock. This keeps wall-clock time of the
//! harnesses bounded without changing any observable memory state.

pub mod blas;
pub mod device;
pub mod error;
pub mod fatbin;
pub mod fft;
pub mod kernels;
pub mod memory;
pub mod module;
pub mod properties;
pub mod queue;
pub mod solver;
pub mod stream;
pub mod timemodel;

pub use device::{Device, ExecStats};
pub use error::{CudaCode, VgpuError, VgpuResult};
pub use kernels::{Dim3, LaunchConfig};
pub use memory::DevicePtr;
pub use properties::DeviceProperties;
pub use queue::{Command, CommandKind, CommandQueue, Retired, Submit, SubmitAggregate};
