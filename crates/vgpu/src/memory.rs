//! Device memory manager.
//!
//! A first-fit free-list allocator over a virtual device address space, with
//! CUDA's 256-byte allocation alignment. Each live allocation owns a host
//! `Vec<u8>` as backing store (the address space is 40 GB; backing is
//! allocated lazily per block, so a simulated A100 does not require 40 GB of
//! host RAM). Interior pointers (base + offset) resolve to the containing
//! block, as CUDA permits.
//!
//! Each block carries a monotonically increasing **version**, bumped on every
//! write; the kernel memoization cache uses versions to detect that inputs
//! are unchanged (see crate docs).
//!
//! For live migration the manager also tracks **dirty ranges**: every write
//! records the touched `(offset, len)` span on its block, merged and capped
//! at [`MAX_DIRTY_RANGES`] (overflow collapses to the whole block). Epochs
//! cut the tracking into windows: [`MemoryManager::mark_epoch`] clears all
//! dirty spans, and [`MemoryManager::delta_since`] packages everything that
//! changed since the last mark — freed blocks, new blocks (full bytes), and
//! the dirty spans of surviving blocks — as a [`MemDelta`] that
//! [`MemoryManager::apply_delta`] replays on a destination manager.

use crate::error::{VgpuError, VgpuResult};
use std::collections::{BTreeMap, BTreeSet};

/// A raw device pointer (opaque 64-bit address).
pub type DevicePtr = u64;

/// Base of the device heap. Non-zero so that null is never a valid pointer.
pub const HEAP_BASE: u64 = 0x0100_0000_0000;

/// CUDA allocation alignment.
pub const ALLOC_ALIGN: u64 = 256;

/// Dirty spans tracked per block before collapsing to whole-block. Small on
/// purpose: past this many distinct spans the block is effectively rewritten
/// and a single full-range entry is cheaper than precise bookkeeping.
pub const MAX_DIRTY_RANGES: usize = 32;

/// Sorted, merged `(offset, len)` spans within one block, capped at
/// [`MAX_DIRTY_RANGES`] entries (overflow collapses to one whole-block span).
#[derive(Debug, Default, Clone)]
struct DirtyRanges {
    spans: Vec<(u64, u64)>,
}

impl DirtyRanges {
    fn clear(&mut self) {
        self.spans.clear();
    }

    /// Record `[off, off+len)` as dirty, merging with touching/overlapping
    /// spans. `block_size` bounds the whole-block collapse.
    fn mark(&mut self, off: u64, len: u64, block_size: u64) {
        if len == 0 {
            return;
        }
        // Already collapsed to the whole block: nothing finer to track.
        if self.spans.first() == Some(&(0, block_size)) {
            return;
        }
        let (mut start, mut end) = (off, off + len);
        // Merge every span that overlaps or touches [start, end).
        let mut i = 0;
        while i < self.spans.len() {
            let (s, l) = self.spans[i];
            if s + l < start || s > end {
                i += 1;
                continue;
            }
            start = start.min(s);
            end = end.max(s + l);
            self.spans.remove(i);
        }
        let at = self.spans.partition_point(|&(s, _)| s < start);
        self.spans.insert(at, (start, end - start));
        if self.spans.len() > MAX_DIRTY_RANGES {
            self.spans.clear();
            self.spans.push((0, block_size));
        }
    }

    fn spans(&self) -> &[(u64, u64)] {
        &self.spans
    }
}

#[derive(Debug)]
struct Block {
    size: u64,
    data: Vec<u8>,
    version: u64,
    /// Epoch (see [`MemoryManager::mark_epoch`]) in which this block was
    /// created. A block born in the current window always travels whole in
    /// a delta, even if its base address was seen before (free + realloc at
    /// the same address must not masquerade as an in-place update).
    born_epoch: u64,
    /// Spans written since the last epoch mark.
    dirty: DirtyRanges,
}

/// Device memory state: live allocations + free list.
#[derive(Debug)]
pub struct MemoryManager {
    total: u64,
    /// base address → block
    blocks: BTreeMap<u64, Block>,
    /// start address → length, coalesced
    free_list: BTreeMap<u64, u64>,
    next_version: u64,
    /// Current dirty-tracking window (bumped by [`Self::mark_epoch`]).
    epoch: u64,
    /// Running counters for telemetry and tests.
    pub stats: MemStats,
}

/// Everything that changed on a [`MemoryManager`] since an epoch mark,
/// relative to a `known` set of block bases the consumer already holds:
/// blocks to free, blocks to materialize whole, and in-place dirty spans.
/// Apply order is frees → new blocks → dirty writes (see
/// [`MemoryManager::apply_delta`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MemDelta {
    /// Bases the consumer holds that are gone (or were replaced) here.
    pub freed: Vec<u64>,
    /// Blocks the consumer lacks (or must replace), with full contents.
    pub new_blocks: Vec<(u64, Vec<u8>)>,
    /// `(base, offset, bytes)` in-place updates to surviving blocks.
    pub dirty: Vec<(u64, u64, Vec<u8>)>,
}

impl MemDelta {
    /// Payload bytes this delta moves (block contents + dirty spans; the
    /// metadata framing is negligible next to these).
    pub fn payload_bytes(&self) -> u64 {
        let new: u64 = self.new_blocks.iter().map(|(_, b)| b.len() as u64).sum();
        let dirty: u64 = self.dirty.iter().map(|(_, _, b)| b.len() as u64).sum();
        new + dirty
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.freed.is_empty() && self.new_blocks.is_empty() && self.dirty.is_empty()
    }
}

/// Allocation statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemStats {
    /// Number of successful allocations.
    pub allocs: u64,
    /// Number of successful frees.
    pub frees: u64,
    /// Bytes currently allocated.
    pub bytes_in_use: u64,
    /// High-water mark of bytes in use.
    pub peak_bytes: u64,
}

impl MemoryManager {
    /// Create a manager over `total` bytes of device memory.
    pub fn new(total: u64) -> Self {
        Self::with_base(total, HEAP_BASE)
    }

    /// Create a manager whose address space starts at `base` (multi-GPU
    /// servers give each device a disjoint range so pointers identify their
    /// device).
    pub fn with_base(total: u64, base: u64) -> Self {
        assert!(base > 0, "null must never be a valid pointer");
        let mut free_list = BTreeMap::new();
        free_list.insert(base, total);
        Self {
            total,
            blocks: BTreeMap::new(),
            free_list,
            next_version: 1,
            epoch: 0,
            stats: MemStats::default(),
        }
    }

    /// Lowest address of this device's heap.
    pub fn base(&self) -> u64 {
        // The heap never moves: it is either in the free list or in blocks.
        self.free_list
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.blocks.keys().next().copied().unwrap_or(HEAP_BASE))
            .min(self.blocks.keys().next().copied().unwrap_or(u64::MAX))
    }

    /// Total device memory in bytes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Free device memory in bytes (sum over free list).
    pub fn free_bytes(&self) -> u64 {
        self.free_list.values().sum()
    }

    /// Allocate `size` bytes (first fit, 256-byte aligned). Zero-size
    /// allocations succeed with a unique non-null pointer, like CUDA.
    pub fn alloc(&mut self, size: u64) -> VgpuResult<DevicePtr> {
        let rounded = size.max(1).div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        let slot = self
            .free_list
            .iter()
            .find(|(_, &len)| len >= rounded)
            .map(|(&addr, &len)| (addr, len));
        let Some((addr, len)) = slot else {
            return Err(VgpuError::OutOfMemory {
                requested: size,
                free: self.free_bytes(),
            });
        };
        self.free_list.remove(&addr);
        if len > rounded {
            self.free_list.insert(addr + rounded, len - rounded);
        }
        self.blocks.insert(
            addr,
            Block {
                size: rounded,
                data: vec![0u8; rounded as usize],
                version: self.next_version,
                born_epoch: self.epoch,
                dirty: DirtyRanges::default(),
            },
        );
        self.next_version += 1;
        self.stats.allocs += 1;
        self.stats.bytes_in_use += rounded;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.bytes_in_use);
        Ok(addr)
    }

    /// Free the allocation starting at `ptr`. Freeing a non-base pointer or
    /// double-freeing fails with [`VgpuError::InvalidFree`].
    pub fn free(&mut self, ptr: DevicePtr) -> VgpuResult<()> {
        let Some(block) = self.blocks.remove(&ptr) else {
            return Err(VgpuError::InvalidFree(ptr));
        };
        self.stats.frees += 1;
        self.stats.bytes_in_use -= block.size;
        // Insert into the free list and coalesce with neighbors.
        let mut start = ptr;
        let mut len = block.size;
        if let Some((&prev_start, &prev_len)) = self.free_list.range(..ptr).next_back() {
            if prev_start + prev_len == start {
                self.free_list.remove(&prev_start);
                start = prev_start;
                len += prev_len;
            }
        }
        if let Some(&next_len) = self.free_list.get(&(ptr + block.size)) {
            self.free_list.remove(&(ptr + block.size));
            len += next_len;
        }
        self.free_list.insert(start, len);
        Ok(())
    }

    /// Resolve an interior pointer to (base, offset).
    fn resolve(&self, ptr: DevicePtr) -> VgpuResult<(u64, u64)> {
        let (&base, block) = self
            .blocks
            .range(..=ptr)
            .next_back()
            .ok_or(VgpuError::InvalidPointer(ptr))?;
        let off = ptr - base;
        if off >= block.size {
            return Err(VgpuError::InvalidPointer(ptr));
        }
        Ok((base, off))
    }

    fn check_len(&self, ptr: DevicePtr, len: u64) -> VgpuResult<(u64, u64)> {
        let (base, off) = self.resolve(ptr)?;
        let available = self.blocks[&base].size - off;
        if len > available {
            return Err(VgpuError::OutOfBounds {
                ptr,
                len,
                available,
            });
        }
        Ok((base, off))
    }

    /// Read `len` bytes at `ptr`.
    pub fn read(&self, ptr: DevicePtr, len: u64) -> VgpuResult<&[u8]> {
        let (base, off) = self.check_len(ptr, len)?;
        let block = &self.blocks[&base];
        Ok(&block.data[off as usize..(off + len) as usize])
    }

    /// Write `bytes` at `ptr`, bumping the block version.
    pub fn write(&mut self, ptr: DevicePtr, bytes: &[u8]) -> VgpuResult<()> {
        let (base, off) = self.check_len(ptr, bytes.len() as u64)?;
        let version = self.next_version;
        self.next_version += 1;
        let block = self.blocks.get_mut(&base).expect("resolved");
        block.data[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
        block.version = version;
        block.dirty.mark(off, bytes.len() as u64, block.size);
        Ok(())
    }

    /// Fill `len` bytes at `ptr` with `value` (cudaMemset).
    pub fn memset(&mut self, ptr: DevicePtr, value: u8, len: u64) -> VgpuResult<()> {
        let (base, off) = self.check_len(ptr, len)?;
        let version = self.next_version;
        self.next_version += 1;
        let block = self.blocks.get_mut(&base).expect("resolved");
        block.data[off as usize..(off + len) as usize].fill(value);
        block.version = version;
        block.dirty.mark(off, len, block.size);
        Ok(())
    }

    /// Device-to-device copy (handles distinct blocks; overlapping ranges in
    /// the same block copy through a temporary, like cudaMemcpy semantics).
    pub fn copy_dtod(&mut self, dst: DevicePtr, src: DevicePtr, len: u64) -> VgpuResult<()> {
        let tmp = self.read(src, len)?.to_vec();
        self.write(dst, &tmp)
    }

    /// Current version of the block containing `ptr` (for memoization keys).
    pub fn version_of(&self, ptr: DevicePtr) -> VgpuResult<u64> {
        let (base, _) = self.resolve(ptr)?;
        Ok(self.blocks[&base].version)
    }

    /// Mutable access to a whole region as bytes (kernel execution helper).
    /// Reads then writes back via closure so version accounting stays exact.
    pub fn update<R>(
        &mut self,
        ptr: DevicePtr,
        len: u64,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> VgpuResult<R> {
        let (base, off) = self.check_len(ptr, len)?;
        let version = self.next_version;
        self.next_version += 1;
        let block = self.blocks.get_mut(&base).expect("resolved");
        let r = f(&mut block.data[off as usize..(off + len) as usize]);
        block.version = version;
        block.dirty.mark(off, len, block.size);
        Ok(r)
    }

    /// Enumerate live allocations as (base, size) — checkpoint support.
    pub fn live_allocations(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.blocks.iter().map(|(&b, blk)| (b, blk.size))
    }

    /// Raw contents of the allocation at `base` (checkpoint support).
    pub fn block_bytes(&self, base: u64) -> VgpuResult<&[u8]> {
        self.blocks
            .get(&base)
            .map(|b| b.data.as_slice())
            .ok_or(VgpuError::InvalidPointer(base))
    }

    /// Restore an allocation at an exact base address (checkpoint restore).
    /// Fails if the range is not entirely free.
    pub fn restore_block(&mut self, base: u64, bytes: &[u8]) -> VgpuResult<()> {
        let size = bytes.len() as u64;
        // Find the free span containing [base, base+size).
        let span = self
            .free_list
            .range(..=base)
            .next_back()
            .map(|(&s, &l)| (s, l));
        let Some((start, len)) = span else {
            return Err(VgpuError::InvalidValue(format!(
                "restore target {base:#x} not free"
            )));
        };
        if base + size > start + len {
            return Err(VgpuError::InvalidValue(format!(
                "restore target {base:#x}+{size} overlaps live memory"
            )));
        }
        self.free_list.remove(&start);
        if base > start {
            self.free_list.insert(start, base - start);
        }
        if start + len > base + size {
            self.free_list
                .insert(base + size, (start + len) - (base + size));
        }
        self.blocks.insert(
            base,
            Block {
                size,
                data: bytes.to_vec(),
                version: self.next_version,
                born_epoch: self.epoch,
                dirty: DirtyRanges::default(),
            },
        );
        self.next_version += 1;
        self.stats.allocs += 1;
        self.stats.bytes_in_use += size;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.bytes_in_use);
        Ok(())
    }

    // -- dirty tracking / incremental deltas ------------------------------

    /// Cut a dirty-tracking window: clear every block's dirty spans and
    /// advance the epoch. Blocks allocated after this call are "born in the
    /// new window" and travel whole in the next [`Self::delta_since`].
    /// Returns the new epoch number.
    pub fn mark_epoch(&mut self) -> u64 {
        self.epoch += 1;
        for block in self.blocks.values_mut() {
            block.dirty.clear();
        }
        self.epoch
    }

    /// Current dirty-tracking epoch (0 until the first mark).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Dirty spans of the block at `base` as `(offset, len)` pairs, merged.
    pub fn dirty_spans(&self, base: u64) -> VgpuResult<Vec<(u64, u64)>> {
        self.blocks
            .get(&base)
            .map(|b| b.dirty.spans().to_vec())
            .ok_or(VgpuError::InvalidPointer(base))
    }

    /// Package everything that changed since the last [`Self::mark_epoch`],
    /// relative to `known` — the set of block bases the consumer already
    /// holds (typically: what the previous delta or base snapshot shipped).
    /// A block born in the current window is always shipped whole, even if
    /// its base is in `known` (free + realloc at the same address).
    pub fn delta_since(&self, known: &BTreeSet<u64>) -> MemDelta {
        let mut delta = MemDelta::default();
        for &base in known {
            let reborn = self
                .blocks
                .get(&base)
                .is_some_and(|b| b.born_epoch >= self.epoch);
            if reborn || !self.blocks.contains_key(&base) {
                delta.freed.push(base);
            }
        }
        for (&base, block) in &self.blocks {
            if !known.contains(&base) || block.born_epoch >= self.epoch {
                delta.new_blocks.push((base, block.data.clone()));
            } else {
                for &(off, len) in block.dirty.spans() {
                    let bytes = block.data[off as usize..(off + len) as usize].to_vec();
                    delta.dirty.push((base, off, bytes));
                }
            }
        }
        delta
    }

    /// Replay a [`MemDelta`] produced by a source manager: free departed
    /// blocks, materialize new ones at their exact addresses, then apply
    /// in-place dirty spans. Fails (typed) if the delta does not fit this
    /// manager's state — e.g. a new block overlapping live memory.
    pub fn apply_delta(&mut self, delta: &MemDelta) -> VgpuResult<()> {
        for &base in &delta.freed {
            self.free(base)?;
        }
        for (base, bytes) in &delta.new_blocks {
            self.restore_block(*base, bytes)?;
        }
        for (base, off, bytes) in &delta.dirty {
            self.write(base + off, bytes)?;
        }
        Ok(())
    }
}

/// Reinterpret a byte slice as f32 values (little-endian device layout).
pub fn bytes_to_f32(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Serialize f32 values into device byte layout.
pub fn f32_to_bytes(vals: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Reinterpret a byte slice as f64 values.
pub fn bytes_to_f64(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect()
}

/// Serialize f64 values into device byte layout.
pub fn f64_to_bytes(vals: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Reinterpret a byte slice as u32 values.
pub fn bytes_to_u32(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Serialize u32 values into device byte layout.
pub fn u32_to_bytes(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm() -> MemoryManager {
        MemoryManager::new(1 << 20)
    }

    #[test]
    fn alloc_is_aligned_and_distinct() {
        let mut m = mm();
        let a = m.alloc(100).unwrap();
        let b = m.alloc(100).unwrap();
        assert_eq!(a % ALLOC_ALIGN, 0);
        assert_eq!(b % ALLOC_ALIGN, 0);
        assert_ne!(a, b);
        assert!(a >= HEAP_BASE);
    }

    #[test]
    fn zero_size_alloc_gets_unique_pointer() {
        let mut m = mm();
        let a = m.alloc(0).unwrap();
        let b = m.alloc(0).unwrap();
        assert_ne!(a, b);
        m.free(a).unwrap();
        m.free(b).unwrap();
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = mm();
        let p = m.alloc(64).unwrap();
        m.write(p, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.read(p, 4).unwrap(), &[1, 2, 3, 4]);
        // Fresh memory is zeroed.
        assert_eq!(m.read(p + 4, 4).unwrap(), &[0, 0, 0, 0]);
    }

    #[test]
    fn interior_pointers_resolve() {
        let mut m = mm();
        let p = m.alloc(256).unwrap();
        m.write(p + 100, &[9]).unwrap();
        assert_eq!(m.read(p + 100, 1).unwrap(), &[9]);
    }

    #[test]
    fn oob_and_invalid_pointers_rejected() {
        let mut m = mm();
        let p = m.alloc(64).unwrap();
        // 64 rounds to 256; access past the rounded size fails.
        assert!(matches!(m.read(p, 257), Err(VgpuError::OutOfBounds { .. })));
        assert!(matches!(
            m.read(0xdead, 1),
            Err(VgpuError::InvalidPointer(0xdead))
        ));
        assert!(matches!(
            m.write(p + 300, &[0]),
            Err(VgpuError::InvalidPointer(_))
        ));
    }

    #[test]
    fn double_free_detected() {
        let mut m = mm();
        let p = m.alloc(64).unwrap();
        m.free(p).unwrap();
        assert_eq!(m.free(p), Err(VgpuError::InvalidFree(p)));
    }

    #[test]
    fn free_of_interior_pointer_rejected() {
        let mut m = mm();
        let p = m.alloc(512).unwrap();
        assert_eq!(m.free(p + 256), Err(VgpuError::InvalidFree(p + 256)));
        m.free(p).unwrap();
    }

    #[test]
    fn oom_reports_free_bytes() {
        let mut m = MemoryManager::new(1024);
        let _a = m.alloc(512).unwrap();
        match m.alloc(1024) {
            Err(VgpuError::OutOfMemory { requested, free }) => {
                assert_eq!(requested, 1024);
                assert_eq!(free, 512);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn free_coalesces_neighbors() {
        let mut m = MemoryManager::new(1024);
        let a = m.alloc(256).unwrap();
        let b = m.alloc(256).unwrap();
        let c = m.alloc(256).unwrap();
        let _d = m.alloc(256).unwrap();
        m.free(a).unwrap();
        m.free(c).unwrap();
        m.free(b).unwrap(); // should merge a+b+c into one 768-byte span
        assert_eq!(m.free_list.len(), 1);
        let p = m.alloc(768).unwrap();
        assert_eq!(p, a);
    }

    #[test]
    fn alloc_after_frees_reuses_space() {
        let mut m = MemoryManager::new(4096);
        let ptrs: Vec<_> = (0..16).map(|_| m.alloc(256).unwrap()).collect();
        assert!(m.alloc(256).is_err());
        for p in ptrs {
            m.free(p).unwrap();
        }
        assert_eq!(m.free_bytes(), 4096);
        assert!(m.alloc(4096).is_ok());
    }

    #[test]
    fn memset_fills() {
        let mut m = mm();
        let p = m.alloc(32).unwrap();
        m.memset(p, 0xab, 16).unwrap();
        assert_eq!(m.read(p, 17).unwrap()[..16], [0xab; 16]);
        assert_eq!(m.read(p + 16, 1).unwrap(), &[0]);
    }

    #[test]
    fn dtod_copies_across_blocks() {
        let mut m = mm();
        let a = m.alloc(64).unwrap();
        let b = m.alloc(64).unwrap();
        m.write(a, b"hello world!").unwrap();
        m.copy_dtod(b, a, 12).unwrap();
        assert_eq!(m.read(b, 12).unwrap(), b"hello world!");
    }

    #[test]
    fn versions_bump_on_writes_only() {
        let mut m = mm();
        let p = m.alloc(64).unwrap();
        let v0 = m.version_of(p).unwrap();
        let _ = m.read(p, 8).unwrap();
        assert_eq!(m.version_of(p).unwrap(), v0);
        m.write(p, &[1]).unwrap();
        let v1 = m.version_of(p).unwrap();
        assert!(v1 > v0);
        m.memset(p, 0, 8).unwrap();
        assert!(m.version_of(p).unwrap() > v1);
    }

    #[test]
    fn stats_track_usage() {
        let mut m = mm();
        let p = m.alloc(1000).unwrap(); // rounds to 1024
        assert_eq!(m.stats.allocs, 1);
        assert_eq!(m.stats.bytes_in_use, 1024);
        assert_eq!(m.stats.peak_bytes, 1024);
        m.free(p).unwrap();
        assert_eq!(m.stats.bytes_in_use, 0);
        assert_eq!(m.stats.peak_bytes, 1024);
    }

    #[test]
    fn restore_block_roundtrip() {
        let mut m = mm();
        let p = m.alloc(512).unwrap();
        m.write(p, b"state").unwrap();
        let saved = m.block_bytes(p).unwrap().to_vec();
        m.free(p).unwrap();
        m.restore_block(p, &saved).unwrap();
        assert_eq!(m.read(p, 5).unwrap(), b"state");
        // Restoring over live memory fails.
        assert!(m.restore_block(p, &saved).is_err());
    }

    // -- dirty tracking / deltas -----------------------------------------

    #[test]
    fn dirty_spans_merge_and_clear() {
        let mut m = mm();
        let p = m.alloc(1024).unwrap();
        m.mark_epoch();
        assert!(m.dirty_spans(p).unwrap().is_empty(), "epoch mark clears");
        m.write(p + 16, &[1; 16]).unwrap();
        m.write(p + 32, &[2; 16]).unwrap(); // touches the first span
        m.write(p + 256, &[3; 8]).unwrap();
        assert_eq!(m.dirty_spans(p).unwrap(), vec![(16, 32), (256, 8)]);
        m.write(p + 20, &[4; 200]).unwrap(); // swallows the first span
        assert_eq!(m.dirty_spans(p).unwrap(), vec![(16, 204), (256, 8)]);
        m.mark_epoch();
        assert!(m.dirty_spans(p).unwrap().is_empty());
    }

    #[test]
    fn dirty_overflow_collapses_to_whole_block() {
        let mut m = mm();
        let p = m.alloc(8192).unwrap();
        m.mark_epoch();
        // Disjoint 1-byte writes, two bytes apart: more spans than the cap.
        for i in 0..(MAX_DIRTY_RANGES as u64 + 4) {
            m.write(p + i * 2, &[9]).unwrap();
        }
        assert_eq!(m.dirty_spans(p).unwrap(), vec![(0, 8192)]);
        // Further writes stay collapsed.
        m.write(p + 4000, &[1]).unwrap();
        assert_eq!(m.dirty_spans(p).unwrap(), vec![(0, 8192)]);
    }

    /// Base + deltas reconstruct the source bytes, including the tricky
    /// free-then-realloc-at-the-same-address case, which must travel as
    /// freed + whole new block rather than as an in-place update.
    #[test]
    fn delta_since_reconstructs_source_state() {
        let mut src = MemoryManager::new(1 << 16);
        let mut dst = MemoryManager::new(1 << 16);
        let a = src.alloc(512).unwrap();
        let b = src.alloc(256).unwrap();
        src.write(a, &[1; 512]).unwrap();
        src.write(b, &[2; 256]).unwrap();

        // Base snapshot: delta relative to "knows nothing".
        let base = src.delta_since(&BTreeSet::new());
        dst.apply_delta(&base).unwrap();
        let known: BTreeSet<u64> = src.live_allocations().map(|(p, _)| p).collect();
        src.mark_epoch();

        // Window: in-place update on `a`, free+realloc at `b`'s address
        // (same first-fit slot, different size), and a brand-new block.
        src.write(a + 64, &[7; 32]).unwrap();
        src.free(b).unwrap();
        let b2 = src.alloc(128).unwrap();
        assert_eq!(b2, b, "first fit reuses the freed slot");
        src.write(b2, &[8; 64]).unwrap();
        let c = src.alloc(256).unwrap();
        src.write(c, &[9; 16]).unwrap();

        let delta = src.delta_since(&known);
        assert!(delta.freed.contains(&b), "realloc must free the old block");
        assert_eq!(delta.new_blocks.len(), 2, "reborn b + new c travel whole");
        assert_eq!(delta.dirty.len(), 1, "only a's span is in-place");
        dst.apply_delta(&delta).unwrap();

        for (p, size) in src.live_allocations() {
            assert_eq!(
                src.block_bytes(p).unwrap(),
                dst.block_bytes(p).unwrap(),
                "block {p:#x} ({size} B) diverged"
            );
        }
        assert_eq!(src.free_bytes(), dst.free_bytes());
    }

    #[test]
    fn delta_payload_is_incremental_not_full() {
        let mut m = MemoryManager::new(1 << 20);
        let p = m.alloc(1 << 18).unwrap();
        m.write(p, &vec![5u8; 1 << 18]).unwrap();
        let known: BTreeSet<u64> = m.live_allocations().map(|(b, _)| b).collect();
        m.mark_epoch();
        m.write(p + 1000, &[1; 100]).unwrap();
        let delta = m.delta_since(&known);
        assert_eq!(delta.payload_bytes(), 100);
        assert!(!delta.is_empty());
        m.mark_epoch();
        assert!(m.delta_since(&known).is_empty());
    }

    #[test]
    fn apply_delta_rejects_misfit() {
        let mut dst = MemoryManager::new(1 << 16);
        let live = dst.alloc(512).unwrap();
        let delta = MemDelta {
            freed: vec![],
            new_blocks: vec![(live, vec![0u8; 512])],
            dirty: vec![],
        };
        assert!(dst.apply_delta(&delta).is_err(), "overlaps live memory");
        let delta = MemDelta {
            freed: vec![live + 8192],
            new_blocks: vec![],
            dirty: vec![],
        };
        assert!(dst.apply_delta(&delta).is_err(), "freeing unknown block");
    }

    #[test]
    fn typed_conversions_roundtrip() {
        let f = vec![1.5f32, -2.25, 0.0];
        assert_eq!(bytes_to_f32(&f32_to_bytes(&f)), f);
        let d = vec![1.5f64, -2.25, 1e300];
        assert_eq!(bytes_to_f64(&f64_to_bytes(&d)), d);
        let u = vec![1u32, 0xffff_ffff];
        assert_eq!(bytes_to_u32(&u32_to_bytes(&u)), u);
    }
}
