//! cuBLAS-like dense linear algebra on device memory.
//!
//! Cricket forwards cuBLAS calls as single RPCs executed host-side on the
//! GPU node (the library lives next to the driver); correspondingly this
//! module runs on the server against [`Device`] memory. Layout follows
//! cuBLAS: **column-major** with explicit leading dimensions.

use crate::device::Device;
use crate::error::{VgpuError, VgpuResult};
use crate::memory::{bytes_to_f32, bytes_to_f64, f32_to_bytes, f64_to_bytes};
use crate::timemodel::{kernel_duration_ns, Precision, Workload};

/// Transpose operation selector (cublasOperation_t).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// No transpose.
    N,
    /// Transpose.
    T,
}

impl Op {
    /// Parse the wire integer (0 = N, 1 = T).
    pub fn from_i32(v: i32) -> VgpuResult<Self> {
        match v {
            0 => Ok(Op::N),
            1 => Ok(Op::T),
            other => Err(VgpuError::InvalidValue(format!(
                "invalid cublasOperation_t {other}"
            ))),
        }
    }
}

/// Element index of column-major (i, j) under `ld`.
#[inline]
fn at(i: usize, j: usize, ld: usize) -> usize {
    j * ld + i
}

/// op(A)(i,j) for a column-major matrix with leading dimension `ld`.
#[inline]
fn op_at<T: Copy>(a: &[T], op: Op, i: usize, j: usize, ld: usize) -> T {
    match op {
        Op::N => a[at(i, j, ld)],
        Op::T => a[at(j, i, ld)],
    }
}

macro_rules! gemm_impl {
    ($name:ident, $ty:ty, $reader:ident, $writer:ident, $precision:expr) => {
        /// GEMM: C = alpha·op(A)·op(B) + beta·C (column-major).
        /// Returns the device time consumed.
        #[allow(clippy::too_many_arguments)]
        pub fn $name(
            dev: &mut Device,
            transa: Op,
            transb: Op,
            m: usize,
            n: usize,
            k: usize,
            alpha: $ty,
            a_ptr: u64,
            lda: usize,
            b_ptr: u64,
            ldb: usize,
            beta: $ty,
            c_ptr: u64,
            ldc: usize,
        ) -> VgpuResult<u64> {
            if m == 0 || n == 0 || k == 0 {
                return Err(VgpuError::InvalidValue("gemm with zero dimension".into()));
            }
            let (a_rows, a_cols) = match transa {
                Op::N => (m, k),
                Op::T => (k, m),
            };
            let (b_rows, b_cols) = match transb {
                Op::N => (k, n),
                Op::T => (n, k),
            };
            if lda < a_rows || ldb < b_rows || ldc < m {
                return Err(VgpuError::InvalidValue(
                    "leading dimension smaller than rows".into(),
                ));
            }
            let elem = std::mem::size_of::<$ty>() as u64;
            let a = $reader(dev.mem.read(a_ptr, (lda * a_cols) as u64 * elem)?);
            let b = $reader(dev.mem.read(b_ptr, (ldb * b_cols) as u64 * elem)?);
            let mut c = $reader(dev.mem.read(c_ptr, (ldc * n) as u64 * elem)?);

            for j in 0..n {
                for i in 0..m {
                    let mut acc: $ty = 0.0;
                    for p in 0..k {
                        acc += op_at(&a, transa, i, p, lda) * op_at(&b, transb, p, j, ldb);
                    }
                    let idx = at(i, j, ldc);
                    c[idx] = alpha * acc + beta * c[idx];
                }
            }
            dev.mem.write(c_ptr, &$writer(&c))?;

            let work = Workload {
                flops: 2.0 * m as f64 * n as f64 * k as f64,
                bytes: ((m * k + k * n + 2 * m * n) as u64 * elem) as f64,
                precision: $precision,
            };
            Ok(kernel_duration_ns(dev.properties(), &work))
        }
    };
}

gemm_impl!(sgemm, f32, bytes_to_f32, f32_to_bytes, Precision::F32);
gemm_impl!(dgemm, f64, bytes_to_f64, f64_to_bytes, Precision::F64);

#[cfg(test)]
mod tests {
    use super::*;

    fn upload_f64(dev: &mut Device, vals: &[f64]) -> u64 {
        let (p, _) = dev.malloc(vals.len() as u64 * 8).unwrap();
        dev.memcpy_htod(p, &f64_to_bytes(vals)).unwrap();
        p
    }

    fn upload_f32(dev: &mut Device, vals: &[f32]) -> u64 {
        let (p, _) = dev.malloc(vals.len() as u64 * 4).unwrap();
        dev.memcpy_htod(p, &f32_to_bytes(vals)).unwrap();
        p
    }

    #[test]
    fn dgemm_identity() {
        let mut dev = Device::a100();
        let n = 4;
        // Column-major identity.
        let mut ident = vec![0f64; n * n];
        for i in 0..n {
            ident[i * n + i] = 1.0;
        }
        let a: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
        let pa = upload_f64(&mut dev, &a);
        let pi = upload_f64(&mut dev, &ident);
        let pc = upload_f64(&mut dev, &vec![0f64; n * n]);
        dgemm(
            &mut dev,
            Op::N,
            Op::N,
            n,
            n,
            n,
            1.0,
            pa,
            n,
            pi,
            n,
            0.0,
            pc,
            n,
        )
        .unwrap();
        let c = bytes_to_f64(dev.mem.read(pc, (n * n * 8) as u64).unwrap());
        assert_eq!(c, a);
    }

    #[test]
    fn sgemm_small_reference() {
        let mut dev = Device::a100();
        // A = [[1,2],[3,4]] col-major: [1,3,2,4]; B = [[5,6],[7,8]] col-major [5,7,6,8].
        let pa = upload_f32(&mut dev, &[1.0, 3.0, 2.0, 4.0]);
        let pb = upload_f32(&mut dev, &[5.0, 7.0, 6.0, 8.0]);
        let pc = upload_f32(&mut dev, &[0.0; 4]);
        sgemm(
            &mut dev,
            Op::N,
            Op::N,
            2,
            2,
            2,
            1.0,
            pa,
            2,
            pb,
            2,
            0.0,
            pc,
            2,
        )
        .unwrap();
        let c = bytes_to_f32(dev.mem.read(pc, 16).unwrap());
        // C = A*B = [[19,22],[43,50]] col-major [19,43,22,50].
        assert_eq!(c, vec![19.0, 43.0, 22.0, 50.0]);
    }

    #[test]
    fn transpose_paths() {
        let mut dev = Device::a100();
        // A 2x3 col-major (rows=2, cols=3): [[1,2,3],[4,5,6]] → [1,4,2,5,3,6].
        let pa = upload_f64(&mut dev, &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        let pc = upload_f64(&mut dev, &[0f64; 9]);
        // C (3x3) = A^T * A.
        dgemm(
            &mut dev,
            Op::T,
            Op::N,
            3,
            3,
            2,
            1.0,
            pa,
            2,
            pa,
            2,
            0.0,
            pc,
            3,
        )
        .unwrap();
        let c = bytes_to_f64(dev.mem.read(pc, 72).unwrap());
        // A^T A = [[17,22,27],[22,29,36],[27,36,45]] (symmetric).
        assert_eq!(c[0], 17.0);
        assert_eq!(c[at(1, 0, 3)], 22.0);
        assert_eq!(c[at(2, 2, 3)], 45.0);
        assert_eq!(c[at(1, 2, 3)], c[at(2, 1, 3)]);
    }

    #[test]
    fn beta_accumulates() {
        let mut dev = Device::a100();
        let pa = upload_f64(&mut dev, &[1.0]);
        let pb = upload_f64(&mut dev, &[2.0]);
        let pc = upload_f64(&mut dev, &[10.0]);
        dgemm(
            &mut dev,
            Op::N,
            Op::N,
            1,
            1,
            1,
            3.0,
            pa,
            1,
            pb,
            1,
            0.5,
            pc,
            1,
        )
        .unwrap();
        let c = bytes_to_f64(dev.mem.read(pc, 8).unwrap());
        assert_eq!(c[0], 3.0 * 2.0 + 0.5 * 10.0);
    }

    #[test]
    fn invalid_arguments_rejected() {
        let mut dev = Device::a100();
        let pa = upload_f64(&mut dev, &[0.0; 4]);
        assert!(dgemm(
            &mut dev,
            Op::N,
            Op::N,
            0,
            1,
            1,
            1.0,
            pa,
            1,
            pa,
            1,
            0.0,
            pa,
            1
        )
        .is_err());
        // lda < rows.
        assert!(dgemm(
            &mut dev,
            Op::N,
            Op::N,
            2,
            2,
            2,
            1.0,
            pa,
            1,
            pa,
            2,
            0.0,
            pa,
            2
        )
        .is_err());
        assert!(Op::from_i32(7).is_err());
    }

    #[test]
    fn duration_scales_with_problem_size() {
        let mut dev = Device::a100();
        let small = upload_f64(&mut dev, &vec![1.0; 16 * 16]);
        let big = upload_f64(&mut dev, &vec![1.0; 64 * 64]);
        let t1 = dgemm(
            &mut dev,
            Op::N,
            Op::N,
            16,
            16,
            16,
            1.0,
            small,
            16,
            small,
            16,
            0.0,
            small,
            16,
        )
        .unwrap();
        let t2 = dgemm(
            &mut dev,
            Op::N,
            Op::N,
            64,
            64,
            64,
            1.0,
            big,
            64,
            big,
            64,
            0.0,
            big,
            64,
        )
        .unwrap();
        assert!(t2 > t1);
    }
}
