//! Port of the CUDA sample `cuSolverDn_LinearSolver` (paper Fig. 5b).
//!
//! Each iteration uploads the system, LU-factorizes it with partial
//! pivoting (`cusolverDnDgetrf`), solves (`cusolverDnDgetrs`) and
//! downloads the solution — 20 CUDA API calls per iteration, enumerated
//! below. With the paper's configuration (900×900, 1000 iterations, plus
//! two warm-up solves) the client issues exactly **20 047** API calls and
//! moves **≈6.07 GiB**.

use cricket_client::{ApiStats, ClientResult, Context};

/// Workload configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearSolverConfig {
    /// Matrix dimension (n×n system).
    pub n: usize,
    /// Timed solve iterations.
    pub iterations: usize,
    /// Warm-up solves (the paper's 20 047-call total implies two).
    pub warmups: usize,
}

impl LinearSolverConfig {
    /// The paper's configuration: "LU with 900x900 matrix, 1000 Iterations".
    pub fn paper() -> Self {
        Self {
            n: 900,
            iterations: 1000,
            warmups: 2,
        }
    }

    /// Small configuration for tests.
    pub fn small() -> Self {
        Self {
            n: 48,
            iterations: 3,
            warmups: 2,
        }
    }

    /// API calls per solve iteration (enumerated in [`solve_once`]).
    pub const CALLS_PER_SOLVE: u64 = 20;

    /// Fixed calls outside the solves (init 5 + teardown 2).
    pub const FIXED_CALLS: u64 = 7;

    /// Expected total API calls.
    pub fn expected_api_calls(&self) -> u64 {
        Self::FIXED_CALLS + Self::CALLS_PER_SOLVE * (self.iterations + self.warmups) as u64
    }

    /// Expected transferred bytes (per-solve A, b, x, info words).
    pub fn expected_bytes(&self) -> u64 {
        let per_solve = (self.n * self.n * 8 + 2 * self.n * 8 + 8) as u64;
        per_solve * (self.iterations + self.warmups) as u64
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct LinearSolverReport {
    /// Residual-based validation of the last solution.
    pub valid: bool,
    /// LAPACK `info` of the last factorization (0 = success).
    pub last_info: i32,
    /// Client-side accounting.
    pub stats: ApiStats,
}

/// Build the deterministic, diagonally dominant test system
/// (column-major A, right-hand side b = A·x_true).
fn build_system(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut a = vec![0f64; n * n];
    for j in 0..n {
        for i in 0..n {
            a[j * n + i] = if i == j {
                n as f64 + 2.0
            } else {
                (((i * 13 + j * 7) % 11) as f64) * 0.125
            };
        }
    }
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) - 8.0).collect();
    let mut b = vec![0f64; n];
    for j in 0..n {
        let xj = x_true[j];
        for i in 0..n {
            b[i] += a[j * n + i] * xj;
        }
    }
    (a, b, x_true)
}

/// One solve: exactly [`LinearSolverConfig::CALLS_PER_SOLVE`] API calls.
fn solve_once(
    ctx: &Context,
    solver: u64,
    n: usize,
    a_host: &[u8],
    b_host: &[u8],
) -> ClientResult<(Vec<f64>, i32)> {
    let n_i = n as i32;
    ctx.with_raw(|r| -> ClientResult<(Vec<f64>, i32)> {
        let da = r.malloc((n * n * 8) as u64)?; //  1 cudaMalloc(A)
        let db = r.malloc((n * 8) as u64)?; //      2 cudaMalloc(b)
        r.memcpy_htod(da, a_host)?; //              3 cudaMemcpy H2D (A)
        r.memcpy_htod(db, b_host)?; //              4 cudaMemcpy H2D (b)
        let lwork = r.dgetrf_buffer_size(solver, n_i, n_i, da, n_i)?; // 5
        let dwork = r.malloc((lwork as u64) * 8)?; // 6 cudaMalloc(work)
        let dipiv = r.malloc((n * 4) as u64)?; //     7 cudaMalloc(ipiv)
        let dinfo = r.malloc(4)?; //                  8 cudaMalloc(info)
        r.dgetrf(solver, n_i, n_i, da, n_i, dwork, dipiv, dinfo)?; // 9
        let info1 = r.memcpy_dtoh(dinfo, 4)?; //     10 cudaMemcpy D2H (info)
        r.dgetrs(solver, 0, n_i, 1, da, n_i, dipiv, db, n_i, dinfo)?; // 11
        let info2 = r.memcpy_dtoh(dinfo, 4)?; //     12 cudaMemcpy D2H (info)
        let x_bytes = r.memcpy_dtoh(db, (n * 8) as u64)?; // 13 D2H (x)
        r.device_synchronize()?; //                  14 cudaDeviceSynchronize
        r.free(dwork)?; //                           15 cudaFree(work)
        r.free(dipiv)?; //                           16 cudaFree(ipiv)
        r.free(dinfo)?; //                           17 cudaFree(info)
        r.free(da)?; //                              18 cudaFree(A)
        r.free(db)?; //                              19 cudaFree(b)
        r.get_last_error()?; //                      20 cudaGetLastError

        let info1 = i32::from_le_bytes(info1.try_into().expect("4 bytes"));
        let info2 = i32::from_le_bytes(info2.try_into().expect("4 bytes"));
        let x: Vec<f64> = x_bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok((x, info1.max(info2)))
    })
}

/// Run the proxy app on `ctx`.
pub fn run(ctx: &Context, cfg: &LinearSolverConfig) -> ClientResult<LinearSolverReport> {
    ctx.with_raw(|r| r.stats.reset());
    let (a, b, x_true) = build_system(cfg.n);
    let a_bytes: Vec<u8> = a.iter().flat_map(|v| v.to_le_bytes()).collect();
    let b_bytes: Vec<u8> = b.iter().flat_map(|v| v.to_le_bytes()).collect();

    // ---- init (5 calls) ----
    ctx.with_raw(|r| r.free(0))?; //           1 cudaFree(0)
    let _ = ctx.device_count()?; //            2 cudaGetDeviceCount
    ctx.with_raw(|r| r.set_device(0))?; //     3 cudaSetDevice
    let _ = ctx.device_properties(0)?; //      4 cudaGetDeviceProperties
    let solver = ctx.with_raw(|r| r.solver_create())?; // 5 cusolverDnCreate

    let mut last = (Vec::new(), 0);
    for _ in 0..cfg.warmups + cfg.iterations {
        last = solve_once(ctx, solver, cfg.n, &a_bytes, &b_bytes)?;
    }

    // ---- teardown (2 calls) ----
    ctx.with_raw(|r| r.solver_destroy(solver))?; // cusolverDnDestroy
    ctx.synchronize()?; //                          cudaDeviceSynchronize

    let (x, last_info) = last;
    let valid = last_info == 0
        && x.len() == cfg.n
        && x.iter()
            .zip(&x_true)
            .all(|(xi, ti)| (xi - ti).abs() < 1e-8 * (1.0 + ti.abs()));

    Ok(LinearSolverReport {
        valid,
        last_info,
        stats: ctx.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cricket_client::sim::simulated;
    use cricket_client::EnvConfig;

    #[test]
    fn small_run_validates_and_counts() {
        let (ctx, _setup) = simulated(EnvConfig::RustNative);
        let cfg = LinearSolverConfig::small();
        let report = run(&ctx, &cfg).unwrap();
        assert!(
            report.valid,
            "info={}, stats={:?}",
            report.last_info, report.stats
        );
        assert_eq!(report.stats.api_calls, cfg.expected_api_calls());
        assert_eq!(report.stats.per_api["cusolverDnDgetrf"] as usize, 5);
    }

    #[test]
    fn paper_config_projects_published_numbers() {
        let cfg = LinearSolverConfig::paper();
        assert_eq!(cfg.expected_api_calls(), 20_047);
        let gib = cfg.expected_bytes() as f64 / (1024.0 * 1024.0 * 1024.0);
        assert!((gib - 6.07).abs() < 0.03, "{gib} GiB");
    }

    #[test]
    fn bytes_accounting_matches_projection() {
        let (ctx, _setup) = simulated(EnvConfig::Unikraft);
        let cfg = LinearSolverConfig::small();
        let report = run(&ctx, &cfg).unwrap();
        assert_eq!(
            report.stats.bytes_h2d + report.stats.bytes_d2h,
            cfg.expected_bytes()
        );
    }

    #[test]
    fn solver_memoizes_identical_systems_but_stays_correct() {
        // Two runs with different n must both validate (no stale cache).
        let (ctx, _setup) = simulated(EnvConfig::RustNative);
        for n in [32usize, 48] {
            let cfg = LinearSolverConfig {
                n,
                iterations: 2,
                warmups: 1,
            };
            assert!(run(&ctx, &cfg).unwrap().valid, "n={n}");
        }
    }
}
