//! Port of the CUDA sample `bandwidthTest` (paper Fig. 7).
//!
//! Measures host→device and device→host streaming bandwidth for pageable
//! transfers via RPC arguments — the only transfer method available to the
//! unikernels (paper §4.2). Times are read from the virtual clock, so the
//! reported bandwidth is the modeled one for the context's environment.

use crate::timed_virtual;
use cricket_client::{ClientResult, Context};

/// Workload configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandwidthConfig {
    /// Transfer size in bytes per iteration.
    pub bytes: usize,
    /// Iterations per direction (the sample's MEMCOPY_ITERATIONS).
    pub iterations: usize,
}

impl BandwidthConfig {
    /// The paper's configuration: 512 MiB transfers.
    pub fn paper() -> Self {
        Self {
            bytes: 512 << 20,
            iterations: 1,
        }
    }

    /// Small configuration for tests.
    pub fn small() -> Self {
        Self {
            bytes: 1 << 20,
            iterations: 2,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthReport {
    /// Host→device bandwidth in MiB/s (virtual time).
    pub h2d_mib_s: f64,
    /// Device→host bandwidth in MiB/s (virtual time).
    pub d2h_mib_s: f64,
}

/// Run the proxy app on `ctx`.
pub fn run(ctx: &Context, cfg: &BandwidthConfig) -> ClientResult<BandwidthReport> {
    let data = vec![0xabu8; cfg.bytes];
    let buf = ctx.alloc::<u8>(cfg.bytes)?;

    // Host → device.
    let (h2d_result, h2d_secs) = timed_virtual(ctx, || -> ClientResult<()> {
        for _ in 0..cfg.iterations {
            buf.copy_from_slice(&data)?;
        }
        Ok(())
    });
    h2d_result?;

    // Device → host.
    let (d2h_result, d2h_secs) = timed_virtual(ctx, || -> ClientResult<()> {
        for _ in 0..cfg.iterations {
            let back = buf.copy_to_vec()?;
            debug_assert_eq!(back.len(), cfg.bytes);
        }
        Ok(())
    });
    d2h_result?;

    let mib = (cfg.bytes * cfg.iterations) as f64 / (1024.0 * 1024.0);
    Ok(BandwidthReport {
        h2d_mib_s: mib / h2d_secs.max(1e-12),
        d2h_mib_s: mib / d2h_secs.max(1e-12),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cricket_client::sim::simulated;
    use cricket_client::EnvConfig;

    #[test]
    fn native_beats_hermit_substantially() {
        let (native, _s1) = simulated(EnvConfig::RustNative);
        let (hermit, _s2) = simulated(EnvConfig::RustyHermit);
        let cfg = BandwidthConfig {
            bytes: 16 << 20,
            iterations: 1,
        };
        let rn = run(&native, &cfg).unwrap();
        let rh = run(&hermit, &cfg).unwrap();
        assert!(
            rn.h2d_mib_s > 4.0 * rh.h2d_mib_s,
            "native {:.0} vs hermit {:.0} MiB/s",
            rn.h2d_mib_s,
            rh.h2d_mib_s
        );
    }

    #[test]
    fn bandwidth_is_positive_and_finite() {
        let (ctx, _s) = simulated(EnvConfig::LinuxVm);
        let r = run(&ctx, &BandwidthConfig::small()).unwrap();
        assert!(r.h2d_mib_s.is_finite() && r.h2d_mib_s > 0.0);
        assert!(r.d2h_mib_s.is_finite() && r.d2h_mib_s > 0.0);
    }

    #[test]
    fn larger_transfers_reach_higher_bandwidth() {
        // Fixed per-RPC overhead amortizes with size.
        let (ctx, _s) = simulated(EnvConfig::RustNative);
        let small = run(
            &ctx,
            &BandwidthConfig {
                bytes: 64 << 10,
                iterations: 1,
            },
        )
        .unwrap();
        let large = run(
            &ctx,
            &BandwidthConfig {
                bytes: 32 << 20,
                iterations: 1,
            },
        )
        .unwrap();
        assert!(large.h2d_mib_s > small.h2d_mib_s);
    }
}
