//! Port of the CUDA sample `histogram` (paper Fig. 5c).
//!
//! Computes 64-bin and 256-bin histograms of a randomly initialized 64 MiB
//! byte array, each phase iterated many times (kernel + merge per
//! iteration, like the sample's benchmark loop). With the paper's
//! configuration (20 000 iterations per phase) the client issues exactly
//! **80 033** API calls and the dominant transfer is the **64 MiB** input.
//!
//! This is the application where the paper found the C implementation
//! 37.6 % slower overall (27.3 % excluding initialization): the C variant
//! initializes with `rand()` per byte and pays the `<<<...>>>` launch
//! marshalling on every one of the 80 000 launches. Both effects are
//! reproduced via the context's client flavor.

use crate::fill_random;
use cricket_client::{ApiStats, ClientResult, Context, CubinBuilder, Dim3, ParamBuilder};

/// Number of partial-histogram blocks (the sample's 240).
pub const PARTIAL_COUNT: u32 = 240;

/// Workload configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramConfig {
    /// Input size in bytes.
    pub byte_count: usize,
    /// Iterations of each phase (64-bin and 256-bin).
    pub iterations: usize,
}

impl HistogramConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self {
            byte_count: 64 << 20,
            iterations: 20_000,
        }
    }

    /// Small configuration for tests.
    pub fn small() -> Self {
        Self {
            byte_count: 64 << 10,
            iterations: 4,
        }
    }

    /// Fixed (non-launch) API calls of [`run`], enumerated inline.
    pub const FIXED_CALLS: u64 = 33;

    /// Expected total API calls: two launches (histogram + merge) per
    /// iteration per phase.
    pub fn expected_api_calls(&self) -> u64 {
        Self::FIXED_CALLS + 4 * self.iterations as u64
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct HistogramReport {
    /// Both phases validated against host references.
    pub valid: bool,
    /// Device milliseconds of the 64-bin phase.
    pub ms64: f32,
    /// Device milliseconds of the 256-bin phase.
    pub ms256: f32,
    /// Client-side accounting.
    pub stats: ApiStats,
}

struct Phase<'a> {
    hist_kernel: &'a str,
    merge_kernel: &'a str,
    bins: usize,
    shift: u32,
}

/// Run the proxy app on `ctx`.
pub fn run(ctx: &Context, cfg: &HistogramConfig) -> ClientResult<HistogramReport> {
    ctx.with_raw(|r| r.stats.reset());

    // ---- init (calls 1..=9) ----
    ctx.with_raw(|r| r.free(0))?; //        1 cudaFree(0)
    let _ = ctx.device_count()?; //         2 cudaGetDeviceCount
    ctx.with_raw(|r| r.set_device(0))?; //  3 cudaSetDevice
    let _ = ctx.device_properties(0)?; //   4 cudaGetDeviceProperties
    let image = CubinBuilder::new()
        .kernel("histogram64Kernel", &[8, 8, 4])
        .kernel("mergeHistogram64Kernel", &[8, 8, 4])
        .kernel("histogram256Kernel", &[8, 8, 4])
        .kernel("mergeHistogram256Kernel", &[8, 8, 4])
        .code(b"histogram SASS")
        .build(true);
    let module = ctx.load_module(&image)?; // 5 cuModuleLoadData
    let f_h64 = module.function("histogram64Kernel")?; //       6
    let f_m64 = module.function("mergeHistogram64Kernel")?; //  7
    let f_h256 = module.function("histogram256Kernel")?; //     8
    let f_m256 = module.function("mergeHistogram256Kernel")?; //9

    // ---- input data (10, 11): flavor-specific init then one 64 MiB H2D ----
    let mut host = vec![0u8; cfg.byte_count];
    fill_random(ctx, 0x5eed, &mut host);
    let d_data = ctx.upload(&host)?; // cudaMalloc + cudaMemcpy H2D

    // ---- timing events (12, 13) ----
    let ev_start = ctx.event()?;
    let ev_stop = ctx.event()?;

    let phases = [
        Phase {
            hist_kernel: "h64",
            merge_kernel: "m64",
            bins: 64,
            shift: 2,
        },
        Phase {
            hist_kernel: "h256",
            merge_kernel: "m256",
            bins: 256,
            shift: 0,
        },
    ];

    let mut valid = true;
    let mut phase_ms = [0f32; 2];
    // Each phase: malloc partial, malloc out, record, loop, record,
    // elapsed, D2H out, free partial, free out = 10 fixed calls... the
    // event records/elapsed are 3 of them; 2 mallocs + D2H + 2 frees = 5;
    // 2 records = 2 → (14..=21) and (22..=29).
    for (idx, phase) in phases.iter().enumerate() {
        let d_partial = ctx.alloc::<u32>(PARTIAL_COUNT as usize * phase.bins)?;
        let d_out = ctx.alloc::<u32>(phase.bins)?;
        let (f_hist, f_merge) = if idx == 0 {
            (&f_h64, &f_m64)
        } else {
            (&f_h256, &f_m256)
        };
        let _ = (phase.hist_kernel, phase.merge_kernel);

        let hist_params = ParamBuilder::new()
            .ptr(d_partial.ptr())
            .ptr(d_data.ptr())
            .u32(cfg.byte_count as u32)
            .build();
        let merge_params = ParamBuilder::new()
            .ptr(d_out.ptr())
            .ptr(d_partial.ptr())
            .u32(PARTIAL_COUNT)
            .build();
        let hist_grid: Dim3 = (PARTIAL_COUNT, 1, 1).into();
        let block: Dim3 = (64, 1, 1).into();
        let merge_grid: Dim3 = (phase.bins as u32, 1, 1).into();

        ev_start.record(None)?;
        for _ in 0..cfg.iterations {
            ctx.launch(f_hist, hist_grid, block, 0, None, &hist_params)?;
            ctx.launch(f_merge, merge_grid, block, 0, None, &merge_params)?;
        }
        ev_stop.record(None)?;
        phase_ms[idx] = ev_start.elapsed_ms(&ev_stop)?;

        let result = d_out.copy_to_vec()?;
        let mut expected = vec![0u32; phase.bins];
        for &b in &host {
            expected[(b >> phase.shift) as usize] += 1;
        }
        valid &= result == expected;
        // d_partial and d_out drop here: 2 cudaFree.
    }

    // ---- teardown (30..=33): free data, destroy 2 events, unload ----
    drop(d_data);
    drop(ev_start);
    drop(ev_stop);
    drop(module);

    Ok(HistogramReport {
        valid,
        ms64: phase_ms[0],
        ms256: phase_ms[1],
        stats: ctx.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cricket_client::sim::simulated;
    use cricket_client::EnvConfig;

    #[test]
    fn small_run_validates_and_counts() {
        let (ctx, _setup) = simulated(EnvConfig::RustNative);
        let cfg = HistogramConfig::small();
        let report = run(&ctx, &cfg).unwrap();
        assert!(report.valid);
        assert_eq!(report.stats.api_calls, cfg.expected_api_calls());
        assert_eq!(report.stats.launches as usize, 4 * cfg.iterations);
        assert!(report.ms64 > 0.0 && report.ms256 > 0.0);
    }

    #[test]
    fn paper_config_projects_published_numbers() {
        let cfg = HistogramConfig::paper();
        assert_eq!(cfg.expected_api_calls(), 80_033);
        assert_eq!(cfg.byte_count, 64 << 20);
    }

    #[test]
    fn c_flavor_also_validates() {
        // The C variant uses a different RNG; the histogram must still be
        // exact (it is validated against the same host data).
        let (ctx, _setup) = simulated(EnvConfig::CNative);
        let report = run(&ctx, &HistogramConfig::small()).unwrap();
        assert!(report.valid);
    }
}
