//! Port of the CUDA sample `matrixMul` (paper Fig. 5a).
//!
//! The sample multiplies two constant matrices repeatedly with a 32×32
//! tiled kernel and validates the product once at the end. With the paper's
//! configuration (A 320×320, B 320×640, 100 000 iterations) the client
//! issues exactly **100 041** CUDA API calls and moves **1.95 MiB**
//! (A + B up, C down); the fixed part of the call budget is documented
//! inline and asserted by tests.

use cricket_client::{ApiStats, ClientResult, Context, CubinBuilder, ParamBuilder};

/// Tile edge of the kernel (the sample's `block_size`).
pub const BLOCK: u32 = 32;

/// Workload configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixMulConfig {
    /// Rows of A (and C); must be a multiple of [`BLOCK`].
    pub ha: usize,
    /// Columns of A = rows of B; must be a multiple of [`BLOCK`].
    pub wa: usize,
    /// Columns of B (and C); must be a multiple of [`BLOCK`].
    pub wb: usize,
    /// Timed kernel launches.
    pub iterations: usize,
    /// Warm-up launches before timing. The published total of 100 041
    /// calls implies 41 non-iteration calls; our flow has 34 fixed calls,
    /// so the paper configuration uses 7 warm-ups (the original's warm-up
    /// count is not published).
    pub warmups: usize,
}

impl MatrixMulConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self {
            ha: 320,
            wa: 320,
            wb: 640,
            iterations: 100_000,
            warmups: 7,
        }
    }

    /// A small configuration for tests.
    pub fn small() -> Self {
        Self {
            ha: 64,
            wa: 32,
            wb: 64,
            iterations: 10,
            warmups: 7,
        }
    }

    /// Expected total API calls for this configuration.
    pub fn expected_api_calls(&self) -> u64 {
        FIXED_CALLS + (self.warmups + self.iterations) as u64
    }

    /// Expected transferred bytes (A + B up, C down).
    pub fn expected_bytes(&self) -> u64 {
        // The module image also crosses the wire but the paper counts
        // "memory transfers" (cudaMemcpy payloads) only.
        ((self.ha * self.wa + self.wa * self.wb + self.ha * self.wb) * 4) as u64
    }
}

/// Non-launch API calls issued by [`run`] (enumerated in the code below).
pub const FIXED_CALLS: u64 = 34;

/// Result of one run.
#[derive(Debug, Clone)]
pub struct MatrixMulReport {
    /// Host-side validation of C against a reference computation.
    pub valid: bool,
    /// Device time of the timed loop per `cudaEventElapsedTime`, ms.
    pub kernel_ms: f32,
    /// Client-side accounting for this run.
    pub stats: ApiStats,
}

/// Deterministic input generator (the sample uses constant 1.0/0.01
/// matrices; we use low-entropy deterministic values to keep validation
/// meaningful).
fn input_matrices(cfg: &MatrixMulConfig) -> (Vec<f32>, Vec<f32>) {
    let a: Vec<f32> = (0..cfg.ha * cfg.wa)
        .map(|i| ((i % 7) as f32) * 0.25)
        .collect();
    let b: Vec<f32> = (0..cfg.wa * cfg.wb)
        .map(|i| ((i % 5) as f32) * 0.5 - 1.0)
        .collect();
    (a, b)
}

/// Host reference product (row-major).
fn reference(cfg: &MatrixMulConfig, a: &[f32], b: &[f32]) -> Vec<f32> {
    let (ha, wa, wb) = (cfg.ha, cfg.wa, cfg.wb);
    let mut c = vec![0f32; ha * wb];
    for i in 0..ha {
        for k in 0..wa {
            let aik = a[i * wa + k];
            for j in 0..wb {
                c[i * wb + j] += aik * b[k * wb + j];
            }
        }
    }
    c
}

/// Run the proxy app on `ctx`.
pub fn run(ctx: &Context, cfg: &MatrixMulConfig) -> ClientResult<MatrixMulReport> {
    assert!(
        cfg.ha.is_multiple_of(BLOCK as usize)
            && cfg.wa.is_multiple_of(BLOCK as usize)
            && cfg.wb.is_multiple_of(BLOCK as usize),
        "dimensions must be multiples of the {BLOCK}-wide tile"
    );
    ctx.with_raw(|r| r.stats.reset());

    // ---- context & device discovery (calls 1..=6) ----
    ctx.with_raw(|r| r.free(0))?; // cudaFree(0): CUDA context-init idiom
    let _count = ctx.device_count()?;
    let _dev = ctx.with_raw(|r| r.get_device())?;
    ctx.with_raw(|r| r.set_device(0))?;
    let _props = ctx.device_properties(0)?;
    let _mem = ctx.with_raw(|r| r.mem_get_info())?;

    // ---- kernel image (7..=8): nvcc output loaded via cuModule ----
    let image = CubinBuilder::new()
        .kernel("matrixMulCUDA", &[8, 8, 8, 4, 4])
        .code(b"matrixMul SASS image, tiled 32x32")
        .build(true);
    let module = ctx.load_module(&image)?;
    let func = module.function("matrixMulCUDA")?;

    // ---- data (9..=14): 3 mallocs, 2 H2D, memset C ----
    let (a, b) = input_matrices(cfg);
    let da = ctx.upload(&a)?;
    let db = ctx.upload(&b)?;
    let dc = ctx.alloc::<f32>(cfg.ha * cfg.wb)?;
    dc.memset(0)?;

    // ---- stream & warm-up (15, warmups, 16, 17) ----
    let stream = ctx.stream()?;
    let params = ParamBuilder::new()
        .ptr(dc.ptr())
        .ptr(da.ptr())
        .ptr(db.ptr())
        .u32(cfg.wa as u32)
        .u32(cfg.wb as u32)
        .build();
    let grid = ((cfg.wb as u32) / BLOCK, (cfg.ha as u32) / BLOCK, 1).into();
    let block = (BLOCK, BLOCK, 1).into();
    for _ in 0..cfg.warmups {
        ctx.launch(&func, grid, block, 0, Some(&stream), &params)?;
    }
    stream.synchronize()?;
    let _ = ctx.with_raw(|r| r.get_last_error())?;

    // ---- timed loop (18..=20 around `iterations` launches) ----
    let start = ctx.event()?;
    let stop = ctx.event()?;
    start.record(Some(&stream))?;
    for _ in 0..cfg.iterations {
        ctx.launch(&func, grid, block, 0, Some(&stream), &params)?;
    }
    stop.record(Some(&stream))?;
    stop.synchronize()?;
    let kernel_ms = start.elapsed_ms(&stop)?;

    // ---- results (24..=26) ----
    stream.synchronize()?;
    let c = dc.copy_to_vec()?;
    let _ = ctx.with_raw(|r| r.get_last_error())?;
    let reference = reference(cfg, &a, &b);
    let valid = c
        .iter()
        .zip(&reference)
        .all(|(x, y)| (x - y).abs() <= 1e-3 * y.abs().max(1.0));

    // ---- teardown (explicit drops: 2 events, stream, 3 buffers, module,
    //      then a device synchronize) ----
    drop(start);
    drop(stop);
    drop(stream);
    drop(da);
    drop(db);
    drop(dc);
    drop(module);
    ctx.synchronize()?;

    Ok(MatrixMulReport {
        valid,
        kernel_ms,
        stats: ctx.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cricket_client::sim::simulated;
    use cricket_client::EnvConfig;

    #[test]
    fn small_run_validates_and_counts() {
        let (ctx, _setup) = simulated(EnvConfig::RustNative);
        let cfg = MatrixMulConfig::small();
        let report = run(&ctx, &cfg).unwrap();
        assert!(report.valid, "device product must match host reference");
        assert_eq!(report.stats.api_calls, cfg.expected_api_calls());
        assert_eq!(report.stats.launches as usize, cfg.iterations + cfg.warmups);
        assert!(report.kernel_ms > 0.0);
    }

    #[test]
    fn paper_config_projects_published_call_count() {
        let cfg = MatrixMulConfig::paper();
        assert_eq!(cfg.expected_api_calls(), 100_041);
        // 1.95 MiB of cudaMemcpy traffic.
        let mib = cfg.expected_bytes() as f64 / (1024.0 * 1024.0);
        assert!((mib - 1.953).abs() < 0.01, "{mib} MiB");
    }

    #[test]
    fn bytes_accounting_matches_projection() {
        let (ctx, _setup) = simulated(EnvConfig::RustyHermit);
        let cfg = MatrixMulConfig::small();
        let report = run(&ctx, &cfg).unwrap();
        let memcpy_bytes = report.stats.bytes_h2d + report.stats.bytes_d2h
            - report
                .stats
                .per_api
                .get("cuModuleLoadData")
                .map(|_| 0)
                .unwrap_or(0);
        // bytes_h2d includes the module image; subtract it for comparison.
        let module_bytes = memcpy_bytes
            .checked_sub(cfg.expected_bytes())
            .expect("at least the matrix traffic");
        assert!(module_bytes < 4096, "module image is small");
    }

    #[test]
    #[should_panic(expected = "multiples of the 32-wide tile")]
    fn misaligned_dimensions_rejected() {
        let (ctx, _setup) = simulated(EnvConfig::RustNative);
        let cfg = MatrixMulConfig {
            ha: 33,
            ..MatrixMulConfig::small()
        };
        let _ = run(&ctx, &cfg);
    }
}
