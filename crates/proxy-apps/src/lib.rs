//! Proxy applications (paper §4.1).
//!
//! Ports of the CUDA Samples the paper evaluates, driving the Cricket
//! client API exactly as the originals drive CUDA:
//!
//! * [`matrix_mul`] — `matrixMul`: repeated tiled multiplications of two
//!   constant matrices (A 320×320, B 320×640, 100 000 iterations →
//!   **100 041 API calls, 1.95 MiB** moved).
//! * [`linear_solver`] — `cuSolverDn_LinearSolver`: LU factorization +
//!   solve of a 900×900 system, 1000 iterations (**20 047 calls,
//!   6.07 GiB**).
//! * [`histogram`] — 64-bin and 256-bin histograms of a 64 MiB random
//!   array (**80 033 calls, 64 MiB**).
//! * [`bandwidth`] — `bandwidthTest`: H2D/D2H streaming bandwidth.
//!
//! Every app validates its results against a host reference (as the CUDA
//! samples do) and reports its client-side [`cricket_client::ApiStats`],
//! which the `table_calls` harness checks against the paper's numbers.
//!
//! Where an app's behavior depends on the client flavor (the C variants'
//! slower `rand()` initialization and `<<<...>>>` launch marshalling), the
//! flavor is read from the [`cricket_client::Context`].

pub mod bandwidth;
pub mod histogram;
pub mod linear_solver;
pub mod matrix_mul;

use cricket_client::env::ClientFlavor;
use cricket_client::{ccompat, Context};

/// Fill `buf` with deterministic pseudo-random bytes using the
/// flavor-appropriate generator, charging its host cost to the simulated
/// clock (if any). This is the initialization-path difference the paper
/// measures on `histogram` (§4.1).
pub fn fill_random(ctx: &Context, seed: u64, buf: &mut [u8]) {
    ctx.with_raw(|raw| {
        let clock = raw.clock().cloned();
        match raw.flavor() {
            ClientFlavor::CTirpc => {
                ccompat::CRand::new(seed as u32).fill_bytes(buf, clock.as_deref())
            }
            ClientFlavor::RustRpcLib => {
                ccompat::RustRand::new(seed).fill_bytes(buf, clock.as_deref())
            }
        }
    });
}

/// Virtual seconds elapsed on the context's clock while running `f`
/// (0.0 when not simulated — e.g. over real TCP).
pub fn timed_virtual<R>(ctx: &Context, f: impl FnOnce() -> R) -> (R, f64) {
    let clock = ctx.with_raw(|raw| raw.clock().cloned());
    let t0 = clock.as_ref().map(|c| c.now_ns()).unwrap_or(0);
    let r = f();
    let t1 = clock.as_ref().map(|c| c.now_ns()).unwrap_or(0);
    (r, (t1 - t0) as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cricket_client::sim::simulated;
    use cricket_client::EnvConfig;

    #[test]
    fn fill_random_is_deterministic_per_flavor() {
        let (rust_ctx, _s1) = simulated(EnvConfig::RustNative);
        let (c_ctx, _s2) = simulated(EnvConfig::CNative);
        let mut a = vec![0u8; 256];
        let mut b = vec![0u8; 256];
        fill_random(&rust_ctx, 7, &mut a);
        fill_random(&rust_ctx, 7, &mut b);
        assert_eq!(a, b);
        let mut c = vec![0u8; 256];
        fill_random(&c_ctx, 7, &mut c);
        assert_ne!(a, c, "flavors use different generators");
    }

    #[test]
    fn c_flavor_init_charges_more_time() {
        let (rust_ctx, s1) = simulated(EnvConfig::RustNative);
        let (c_ctx, s2) = simulated(EnvConfig::CNative);
        let mut buf = vec![0u8; 1 << 20];
        let (_, t_rust) = timed_virtual(&rust_ctx, || fill_random(&rust_ctx, 1, &mut buf));
        let (_, t_c) = timed_virtual(&c_ctx, || fill_random(&c_ctx, 1, &mut buf));
        assert!(t_c > 5.0 * t_rust, "C init {t_c}s vs Rust {t_rust}s");
        let _ = (s1, s2);
    }
}
