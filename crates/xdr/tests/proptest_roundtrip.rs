//! Property-based tests: every Xdr impl must round-trip losslessly, produce
//! 4-byte-aligned output, and reject truncated input without panicking.

use proptest::prelude::*;
use xdr::{decode, encode, Xdr, XdrDecoder, XdrVec};

fn roundtrip<T: Xdr + PartialEq + std::fmt::Debug>(v: &T) {
    let buf = encode(v);
    assert_eq!(buf.len() % 4, 0, "encoding must be 4-byte aligned");
    let back: T = decode(&buf).expect("decode of own encoding must succeed");
    assert_eq!(&back, v);
}

/// Decoding any strict prefix of a valid encoding must fail cleanly (no
/// panic, no bogus success consuming the whole prefix).
fn prefix_safe<T: Xdr>(buf: &[u8]) {
    for cut in 0..buf.len() {
        let mut dec = XdrDecoder::new(&buf[..cut]);
        match T::decode(&mut dec) {
            // A shorter parse may succeed (e.g. opaque with smaller padding),
            // but then it must not have consumed exactly the full prefix of a
            // *different* length item. We only require: no panic.
            Ok(_) | Err(_) => {}
        }
    }
}

proptest! {
    #[test]
    fn u32_roundtrip(v: u32) { roundtrip(&v); }

    #[test]
    fn i32_roundtrip(v: i32) { roundtrip(&v); }

    #[test]
    fn u64_roundtrip(v: u64) { roundtrip(&v); }

    #[test]
    fn i64_roundtrip(v: i64) { roundtrip(&v); }

    #[test]
    fn f64_roundtrip(v: f64) {
        // NaN compares unequal; compare bit patterns instead.
        let buf = encode(&v);
        let back: f64 = decode(&buf).unwrap();
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn f32_roundtrip(v: f32) {
        let buf = encode(&v);
        let back: f32 = decode(&buf).unwrap();
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn bool_roundtrip(v: bool) { roundtrip(&v); }

    #[test]
    fn opaque_roundtrip(v in proptest::collection::vec(any::<u8>(), 0..4096)) {
        roundtrip(&v);
    }

    #[test]
    fn string_roundtrip(s in "\\PC{0,256}") {
        roundtrip(&s.to_string());
    }

    #[test]
    fn u32_array_roundtrip(v in proptest::collection::vec(any::<u32>(), 0..512)) {
        roundtrip(&XdrVec(v));
    }

    #[test]
    fn option_roundtrip(v in proptest::option::of(any::<u64>())) {
        roundtrip(&v);
    }

    #[test]
    fn tuple_roundtrip(a: u32, b: i64, s in "\\PC{0,64}", f: bool) {
        roundtrip(&(a, b, s.to_string(), f));
    }

    #[test]
    fn truncation_never_panics(v in proptest::collection::vec(any::<u8>(), 0..256)) {
        let buf = encode(&v);
        prefix_safe::<Vec<u8>>(&buf);
    }

    #[test]
    fn arbitrary_bytes_never_panic(buf in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Fuzz the decoder with random garbage for several types.
        let _ = decode::<Vec<u8>>(&buf);
        let _ = decode::<String>(&buf);
        let _ = decode::<XdrVec<u32>>(&buf);
        let _ = decode::<Option<u64>>(&buf);
        let _ = decode::<(u32, u32, Vec<u8>)>(&buf);
    }

    #[test]
    fn nested_composite_roundtrip(
        blobs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..16),
        tag: u32,
    ) {
        let v = (tag, XdrVec(blobs.clone()));
        let buf = encode(&v);
        let (t2, b2): (u32, XdrVec<Vec<u8>>) = decode(&buf).unwrap();
        prop_assert_eq!(t2, tag);
        prop_assert_eq!(b2.0, blobs);
    }
}
