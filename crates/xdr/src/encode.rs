//! XDR encoder: appends big-endian, 4-byte-aligned items to a byte buffer.

use crate::{pad_bytes, Xdr};

/// Streaming XDR encoder.
///
/// The encoder owns a `Vec<u8>` that grows as items are written. For hot
/// paths, construct once with [`XdrEncoder::with_capacity`] and reuse via
/// [`XdrEncoder::clear`] to amortize allocations.
#[derive(Debug, Default, Clone)]
pub struct XdrEncoder {
    buf: Vec<u8>,
}

impl XdrEncoder {
    /// Create an empty encoder.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Create an encoder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Wrap an existing buffer; new items are appended after its contents.
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Self { buf }
    }

    /// Number of bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drop all written bytes but keep the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Roll the stream back to `len` bytes. Used by the RPC server to drop
    /// an optimistically written success header when dispatch fails, so the
    /// reply can be re-encoded into the same buffer without copying.
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Consume the encoder, returning the encoded bytes.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// View the bytes written so far.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Encode any [`Xdr`] value.
    #[inline]
    pub fn put<T: Xdr>(&mut self, value: &T) -> &mut Self {
        value.encode(self);
        self
    }

    /// Write a 32-bit unsigned integer.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write a 32-bit signed integer.
    #[inline]
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write a 64-bit unsigned integer (XDR "unsigned hyper").
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write a 64-bit signed integer (XDR "hyper").
    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write a single-precision float.
    #[inline]
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Write a double-precision float.
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write a boolean as 0/1.
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.put_u32(v as u32);
    }

    /// Write fixed-length opaque data (no length prefix), zero-padded to a
    /// multiple of four bytes.
    pub fn put_opaque_fixed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
        self.put_padding(data.len());
    }

    /// Write variable-length opaque data: a u32 length followed by the bytes
    /// and zero padding.
    pub fn put_opaque(&mut self, data: &[u8]) {
        debug_assert!(data.len() <= u32::MAX as usize);
        self.put_u32(data.len() as u32);
        self.put_opaque_fixed(data);
    }

    /// Write an XDR string (same wire form as variable opaque).
    pub fn put_string(&mut self, s: &str) {
        self.put_opaque(s.as_bytes());
    }

    /// Write the zero fill that follows `payload_len` bytes of opaque data.
    /// Public so scatter-gather encoding can emit the padding for a payload
    /// that lives outside the owned stream.
    #[inline]
    pub fn put_padding_for(&mut self, payload_len: usize) {
        const ZEROS: [u8; 4] = [0; 4];
        self.buf.extend_from_slice(&ZEROS[..pad_bytes(payload_len)]);
    }

    #[inline]
    fn put_padding(&mut self, payload_len: usize) {
        self.put_padding_for(payload_len);
    }

    /// Append pre-encoded XDR bytes verbatim. The caller asserts the bytes
    /// are already aligned XDR output (e.g. from another encoder).
    pub fn extend_raw(&mut self, bytes: &[u8]) {
        debug_assert_eq!(bytes.len() % 4, 0, "raw XDR must be aligned");
        self.buf.extend_from_slice(bytes);
    }

    /// Write a variable-length array: u32 count then each element.
    pub fn put_array<T: Xdr>(&mut self, items: &[T]) {
        self.put_u32(items.len() as u32);
        for item in items {
            item.encode(self);
        }
    }

    /// Write a fixed-length array (no count prefix).
    pub fn put_array_fixed<T: Xdr>(&mut self, items: &[T]) {
        for item in items {
            item.encode(self);
        }
    }

    /// Write an XDR optional ("pointer"): 1 + value, or 0.
    pub fn put_option<T: Xdr>(&mut self, value: Option<&T>) {
        match value {
            Some(v) => {
                self.put_u32(1);
                v.encode(self);
            }
            None => self.put_u32(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_are_big_endian() {
        let mut e = XdrEncoder::new();
        e.put_u32(0x0102_0304);
        e.put_i32(-1);
        e.put_u64(0x0102_0304_0506_0708);
        assert_eq!(
            e.as_slice(),
            [1, 2, 3, 4, 0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5, 6, 7, 8]
        );
    }

    #[test]
    fn opaque_is_padded() {
        let mut e = XdrEncoder::new();
        e.put_opaque(b"abcde");
        assert_eq!(
            e.as_slice(),
            [0, 0, 0, 5, b'a', b'b', b'c', b'd', b'e', 0, 0, 0]
        );
        assert_eq!(e.len() % 4, 0);
    }

    #[test]
    fn fixed_opaque_has_no_length() {
        let mut e = XdrEncoder::new();
        e.put_opaque_fixed(b"ab");
        assert_eq!(e.as_slice(), [b'a', b'b', 0, 0]);
    }

    #[test]
    fn string_matches_opaque() {
        let mut a = XdrEncoder::new();
        a.put_string("hello");
        let mut b = XdrEncoder::new();
        b.put_opaque(b"hello");
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn floats_roundtrip_bits() {
        let mut e = XdrEncoder::new();
        e.put_f32(1.5);
        e.put_f64(-2.25);
        assert_eq!(&e.as_slice()[..4], 1.5f32.to_bits().to_be_bytes());
        assert_eq!(&e.as_slice()[4..], (-2.25f64).to_bits().to_be_bytes());
    }

    #[test]
    fn option_encoding() {
        let mut e = XdrEncoder::new();
        e.put_option(Some(&7u32));
        e.put_option::<u32>(None);
        assert_eq!(e.as_slice(), [0, 0, 0, 1, 0, 0, 0, 7, 0, 0, 0, 0]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut e = XdrEncoder::with_capacity(64);
        e.put_u64(1);
        let cap = e.buf.capacity();
        e.clear();
        assert!(e.is_empty());
        assert_eq!(e.buf.capacity(), cap);
    }
}
