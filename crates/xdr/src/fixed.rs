//! Fixed-buffer XDR encoder: the no-allocation counterpart of
//! [`XdrEncoder`](crate::XdrEncoder).
//!
//! [`FixedEncoder`] writes into a caller-provided `&mut [u8]` and never
//! allocates. It is the encoding half of the `no_alloc` rpcl codegen mode:
//! unikernel guests with a static request buffer encode calls with zero
//! steady-state heap traffic. Overflow is deferred — every `put_*` advances
//! the logical length even past capacity, and [`FixedEncoder::finish`]
//! reports the total the buffer *would* have needed, so callers size their
//! buffers from one failed probe instead of guessing.

use crate::{pad_bytes, XdrError, XdrResult};

/// Streaming XDR encoder over a caller-provided fixed buffer.
///
/// Mirrors the [`XdrEncoder`](crate::XdrEncoder) byte format exactly; the
/// two encoders are interchangeable on the wire (asserted by this module's
/// tests). Writes past the buffer's capacity are dropped but tracked: the
/// logical position keeps advancing, and [`finish`](Self::finish) returns
/// [`XdrError::Truncated`] carrying the full required length.
#[derive(Debug)]
pub struct FixedEncoder<'a> {
    buf: &'a mut [u8],
    /// Logical bytes encoded — may exceed `buf.len()` after an overflow.
    pos: usize,
}

impl<'a> FixedEncoder<'a> {
    /// Create an encoder writing into `buf` from offset 0.
    pub fn new(buf: &'a mut [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Logical bytes encoded so far (may exceed capacity on overflow).
    #[inline]
    pub fn len(&self) -> usize {
        self.pos
    }

    /// True when nothing has been encoded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos == 0
    }

    /// True once any write has been dropped for lack of capacity.
    #[inline]
    pub fn overflowed(&self) -> bool {
        self.pos > self.buf.len()
    }

    /// Check for overflow and return the encoded length. On overflow, the
    /// error's `needed` is the total length the encoding required.
    pub fn finish(&self) -> XdrResult<usize> {
        if self.overflowed() {
            Err(XdrError::Truncated {
                needed: self.pos,
                remaining: self.buf.len(),
            })
        } else {
            Ok(self.pos)
        }
    }

    /// The encoded bytes. Empty after an overflow (the encoding is
    /// incomplete; use [`finish`](Self::finish) to learn the required size).
    pub fn as_slice(&self) -> &[u8] {
        if self.overflowed() {
            &[]
        } else {
            &self.buf[..self.pos]
        }
    }

    #[inline]
    fn put(&mut self, bytes: &[u8]) {
        let end = self.pos + bytes.len();
        if end <= self.buf.len() {
            self.buf[self.pos..end].copy_from_slice(bytes);
        }
        self.pos = end;
    }

    /// Append a 32-bit unsigned integer.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.put(&v.to_be_bytes());
    }

    /// Append a 32-bit signed integer.
    #[inline]
    pub fn put_i32(&mut self, v: i32) {
        self.put_u32(v as u32);
    }

    /// Append a 64-bit unsigned integer.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.put(&v.to_be_bytes());
    }

    /// Append a 64-bit signed integer.
    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    /// Append a single-precision float.
    #[inline]
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append a double-precision float.
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a boolean as 0/1.
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.put_u32(v as u32);
    }

    /// Append fixed-length opaque data plus zero padding.
    pub fn put_opaque_fixed(&mut self, data: &[u8]) {
        self.put(data);
        self.put(&[0u8; 3][..pad_bytes(data.len())]);
    }

    /// Append variable-length opaque data: length prefix, bytes, padding.
    pub fn put_opaque(&mut self, data: &[u8]) {
        self.put_u32(data.len() as u32);
        self.put_opaque_fixed(data);
    }

    /// Append an XDR string (same wire form as variable opaque).
    pub fn put_string(&mut self, s: &str) {
        self.put_opaque(s.as_bytes());
    }

    /// Append raw pre-encoded bytes with no length prefix or padding.
    pub fn extend_raw(&mut self, bytes: &[u8]) {
        self.put(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XdrEncoder;

    /// Drive both encoders through the same mixed sequence.
    fn exercise(fixed: &mut FixedEncoder<'_>, growable: &mut XdrEncoder) {
        fixed.put_u32(0xdead_beef);
        growable.put_u32(0xdead_beef);
        fixed.put_i32(-7);
        growable.put_i32(-7);
        fixed.put_u64(0x0123_4567_89ab_cdef);
        growable.put_u64(0x0123_4567_89ab_cdef);
        fixed.put_i64(-1);
        growable.put_i64(-1);
        fixed.put_f32(1.5);
        growable.put_f32(1.5);
        fixed.put_f64(-2.25);
        growable.put_f64(-2.25);
        fixed.put_bool(true);
        growable.put_bool(true);
        fixed.put_opaque(b"hello");
        growable.put_opaque(b"hello");
        fixed.put_opaque_fixed(b"xyz");
        growable.put_opaque_fixed(b"xyz");
        fixed.put_string("naïve");
        growable.put_string("naïve");
        fixed.extend_raw(&[9, 8, 7, 6]);
        growable.extend_raw(&[9, 8, 7, 6]);
    }

    #[test]
    fn byte_identical_to_growable_encoder() {
        let mut buf = [0u8; 256];
        let mut fixed = FixedEncoder::new(&mut buf);
        let mut growable = XdrEncoder::new();
        exercise(&mut fixed, &mut growable);
        assert_eq!(fixed.finish().unwrap(), growable.as_slice().len());
        assert_eq!(fixed.as_slice(), growable.as_slice());
    }

    #[test]
    fn overflow_reports_required_length() {
        let mut big = [0u8; 256];
        let mut probe = FixedEncoder::new(&mut big);
        let mut growable = XdrEncoder::new();
        exercise(&mut probe, &mut growable);
        let needed = probe.finish().unwrap();

        let mut small = [0u8; 16];
        let mut fixed = FixedEncoder::new(&mut small);
        let mut scratch = XdrEncoder::new();
        exercise(&mut fixed, &mut scratch);
        assert!(fixed.overflowed());
        assert!(fixed.as_slice().is_empty());
        match fixed.finish() {
            Err(XdrError::Truncated {
                needed: n,
                remaining,
            }) => {
                assert_eq!(n, needed);
                assert_eq!(remaining, 16);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn exact_fit_is_not_overflow() {
        let mut buf = [0u8; 8];
        let mut enc = FixedEncoder::new(&mut buf);
        enc.put_u64(42);
        assert!(!enc.overflowed());
        assert_eq!(enc.finish().unwrap(), 8);
        assert_eq!(enc.as_slice(), 42u64.to_be_bytes());
    }

    #[test]
    fn padding_matches_xdr_alignment() {
        let mut buf = [0u8; 64];
        let mut enc = FixedEncoder::new(&mut buf);
        enc.put_opaque(&[0xaa]);
        // length word + 1 payload byte + 3 pad bytes.
        assert_eq!(enc.as_slice(), &[0, 0, 0, 1, 0xaa, 0, 0, 0]);
    }
}
