//! Error type shared by XDR encoding and decoding.

use std::fmt;

/// Result alias used throughout the XDR crate.
pub type XdrResult<T> = Result<T, XdrError>;

/// Errors that can occur while decoding (and, rarely, encoding) XDR data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdrError {
    /// The input ended before the requested item could be read.
    Truncated {
        /// Bytes needed to complete the read.
        needed: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// A variable-length item declared a length beyond the permitted maximum.
    LengthOutOfBounds {
        /// Declared length.
        len: usize,
        /// Maximum allowed by the schema.
        max: usize,
    },
    /// A boolean field held a value other than 0 or 1.
    InvalidBool(u32),
    /// An enum discriminant did not match any variant of the target type.
    InvalidEnum {
        /// Name of the enum type being decoded.
        type_name: &'static str,
        /// The offending discriminant.
        value: i32,
    },
    /// A union discriminant did not match any arm.
    InvalidUnionArm {
        /// Name of the union type being decoded.
        type_name: &'static str,
        /// The offending discriminant.
        discriminant: i32,
    },
    /// A string field contained invalid UTF-8. XDR strings are ASCII by
    /// specification; we enforce UTF-8, a strict superset.
    InvalidUtf8,
    /// Non-zero padding bytes were found where zero fill was required.
    NonZeroPadding,
    /// `decode` was asked to consume the whole buffer but bytes remained.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// An `Option` (XDR "pointer") tag held a value other than 0 or 1.
    InvalidOptionTag(u32),
    /// Catch-all for schema-level violations detected by generated code.
    Custom(String),
}

impl fmt::Display for XdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdrError::Truncated { needed, remaining } => write!(
                f,
                "truncated XDR input: needed {needed} bytes, {remaining} remaining"
            ),
            XdrError::LengthOutOfBounds { len, max } => {
                write!(f, "declared length {len} exceeds maximum {max}")
            }
            XdrError::InvalidBool(v) => write!(f, "invalid XDR bool value {v}"),
            XdrError::InvalidEnum { type_name, value } => {
                write!(f, "invalid discriminant {value} for enum {type_name}")
            }
            XdrError::InvalidUnionArm {
                type_name,
                discriminant,
            } => write!(f, "invalid arm {discriminant} for union {type_name}"),
            XdrError::InvalidUtf8 => write!(f, "string is not valid UTF-8"),
            XdrError::NonZeroPadding => write!(f, "non-zero XDR padding"),
            XdrError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decode")
            }
            XdrError::InvalidOptionTag(v) => write!(f, "invalid optional tag {v}"),
            XdrError::Custom(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for XdrError {}
