//! Scatter-gather XDR encoding.
//!
//! Bulk RPC arguments (`cuMemcpyHtoD` payloads, module images) dominate the
//! bytes an encoder handles, and copying them into the owned stream is the
//! single largest memcpy on the client's hot path. [`XdrSgEncoder`] wraps a
//! plain [`XdrEncoder`] and lets large opaques be *deferred*: the length
//! prefix and padding go into the owned stream as usual, while the payload
//! itself is recorded as a borrowed slice. [`XdrSgEncoder::with_segments`]
//! then exposes the logical byte stream as an ordered slice list suitable
//! for a vectored write — the payload bytes are never copied by the encoder.

use crate::XdrEncoder;
use std::ops::{Deref, DerefMut};

/// Maximum number of deferred slices per message. Cricket calls carry at
/// most one bulk argument, so four leaves headroom; further deferrals fall
/// back to copying (correct, just not zero-copy).
pub const MAX_DEFERRED: usize = 4;

/// Upper bound on the segment count [`XdrSgEncoder::with_segments`] yields:
/// each deferred slice splits the owned stream once.
pub const MAX_SEGMENTS: usize = 2 * MAX_DEFERRED + 1;

/// XDR encoder whose output is the owned stream of the wrapped
/// [`XdrEncoder`] interleaved with borrowed payload slices.
///
/// Derefs to [`XdrEncoder`], so all scalar `put_*` methods write to the
/// owned stream. Only [`XdrSgEncoder::put_opaque_deferred`] records a
/// borrowed slice. `'d` is the lifetime of the deferred payload data; the
/// borrowed slices must stay alive until the message has been written.
pub struct XdrSgEncoder<'d, 'e> {
    enc: &'e mut XdrEncoder,
    /// `(split, slice)`: the slice logically sits at offset `split` of the
    /// owned stream. Splits are non-decreasing by construction.
    deferred: [(usize, &'d [u8]); MAX_DEFERRED],
    count: usize,
}

impl<'d, 'e> XdrSgEncoder<'d, 'e> {
    /// Wrap `enc`, which may already contain header bytes. Anything written
    /// before this call stays ahead of all deferred slices.
    pub fn new(enc: &'e mut XdrEncoder) -> Self {
        Self {
            enc,
            deferred: [(0, &[]); MAX_DEFERRED],
            count: 0,
        }
    }

    /// Write variable-length opaque data without copying the payload: the
    /// u32 length prefix and the zero padding go into the owned stream, the
    /// payload is recorded as a borrowed slice. Falls back to a copying
    /// [`XdrEncoder::put_opaque`] once [`MAX_DEFERRED`] slices are recorded
    /// or for payloads too small to be worth an iovec entry.
    pub fn put_opaque_deferred(&mut self, data: &'d [u8]) {
        // Tiny payloads cost more as a vectored segment than as a copy.
        const DEFER_THRESHOLD: usize = 512;
        if self.count == MAX_DEFERRED || data.len() < DEFER_THRESHOLD {
            self.enc.put_opaque(data);
            return;
        }
        debug_assert!(data.len() <= u32::MAX as usize);
        self.enc.put_u32(data.len() as u32);
        self.deferred[self.count] = (self.enc.len(), data);
        self.count += 1;
        // Padding follows the deferred payload in the logical stream, but
        // lives in the owned buffer right at the split point.
        self.enc.put_padding_for(data.len());
    }

    /// Number of deferred (zero-copy) slices recorded so far.
    pub fn deferred_count(&self) -> usize {
        self.count
    }

    /// Total length of the logical stream: owned bytes plus deferred bytes.
    pub fn total_len(&self) -> usize {
        self.enc.len()
            + self.deferred[..self.count]
                .iter()
                .map(|(_, d)| d.len())
                .sum::<usize>()
    }

    /// Run `f` over the logical byte stream as an ordered segment list.
    /// Concatenating the segments yields exactly the bytes a plain encoder
    /// would have produced. At most [`MAX_SEGMENTS`] entries; built on the
    /// stack, no allocation.
    pub fn with_segments<R>(&self, f: impl FnOnce(&[&[u8]]) -> R) -> R {
        let owned = self.enc.as_slice();
        let mut segs: [&[u8]; MAX_SEGMENTS] = [&[]; MAX_SEGMENTS];
        let mut n = 0;
        let mut prev = 0;
        for &(split, data) in &self.deferred[..self.count] {
            if split > prev {
                segs[n] = &owned[prev..split];
                n += 1;
            }
            if !data.is_empty() {
                segs[n] = data;
                n += 1;
            }
            prev = split;
        }
        if owned.len() > prev || n == 0 {
            segs[n] = &owned[prev..];
            n += 1;
        }
        f(&segs[..n])
    }

    /// Flatten into a single owned buffer (test/diagnostic path).
    pub fn to_contiguous(&self) -> Vec<u8> {
        self.with_segments(|segs| {
            let mut out = Vec::with_capacity(self.total_len());
            for s in segs {
                out.extend_from_slice(s);
            }
            out
        })
    }
}

impl Deref for XdrSgEncoder<'_, '_> {
    type Target = XdrEncoder;
    fn deref(&self) -> &XdrEncoder {
        self.enc
    }
}

impl DerefMut for XdrSgEncoder<'_, '_> {
    fn deref_mut(&mut self) -> &mut XdrEncoder {
        self.enc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: what a plain encoder produces for the same logical writes.
    fn plain(header: u32, payload: &[u8], trailer: u64) -> Vec<u8> {
        let mut e = XdrEncoder::new();
        e.put_u32(header);
        e.put_opaque(payload);
        e.put_u64(trailer);
        e.into_inner()
    }

    #[test]
    fn segments_match_plain_encoding() {
        for len in [512usize, 513, 515, 4096] {
            let payload: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let mut enc = XdrEncoder::new();
            let mut sg = XdrSgEncoder::new(&mut enc);
            sg.put_u32(7);
            sg.put_opaque_deferred(&payload);
            sg.put_u64(0xdead_beef);
            assert_eq!(sg.deferred_count(), 1);
            assert_eq!(sg.total_len(), plain(7, &payload, 0xdead_beef).len());
            assert_eq!(sg.to_contiguous(), plain(7, &payload, 0xdead_beef));
        }
    }

    #[test]
    fn small_payloads_fall_back_to_copy() {
        let payload = [9u8; 16];
        let mut enc = XdrEncoder::new();
        let mut sg = XdrSgEncoder::new(&mut enc);
        sg.put_u32(1);
        sg.put_opaque_deferred(&payload);
        assert_eq!(sg.deferred_count(), 0);
        let got = sg.to_contiguous();
        let mut want = XdrEncoder::new();
        want.put_u32(1);
        want.put_opaque(&payload);
        assert_eq!(got, want.into_inner());
    }

    #[test]
    fn overflow_beyond_max_deferred_still_correct() {
        let payload = vec![3u8; 600];
        let mut enc = XdrEncoder::new();
        let mut sg = XdrSgEncoder::new(&mut enc);
        let mut want = XdrEncoder::new();
        for _ in 0..(MAX_DEFERRED + 2) {
            sg.put_opaque_deferred(&payload);
            want.put_opaque(&payload);
        }
        assert_eq!(sg.deferred_count(), MAX_DEFERRED);
        assert_eq!(sg.to_contiguous(), want.into_inner());
    }

    #[test]
    fn empty_message_yields_one_empty_segment() {
        let mut enc = XdrEncoder::new();
        let sg = XdrSgEncoder::new(&mut enc);
        sg.with_segments(|segs| {
            assert_eq!(segs.len(), 1);
            assert!(segs[0].is_empty());
        });
    }

    #[test]
    fn adjacent_deferred_slices_preserve_order() {
        let a = vec![1u8; 512];
        let b = vec![2u8; 512];
        let mut enc = XdrEncoder::new();
        let mut sg = XdrSgEncoder::new(&mut enc);
        sg.put_opaque_deferred(&a);
        sg.put_opaque_deferred(&b);
        let mut want = XdrEncoder::new();
        want.put_opaque(&a);
        want.put_opaque(&b);
        assert_eq!(sg.to_contiguous(), want.into_inner());
    }

    #[test]
    fn unpadded_payload_length_keeps_alignment() {
        // 513 bytes → 3 pad bytes that must land *after* the deferred slice.
        let payload = vec![5u8; 513];
        let mut enc = XdrEncoder::new();
        let mut sg = XdrSgEncoder::new(&mut enc);
        sg.put_opaque_deferred(&payload);
        sg.put_u32(0xffff_ffff);
        let mut want = XdrEncoder::new();
        want.put_opaque(&payload);
        want.put_u32(0xffff_ffff);
        assert_eq!(sg.to_contiguous(), want.into_inner());
    }
}
