//! The [`Xdr`] trait and impls for primitives and common composites.

use crate::{XdrDecoder, XdrEncoder, XdrResult};

/// A type with a canonical XDR wire representation.
///
/// Generated code (from the `rpcl` compiler) implements this for every RPCL
/// struct, enum, union and typedef. Hand-written impls below cover the
/// primitive building blocks.
pub trait Xdr: Sized {
    /// Append the XDR encoding of `self` to `enc`.
    fn encode(&self, enc: &mut XdrEncoder);

    /// Decode a value of this type from `dec`.
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self>;
}

macro_rules! xdr_primitive {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Xdr for $ty {
            #[inline]
            fn encode(&self, enc: &mut XdrEncoder) {
                enc.$put(*self);
            }
            #[inline]
            fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
                dec.$get()
            }
        }
    };
}

xdr_primitive!(u32, put_u32, get_u32);
xdr_primitive!(i32, put_i32, get_i32);
xdr_primitive!(u64, put_u64, get_u64);
xdr_primitive!(i64, put_i64, get_i64);
xdr_primitive!(f32, put_f32, get_f32);
xdr_primitive!(f64, put_f64, get_f64);
xdr_primitive!(bool, put_bool, get_bool);

/// `()` encodes as XDR `void`: zero bytes.
impl Xdr for () {
    #[inline]
    fn encode(&self, _enc: &mut XdrEncoder) {}
    #[inline]
    fn decode(_dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(())
    }
}

/// `Vec<u8>` encodes as variable-length opaque data. This is the dominant
/// payload type for GPU memory transfers, so it gets the byte-blob encoding,
/// not the per-element array encoding.
impl Xdr for Vec<u8> {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_opaque(self);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(dec.get_opaque()?.to_vec())
    }
}

impl Xdr for String {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_string(self);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        dec.get_string()
    }
}

impl<T: Xdr> Xdr for Option<T> {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_option(self.as_ref());
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        dec.get_option()
    }
}

impl<T: Xdr> Xdr for Box<T> {
    fn encode(&self, enc: &mut XdrEncoder) {
        (**self).encode(enc);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Box::new(T::decode(dec)?))
    }
}

/// Wrapper marking a `Vec<T>` as an XDR variable-length *array* (count +
/// per-element encoding). Needed because `Vec<u8>` is claimed by the opaque
/// encoding; generated code uses `XdrVec` for `u32<>`-style arrays.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct XdrVec<T>(pub Vec<T>);

impl<T: Xdr> Xdr for XdrVec<T> {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_array(&self.0);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(XdrVec(dec.get_array()?))
    }
}

impl<T> std::ops::Deref for XdrVec<T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        &self.0
    }
}

impl<T> std::ops::DerefMut for XdrVec<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.0
    }
}

impl<T> From<Vec<T>> for XdrVec<T> {
    fn from(v: Vec<T>) -> Self {
        XdrVec(v)
    }
}

/// Fixed-size byte array: encoded as fixed opaque (no length prefix).
impl<const N: usize> Xdr for [u8; N] {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_opaque_fixed(self);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let bytes = dec.get_opaque_fixed(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(bytes);
        Ok(out)
    }
}

macro_rules! xdr_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Xdr),+> Xdr for ($($name,)+) {
            fn encode(&self, enc: &mut XdrEncoder) {
                $(self.$idx.encode(enc);)+
            }
            fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
                Ok(($($name::decode(dec)?,)+))
            }
        }
    };
}

xdr_tuple!(A: 0);
xdr_tuple!(A: 0, B: 1);
xdr_tuple!(A: 0, B: 1, C: 2);
xdr_tuple!(A: 0, B: 1, C: 2, D: 3);
xdr_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
xdr_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode, encode};

    #[test]
    fn unit_is_zero_bytes() {
        assert!(encode(&()).is_empty());
        decode::<()>(&[]).unwrap();
    }

    #[test]
    fn vec_u8_uses_opaque_encoding() {
        let v = vec![1u8, 2, 3];
        let buf = encode(&v);
        assert_eq!(buf, [0, 0, 0, 3, 1, 2, 3, 0]);
        assert_eq!(decode::<Vec<u8>>(&buf).unwrap(), v);
    }

    #[test]
    fn xdrvec_uses_array_encoding() {
        let v: XdrVec<u32> = vec![1u32, 2].into();
        let buf = encode(&v);
        assert_eq!(buf, [0, 0, 0, 2, 0, 0, 0, 1, 0, 0, 0, 2]);
        assert_eq!(decode::<XdrVec<u32>>(&buf).unwrap(), v);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (1u32, -2i64, String::from("xyz"), true);
        let buf = encode(&t);
        assert_eq!(decode::<(u32, i64, String, bool)>(&buf).unwrap(), t);
    }

    #[test]
    fn fixed_byte_array_roundtrip() {
        let a: [u8; 6] = [1, 2, 3, 4, 5, 6];
        let buf = encode(&a);
        assert_eq!(buf.len(), 8); // padded to multiple of 4
        assert_eq!(decode::<[u8; 6]>(&buf).unwrap(), a);
    }

    #[test]
    fn boxed_value_roundtrip() {
        let b = Box::new(0xdeadu32);
        let buf = encode(&b);
        assert_eq!(decode::<Box<u32>>(&buf).unwrap(), b);
    }
}
