//! XDR decoder: bounds-checked reads from a borrowed byte slice.

use crate::{pad_bytes, Xdr, XdrError, XdrResult};

/// Streaming XDR decoder over a borrowed input buffer.
#[derive(Debug, Clone)]
pub struct XdrDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
    /// When true (the default), require padding bytes to be zero, as RFC 4506
    /// specifies ("residual bytes are zeros").
    strict_padding: bool,
}

impl<'a> XdrDecoder<'a> {
    /// Create a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            buf,
            pos: 0,
            strict_padding: true,
        }
    }

    /// Disable the padding-must-be-zero check (some legacy peers send junk).
    pub fn lenient_padding(mut self) -> Self {
        self.strict_padding = false;
        self
    }

    /// Current read offset in bytes.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the entire input has been consumed.
    pub fn finish(&self) -> XdrResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(XdrError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    /// Decode any [`Xdr`] value.
    #[inline]
    pub fn get<T: Xdr>(&mut self) -> XdrResult<T> {
        T::decode(self)
    }

    #[inline]
    fn take(&mut self, n: usize) -> XdrResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(XdrError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a 32-bit unsigned integer.
    #[inline]
    pub fn get_u32(&mut self) -> XdrResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a 32-bit signed integer.
    #[inline]
    pub fn get_i32(&mut self) -> XdrResult<i32> {
        Ok(self.get_u32()? as i32)
    }

    /// Read a 64-bit unsigned integer.
    #[inline]
    pub fn get_u64(&mut self) -> XdrResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a 64-bit signed integer.
    #[inline]
    pub fn get_i64(&mut self) -> XdrResult<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Read a single-precision float.
    #[inline]
    pub fn get_f32(&mut self) -> XdrResult<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read a double-precision float.
    #[inline]
    pub fn get_f64(&mut self) -> XdrResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a boolean, rejecting values other than 0/1.
    #[inline]
    pub fn get_bool(&mut self) -> XdrResult<bool> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(XdrError::InvalidBool(v)),
        }
    }

    fn check_padding(&mut self, payload_len: usize) -> XdrResult<()> {
        let pad = pad_bytes(payload_len);
        let b = self.take(pad)?;
        if self.strict_padding && b.iter().any(|&x| x != 0) {
            return Err(XdrError::NonZeroPadding);
        }
        Ok(())
    }

    /// Read `n` bytes of fixed-length opaque data (plus padding), borrowing
    /// from the input.
    pub fn get_opaque_fixed(&mut self, n: usize) -> XdrResult<&'a [u8]> {
        let data = self.take(n)?;
        self.check_padding(n)?;
        Ok(data)
    }

    /// Read variable-length opaque data with its length prefix, enforcing
    /// `max` as an upper bound on the declared length.
    pub fn get_opaque_max(&mut self, max: usize) -> XdrResult<&'a [u8]> {
        let len = self.get_u32()? as usize;
        if len > max {
            return Err(XdrError::LengthOutOfBounds { len, max });
        }
        self.get_opaque_fixed(len)
    }

    /// Read variable-length opaque data with no schema bound. The declared
    /// length is still validated against the bytes actually present, so a
    /// malicious length cannot cause overallocation.
    pub fn get_opaque(&mut self) -> XdrResult<&'a [u8]> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() {
            return Err(XdrError::Truncated {
                needed: len,
                remaining: self.remaining(),
            });
        }
        self.get_opaque_fixed(len)
    }

    /// Read variable-length opaque data **without copying**: the returned
    /// slice borrows the decoder's input for its full lifetime `'a`, so it
    /// can outlive the decoder itself (e.g. be handed to a service method
    /// while the request record stays pooled). Identical wire format to
    /// [`XdrDecoder::get_opaque`]; the separate name marks call sites on the
    /// zero-copy path.
    #[inline]
    pub fn get_opaque_ref(&mut self) -> XdrResult<&'a [u8]> {
        self.get_opaque()
    }

    /// Read an XDR string (UTF-8 validated).
    pub fn get_string(&mut self) -> XdrResult<String> {
        let bytes = self.get_opaque()?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| XdrError::InvalidUtf8)
    }

    /// Read an XDR string without copying: UTF-8 validated view borrowing
    /// the decoder's input for its full lifetime `'a`.
    pub fn get_str_ref(&mut self) -> XdrResult<&'a str> {
        let bytes = self.get_opaque()?;
        std::str::from_utf8(bytes).map_err(|_| XdrError::InvalidUtf8)
    }

    /// Read a variable-length array of `T`.
    pub fn get_array<T: Xdr>(&mut self) -> XdrResult<Vec<T>> {
        let len = self.get_u32()? as usize;
        // Each element takes at least 4 bytes on the wire; reject lengths the
        // remaining input cannot possibly satisfy before allocating.
        if len.saturating_mul(4) > self.remaining().saturating_add(3) {
            return Err(XdrError::Truncated {
                needed: len * 4,
                remaining: self.remaining(),
            });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(self)?);
        }
        Ok(out)
    }

    /// Read a fixed-length array of `n` elements.
    pub fn get_array_fixed<T: Xdr>(&mut self, n: usize) -> XdrResult<Vec<T>> {
        let mut out = Vec::with_capacity(n.min(self.remaining() / 4 + 1));
        for _ in 0..n {
            out.push(T::decode(self)?);
        }
        Ok(out)
    }

    /// Read an XDR optional ("pointer").
    pub fn get_option<T: Xdr>(&mut self) -> XdrResult<Option<T>> {
        match self.get_u32()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(self)?)),
            v => Err(XdrError::InvalidOptionTag(v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XdrEncoder;

    #[test]
    fn truncated_reads_fail() {
        let mut d = XdrDecoder::new(&[0, 0, 1]);
        assert!(matches!(
            d.get_u32(),
            Err(XdrError::Truncated {
                needed: 4,
                remaining: 3
            })
        ));
    }

    #[test]
    fn opaque_roundtrip() {
        let mut e = XdrEncoder::new();
        e.put_opaque(b"hi there");
        e.put_opaque(b"x");
        let buf = e.into_inner();
        let mut d = XdrDecoder::new(&buf);
        assert_eq!(d.get_opaque().unwrap(), b"hi there");
        assert_eq!(d.get_opaque().unwrap(), b"x");
        d.finish().unwrap();
    }

    #[test]
    fn opaque_length_bound_enforced() {
        let mut e = XdrEncoder::new();
        e.put_opaque(&[9u8; 32]);
        let buf = e.into_inner();
        let mut d = XdrDecoder::new(&buf);
        assert!(matches!(
            d.get_opaque_max(16),
            Err(XdrError::LengthOutOfBounds { len: 32, max: 16 })
        ));
    }

    #[test]
    fn malicious_opaque_length_rejected_without_allocation() {
        // Declared length of u32::MAX with only 4 bytes of payload.
        let buf = [0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4];
        let mut d = XdrDecoder::new(&buf);
        assert!(matches!(d.get_opaque(), Err(XdrError::Truncated { .. })));
    }

    #[test]
    fn malicious_array_length_rejected() {
        let buf = [0x7f, 0xff, 0xff, 0xff];
        let mut d = XdrDecoder::new(&buf);
        assert!(d.get_array::<u32>().is_err());
    }

    #[test]
    fn nonzero_padding_detected() {
        // length 1, payload 0xAA, padding 0x01 0x00 0x00 (invalid).
        let buf = [0, 0, 0, 1, 0xaa, 1, 0, 0];
        let mut d = XdrDecoder::new(&buf);
        assert_eq!(d.get_opaque(), Err(XdrError::NonZeroPadding));
        let mut d = XdrDecoder::new(&buf).lenient_padding();
        assert_eq!(d.get_opaque().unwrap(), [0xaa]);
    }

    #[test]
    fn bool_rejects_other_values() {
        let buf = [0, 0, 0, 2];
        let mut d = XdrDecoder::new(&buf);
        assert_eq!(d.get_bool(), Err(XdrError::InvalidBool(2)));
    }

    #[test]
    fn string_rejects_bad_utf8() {
        let mut e = XdrEncoder::new();
        e.put_opaque(&[0xff, 0xfe]);
        let buf = e.into_inner();
        let mut d = XdrDecoder::new(&buf);
        assert_eq!(d.get_string(), Err(XdrError::InvalidUtf8));
    }

    #[test]
    fn option_roundtrip() {
        let mut e = XdrEncoder::new();
        e.put_option(Some(&42u64));
        e.put_option::<u64>(None);
        let buf = e.into_inner();
        let mut d = XdrDecoder::new(&buf);
        assert_eq!(d.get_option::<u64>().unwrap(), Some(42));
        assert_eq!(d.get_option::<u64>().unwrap(), None);
        d.finish().unwrap();
    }
}
