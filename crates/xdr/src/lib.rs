//! XDR — External Data Representation (RFC 4506).
//!
//! This crate implements the wire format used by ONC RPC (RFC 5531): a
//! big-endian, 4-byte-aligned binary encoding. It is the lowest layer of the
//! Cricket reproduction stack; every RPC argument and result, as well as the
//! checkpoint snapshots of the simulated GPU, pass through these routines.
//!
//! Design notes:
//! * No `unsafe`, no allocation in the decode hot path beyond what the decoded
//!   values themselves require.
//! * [`XdrEncoder`] appends to a caller-provided growable buffer so a single
//!   buffer can be reused across calls (see the "Reusing Collections" guidance
//!   in the Rust Performance Book).
//! * [`XdrDecoder`] borrows its input; all reads are bounds-checked and return
//!   [`XdrError::Truncated`] rather than panicking.
//! * The [`Xdr`] trait ties both directions together and is implemented for
//!   all primitive types plus common composites; the `rpcl` code generator
//!   emits `Xdr` impls for user-defined RPCL types.

mod decode;
mod encode;
mod error;
mod fixed;
mod sg;
mod traits;

pub use decode::XdrDecoder;
pub use encode::XdrEncoder;
pub use error::{XdrError, XdrResult};
pub use fixed::FixedEncoder;
pub use sg::{XdrSgEncoder, MAX_DEFERRED, MAX_SEGMENTS};
pub use traits::{Xdr, XdrVec};

/// XDR unit of alignment: every item occupies a multiple of four bytes.
pub const ALIGN: usize = 4;

/// Round `n` up to the next multiple of the XDR alignment.
#[inline]
pub const fn pad_len(n: usize) -> usize {
    (n + (ALIGN - 1)) & !(ALIGN - 1)
}

/// Number of zero fill bytes required after `n` payload bytes.
#[inline]
pub const fn pad_bytes(n: usize) -> usize {
    pad_len(n) - n
}

/// Encode a value into a fresh buffer. Convenience for tests and one-shot use.
pub fn encode<T: Xdr>(value: &T) -> Vec<u8> {
    let mut enc = XdrEncoder::new();
    value.encode(&mut enc);
    enc.into_inner()
}

/// Decode a value from a buffer, requiring the buffer to be fully consumed.
pub fn decode<T: Xdr>(buf: &[u8]) -> XdrResult<T> {
    let mut dec = XdrDecoder::new(buf);
    let v = T::decode(&mut dec)?;
    dec.finish()?;
    Ok(v)
}

/// Decode a value from a buffer, permitting trailing bytes.
pub fn decode_prefix<T: Xdr>(buf: &[u8]) -> XdrResult<(T, usize)> {
    let mut dec = XdrDecoder::new(buf);
    let v = T::decode(&mut dec)?;
    Ok((v, dec.position()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_math() {
        assert_eq!(pad_len(0), 0);
        assert_eq!(pad_len(1), 4);
        assert_eq!(pad_len(3), 4);
        assert_eq!(pad_len(4), 4);
        assert_eq!(pad_len(5), 8);
        assert_eq!(pad_bytes(0), 0);
        assert_eq!(pad_bytes(1), 3);
        assert_eq!(pad_bytes(4), 0);
        assert_eq!(pad_bytes(6), 2);
    }

    #[test]
    fn one_shot_roundtrip() {
        let v: u32 = 0xdead_beef;
        let buf = encode(&v);
        assert_eq!(buf, [0xde, 0xad, 0xbe, 0xef]);
        let back: u32 = decode(&buf).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut buf = encode(&7u32);
        buf.extend_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(
            decode::<u32>(&buf),
            Err(XdrError::TrailingBytes { .. })
        ));
        let (v, used) = decode_prefix::<u32>(&buf).unwrap();
        assert_eq!(v, 7);
        assert_eq!(used, 4);
    }
}
