//! Regression: the zero-copy RPC data path performs exactly two
//! payload-sized stack-internal copies per transferred HtoD byte (transport
//! send buffering + record reassembly), plus O(100) header bytes per call.
//!
//! This is the only test in this binary: the copy counters are
//! process-global, so concurrent RPC traffic from sibling tests would
//! pollute the deltas.

#[test]
fn h2d_copies_per_byte_is_at_most_two() {
    let r = cricket_bench::fig7_copies_per_byte(8 << 20);
    // > 1.0 guards against the metric silently under-counting (e.g. a
    // counting site being dropped); < 2.01 is the zero-copy bound with
    // header slack.
    assert!(
        (1.0..2.01).contains(&r.h2d_copies_per_byte),
        "h2d copies/byte = {} (seed was >= 4)",
        r.h2d_copies_per_byte
    );
    assert!(
        (1.0..2.01).contains(&r.d2h_copies_per_byte),
        "d2h copies/byte = {}",
        r.d2h_copies_per_byte
    );
}
