//! Criterion benches that exercise every figure pipeline at reduced scale
//! (wall time of the full stack). These are the `cargo bench` entry points
//! for the paper artifacts; the `fig*` binaries print the full-scale
//! virtual-time tables recorded in EXPERIMENTS.md.

use cricket_bench::{
    ablation_offloads, fig5a_matrix_mul, fig5b_linear_solver, fig5c_histogram, fig6_micro,
    fig7_bandwidth, Micro, Scale,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_apps");
    g.sample_size(10);
    g.bench_function("matrixMul_1/1000", |b| {
        b.iter(|| std::hint::black_box(fig5a_matrix_mul(Scale(1000))))
    });
    g.bench_function("linearSolver_1/200", |b| {
        b.iter(|| std::hint::black_box(fig5b_linear_solver(Scale(200))))
    });
    g.bench_function("histogram_1/1000", |b| {
        b.iter(|| std::hint::black_box(fig5c_histogram(Scale(1000))))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_micro");
    g.sample_size(10);
    for which in [
        Micro::GetDeviceCount,
        Micro::MallocFree,
        Micro::KernelLaunch,
    ] {
        g.bench_function(format!("{:?}_x500", which), |b| {
            b.iter(|| std::hint::black_box(fig6_micro(which, 500)))
        });
    }
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_bandwidth");
    g.sample_size(10);
    g.bench_function("both_directions_16MiB", |b| {
        b.iter(|| {
            std::hint::black_box(fig7_bandwidth(true, 16 << 20, false));
            std::hint::black_box(fig7_bandwidth(false, 16 << 20, false));
        })
    });
    g.bench_function("offload_ablation_16MiB", |b| {
        b.iter(|| std::hint::black_box(ablation_offloads(16 << 20)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig5, bench_fig6, bench_fig7);
criterion_main!(benches);
