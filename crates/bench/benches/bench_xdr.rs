//! Criterion benches of the XDR and record-marking hot paths — the
//! serialization work every Cricket call performs (wall-clock time of our
//! real implementation, not simulated time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xdr::{Xdr, XdrDecoder, XdrEncoder};

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("xdr_primitives");
    g.bench_function("encode_u64", |b| {
        let mut enc = XdrEncoder::with_capacity(64);
        b.iter(|| {
            enc.clear();
            enc.put_u64(std::hint::black_box(0x1122_3344_5566_7788));
            std::hint::black_box(enc.len());
        });
    });
    g.bench_function("decode_u64", |b| {
        let buf = xdr::encode(&0xdead_beefu64);
        b.iter(|| {
            let mut dec = XdrDecoder::new(std::hint::black_box(&buf));
            std::hint::black_box(dec.get_u64().unwrap());
        });
    });
    g.bench_function("call_header_roundtrip", |b| {
        // The fixed work of every RPC: encode + decode an RpcMessage.
        use oncrpc::{CallBody, RpcMessage};
        let msg = RpcMessage::call(7, CallBody::new(537395001, 1, 23));
        b.iter(|| {
            let buf = xdr::encode(std::hint::black_box(&msg));
            let back: RpcMessage = xdr::decode(&buf).unwrap();
            std::hint::black_box(back);
        });
    });
    g.finish();
}

fn bench_opaque(c: &mut Criterion) {
    let mut g = c.benchmark_group("xdr_opaque");
    for size in [4 * 1024, 1024 * 1024, 8 * 1024 * 1024] {
        let data = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("encode", size), &data, |b, d| {
            let mut enc = XdrEncoder::with_capacity(size + 16);
            b.iter(|| {
                enc.clear();
                enc.put_opaque(std::hint::black_box(d));
            });
        });
        let encoded = xdr::encode(&data);
        g.bench_with_input(BenchmarkId::new("decode", size), &encoded, |b, e| {
            b.iter(|| {
                let v: Vec<u8> = xdr::decode(std::hint::black_box(e)).unwrap();
                std::hint::black_box(v.len());
            });
        });
    }
    g.finish();
}

fn bench_record_marking(c: &mut Criterion) {
    let mut g = c.benchmark_group("record_marking");
    // The paper's key RPC-Lib feature: multi-fragment records.
    for (label, frag) in [("1MiB_frags", 1 << 20), ("64KiB_frags", 64 << 10)] {
        let payload = vec![7u8; 8 << 20];
        g.throughput(Throughput::Bytes(payload.len() as u64));
        g.bench_function(BenchmarkId::new("write_read", label), |b| {
            b.iter(|| {
                let mut wire = Vec::with_capacity(payload.len() + 1024);
                oncrpc::record::write_record(&mut wire, &payload, frag).unwrap();
                let mut cursor = std::io::Cursor::new(&wire);
                let rec = oncrpc::record::read_record(&mut cursor, 1 << 30)
                    .unwrap()
                    .unwrap();
                std::hint::black_box(rec.len());
            });
        });
    }
    g.finish();
}

fn bench_checksum(c: &mut Criterion) {
    let mut g = c.benchmark_group("internet_checksum");
    let data = vec![0x5au8; 1 << 20];
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("1MiB", |b| {
        b.iter(|| {
            std::hint::black_box(simnet::checksum::internet_checksum(std::hint::black_box(
                &data,
            )))
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_primitives,
    bench_opaque,
    bench_record_marking,
    bench_checksum
);
criterion_main!(benches);
