//! Criterion benches of the simulated GPU substrate (wall time): allocator,
//! kernels, LZSS fatbin codec, LU factorization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vgpu::kernels::ParamBuilder;
use vgpu::module::CubinBuilder;
use vgpu::{Device, Dim3};

fn bench_allocator(c: &mut Criterion) {
    let mut g = c.benchmark_group("vgpu_allocator");
    g.bench_function("alloc_free_pair", |b| {
        let mut dev = Device::a100();
        b.iter(|| {
            let (p, _) = dev.malloc(4096).unwrap();
            dev.free(p).unwrap();
        });
    });
    g.bench_function("alloc_free_64_interleaved", |b| {
        let mut dev = Device::a100();
        b.iter(|| {
            let ptrs: Vec<u64> = (0..64)
                .map(|i| dev.malloc(256 << (i % 6)).unwrap().0)
                .collect();
            for p in ptrs.into_iter().rev() {
                dev.free(p).unwrap();
            }
        });
    });
    g.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("vgpu_kernels");
    g.sample_size(20);

    // matrixMul 128x128x128 (uncached: input changes every iteration).
    g.bench_function("matrix_mul_128", |b| {
        let mut dev = Device::a100();
        let image = CubinBuilder::new()
            .kernel("matrixMulCUDA", &[8, 8, 8, 4, 4])
            .build(false);
        let (m, _) = dev.module_load(&image).unwrap();
        let (f, _) = dev.module_get_function(m, "matrixMulCUDA").unwrap();
        let n = 128u64;
        let (a, _) = dev.malloc(n * n * 4).unwrap();
        let (bb, _) = dev.malloc(n * n * 4).unwrap();
        let (cc, _) = dev.malloc(n * n * 4).unwrap();
        let params = ParamBuilder::new()
            .ptr(cc)
            .ptr(a)
            .ptr(bb)
            .u32(n as u32)
            .u32(n as u32)
            .build();
        let grid = Dim3 {
            x: (n as u32) / 32,
            y: (n as u32) / 32,
            z: 1,
        };
        let block = Dim3 { x: 32, y: 32, z: 1 };
        let mut tick = 0u32;
        b.iter(|| {
            tick += 1;
            // Touch an input so the memo cache cannot shortcut the launch.
            dev.memcpy_htod(a, &tick.to_le_bytes()).unwrap();
            dev.launch_kernel(f, grid, block, 0, 0, &params).unwrap();
        });
    });

    // histogram256 over 4 MiB (uncached per iteration).
    g.throughput(Throughput::Bytes(4 << 20));
    g.bench_function("histogram256_4MiB", |b| {
        let mut dev = Device::a100();
        let image = CubinBuilder::new()
            .kernel("histogram256Kernel", &[8, 8, 4])
            .build(false);
        let (m, _) = dev.module_load(&image).unwrap();
        let (f, _) = dev.module_get_function(m, "histogram256Kernel").unwrap();
        let bytes = 4u64 << 20;
        let (data, _) = dev.malloc(bytes).unwrap();
        let (partial, _) = dev.malloc(240 * 256 * 4).unwrap();
        let params = ParamBuilder::new()
            .ptr(partial)
            .ptr(data)
            .u32(bytes as u32)
            .build();
        let mut tick = 0u32;
        b.iter(|| {
            tick += 1;
            dev.memcpy_htod(data, &tick.to_le_bytes()).unwrap();
            dev.launch_kernel(f, Dim3::linear(240), Dim3::linear(64), 0, 0, &params)
                .unwrap();
        });
    });

    // Memoized launch: the fast path the proxy apps hit 100k times.
    g.bench_function("memoized_launch", |b| {
        let mut dev = Device::a100();
        let image = CubinBuilder::new().kernel("empty", &[]).build(false);
        let (m, _) = dev.module_load(&image).unwrap();
        let (f, _) = dev.module_get_function(m, "empty").unwrap();
        dev.launch_kernel(f, Dim3::one(), Dim3::one(), 0, 0, &[])
            .unwrap();
        b.iter(|| {
            dev.launch_kernel(f, Dim3::one(), Dim3::one(), 0, 0, &[])
                .unwrap();
        });
    });
    g.finish();
}

fn bench_fatbin(c: &mut Criterion) {
    let mut g = c.benchmark_group("fatbin_lzss");
    let code: Vec<u8> = b"ld.global.f32 %f1, [%rd4]; fma.rn.f32 %f2, %f1, %f3, %f2; "
        .iter()
        .cycle()
        .take(256 * 1024)
        .copied()
        .collect();
    g.throughput(Throughput::Bytes(code.len() as u64));
    g.bench_function("compress_256KiB", |b| {
        b.iter(|| std::hint::black_box(vgpu::fatbin::compress(&code)));
    });
    let compressed = vgpu::fatbin::compress(&code);
    g.bench_function("decompress_256KiB", |b| {
        b.iter(|| std::hint::black_box(vgpu::fatbin::decompress(&compressed).unwrap()));
    });
    g.finish();
}

fn bench_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("vgpu_solver");
    g.sample_size(10);
    for n in [128usize, 256] {
        g.bench_with_input(BenchmarkId::new("dgetrf", n), &n, |b, &n| {
            let mut dev = Device::a100();
            let mut solver = vgpu::solver::SolverDn::new();
            let a: Vec<f64> = (0..n * n)
                .map(|i| {
                    if i % (n + 1) == 0 {
                        n as f64
                    } else {
                        (i % 13) as f64 * 0.1
                    }
                })
                .collect();
            let bytes: Vec<u8> = a.iter().flat_map(|v| v.to_le_bytes()).collect();
            let (pa, _) = dev.malloc((n * n * 8) as u64).unwrap();
            let (pw, _) = dev.malloc((n * 8) as u64).unwrap();
            let (pi, _) = dev.malloc((n * 4) as u64).unwrap();
            let (pinfo, _) = dev.malloc(8).unwrap();
            let mut tick = 0u64;
            b.iter(|| {
                tick += 1;
                // Vary one element so the content-hash memo cannot hit.
                let mut fresh = bytes.clone();
                fresh[..8].copy_from_slice(&(n as f64 + tick as f64).to_le_bytes());
                dev.memcpy_htod(pa, &fresh).unwrap();
                solver
                    .dgetrf(&mut dev, n as i32, n as i32, pa, n as i32, pw, pi, pinfo)
                    .unwrap();
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_allocator,
    bench_kernels,
    bench_fatbin,
    bench_solver
);
criterion_main!(benches);
