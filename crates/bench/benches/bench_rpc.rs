//! Criterion benches of the ONC RPC layer end to end (wall time): null
//! calls and bulk transfers over the in-memory transport and real TCP
//! loopback, with the generated Cricket stubs.

use cricket_proto::CricketV1Client;
use cricket_server::{make_rpc_server, CricketServer, ServerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oncrpc::{duplex_pair, TcpTransport};
use simnet::SimClock;
use std::sync::Arc;

fn duplex_client() -> CricketV1Client {
    let server = CricketServer::new(ServerConfig::default(), SimClock::new());
    let rpc = make_rpc_server(server);
    let (client_end, server_end) = duplex_pair();
    std::thread::spawn(move || {
        let mut conn = server_end;
        let _ = rpc.serve_connection(&mut conn);
    });
    CricketV1Client::new(Box::new(client_end))
}

fn tcp_client() -> (CricketV1Client, oncrpc::ServerHandle) {
    let server = CricketServer::new(ServerConfig::default(), SimClock::new());
    let rpc = make_rpc_server(server);
    let handle = oncrpc::server::serve_tcp(rpc, "127.0.0.1:0").unwrap();
    let t = TcpTransport::connect(handle.addr()).unwrap();
    (CricketV1Client::new(Box::new(t)), handle)
}

fn bench_null_call(c: &mut Criterion) {
    let mut g = c.benchmark_group("rpc_null_call");
    let mut mem = duplex_client();
    g.bench_function("duplex", |b| b.iter(|| mem.rpc_null().unwrap()));
    let (mut tcp, _handle) = tcp_client();
    g.bench_function("tcp_loopback", |b| b.iter(|| tcp.rpc_null().unwrap()));
    g.finish();
}

fn bench_memcpy(c: &mut Criterion) {
    let mut g = c.benchmark_group("rpc_memcpy_htod");
    g.sample_size(20);
    let mut client = duplex_client();
    for size in [64 * 1024usize, 4 * 1024 * 1024] {
        let ptr = client
            .cuda_malloc(&(size as u64))
            .unwrap()
            .into_result()
            .unwrap();
        let data = vec![1u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| {
                assert_eq!(client.cuda_memcpy_htod(&ptr, d).unwrap(), 0);
            });
        });
        client.cuda_free(&ptr).unwrap();
    }
    g.finish();
}

fn bench_malloc_free(c: &mut Criterion) {
    let mut client = duplex_client();
    c.bench_function("rpc_malloc_free_pair", |b| {
        b.iter(|| {
            let p = client.cuda_malloc(&4096).unwrap().into_result().unwrap();
            assert_eq!(client.cuda_free(&p).unwrap(), 0);
        });
    });
}

criterion_group!(benches, bench_null_call, bench_memcpy, bench_malloc_free);
criterion_main!(benches);
