//! Shared measurement harness behind the figure/table binaries.
//!
//! Every function here runs the *full stack* — application → client stub →
//! XDR → record marking → functional guest TCP/virtio → in-process Cricket
//! server → simulated GPU — and reads the shared virtual clock. The
//! binaries print the series; integration tests assert the paper's shapes
//! against the same functions.

use cricket_client::sim::SimSetup;
use cricket_client::{EnvConfig, ParamBuilder};
use proxy_apps::{bandwidth, histogram, linear_solver, matrix_mul};

/// One measured point: a configuration and its value.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Configuration label (paper x-axis).
    pub config: &'static str,
    /// Measured value (seconds or MiB/s, per series).
    pub value: f64,
}

/// A named measurement series (one paper sub-figure).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series name, e.g. "fig6a cudaGetDeviceCount x100000 [s]".
    pub name: String,
    /// Points in Table-1 configuration order.
    pub points: Vec<Point>,
}

impl Series {
    /// Value for a configuration label.
    pub fn get(&self, config: &str) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.config == config)
            .map(|p| p.value)
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.name);
        for p in &self.points {
            out.push_str(&format!("  {:<24} {:>14.4}\n", p.config, p.value));
        }
        out
    }
}

/// The five Table-1 configurations.
pub fn table1_envs() -> [EnvConfig; 5] {
    EnvConfig::table1()
}

// ---------------------------------------------------------------------
// Fig. 5 — proxy application execution time
// ---------------------------------------------------------------------

/// Scale factor helper: the paper iteration counts divided by `scale`
/// (scale = 1 reproduces the paper exactly).
#[derive(Debug, Clone, Copy)]
pub struct Scale(pub usize);

impl Scale {
    fn div(&self, n: usize) -> usize {
        (n / self.0).max(1)
    }
}

/// Fig. 5a: matrixMul execution time per configuration, seconds.
pub fn fig5a_matrix_mul(scale: Scale) -> Series {
    let cfg = matrix_mul::MatrixMulConfig {
        iterations: scale.div(100_000),
        ..matrix_mul::MatrixMulConfig::paper()
    };
    run_app("fig5a matrixMul [s]", move |ctx| {
        let r = matrix_mul::run(ctx, &cfg).expect("matrixMul");
        assert!(r.valid, "matrixMul validation failed");
    })
}

/// Fig. 5b: cuSolverDn_LinearSolver execution time, seconds.
pub fn fig5b_linear_solver(scale: Scale) -> Series {
    let cfg = linear_solver::LinearSolverConfig {
        iterations: scale.div(1000),
        ..linear_solver::LinearSolverConfig::paper()
    };
    run_app("fig5b cuSolverDn_LinearSolver [s]", move |ctx| {
        let r = linear_solver::run(ctx, &cfg).expect("linear_solver");
        assert!(r.valid, "linear_solver validation failed");
    })
}

/// Fig. 5c: histogram execution time, seconds.
pub fn fig5c_histogram(scale: Scale) -> Series {
    let cfg = histogram::HistogramConfig {
        iterations: scale.div(20_000),
        ..histogram::HistogramConfig::paper()
    };
    run_app("fig5c histogram [s]", move |ctx| {
        let r = histogram::run(ctx, &cfg).expect("histogram");
        assert!(r.valid, "histogram validation failed");
    })
}

fn run_app(name: &str, body: impl Fn(&cricket_client::Context)) -> Series {
    let mut points = Vec::new();
    for env in table1_envs() {
        let setup = SimSetup::new();
        let ctx = setup.context(env);
        let t0 = setup.seconds();
        body(&ctx);
        points.push(Point {
            config: env.label(),
            value: setup.seconds() - t0,
        });
    }
    Series {
        name: name.to_string(),
        points,
    }
}

// ---------------------------------------------------------------------
// Fig. 6 — micro-benchmarks: 100 000 API calls
// ---------------------------------------------------------------------

/// Which Fig. 6 micro-benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Micro {
    /// Fig. 6a: `cudaGetDeviceCount`.
    GetDeviceCount,
    /// Fig. 6b: alternating `cudaMalloc`/`cudaFree`.
    MallocFree,
    /// Fig. 6c: kernel launches.
    KernelLaunch,
}

impl Micro {
    /// Paper sub-figure label.
    pub fn label(&self) -> &'static str {
        match self {
            Micro::GetDeviceCount => "fig6a cudaGetDeviceCount",
            Micro::MallocFree => "fig6b cudaMalloc+cudaFree",
            Micro::KernelLaunch => "fig6c kernel launch",
        }
    }
}

/// Time `calls` API invocations of `which` per configuration, seconds.
/// The paper uses 100 000.
pub fn fig6_micro(which: Micro, calls: usize) -> Series {
    let mut points = Vec::new();
    for env in table1_envs() {
        let setup = SimSetup::new();
        let ctx = setup.context(env);
        let value = match which {
            Micro::GetDeviceCount => {
                let t0 = setup.seconds();
                ctx.with_raw(|r| {
                    for _ in 0..calls {
                        r.device_count().expect("count");
                    }
                });
                setup.seconds() - t0
            }
            Micro::MallocFree => {
                let t0 = setup.seconds();
                ctx.with_raw(|r| {
                    // "memory allocations by alternating cudaMalloc and
                    // cudaFree calls" — `calls` total API calls.
                    for _ in 0..calls / 2 {
                        let p = r.malloc(1 << 20).expect("malloc");
                        r.free(p).expect("free");
                    }
                });
                setup.seconds() - t0
            }
            Micro::KernelLaunch => {
                let image = cricket_client::CubinBuilder::new()
                    .kernel("empty", &[])
                    .code(b"empty SASS")
                    .build(false);
                let module = ctx.load_module(&image).expect("module");
                let f = module.function("empty").expect("function");
                let t0 = setup.seconds();
                for _ in 0..calls {
                    ctx.launch(&f, (1, 1, 1).into(), (32, 1, 1).into(), 0, None, &[])
                        .expect("launch");
                }
                setup.seconds() - t0
            }
        };
        points.push(Point {
            config: env.label(),
            value,
        });
    }
    Series {
        name: format!("{} x{} [s]", which.label(), calls),
        points,
    }
}

// ---------------------------------------------------------------------
// Fig. 7 — memory transfer bandwidth
// ---------------------------------------------------------------------

/// Fig. 7 bandwidth per configuration in MiB/s for one direction.
/// `bytes` is the transfer size (the paper uses 512 MiB).
pub fn fig7_bandwidth(host_to_device: bool, bytes: usize, extra_envs: bool) -> Series {
    let mut envs: Vec<EnvConfig> = table1_envs().to_vec();
    if extra_envs {
        envs.push(EnvConfig::LinuxVmNoOffload);
        envs.push(EnvConfig::RustyHermitLegacy);
    }
    let mut points = Vec::new();
    for env in envs {
        let setup = SimSetup::new();
        let ctx = setup.context(env);
        let cfg = bandwidth::BandwidthConfig {
            bytes,
            iterations: 1,
        };
        let r = bandwidth::run(&ctx, &cfg).expect("bandwidthTest");
        points.push(Point {
            config: env.label(),
            value: if host_to_device {
                r.h2d_mib_s
            } else {
                r.d2h_mib_s
            },
        });
    }
    Series {
        name: format!(
            "fig7{} {} bandwidth, {} MiB [MiB/s]",
            if host_to_device { "b" } else { "a" },
            if host_to_device {
                "host-to-device"
            } else {
                "device-to-host"
            },
            bytes >> 20
        ),
        points,
    }
}

/// Copies-per-byte for one direction of a Fig. 7-style transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopyReport {
    /// Bytes memmoved inside the RPC stack per HtoD payload byte.
    pub h2d_copies_per_byte: f64,
    /// Bytes memmoved inside the RPC stack per DtoH payload byte.
    pub d2h_copies_per_byte: f64,
}

/// Measure bytes-memmoved per byte-transferred for a single `bytes`-sized
/// transfer in each direction (native Rust environment — the copy count is
/// a property of the RPC stack, not of the modeled guest).
///
/// Reads the process-global copy counters, so run this single-threaded
/// with no concurrent RPC traffic.
pub fn fig7_copies_per_byte(bytes: usize) -> CopyReport {
    use cricket_client::CopyStats;
    let setup = SimSetup::new();
    let ctx = setup.context(EnvConfig::RustNative);
    let data = vec![0xabu8; bytes];
    let buf = ctx.alloc::<u8>(bytes).expect("alloc");

    let before = CopyStats::current();
    buf.copy_from_slice(&data).expect("h2d");
    let h2d = CopyStats::current().since(&before);

    let before = CopyStats::current();
    let back = buf.copy_to_vec().expect("d2h");
    let d2h = CopyStats::current().since(&before);
    debug_assert_eq!(back.len(), bytes);

    CopyReport {
        h2d_copies_per_byte: h2d.copies_per_byte(),
        d2h_copies_per_byte: d2h.copies_per_byte(),
    }
}

/// Striped-transfer comparison for one Fig. 7-style copy size: the same
/// bulk copy over one connection vs. an N-lane stripe pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StripeReport {
    /// Stripe-pool width.
    pub lanes: usize,
    /// Transfer size in bytes.
    pub bytes: usize,
    /// Single-connection H2D bandwidth, MiB/s.
    pub h2d_single_mib_s: f64,
    /// N-lane striped H2D bandwidth, MiB/s.
    pub h2d_striped_mib_s: f64,
    /// Single-connection D2H bandwidth, MiB/s.
    pub d2h_single_mib_s: f64,
    /// N-lane striped D2H bandwidth, MiB/s.
    pub d2h_striped_mib_s: f64,
}

impl StripeReport {
    /// Striped-over-single H2D speedup.
    pub fn h2d_speedup(&self) -> f64 {
        self.h2d_striped_mib_s / self.h2d_single_mib_s
    }

    /// Striped-over-single D2H speedup.
    pub fn d2h_speedup(&self) -> f64 {
        self.d2h_striped_mib_s / self.d2h_single_mib_s
    }
}

/// Measure single-connection vs. `lanes`-way striped bandwidth for a
/// `bytes`-sized copy on the wire-bound RustyHermit configuration (the
/// environment striping exists for — fast paths are not wire-bound).
/// Dense payload, so the sparse codec never interferes.
pub fn fig7_striped(bytes: usize, lanes: usize) -> StripeReport {
    let data = vec![0xabu8; bytes];
    let run = |striped: bool| -> (f64, f64) {
        let setup = SimSetup::new();
        let mut client = if striped {
            setup.striped_client(EnvConfig::RustyHermit, lanes)
        } else {
            setup.client(EnvConfig::RustyHermit)
        };
        let ptr = client.malloc(bytes as u64).expect("malloc");
        let t0 = setup.seconds();
        client.memcpy_htod(ptr, &data).expect("h2d");
        let h2d = bytes as f64 / (1 << 20) as f64 / (setup.seconds() - t0);
        let t0 = setup.seconds();
        let back = client.memcpy_dtoh(ptr, bytes as u64).expect("d2h");
        let d2h = bytes as f64 / (1 << 20) as f64 / (setup.seconds() - t0);
        assert_eq!(back, data, "striped transfer corrupted the payload");
        client.free(ptr).expect("free");
        (h2d, d2h)
    };
    let (h2d_single, d2h_single) = run(false);
    let (h2d_striped, d2h_striped) = run(true);
    StripeReport {
        lanes,
        bytes,
        h2d_single_mib_s: h2d_single,
        h2d_striped_mib_s: h2d_striped,
        d2h_single_mib_s: d2h_single,
        d2h_striped_mib_s: d2h_striped,
    }
}

/// Wire-byte accounting for one H2D transfer at a given zero-page density.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparsePoint {
    /// Percentage of 4 KiB pages that are all-zero in the payload.
    pub zero_pct: usize,
    /// Payload bytes handed to `memcpy_htod`.
    pub raw_bytes: u64,
    /// Bytes that actually traveled the wire (post sparse encoding).
    pub wire_bytes: u64,
    /// Zero pages elided by the codec (0 when the plain path won).
    pub pages_elided: u64,
}

/// Measure wire bytes for a `bytes`-sized H2D copy at each zero-page
/// density in `zero_pcts`, through the full client path (the adaptive
/// codec decides per payload; fully-dense payloads take the plain path).
///
/// Reads the process-global wire telemetry, so run this single-threaded
/// with no concurrent RPC traffic.
pub fn fig7_sparse_wire(bytes: usize, zero_pcts: &[usize]) -> Vec<SparsePoint> {
    use oncrpc::telemetry;
    let mut out = Vec::new();
    for &pct in zero_pcts {
        let mut data = vec![0xabu8; bytes];
        for (i, page) in data.chunks_mut(4096).enumerate() {
            if (i % 100) < pct {
                page.fill(0);
            }
        }
        let setup = SimSetup::new();
        let mut client = setup.client(EnvConfig::RustyHermit);
        let ptr = client.malloc(bytes as u64).expect("malloc");
        let before = telemetry::wire_snapshot();
        client.memcpy_htod(ptr, &data).expect("h2d");
        let delta = telemetry::wire_snapshot().since(&before);
        let back = client.memcpy_dtoh(ptr, bytes as u64).expect("d2h");
        assert_eq!(back, data, "sparse transfer corrupted the payload");
        client.free(ptr).expect("free");
        out.push(SparsePoint {
            zero_pct: pct,
            raw_bytes: delta.raw_bytes,
            wire_bytes: delta.wire_bytes,
            pages_elided: delta.sparse_pages_elided,
        });
    }
    out
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// §4.2 ablation: Linux VM H2D bandwidth with and without offloads, MiB/s.
pub fn ablation_offloads(bytes: usize) -> Series {
    let mut points = Vec::new();
    for env in [EnvConfig::LinuxVm, EnvConfig::LinuxVmNoOffload] {
        let setup = SimSetup::new();
        let ctx = setup.context(env);
        let r = bandwidth::run(
            &ctx,
            &bandwidth::BandwidthConfig {
                bytes,
                iterations: 1,
            },
        )
        .expect("bandwidthTest");
        points.push(Point {
            config: env.label(),
            value: r.h2d_mib_s,
        });
    }
    Series {
        name: format!("§4.2 offload ablation, H2D {} MiB [MiB/s]", bytes >> 20),
        points,
    }
}

/// Design ablation: effect of the RPC fragment size on a bulk H2D transfer
/// (seconds for `bytes` on RustyHermit). Exercises the multi-fragment
/// record-marking path the paper required from RPC-Lib.
pub fn ablation_fragment_size(bytes: usize, fragment_sizes: &[usize]) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for &frag in fragment_sizes {
        let setup = SimSetup::new();
        let mut client = setup.client(EnvConfig::RustyHermit);
        client.set_max_fragment(frag);
        client.ping().expect("ping");
        let t0 = setup.seconds();
        let ptr = client.malloc(bytes as u64).expect("malloc");
        client.memcpy_htod(ptr, &vec![7u8; bytes]).expect("memcpy");
        client.free(ptr).expect("free");
        out.push((frag, setup.seconds() - t0));
    }
    out
}

/// Launch-path comparison (Fig. 6c inset): per-launch time of the C client
/// vs. the Rust client, native network, microseconds.
pub fn launch_c_vs_rust(calls: usize) -> (f64, f64) {
    let mut out = [0f64; 2];
    for (i, env) in [EnvConfig::CNative, EnvConfig::RustNative]
        .iter()
        .enumerate()
    {
        let setup = SimSetup::new();
        let ctx = setup.context(*env);
        let image = cricket_client::CubinBuilder::new()
            .kernel("empty", &[])
            .code(b"x")
            .build(false);
        let module = ctx.load_module(&image).expect("module");
        let f = module.function("empty").expect("f");
        // Launches with a realistic parameter payload.
        let params = ParamBuilder::new().ptr(0xdead).u32(1).f32(1.0).build();
        let dummy = cricket_client::CubinBuilder::new()
            .kernel("saxpy", &[8, 8, 4, 4])
            .build(false);
        let _ = dummy;
        let t0 = setup.seconds();
        for _ in 0..calls {
            ctx.launch(&f, (1, 1, 1).into(), (32, 1, 1).into(), 0, None, &[])
                .expect("launch");
        }
        let _ = params;
        out[i] = (setup.seconds() - t0) / calls as f64 * 1e6;
    }
    (out[0], out[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: usize = 200;

    #[test]
    fn fig6a_shape_matches_paper() {
        let s = fig6_micro(Micro::GetDeviceCount, QUICK);
        let native = s.get("Rust").unwrap();
        let c = s.get("C").unwrap();
        let hermit = s.get("Hermit").unwrap();
        let unikraft = s.get("Unikraft").unwrap();
        let vm = s.get("Linux VM").unwrap();
        // Native C and Rust nearly identical for simple calls.
        assert!((c / native - 1.0).abs() < 0.05, "c={c} rust={native}");
        // Hermit smallest virtualized, VM slowest, all > 2x native.
        assert!(hermit > 2.0 * native, "hermit={hermit} native={native}");
        assert!(hermit < unikraft && unikraft < vm);
    }

    #[test]
    fn fig6c_rust_launches_faster_than_c() {
        let (c_us, rust_us) = launch_c_vs_rust(QUICK);
        let gain = (c_us - rust_us) / c_us;
        // Paper: ~6.3 % better. Accept 3–12 %.
        assert!(
            (0.03..0.12).contains(&gain),
            "C {c_us:.2} µs vs Rust {rust_us:.2} µs → gain {gain:.3}"
        );
    }

    #[test]
    fn fig7_shape_matches_paper() {
        let h2d = fig7_bandwidth(true, 32 << 20, true);
        let native = h2d.get("Rust").unwrap();
        let vm = h2d.get("Linux VM").unwrap();
        let hermit = h2d.get("Hermit").unwrap();
        let unikraft = h2d.get("Unikraft").unwrap();
        let vm_noofl = h2d.get("Linux VM (no offloads)").unwrap();
        assert!(vm / native > 0.7, "vm retains ≥~80%: {}", vm / native);
        assert!(
            (0.05..0.25).contains(&(hermit / native)),
            "hermit/native = {}",
            hermit / native
        );
        assert!(unikraft < hermit);
        assert!(vm_noofl < vm / 3.0, "offloads matter: {vm_noofl} vs {vm}");
    }

    #[test]
    fn fig5a_unikernels_more_than_double_native() {
        let s = fig5a_matrix_mul(Scale(500)); // 200 iterations
        let native = s.get("Rust").unwrap();
        let hermit = s.get("Hermit").unwrap();
        let vm = s.get("Linux VM").unwrap();
        assert!(hermit > 1.8 * native, "hermit={hermit} native={native}");
        // Unikernels ≤ Linux VM ("consistently perform similar or better").
        assert!(hermit <= vm * 1.05);
    }

    #[test]
    fn fig5b_hermit_overhead_is_small() {
        let s = fig5b_linear_solver(Scale(200)); // 5 iterations
        let native = s.get("Rust").unwrap();
        let hermit = s.get("Hermit").unwrap();
        let overhead = hermit / native - 1.0;
        // Paper: ≈26.6 % overhead — the smallest of the three apps, because
        // the per-iteration device time (pivot-sync-bound LU) dominates.
        assert!(
            (0.10..0.60).contains(&overhead),
            "hermit overhead {overhead:.3}"
        );
    }

    #[test]
    fn striped_report_beats_single_connection() {
        let r = fig7_striped(16 << 20, 4);
        assert!(
            r.h2d_speedup() >= 1.5,
            "h2d striped speedup {:.2}",
            r.h2d_speedup()
        );
        assert!(
            r.d2h_speedup() >= 1.5,
            "d2h striped speedup {:.2}",
            r.d2h_speedup()
        );
    }

    // Sibling tests transfer *dense* payloads concurrently, which moves the
    // process-global raw/wire counters equally and never elides a page —
    // so only interference-proof quantities are asserted here: the
    // raw−wire *saving* and the elided-page count, both written solely by
    // this test's sparse transfer. The exact ≥5x wire-cut criterion is
    // asserted by the single-threaded `fig7_bandwidth` binary.
    #[test]
    fn sparse_wire_points_track_density() {
        let pts = fig7_sparse_wire(4 << 20, &[0, 90]);
        let dense = pts[0];
        let sparse = pts[1];
        assert_eq!(dense.pages_elided, 0);
        assert_eq!(dense.wire_bytes, dense.raw_bytes, "dense stays plain");
        // 4 MiB = 1024 pages; i % 100 < 90 zeroes 924 of them.
        assert_eq!(sparse.pages_elided, 924);
        let saving = sparse.raw_bytes - sparse.wire_bytes;
        assert!(
            saving >= (924 - 10) * 4096,
            "90% zeros must elide ~924 pages of wire bytes: {sparse:?}"
        );
    }

    #[test]
    fn series_rendering() {
        let s = Series {
            name: "demo".into(),
            points: vec![Point {
                config: "Rust",
                value: 1.5,
            }],
        };
        let text = s.render();
        assert!(text.contains("demo") && text.contains("Rust"));
        assert_eq!(s.get("Rust"), Some(1.5));
        assert_eq!(s.get("nope"), None);
    }
}
