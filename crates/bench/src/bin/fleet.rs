//! Fleet-scaling snapshot: aggregate throughput of a sharded Cricket fleet
//! (directory-placed tenants) vs a single server — written to
//! `BENCH_fleet.json`.
//!
//! ```text
//! cargo run --release -p cricket-bench --bin fleet
//! cargo run --release -p cricket-bench --bin fleet -- --tenants 80 --rounds 8
//! cargo run --release -p cricket-bench --bin fleet -- --smoke
//! ```
//!
//! Every tenant resolves its shard once through the portmap directory
//! (`Endpoint::Directory`, Spread placement) and then runs a host-call +
//! small-op mix. Each shard owns its own virtual clock, which only
//! advances when that shard dispatches work — so a shard's `now_ns` *is*
//! its cumulative service time, and the fleet's aggregate throughput in
//! the simulation domain is `total_ops / max_shard_service_time`: the
//! makespan is set by the busiest shard, exactly as wall-clock time would
//! be on real parallel hardware. The acceptance claim: **4 shards ≥ 3.0×
//! the aggregate throughput of 1 shard at ≥ 64 tenants**, with placement
//! spreading sessions within ±25% per shard.

use cricket_client::{CricketClient, Endpoint, Placement};
use cricket_fleet::FleetBuilder;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Duration;

struct Cell {
    shards: usize,
    tenants: usize,
    total_ops: u64,
    /// Busiest shard's virtual service time — the fleet makespan.
    max_shard_ns: u64,
    /// Sessions placed per shard port.
    placed: BTreeMap<u16, u32>,
}

impl Cell {
    fn ops_per_virtual_ms(&self) -> f64 {
        self.total_ops as f64 / (self.max_shard_ns as f64 / 1e6).max(1e-9)
    }

    /// Placement spread as max deviation from the per-shard mean, in
    /// percent (0 = perfectly even).
    fn spread_pct(&self) -> f64 {
        if self.placed.is_empty() {
            return 0.0;
        }
        let mean = self.tenants as f64 / self.placed.len() as f64;
        self.placed
            .values()
            .map(|&n| ((n as f64 - mean).abs() / mean) * 100.0)
            .fold(0.0, f64::max)
    }
}

/// Stand up a fleet of `shards`, place `tenants` sessions through the
/// directory, run the op mix on each, and report virtual-time totals.
fn measure(shards: usize, tenants: usize, rounds: usize) -> Cell {
    // Heartbeats are effectively off: placement freshness comes entirely
    // from the directory's connect-time assignment counters, which keeps
    // the run deterministic.
    let fleet = FleetBuilder::new(shards)
        .heartbeat(Duration::from_secs(3600))
        .launch()
        .expect("launch fleet");
    let endpoint = Endpoint::directory(fleet.dir_addr())
        .expect("endpoint")
        .placement(Placement::Spread);

    // Connect every tenant first — placement happens here, once per
    // session, never on the per-call path.
    let mut clients: Vec<(CricketClient, SocketAddr)> = (0..tenants)
        .map(|_| {
            let (t, addr) = endpoint.connect_transport().expect("resolve shard");
            (
                CricketClient::over(t, cricket_client::env::ClientFlavor::RustRpcLib, None),
                addr,
            )
        })
        .collect();
    let mut placed: BTreeMap<u16, u32> = BTreeMap::new();
    for (_, addr) in &clients {
        *placed.entry(addr.port()).or_default() += 1;
    }

    // The host-call + small-op mix: device_count is a pure host call;
    // malloc → 1 KiB H2D → free exercise the scheduler/enqueue path.
    let payload = vec![7u8; 1024];
    let mut total_ops = 0u64;
    for (c, _) in clients.iter_mut() {
        for _ in 0..rounds {
            assert_eq!(c.device_count().expect("device_count"), 4);
            let p = c.malloc(4096).expect("malloc");
            c.memcpy_htod(p, &payload).expect("memcpy_htod");
            c.free(p).expect("free");
            total_ops += 4;
        }
    }

    let max_shard_ns = (0..fleet.len())
        .filter_map(|i| fleet.shard(i))
        .map(|s| s.server().clock().now_ns())
        .max()
        .unwrap_or(0);
    drop(clients);
    fleet.shutdown();
    Cell {
        shards,
        tenants,
        total_ops,
        max_shard_ns,
        placed,
    }
}

struct Args {
    tenants: usize,
    rounds: usize,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        tenants: 80,
        rounds: 8,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--tenants" => a.tenants = it.next().and_then(|v| v.parse().ok()).unwrap_or(80),
            "--rounds" => a.rounds = it.next().and_then(|v| v.parse().ok()).unwrap_or(8),
            "--smoke" => a.smoke = true,
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    if a.smoke {
        a.tenants = a.tenants.min(12);
        a.rounds = a.rounds.min(2);
    }
    a
}

fn main() {
    let args = parse_args();
    let tenant_points: Vec<usize> = if args.smoke {
        vec![args.tenants]
    } else {
        // The 10–100 tenant sweep; the last point carries the acceptance
        // assertions.
        vec![10, 40, args.tenants.max(64)]
    };
    println!(
        "Fleet scaling — tenants {:?} across 1/2/4 shards, {} rounds of 4 ops each\n",
        tenant_points, args.rounds
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &tenants in &tenant_points {
        for shards in [1usize, 2, 4] {
            let cell = measure(shards, tenants, args.rounds);
            println!(
                "  {} shard{} × {:>3} tenants: {:>6} ops / {:>8.2} ms makespan → {:>8.1} ops/vms  (spread ±{:.0}%, {:?})",
                cell.shards,
                if cell.shards == 1 { " " } else { "s" },
                cell.tenants,
                cell.total_ops,
                cell.max_shard_ns as f64 / 1e6,
                cell.ops_per_virtual_ms(),
                cell.spread_pct(),
                cell.placed.values().collect::<Vec<_>>(),
            );
            cells.push(cell);
        }
        println!();
    }

    // Acceptance: at the largest tenant count, 4 shards ≥ 3x one shard's
    // aggregate throughput, with placement within ±25% per shard.
    let last = *tenant_points.last().unwrap();
    let at = |shards: usize| -> &Cell {
        cells
            .iter()
            .find(|c| c.shards == shards && c.tenants == last)
            .unwrap()
    };
    let (one, four) = (at(1), at(4));
    let ratio = four.ops_per_virtual_ms() / one.ops_per_virtual_ms().max(1e-9);
    let spread = four.spread_pct();
    println!("  → 4-shard / 1-shard aggregate throughput at {last} tenants: {ratio:.2}x (spread ±{spread:.1}%)");
    assert!(
        spread <= 25.0,
        "acceptance: placement spread ±{spread:.1}% exceeds ±25%"
    );
    let floor = if args.smoke { 2.0 } else { 3.0 };
    assert!(
        ratio >= floor,
        "acceptance: 4 shards gave {ratio:.2}x aggregate throughput of 1 shard (floor {floor})"
    );
    if !args.smoke {
        assert!(last >= 64, "acceptance point must be ≥ 64 tenants");
    }

    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        let placed: Vec<String> = c.placed.values().map(|n| n.to_string()).collect();
        rows.push_str(&format!(
            "    {{\"shards\": {}, \"tenants\": {}, \"total_ops\": {}, \"max_shard_ns\": {}, \
             \"ops_per_virtual_ms\": {:.2}, \"spread_pct\": {:.2}, \"sessions_per_shard\": [{}]}}{}\n",
            c.shards,
            c.tenants,
            c.total_ops,
            c.max_shard_ns,
            c.ops_per_virtual_ms(),
            c.spread_pct(),
            placed.join(", "),
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    let json = format!(
        "{{\n  \"rounds\": {},\n  \"op_mix\": \"device_count + malloc + memcpy_htod(1KiB) + free\",\n  \
         \"throughput_domain\": \"virtual time: total_ops / busiest shard's service ns\",\n  \
         \"cells\": [\n{rows}  ],\n  \
         \"accept\": {{\"tenants\": {last}, \"ratio_4_shards_vs_1\": {ratio:.4}, \
         \"min_ratio\": 3.0, \"spread_pct\": {spread:.2}, \"max_spread_pct\": 25.0}}\n}}\n",
        args.rounds,
    );
    if args.smoke {
        println!("\n  (smoke run: BENCH_fleet.json left untouched)");
    } else {
        let path = "BENCH_fleet.json";
        match std::fs::write(path, &json) {
            Ok(()) => println!("\n  → wrote {path}"),
            Err(e) => eprintln!("\n  ! could not write {path}: {e}"),
        }
    }
}
