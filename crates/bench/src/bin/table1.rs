//! Regenerate paper **Table 1**: "Overview of configurations for the
//! evaluation".
//!
//! ```text
//! cargo run --release -p cricket-bench --bin table1
//! ```

use cricket_client::EnvConfig;

fn main() {
    println!("Table 1: Overview of configurations for the evaluation");
    println!(
        "{:<10} {:<6} {:<14} {:<12} {:<10}",
        "Name", "app.", "OS", "Hypervisor", "Network"
    );
    for env in EnvConfig::table1() {
        let r = env.row();
        println!(
            "{:<10} {:<6} {:<14} {:<12} {:<10}",
            r.name, r.app, r.os, r.hypervisor, r.network
        );
    }
}
