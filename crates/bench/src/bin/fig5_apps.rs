//! Regenerate paper **Figure 5**: "Comparison of execution time based on 10
//! averaged runs on a Tesla A100 via 100 Gbit/s Ethernet" for the three
//! proxy applications across the five configurations.
//!
//! ```text
//! cargo run --release -p cricket-bench --bin fig5_apps             # paper scale
//! cargo run --release -p cricket-bench --bin fig5_apps -- --scale 100
//! ```
//!
//! `--scale N` divides the iteration counts by N (shapes are preserved; the
//! virtual clock makes runs deterministic, so no averaging is needed).

use cricket_bench::{fig5a_matrix_mul, fig5b_linear_solver, fig5c_histogram, Scale};

fn main() {
    let scale = parse_scale();
    println!(
        "Figure 5 — proxy application execution time (scale 1/{})\n",
        scale.0
    );
    let a = fig5a_matrix_mul(scale);
    print!("{}", a.render());
    ratios(&a);
    let b = fig5b_linear_solver(scale);
    print!("{}", b.render());
    ratios(&b);
    let c = fig5c_histogram(scale);
    print!("{}", c.render());
    ratios(&c);
}

fn ratios(s: &cricket_bench::Series) {
    let native = s.get("Rust").unwrap_or(f64::NAN);
    let c = s.get("C").unwrap_or(f64::NAN);
    let hermit = s.get("Hermit").unwrap_or(f64::NAN);
    println!(
        "  → C/Rust = {:.3}, Hermit/Rust = {:.2}\n",
        c / native,
        hermit / native
    );
}

fn parse_scale() -> Scale {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--scale" {
            let n: usize = args
                .next()
                .expect("--scale N")
                .parse()
                .expect("N must be an integer");
            return Scale(n.max(1));
        }
    }
    Scale(1)
}
