//! Small-op round-trip snapshot: RPC round trips per async CUDA op on a
//! launch-heavy workload, batched (adaptive coalescing) vs. unbatched,
//! plus the single-op latency guard — written to `BENCH_smallop.json`.
//!
//! ```text
//! cargo run --release -p cricket-bench --bin smallop
//! cargo run --release -p cricket-bench --bin smallop -- --launches 512
//! ```
//!
//! The launch-heavy phase issues thousands of tiny kernel launches with a
//! sync every 64; coalescing folds each 64-launch window into one
//! `CRICKET_BATCH_EXEC` round trip. The single-op phase syncs after every
//! launch — the adaptive watermark collapses to 1 and per-op latency must
//! stay within noise of the unbatched client.

use cricket_client::sim::SimSetup;
use cricket_client::{CricketClient, EnvConfig};
use vgpu::kernels::ParamBuilder;
use vgpu::module::CubinBuilder;

/// Tiny vectors: device time is negligible, the round trip dominates.
const N: usize = 1 << 10;

struct Bench {
    _sim: SimSetup,
    client: CricketClient,
    func: u64,
    params: Vec<u8>,
}

impl Bench {
    fn new(batched: bool) -> Self {
        let sim = SimSetup::new();
        let mut client = sim.client(EnvConfig::RustyHermit);
        if batched {
            client.enable_batching();
        }
        let image = CubinBuilder::new()
            .kernel("vectorAdd", &[8, 8, 8, 4])
            .code(b"vectorAdd SASS")
            .build(false);
        let module = client.module_load(&image).unwrap();
        let func = client.module_get_function(module, "vectorAdd").unwrap();
        let bytes = (N * 4) as u64;
        let a = client.malloc(bytes).unwrap();
        let b = client.malloc(bytes).unwrap();
        let c = client.malloc(bytes).unwrap();
        let fill = vec![0u8; N * 4];
        client.memcpy_htod(a, &fill).unwrap();
        client.memcpy_htod(b, &fill).unwrap();
        let params = ParamBuilder::new()
            .ptr(c)
            .ptr(a)
            .ptr(b)
            .u32(N as u32)
            .build();
        client.device_synchronize().unwrap();
        Self {
            _sim: sim,
            client,
            func,
            params,
        }
    }

    fn launch(&mut self) {
        self.client
            .launch_kernel(
                self.func,
                ((N as u32).div_ceil(256), 1, 1).into(),
                (256, 1, 1).into(),
                0,
                0,
                &self.params,
            )
            .unwrap();
    }

    /// `launches` launches with a device sync every `sync_every`; returns
    /// (rpc round trips, virtual ns) for the phase.
    fn launch_heavy(&mut self, launches: usize, sync_every: usize) -> (u64, u64) {
        self.client.rpc().reset_stats();
        let t0 = self.client.clock().unwrap().now_ns();
        for i in 1..=launches {
            self.launch();
            if i % sync_every == 0 {
                self.client.device_synchronize().unwrap();
            }
        }
        self.client.device_synchronize().unwrap();
        let t1 = self.client.clock().unwrap().now_ns();
        (self.client.rpc().stats().calls, t1 - t0)
    }

    /// `iters` iterations of launch-then-sync; returns virtual ns.
    fn single_op(&mut self, iters: usize) -> u64 {
        let t0 = self.client.clock().unwrap().now_ns();
        for _ in 0..iters {
            self.launch();
            self.client.device_synchronize().unwrap();
        }
        let t1 = self.client.clock().unwrap().now_ns();
        t1 - t0
    }
}

fn main() {
    let launches = parse_arg("--launches").unwrap_or(4096);
    let sync_every = parse_arg("--sync-every").unwrap_or(64);
    let single_iters = parse_arg("--single-iters").unwrap_or(512);
    println!(
        "smallop — {launches} launches, sync every {sync_every}, {single_iters} single-op iters\n"
    );

    // Launch-heavy phase.
    let (rpcs_unbatched, ns_unbatched) = Bench::new(false).launch_heavy(launches, sync_every);
    let mut batched = Bench::new(true);
    let (rpcs_batched, ns_batched) = batched.launch_heavy(launches, sync_every);
    let bstats = batched.client.batch_stats().unwrap().clone();
    let rpcs_per_op_batched = batched.client.rpcs_per_op();
    let rpc_reduction = rpcs_unbatched as f64 / rpcs_batched as f64;
    let async_op_rpc_reduction = 1.0 / rpcs_per_op_batched;
    println!("launch-heavy ({launches} async ops):");
    println!(
        "  unbatched: {rpcs_unbatched:>6} RPCs  ({:.3} per async op)  {:>9.3} ms virtual",
        rpcs_unbatched as f64 / launches as f64,
        ns_unbatched as f64 / 1e6
    );
    println!(
        "  batched:   {rpcs_batched:>6} RPCs  ({rpcs_per_op_batched:.3} per async op)  {:>9.3} ms virtual",
        ns_batched as f64 / 1e6
    );
    println!(
        "  → {rpc_reduction:.1}x fewer round trips overall, {async_op_rpc_reduction:.1}x per async op"
    );
    println!(
        "  batches {} (sync {}, depth {}, bytes {}), size histogram {:?}\n",
        bstats.batches,
        bstats.flush_sync,
        bstats.flush_depth,
        bstats.flush_bytes,
        bstats.size_histogram
    );

    // Single-op latency guard: fresh clients, sync after every launch.
    let ns_single_unbatched = Bench::new(false).single_op(single_iters);
    let ns_single_batched = Bench::new(true).single_op(single_iters);
    let us_unbatched = ns_single_unbatched as f64 / single_iters as f64 / 1e3;
    let us_batched = ns_single_batched as f64 / single_iters as f64 / 1e3;
    let regression_pct = (us_batched - us_unbatched) / us_unbatched * 100.0;
    println!("single-op (sync after every launch, {single_iters} iters):");
    println!("  unbatched {us_unbatched:.3} µs/op, batched {us_batched:.3} µs/op → {regression_pct:+.2} %");

    let json = format!(
        "{{\n  \"bench\": \"smallop\",\n  \"launches\": {launches},\n  \"sync_every\": {sync_every},\n  \
         \"unbatched\": {{\"rpcs\": {rpcs_unbatched}, \"rpcs_per_async_op\": {:.4}, \"virt_ns\": {ns_unbatched}}},\n  \
         \"batched\": {{\"rpcs\": {rpcs_batched}, \"rpcs_per_async_op\": {rpcs_per_op_batched:.4}, \"virt_ns\": {ns_batched}, \
         \"batches\": {}, \"flush_sync\": {}, \"flush_depth\": {}, \"flush_bytes\": {}, \"size_histogram\": {:?}}},\n  \
         \"rpc_reduction\": {rpc_reduction:.4},\n  \"async_op_rpc_reduction\": {async_op_rpc_reduction:.4},\n  \
         \"single_op\": {{\"iters\": {single_iters}, \"unbatched_us_per_op\": {us_unbatched:.4}, \
         \"batched_us_per_op\": {us_batched:.4}, \"regression_pct\": {regression_pct:.4}}}\n}}\n",
        rpcs_unbatched as f64 / launches as f64,
        bstats.batches,
        bstats.flush_sync,
        bstats.flush_depth,
        bstats.flush_bytes,
        bstats.size_histogram,
    );
    let path = "BENCH_smallop.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\n  → wrote {path}"),
        Err(e) => eprintln!("\n  ! could not write {path}: {e}"),
    }
    assert!(
        async_op_rpc_reduction >= 4.0,
        "coalescing should cut round trips per async op by ≥4x, got {async_op_rpc_reduction:.2}x"
    );
    assert!(
        regression_pct < 5.0,
        "single-op latency regressed {regression_pct:.2} % (budget 5 %)"
    );
}

fn parse_arg(name: &str) -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            return args.next()?.parse().ok();
        }
    }
    None
}
