//! Regenerate the paper's §4.2 offload ablation: "When we deactivate TCP
//! segmentation offloading, transmit checksum offloading, and
//! scatter-gather in the Linux VM, the bandwidth is reduced to approx.
//! 923.9 MiB/s in the host-to-device direction."
//!
//! ```text
//! cargo run --release -p cricket-bench --bin ablation_offloads
//! ```

use cricket_bench::{ablation_offloads, fig7_bandwidth};

fn main() {
    let bytes = 512 << 20;
    let s = ablation_offloads(bytes);
    print!("{}", s.render());
    let with = s.get("Linux VM").unwrap();
    let without = s.get("Linux VM (no offloads)").unwrap();
    println!(
        "\n  → disabling TSO + TX checksum + scatter-gather: {with:.0} → {without:.1} MiB/s \
         ({:.1}x reduction; paper target ≈923.9 MiB/s)",
        with / without
    );

    // The paper also notes D2H is "influenced much less".
    let d2h = fig7_bandwidth(false, bytes, true);
    let d2h_with = d2h.get("Linux VM").unwrap();
    let d2h_without = d2h.get("Linux VM (no offloads)").unwrap();
    println!(
        "  → same ablation, D2H: {d2h_with:.0} → {d2h_without:.0} MiB/s \
         ({:.2}x; paper: 'influenced much less')",
        d2h_with / d2h_without
    );
}
