//! Regenerate the paper's §4.1 API-call and transfer accounting:
//!
//! > "the matrixMul application requires 100,041 CUDA API calls and
//! >  1.95 MiB of memory transfers, the cuSolverDn_LinearSolver application
//! >  requires 20,047 CUDA API calls and 6.07 GiB of memory transfers, and
//! >  the histogram application requires 80,033 CUDA API calls and 64 MiB
//! >  of memory transfers"
//!
//! By default the apps run at reduced iteration counts and the full-scale
//! totals are *projected* from the measured fixed/per-iteration structure
//! (the projection is exact: call counts are deterministic). Pass
//! `--measure` to run the full paper configurations end to end instead.
//!
//! ```text
//! cargo run --release -p cricket-bench --bin table_calls [-- --measure]
//! ```

use cricket_client::sim::simulated;
use cricket_client::EnvConfig;
use proxy_apps::{histogram, linear_solver, matrix_mul};

fn main() {
    let measure = std::env::args().any(|a| a == "--measure");
    println!(
        "§4.1 API-call accounting ({}):\n",
        if measure {
            "measured at full paper scale"
        } else {
            "small run measured; paper scale projected (exact)"
        }
    );
    println!(
        "{:<26} {:>12} {:>12} {:>14} {:>12}",
        "application", "paper calls", "ours", "paper moved", "ours"
    );

    // matrixMul
    {
        let cfg = if measure {
            matrix_mul::MatrixMulConfig::paper()
        } else {
            matrix_mul::MatrixMulConfig {
                iterations: 100,
                ..matrix_mul::MatrixMulConfig::paper()
            }
        };
        let (ctx, _s) = simulated(EnvConfig::RustNative);
        let r = matrix_mul::run(&ctx, &cfg).expect("matrixMul");
        assert!(r.valid);
        assert_eq!(r.stats.api_calls, cfg.expected_api_calls());
        let full = matrix_mul::MatrixMulConfig::paper();
        let calls = if measure {
            r.stats.api_calls
        } else {
            full.expected_api_calls()
        };
        println!(
            "{:<26} {:>12} {:>12} {:>14} {:>9.2} MiB",
            "matrixMul",
            "100,041",
            calls,
            "1.95 MiB",
            full.expected_bytes() as f64 / (1 << 20) as f64
        );
    }

    // cuSolverDn_LinearSolver
    {
        let cfg = if measure {
            linear_solver::LinearSolverConfig::paper()
        } else {
            linear_solver::LinearSolverConfig {
                iterations: 10,
                ..linear_solver::LinearSolverConfig::paper()
            }
        };
        let (ctx, _s) = simulated(EnvConfig::RustNative);
        let r = linear_solver::run(&ctx, &cfg).expect("linear_solver");
        assert!(r.valid);
        assert_eq!(r.stats.api_calls, cfg.expected_api_calls());
        let full = linear_solver::LinearSolverConfig::paper();
        let calls = if measure {
            r.stats.api_calls
        } else {
            full.expected_api_calls()
        };
        println!(
            "{:<26} {:>12} {:>12} {:>14} {:>9.2} GiB",
            "cuSolverDn_LinearSolver",
            "20,047",
            calls,
            "6.07 GiB",
            full.expected_bytes() as f64 / (1u64 << 30) as f64
        );
    }

    // histogram
    {
        let cfg = if measure {
            histogram::HistogramConfig::paper()
        } else {
            histogram::HistogramConfig {
                byte_count: 1 << 20,
                iterations: 20,
            }
        };
        let (ctx, _s) = simulated(EnvConfig::RustNative);
        let r = histogram::run(&ctx, &cfg).expect("histogram");
        assert!(r.valid);
        assert_eq!(r.stats.api_calls, cfg.expected_api_calls());
        let full = histogram::HistogramConfig::paper();
        let calls = if measure {
            r.stats.api_calls
        } else {
            full.expected_api_calls()
        };
        println!(
            "{:<26} {:>12} {:>12} {:>14} {:>9} MiB",
            "histogram",
            "80,033",
            calls,
            "64 MiB",
            full.byte_count >> 20
        );
    }
}
