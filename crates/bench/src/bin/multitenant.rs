//! Multi-tenant asynchronous-execution snapshot: serial vs pipelined
//! virtual time for two tenants sharing one simulated A100, the device
//! busy-span/overlap telemetry behind the speedup, and the per-policy
//! served-time ledgers — written to `BENCH_multitenant.json`.
//!
//! ```text
//! cargo run --release -p cricket-bench --bin multitenant
//! cargo run --release -p cricket-bench --bin multitenant -- --launches 96
//! ```

use cricket_proto::CricketV1Service;
use cricket_server::service::Sessioned;
use cricket_server::{CricketServer, SchedulerPolicy, ServerConfig};
use std::sync::{Arc, Barrier, Mutex};
use vgpu::kernels::ParamBuilder;
use vgpu::module::CubinBuilder;

/// 4 Mi f32 elements per vector — ~30 µs of device time per launch.
const N: usize = 1 << 22;

struct Tenant {
    api: Sessioned,
    func: u64,
    params: Vec<u8>,
    input: u64,
    fill: Vec<u8>,
    elems: usize,
}

impl Tenant {
    fn new(server: Arc<CricketServer>, session: u32) -> Self {
        Self::with_elems(server, session, N)
    }

    /// A tenant with `elems` f32 elements per vector — the 50-session QoS
    /// sweep uses small vectors so host-backed simulated allocations stay
    /// cheap while the per-op device time (the 256 KiB refill) is unchanged.
    fn with_elems(server: Arc<CricketServer>, session: u32, elems: usize) -> Self {
        let api = Sessioned::new(server, session);
        let image = CubinBuilder::new()
            .kernel("vectorAdd", &[8, 8, 8, 4])
            .code(b"vectorAdd SASS")
            .build(false);
        let module = api
            .cu_module_load_data(&image)
            .unwrap()
            .into_result()
            .unwrap();
        let func = api
            .cu_module_get_function(module, "vectorAdd")
            .unwrap()
            .into_result()
            .unwrap();
        let bytes = (elems * 4) as u64;
        let a = api.cuda_malloc(bytes).unwrap().into_result().unwrap();
        let b = api.cuda_malloc(bytes).unwrap().into_result().unwrap();
        let c = api.cuda_malloc(bytes).unwrap().into_result().unwrap();
        let fill: Vec<u8> = 1.0f32
            .to_le_bytes()
            .iter()
            .copied()
            .cycle()
            .take(elems * 4)
            .collect();
        api.cuda_memcpy_htod(a, &fill).unwrap();
        api.cuda_memcpy_htod(b, &fill).unwrap();
        let params = ParamBuilder::new()
            .ptr(c)
            .ptr(a)
            .ptr(b)
            .u32(elems as u32)
            .build();
        Self {
            api,
            func,
            params,
            input: a,
            fill,
            elems,
        }
    }

    fn launch(&self) {
        let grid = ((self.elems as u32).div_ceil(256), 1, 1).into();
        let block = (256, 1, 1).into();
        assert_eq!(
            self.api
                .cuda_launch_kernel(self.func, grid, block, 0, 0, &self.params)
                .unwrap(),
            0
        );
    }

    /// A host-to-device refill of the input vector's first 256 KiB — the
    /// synchronous-transfer path that holds a scheduler turn for the whole
    /// copy, used to make the bulk tenants' op mix heavier.
    fn refill(&self) {
        let len = (256 << 10).min(self.fill.len());
        assert_eq!(
            self.api
                .cuda_memcpy_htod(self.input, &self.fill[..len])
                .unwrap(),
            0
        );
    }

    /// A full-buffer synchronous H2D copy — the big turn-holding op the
    /// QoS favoritism phase gives its bulk tenants.
    fn refill_all(&self) {
        assert_eq!(
            self.api.cuda_memcpy_htod(self.input, &self.fill).unwrap(),
            0
        );
    }

    fn synchronize(&self) {
        assert_eq!(self.api.cuda_device_synchronize().unwrap(), 0);
    }
}

struct OverlapRun {
    serial_ns: u64,
    pipelined_ns: u64,
    busy_span_ns: u64,
    device_time_ns: u64,
}

/// Two tenants, `launches` kernels each: back-to-back, then interleaved on
/// a fresh server. Returns both virtual durations plus the pipelined run's
/// device utilization telemetry.
fn overlap(launches: usize) -> OverlapRun {
    let run = |interleave: bool| -> (u64, u64, u64) {
        let clock = simnet::SimClock::new();
        let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
        let ta = Tenant::new(Arc::clone(&server), 1);
        let tb = Tenant::new(Arc::clone(&server), 2);
        let t0 = clock.now_ns();
        if interleave {
            for _ in 0..launches {
                ta.launch();
                tb.launch();
            }
            ta.synchronize();
            tb.synchronize();
        } else {
            for t in [&ta, &tb] {
                for _ in 0..launches {
                    t.launch();
                }
                t.synchronize();
            }
        }
        let elapsed = clock.now_ns() - t0;
        let (span, device) = server.device_utilization(0).unwrap();
        (elapsed, span, device)
    };
    let (serial_ns, _, _) = run(false);
    let (pipelined_ns, busy_span_ns, device_time_ns) = run(true);
    OverlapRun {
        serial_ns,
        pipelined_ns,
        busy_span_ns,
        device_time_ns,
    }
}

/// One tenant's outcome under a scheduling policy.
struct FairRow {
    session: u32,
    served_ops: u64,
    served_ns: u64,
    /// Virtual time at which this tenant's synchronize returned, relative
    /// to the contention phase's start — the number the policy actually
    /// moves (the served_* ledgers total the same work under any policy).
    finish_ns: u64,
}

/// Four *concurrent* sessions with heterogeneous op mixes under `policy`.
///
/// Session 1 is the light, latency-sensitive tenant that `Priority`
/// favors (lowest priority value); sessions 2–4 offer progressively
/// heavier mixes (more launches, plus synchronous refill copies that hold
/// scheduler turns longer). The tenants run on real threads against the
/// shared virtual clock, so the scheduler's ticket queue is genuinely
/// contended and the policies produce different per-tenant finish times —
/// a sequential driver (the old bench) never has two waiters and reports
/// byte-identical ledgers under every policy.
fn fairness(policy: SchedulerPolicy, launches: usize) -> Vec<FairRow> {
    let clock = simnet::SimClock::new();
    let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
    server.scheduler.set_policy(policy);
    let weights = [1usize, 2, 3, 4];
    // Setup (module load, mallocs, fills) happens before the measured
    // contention phase. Priorities are configured under every policy so
    // the runs differ only in what the scheduler does with them.
    let tenants: Vec<_> = (1..=4u32)
        .map(|s| {
            server.scheduler.set_priority(s, s * 10);
            // WFQ weights match the 1:2:3:4 offered load, so under `Wfq`
            // the heavier tenants earn proportionally more turns. The
            // other policies ignore weights; configuring them everywhere
            // keeps the runs identical except for the scheduler.
            server.scheduler.set_weight(s, s);
            Tenant::new(Arc::clone(&server), s)
        })
        .collect();
    let base_ops = server.scheduler.served_ops();
    let base_ns = server.scheduler.served_ns();
    let t0 = clock.now_ns();
    let barrier = Arc::new(std::sync::Barrier::new(tenants.len()));
    let mut joins = Vec::new();
    for (t, w) in tenants.into_iter().zip(weights) {
        let barrier = Arc::clone(&barrier);
        let clock = Arc::clone(&clock);
        joins.push(std::thread::spawn(move || {
            let session = t.api.session();
            barrier.wait();
            for i in 0..launches * w {
                t.launch();
                // Bulk tenants intersperse synchronous copies: a heavier,
                // turn-holding mix the favored tenant never issues.
                if session != 1 && i % 4 == 3 {
                    t.refill();
                }
            }
            t.synchronize();
            (session, clock.now_ns() - t0)
        }));
    }
    let mut finishes: Vec<(u32, u64)> = joins
        .into_iter()
        .map(|j| j.join().expect("tenant thread panicked"))
        .collect();
    finishes.sort_unstable_by_key(|&(s, _)| s);
    let ops = server.scheduler.served_ops();
    let ns = server.scheduler.served_ns();
    finishes
        .into_iter()
        .map(|(s, finish_ns)| FairRow {
            session: s,
            served_ops: ops[&s] - base_ops[&s],
            served_ns: ns[&s] - base_ns[&s],
            finish_ns,
        })
        .collect()
}

/// How many sessions contend in the WFQ favoritism phase. Depth matters:
/// with 7 equally loaded weight-1 competitors, FIFO's arrival rotation
/// hands the favored tenant ~1/8 of the issue slots, while WFQ's
/// virtual-finish-time ledger (its clock runs 4x slower) readmits it as
/// soon as it re-queues — so the favored finish gap is the policy's doing,
/// not the workload's.
const FAVORITISM_SESSIONS: u32 = 8;

/// WFQ favoritism: [`FAVORITISM_SESSIONS`] tenants with *identical*
/// offered load; session 1 has WFQ weight 4, everyone else weight 1.
/// Every op is a full-buffer (4 MiB) synchronous copy, big enough that
/// every thread's workload spans many OS timeslices, so all tenants stay
/// backlogged in the scheduler queue and the finish order is the policy's
/// alone — FIFO rotates sessions evenly, while WFQ (with the scheduler's
/// handoff grace letting the just-served session's next request contend)
/// serves the weight-4 session back-to-back until its virtual finish time
/// catches up with the field. The favored tenant is spawned *first* so
/// the thread that clears the start barrier last (and briefly runs
/// unopposed) is always a weight-1 competitor.
/// Returns the weight-4 tenant's finish time under FIFO and under WFQ.
fn wfq_favoritism(rounds: usize) -> (u64, u64) {
    let favored = 1u32;
    let finish4 = |policy: SchedulerPolicy| -> u64 {
        let clock = simnet::SimClock::new();
        let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
        server.scheduler.set_policy(policy);
        let tenants: Vec<_> = (1..=FAVORITISM_SESSIONS)
            .map(|s| {
                server
                    .scheduler
                    .set_weight(s, if s == favored { 4 } else { 1 });
                Tenant::with_elems(Arc::clone(&server), s, 1 << 20)
            })
            .collect();
        let t0 = clock.now_ns();
        if std::env::var_os("QOS_DEBUG").is_some() {
            server.scheduler.set_trace(true);
        }
        let barrier = Arc::new(Barrier::new(tenants.len()));
        let joins: Vec<_> = tenants
            .into_iter()
            .map(|t| {
                let barrier = Arc::clone(&barrier);
                let clock = Arc::clone(&clock);
                std::thread::spawn(move || {
                    let session = t.api.session();
                    barrier.wait();
                    for _ in 0..rounds {
                        t.refill_all();
                    }
                    t.synchronize();
                    (session, clock.now_ns() - t0)
                })
            })
            .collect();
        let mut by_session: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for j in joins {
            let (s, f) = j.join().expect("tenant thread panicked");
            by_session.insert(s, f);
        }
        if std::env::var_os("QOS_DEBUG").is_some() {
            let mut sorted: Vec<_> = by_session.iter().collect();
            sorted.sort_unstable();
            for (s, f) in sorted {
                eprintln!(
                    "    [debug] {policy:?} session {s} finished at {:.3} ms",
                    *f as f64 / 1e6
                );
            }
            let trace = server.scheduler.take_trace();
            let grants: String = trace.iter().map(|s| char::from(b'0' + *s as u8)).collect();
            eprintln!("    [debug] {policy:?} grant order: {grants}");
        }
        by_session[&favored]
    };
    (
        finish4(SchedulerPolicy::Fifo),
        finish4(SchedulerPolicy::Wfq),
    )
}

/// One session's share of device time in the 50-session WFQ sweep.
struct ShareRow {
    session: u32,
    weight: u32,
    /// Fraction of total served device time at the snapshot.
    share: f64,
    /// The weight-proportional fair share.
    want: f64,
    /// |share − want| / want, percent.
    err_pct: f64,
}

/// `sessions` concurrent sessions under WFQ, weights cycling 1..=4, each
/// offering work proportional to its weight (uniform 4 MiB refill ops).
/// The first tenant to drain its offered load snapshots the served-ns
/// ledger — at that instant every other session is still backlogged, so
/// weighted fairness predicts each session's share of served device time
/// equals its weight share. Returns per-session rows from that snapshot.
///
/// Op size matters for the same reason it does in `wfq_favoritism`: each
/// refill must cost enough real CPU that the OS preempts a thread
/// mid-workload. With tiny ops a single thread can drain its entire
/// offered load inside one scheduler timeslice before any competitor even
/// submits, and the snapshot then measures OS thread-scheduling luck
/// instead of WFQ arbitration.
///
/// Measurement starts only after a warmup phase: the thread that trips
/// the start barrier still owns the CPU and streaks uncontended grants
/// before the other threads wake, and the virtual-clock floor forgives
/// that head start rather than charging it against later grants. Each
/// thread runs `WARMUP` weight-scaled rounds first, and the first thread
/// out of warmup snapshots the base ledger — by then every session is
/// backlogged, so the measured window [base, finish] is pure WFQ
/// arbitration and the head-start streak is subtracted out.
fn wfq_weight_shares(sessions: usize, rounds: usize) -> Vec<ShareRow> {
    const WARMUP: usize = 4;
    let clock = simnet::SimClock::new();
    let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
    server.scheduler.set_policy(SchedulerPolicy::Wfq);
    let weights: Vec<u32> = (0..sessions).map(|i| 1 + (i as u32 % 4)).collect();
    let tenants: Vec<_> = (0..sessions)
        .map(|i| {
            let s = i as u32 + 1;
            server.scheduler.set_weight(s, weights[i]);
            Tenant::with_elems(Arc::clone(&server), s, 1 << 20)
        })
        .collect();
    let base_ns: Arc<Mutex<Option<std::collections::HashMap<u32, u64>>>> =
        Arc::new(Mutex::new(None));
    let snapshot: Arc<Mutex<Option<std::collections::HashMap<u32, u64>>>> =
        Arc::new(Mutex::new(None));
    let barrier = Arc::new(Barrier::new(sessions));
    let joins: Vec<_> = tenants
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            let server = Arc::clone(&server);
            let base_ns = Arc::clone(&base_ns);
            let snapshot = Arc::clone(&snapshot);
            let barrier = Arc::clone(&barrier);
            let w = weights[i] as usize;
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..WARMUP * w {
                    t.refill_all();
                }
                {
                    let mut base = base_ns.lock().unwrap();
                    if base.is_none() {
                        *base = Some(server.scheduler.served_ns());
                    }
                }
                for _ in 0..rounds * w {
                    t.refill_all();
                }
                let mut snap = snapshot.lock().unwrap();
                if snap.is_none() {
                    *snap = Some(server.scheduler.served_ns());
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("tenant thread panicked");
    }
    let base_ns = base_ns.lock().unwrap().take().unwrap();
    let snap = snapshot.lock().unwrap().take().unwrap();
    let served: Vec<u64> = (0..sessions)
        .map(|i| {
            let s = i as u32 + 1;
            snap[&s] - base_ns[&s]
        })
        .collect();
    let total: u64 = served.iter().sum();
    let total_w: u32 = weights.iter().sum();
    (0..sessions)
        .map(|i| {
            let share = served[i] as f64 / total as f64;
            let want = f64::from(weights[i]) / f64::from(total_w);
            ShareRow {
                session: i as u32 + 1,
                weight: weights[i],
                share,
                want,
                err_pct: (share - want).abs() / want * 100.0,
            }
        })
        .collect()
}

struct ShedRun {
    attempts: u32,
    shed: u32,
    victim_uncontended_ns: u64,
    victim_contended_ns: u64,
    overhead_pct: f64,
}

/// Per-tenant rate quota end to end: two well-behaved victim tenants run
/// a fixed workload; an over-quota aggressor hammers the server *through
/// the RPC admission gate* and has nearly every call shed with
/// `CRICKET_BUSY` (surfacing client-side as `ClientError::Busy`). The
/// victims' virtual completion time is compared against an uncontended
/// baseline run — shedding, not slowdown, is how the quota protects them.
fn quota_shed(rounds: usize, attempts: u32) -> ShedRun {
    use cricket_client::{ClientError, CricketClient, EnvConfig};
    use cricket_server::SimTransport;

    let run_victims = |server: &Arc<CricketServer>, clock: &Arc<simnet::SimClock>| -> u64 {
        let tenants: Vec<_> = (1..=2u32)
            .map(|s| Tenant::new(Arc::clone(server), s))
            .collect();
        let t0 = clock.now_ns();
        let barrier = Arc::new(Barrier::new(tenants.len()));
        let joins: Vec<_> = tenants
            .into_iter()
            .map(|t| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..rounds {
                        t.launch();
                        t.refill();
                    }
                    t.synchronize();
                })
            })
            .collect();
        for j in joins {
            j.join().expect("victim thread panicked");
        }
        clock.now_ns() - t0
    };

    // Uncontended baseline.
    let clock = simnet::SimClock::new();
    let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
    let victim_uncontended_ns = run_victims(&server, &clock);

    // Contended: same victims, plus an aggressor on session 7 whose calls
    // arrive through the QoS gate (make_session_rpc) under a near-zero
    // device-time budget.
    let clock = simnet::SimClock::new();
    let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
    let env = EnvConfig::RustyHermit;
    let rpc = Arc::new(cricket_server::make_session_rpc(Arc::clone(&server), 7));
    let transport = SimTransport::new(rpc, env.guest(), Arc::clone(&clock));
    let mut aggressor =
        CricketClient::new(Box::new(transport), env.flavor(), Some(Arc::clone(&clock)));
    aggressor.rpc().set_retry_policy(oncrpc::RetryPolicy {
        max_attempts: 1, // surface every CRICKET_BUSY instead of retrying
        base_delay: std::time::Duration::from_micros(1),
        max_delay: std::time::Duration::from_micros(1),
        retry_non_idempotent: false,
    });
    // Allocate a target first (admitted), then clamp the budget: 1 µs of
    // device time per second leaves room for roughly one more dispatch
    // quantum, ever.
    let target = aggressor.malloc(4096).expect("aggressor malloc");
    assert_eq!(
        server.qos_set(
            7,
            &cricket_proto::QosParams {
                session: 7,
                weight: 1,
                priority: 100,
                rate_ns_per_s: 1_000,
                burst_ns: 6_000,
                max_resident_bytes: 0,
            }
        ),
        0
    );
    let shed_count = Arc::new(std::sync::atomic::AtomicU32::new(0));
    let aggr_join = {
        let shed_count = Arc::clone(&shed_count);
        std::thread::spawn(move || {
            for _ in 0..attempts {
                match aggressor.memset(target, 1, 16) {
                    Ok(()) => {}
                    Err(e @ ClientError::Busy { .. }) => {
                        assert!(e.is_busy());
                        shed_count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    Err(other) => panic!("aggressor saw a non-busy error: {other}"),
                }
            }
        })
    };
    let victim_contended_ns = run_victims(&server, &clock);
    aggr_join.join().expect("aggressor thread panicked");
    let shed = shed_count.load(std::sync::atomic::Ordering::Relaxed);

    let overhead_pct = (victim_contended_ns as f64 / victim_uncontended_ns as f64 - 1.0) * 100.0;
    ShedRun {
        attempts,
        shed,
        victim_uncontended_ns,
        victim_contended_ns,
        overhead_pct,
    }
}

fn main() {
    let args = parse_args();
    let launches = args.launches.unwrap_or(if args.smoke { 12 } else { 48 });
    println!("Multi-tenant async execution — 2 tenants × {launches} vectorAdd launches\n");

    let o = overlap(launches);
    let speedup = o.serial_ns as f64 / o.pipelined_ns as f64;
    let overlap_factor = o.device_time_ns as f64 / o.busy_span_ns.max(1) as f64;
    println!(
        "  serial    {:>10.3} ms\n  pipelined {:>10.3} ms   speedup {speedup:.2}x",
        o.serial_ns as f64 / 1e6,
        o.pipelined_ns as f64 / 1e6,
    );
    println!(
        "  device busy span {:.3} ms for {:.3} ms of queued work → overlap {overlap_factor:.2}x\n",
        o.busy_span_ns as f64 / 1e6,
        o.device_time_ns as f64 / 1e6,
    );

    let policies = [
        ("fifo", SchedulerPolicy::Fifo),
        ("round_robin", SchedulerPolicy::RoundRobin),
        ("priority", SchedulerPolicy::Priority),
        ("wfq", SchedulerPolicy::Wfq),
    ];
    let mut policy_json = Vec::new();
    let mut favored_finish: Vec<(String, u64)> = Vec::new();
    for (name, policy) in policies {
        let rows = fairness(policy, launches / 4);
        println!("  {name}: per-session (ops, device-ms, finish-ms) with 1:2:3:4 offered load");
        let mut row_json = Vec::new();
        for r in &rows {
            println!(
                "    session {}: {} ops, {:.3} ms served, finished at {:.3} ms",
                r.session,
                r.served_ops,
                r.served_ns as f64 / 1e6,
                r.finish_ns as f64 / 1e6,
            );
            row_json.push(format!(
                "{{\"session\": {}, \"served_ops\": {}, \"served_ns\": {}, \"finish_ns\": {}}}",
                r.session, r.served_ops, r.served_ns, r.finish_ns
            ));
        }
        // The scheduler must actually differentiate: the favored, lightest
        // tenant always completes first under Priority.
        if policy == SchedulerPolicy::Priority {
            let first = rows
                .iter()
                .min_by_key(|r| r.finish_ns)
                .map(|r| r.session)
                .unwrap();
            assert_eq!(
                first, 1,
                "priority must let its favored (lightest) tenant finish first"
            );
        }
        favored_finish.push((name.to_string(), rows[0].finish_ns));
        policy_json.push(format!("    \"{name}\": [{}]", row_json.join(", ")));
    }
    let fifo_t1 = favored_finish
        .iter()
        .find(|(n, _)| n == "fifo")
        .map(|&(_, f)| f)
        .unwrap();
    let prio_t1 = favored_finish
        .iter()
        .find(|(n, _)| n == "priority")
        .map(|&(_, f)| f)
        .unwrap();
    let favoritism = fifo_t1 as f64 / prio_t1.max(1) as f64;
    println!(
        "\n  favored tenant finish: fifo {:.3} ms vs priority {:.3} ms → {favoritism:.2}x sooner",
        fifo_t1 as f64 / 1e6,
        prio_t1 as f64 / 1e6,
    );

    // --qos: the QoS subsystem's self-asserting section — WFQ favoritism,
    // weight-share fairness at 50 sessions, and end-to-end quota shedding.
    let qos_json = if args.qos {
        let (rounds, share_rounds, shed_rounds, shed_attempts) = if args.smoke {
            (32, 24, 16, 12)
        } else {
            (48, 24, 32, 24)
        };

        let (fifo4_ns, wfq4_ns) = wfq_favoritism(rounds);
        let wfq_speedup = fifo4_ns as f64 / wfq4_ns.max(1) as f64;
        println!(
            "\n  qos/wfq favoritism: weight-4 tenant finish fifo {:.3} ms vs wfq {:.3} ms → {wfq_speedup:.2}x sooner",
            fifo4_ns as f64 / 1e6,
            wfq4_ns as f64 / 1e6,
        );
        assert!(
            wfq_speedup >= 2.0,
            "WFQ must finish the weight-4 tenant at least 2x sooner than FIFO (got {wfq_speedup:.2}x)"
        );

        let sessions = 50;
        let shares = wfq_weight_shares(sessions, share_rounds);
        let max_err = shares.iter().map(|r| r.err_pct).fold(0.0f64, f64::max);
        let mut class_share = [0.0f64; 4];
        let mut class_count = [0u32; 4];
        for r in &shares {
            class_share[(r.weight - 1) as usize] += r.share;
            class_count[(r.weight - 1) as usize] += 1;
        }
        println!(
            "  qos/wfq shares: {sessions} sessions, weights 1..4 — max deviation from weight share {max_err:.2}%"
        );
        for r in &shares {
            assert!(
                r.err_pct <= 10.0,
                "session {} (weight {}): served share {:.4} vs fair share {:.4} — {:.2}% off (> 10%)",
                r.session,
                r.weight,
                r.share,
                r.want,
                r.err_pct
            );
        }
        let class_json: Vec<String> = (0..4)
            .map(|w| {
                format!(
                    "{{\"weight\": {}, \"sessions\": {}, \"mean_share\": {:.5}}}",
                    w + 1,
                    class_count[w],
                    class_share[w] / f64::from(class_count[w].max(1))
                )
            })
            .collect();

        let shed = quota_shed(shed_rounds, shed_attempts);
        println!(
            "  qos/quota shed: {} of {} aggressor calls shed busy; victims {:.3} ms contended vs {:.3} ms alone ({:+.2}%)",
            shed.shed,
            shed.attempts,
            shed.victim_contended_ns as f64 / 1e6,
            shed.victim_uncontended_ns as f64 / 1e6,
            shed.overhead_pct,
        );
        assert!(
            shed.shed >= shed.attempts / 2,
            "the over-quota aggressor was barely shed: {}/{}",
            shed.shed,
            shed.attempts
        );
        assert!(
            shed.overhead_pct <= 10.0,
            "victim throughput degraded {:.2}% (> 10%) despite quota shedding",
            shed.overhead_pct
        );

        format!(
            ",\n  \"qos\": {{\n    \
             \"wfq_favoritism\": {{\"rounds\": {rounds}, \"weight4_finish_fifo_ns\": {fifo4_ns}, \
             \"weight4_finish_wfq_ns\": {wfq4_ns}, \"fifo_over_wfq\": {wfq_speedup:.4}}},\n    \
             \"wfq_weight_shares\": {{\"sessions\": {sessions}, \"rounds_per_weight\": {share_rounds}, \
             \"max_share_err_pct\": {max_err:.4}, \"bound_pct\": 10.0, \"classes\": [{}]}},\n    \
             \"quota_shed\": {{\"attempts\": {}, \"shed\": {}, \"victim_uncontended_ns\": {}, \
             \"victim_contended_ns\": {}, \"victim_overhead_pct\": {:.4}, \"bound_pct\": 10.0}}\n  }}",
            class_json.join(", "),
            shed.attempts,
            shed.shed,
            shed.victim_uncontended_ns,
            shed.victim_contended_ns,
            shed.overhead_pct,
        )
    } else {
        String::new()
    };

    let json = format!(
        "{{\n  \"launches_per_tenant\": {launches},\n  \"elements_per_vector\": {N},\n  \
         \"serial_ns\": {},\n  \"pipelined_ns\": {},\n  \"speedup\": {speedup:.4},\n  \
         \"busy_span_ns\": {},\n  \"device_time_ns\": {},\n  \
         \"overlap_factor\": {overlap_factor:.4},\n  \
         \"favored_tenant_finish_fifo_over_priority\": {favoritism:.4},\n  \
         \"fairness\": {{\n{}\n  }}{qos_json}\n}}\n",
        o.serial_ns,
        o.pipelined_ns,
        o.busy_span_ns,
        o.device_time_ns,
        policy_json.join(",\n"),
    );
    let path = "BENCH_multitenant.json";
    if args.smoke {
        // CI runs the smoke; don't clobber the committed full-scale numbers.
        println!("\n  (smoke run: {path} left untouched)");
    } else {
        match std::fs::write(path, &json) {
            Ok(()) => println!("\n  → wrote {path}"),
            Err(e) => eprintln!("\n  ! could not write {path}: {e}"),
        }
    }
}

struct Args {
    launches: Option<usize>,
    /// Run the QoS section (WFQ favoritism, 50-session weight shares,
    /// quota shedding) and emit its self-asserted `"qos"` JSON object.
    qos: bool,
    /// CI scale: smaller rounds everywhere, same assertions.
    smoke: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        launches: None,
        qos: false,
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--launches" => parsed.launches = args.next().and_then(|v| v.parse().ok()),
            "--qos" => parsed.qos = true,
            "--smoke" => parsed.smoke = true,
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    parsed
}
