//! Multi-tenant asynchronous-execution snapshot: serial vs pipelined
//! virtual time for two tenants sharing one simulated A100, the device
//! busy-span/overlap telemetry behind the speedup, and the per-policy
//! served-time ledgers — written to `BENCH_multitenant.json`.
//!
//! ```text
//! cargo run --release -p cricket-bench --bin multitenant
//! cargo run --release -p cricket-bench --bin multitenant -- --launches 96
//! ```

use cricket_proto::CricketV1Service;
use cricket_server::service::Sessioned;
use cricket_server::{CricketServer, SchedulerPolicy, ServerConfig};
use std::sync::Arc;
use vgpu::kernels::ParamBuilder;
use vgpu::module::CubinBuilder;

/// 4 Mi f32 elements per vector — ~30 µs of device time per launch.
const N: usize = 1 << 22;

struct Tenant {
    api: Sessioned,
    func: u64,
    params: Vec<u8>,
}

impl Tenant {
    fn new(server: Arc<CricketServer>, session: u32) -> Self {
        let api = Sessioned::new(server, session);
        let image = CubinBuilder::new()
            .kernel("vectorAdd", &[8, 8, 8, 4])
            .code(b"vectorAdd SASS")
            .build(false);
        let module = api
            .cu_module_load_data(&image)
            .unwrap()
            .into_result()
            .unwrap();
        let func = api
            .cu_module_get_function(module, "vectorAdd")
            .unwrap()
            .into_result()
            .unwrap();
        let bytes = (N * 4) as u64;
        let a = api.cuda_malloc(bytes).unwrap().into_result().unwrap();
        let b = api.cuda_malloc(bytes).unwrap().into_result().unwrap();
        let c = api.cuda_malloc(bytes).unwrap().into_result().unwrap();
        let fill: Vec<u8> = 1.0f32
            .to_le_bytes()
            .iter()
            .copied()
            .cycle()
            .take(N * 4)
            .collect();
        api.cuda_memcpy_htod(a, &fill).unwrap();
        api.cuda_memcpy_htod(b, &fill).unwrap();
        let params = ParamBuilder::new()
            .ptr(c)
            .ptr(a)
            .ptr(b)
            .u32(N as u32)
            .build();
        Self { api, func, params }
    }

    fn launch(&self) {
        let grid = ((N as u32).div_ceil(256), 1, 1).into();
        let block = (256, 1, 1).into();
        assert_eq!(
            self.api
                .cuda_launch_kernel(self.func, grid, block, 0, 0, &self.params)
                .unwrap(),
            0
        );
    }

    fn synchronize(&self) {
        assert_eq!(self.api.cuda_device_synchronize().unwrap(), 0);
    }
}

struct OverlapRun {
    serial_ns: u64,
    pipelined_ns: u64,
    busy_span_ns: u64,
    device_time_ns: u64,
}

/// Two tenants, `launches` kernels each: back-to-back, then interleaved on
/// a fresh server. Returns both virtual durations plus the pipelined run's
/// device utilization telemetry.
fn overlap(launches: usize) -> OverlapRun {
    let run = |interleave: bool| -> (u64, u64, u64) {
        let clock = simnet::SimClock::new();
        let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
        let ta = Tenant::new(Arc::clone(&server), 1);
        let tb = Tenant::new(Arc::clone(&server), 2);
        let t0 = clock.now_ns();
        if interleave {
            for _ in 0..launches {
                ta.launch();
                tb.launch();
            }
            ta.synchronize();
            tb.synchronize();
        } else {
            for t in [&ta, &tb] {
                for _ in 0..launches {
                    t.launch();
                }
                t.synchronize();
            }
        }
        let elapsed = clock.now_ns() - t0;
        let (span, device) = server.device_utilization(0).unwrap();
        (elapsed, span, device)
    };
    let (serial_ns, _, _) = run(false);
    let (pipelined_ns, busy_span_ns, device_time_ns) = run(true);
    OverlapRun {
        serial_ns,
        pipelined_ns,
        busy_span_ns,
        device_time_ns,
    }
}

/// Four sessions with a 1:1:2:4 offered load under `policy`; returns
/// `(session, served_ops, served_ns)` rows.
fn fairness(policy: SchedulerPolicy, launches: usize) -> Vec<(u32, u64, u64)> {
    let clock = simnet::SimClock::new();
    let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
    server.scheduler.set_policy(policy);
    let weights = [1usize, 1, 2, 4];
    let tenants: Vec<_> = (1..=4u32)
        .map(|s| {
            if policy == SchedulerPolicy::Priority {
                server.scheduler.set_priority(s, s * 10);
            }
            Tenant::new(Arc::clone(&server), s)
        })
        .collect();
    let base_ops = server.scheduler.served_ops();
    let base_ns = server.scheduler.served_ns();
    for (t, w) in tenants.iter().zip(weights) {
        for _ in 0..launches * w {
            t.launch();
        }
    }
    for t in &tenants {
        t.synchronize();
    }
    let ops = server.scheduler.served_ops();
    let ns = server.scheduler.served_ns();
    (1..=4u32)
        .map(|s| (s, ops[&s] - base_ops[&s], ns[&s] - base_ns[&s]))
        .collect()
}

fn main() {
    let launches = parse_launches().unwrap_or(48);
    println!("Multi-tenant async execution — 2 tenants × {launches} vectorAdd launches\n");

    let o = overlap(launches);
    let speedup = o.serial_ns as f64 / o.pipelined_ns as f64;
    let overlap_factor = o.device_time_ns as f64 / o.busy_span_ns.max(1) as f64;
    println!(
        "  serial    {:>10.3} ms\n  pipelined {:>10.3} ms   speedup {speedup:.2}x",
        o.serial_ns as f64 / 1e6,
        o.pipelined_ns as f64 / 1e6,
    );
    println!(
        "  device busy span {:.3} ms for {:.3} ms of queued work → overlap {overlap_factor:.2}x\n",
        o.busy_span_ns as f64 / 1e6,
        o.device_time_ns as f64 / 1e6,
    );

    let policies = [
        ("fifo", SchedulerPolicy::Fifo),
        ("round_robin", SchedulerPolicy::RoundRobin),
        ("priority", SchedulerPolicy::Priority),
    ];
    let mut policy_json = Vec::new();
    for (name, policy) in policies {
        let rows = fairness(policy, launches / 4);
        println!("  {name}: per-session (ops, device-ms) with 1:1:2:4 offered load");
        let mut row_json = Vec::new();
        for (s, ops, ns) in &rows {
            println!("    session {s}: {ops} ops, {:.3} ms", *ns as f64 / 1e6);
            row_json.push(format!(
                "{{\"session\": {s}, \"served_ops\": {ops}, \"served_ns\": {ns}}}"
            ));
        }
        policy_json.push(format!("    \"{name}\": [{}]", row_json.join(", ")));
    }

    let json = format!(
        "{{\n  \"launches_per_tenant\": {launches},\n  \"elements_per_vector\": {N},\n  \
         \"serial_ns\": {},\n  \"pipelined_ns\": {},\n  \"speedup\": {speedup:.4},\n  \
         \"busy_span_ns\": {},\n  \"device_time_ns\": {},\n  \
         \"overlap_factor\": {overlap_factor:.4},\n  \"fairness\": {{\n{}\n  }}\n}}\n",
        o.serial_ns,
        o.pipelined_ns,
        o.busy_span_ns,
        o.device_time_ns,
        policy_json.join(",\n"),
    );
    let path = "BENCH_multitenant.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\n  → wrote {path}"),
        Err(e) => eprintln!("\n  ! could not write {path}: {e}"),
    }
}

fn parse_launches() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--launches" {
            return args.next()?.parse().ok();
        }
    }
    None
}
