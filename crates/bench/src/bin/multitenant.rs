//! Multi-tenant asynchronous-execution snapshot: serial vs pipelined
//! virtual time for two tenants sharing one simulated A100, the device
//! busy-span/overlap telemetry behind the speedup, and the per-policy
//! served-time ledgers — written to `BENCH_multitenant.json`.
//!
//! ```text
//! cargo run --release -p cricket-bench --bin multitenant
//! cargo run --release -p cricket-bench --bin multitenant -- --launches 96
//! ```

use cricket_proto::CricketV1Service;
use cricket_server::service::Sessioned;
use cricket_server::{CricketServer, SchedulerPolicy, ServerConfig};
use std::sync::Arc;
use vgpu::kernels::ParamBuilder;
use vgpu::module::CubinBuilder;

/// 4 Mi f32 elements per vector — ~30 µs of device time per launch.
const N: usize = 1 << 22;

struct Tenant {
    api: Sessioned,
    func: u64,
    params: Vec<u8>,
    input: u64,
    fill: Vec<u8>,
}

impl Tenant {
    fn new(server: Arc<CricketServer>, session: u32) -> Self {
        let api = Sessioned::new(server, session);
        let image = CubinBuilder::new()
            .kernel("vectorAdd", &[8, 8, 8, 4])
            .code(b"vectorAdd SASS")
            .build(false);
        let module = api
            .cu_module_load_data(&image)
            .unwrap()
            .into_result()
            .unwrap();
        let func = api
            .cu_module_get_function(module, "vectorAdd")
            .unwrap()
            .into_result()
            .unwrap();
        let bytes = (N * 4) as u64;
        let a = api.cuda_malloc(bytes).unwrap().into_result().unwrap();
        let b = api.cuda_malloc(bytes).unwrap().into_result().unwrap();
        let c = api.cuda_malloc(bytes).unwrap().into_result().unwrap();
        let fill: Vec<u8> = 1.0f32
            .to_le_bytes()
            .iter()
            .copied()
            .cycle()
            .take(N * 4)
            .collect();
        api.cuda_memcpy_htod(a, &fill).unwrap();
        api.cuda_memcpy_htod(b, &fill).unwrap();
        let params = ParamBuilder::new()
            .ptr(c)
            .ptr(a)
            .ptr(b)
            .u32(N as u32)
            .build();
        Self {
            api,
            func,
            params,
            input: a,
            fill,
        }
    }

    fn launch(&self) {
        let grid = ((N as u32).div_ceil(256), 1, 1).into();
        let block = (256, 1, 1).into();
        assert_eq!(
            self.api
                .cuda_launch_kernel(self.func, grid, block, 0, 0, &self.params)
                .unwrap(),
            0
        );
    }

    /// A host-to-device refill of the input vector's first 256 KiB — the
    /// synchronous-transfer path that holds a scheduler turn for the whole
    /// copy, used to make the bulk tenants' op mix heavier.
    fn refill(&self) {
        let len = (256 << 10).min(self.fill.len());
        assert_eq!(
            self.api
                .cuda_memcpy_htod(self.input, &self.fill[..len])
                .unwrap(),
            0
        );
    }

    fn synchronize(&self) {
        assert_eq!(self.api.cuda_device_synchronize().unwrap(), 0);
    }
}

struct OverlapRun {
    serial_ns: u64,
    pipelined_ns: u64,
    busy_span_ns: u64,
    device_time_ns: u64,
}

/// Two tenants, `launches` kernels each: back-to-back, then interleaved on
/// a fresh server. Returns both virtual durations plus the pipelined run's
/// device utilization telemetry.
fn overlap(launches: usize) -> OverlapRun {
    let run = |interleave: bool| -> (u64, u64, u64) {
        let clock = simnet::SimClock::new();
        let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
        let ta = Tenant::new(Arc::clone(&server), 1);
        let tb = Tenant::new(Arc::clone(&server), 2);
        let t0 = clock.now_ns();
        if interleave {
            for _ in 0..launches {
                ta.launch();
                tb.launch();
            }
            ta.synchronize();
            tb.synchronize();
        } else {
            for t in [&ta, &tb] {
                for _ in 0..launches {
                    t.launch();
                }
                t.synchronize();
            }
        }
        let elapsed = clock.now_ns() - t0;
        let (span, device) = server.device_utilization(0).unwrap();
        (elapsed, span, device)
    };
    let (serial_ns, _, _) = run(false);
    let (pipelined_ns, busy_span_ns, device_time_ns) = run(true);
    OverlapRun {
        serial_ns,
        pipelined_ns,
        busy_span_ns,
        device_time_ns,
    }
}

/// One tenant's outcome under a scheduling policy.
struct FairRow {
    session: u32,
    served_ops: u64,
    served_ns: u64,
    /// Virtual time at which this tenant's synchronize returned, relative
    /// to the contention phase's start — the number the policy actually
    /// moves (the served_* ledgers total the same work under any policy).
    finish_ns: u64,
}

/// Four *concurrent* sessions with heterogeneous op mixes under `policy`.
///
/// Session 1 is the light, latency-sensitive tenant that `Priority`
/// favors (lowest priority value); sessions 2–4 offer progressively
/// heavier mixes (more launches, plus synchronous refill copies that hold
/// scheduler turns longer). The tenants run on real threads against the
/// shared virtual clock, so the scheduler's ticket queue is genuinely
/// contended and the policies produce different per-tenant finish times —
/// a sequential driver (the old bench) never has two waiters and reports
/// byte-identical ledgers under every policy.
fn fairness(policy: SchedulerPolicy, launches: usize) -> Vec<FairRow> {
    let clock = simnet::SimClock::new();
    let server = CricketServer::new(ServerConfig::default(), Arc::clone(&clock));
    server.scheduler.set_policy(policy);
    let weights = [1usize, 2, 3, 4];
    // Setup (module load, mallocs, fills) happens before the measured
    // contention phase. Priorities are configured under every policy so
    // the runs differ only in what the scheduler does with them.
    let tenants: Vec<_> = (1..=4u32)
        .map(|s| {
            server.scheduler.set_priority(s, s * 10);
            Tenant::new(Arc::clone(&server), s)
        })
        .collect();
    let base_ops = server.scheduler.served_ops();
    let base_ns = server.scheduler.served_ns();
    let t0 = clock.now_ns();
    let barrier = Arc::new(std::sync::Barrier::new(tenants.len()));
    let mut joins = Vec::new();
    for (t, w) in tenants.into_iter().zip(weights) {
        let barrier = Arc::clone(&barrier);
        let clock = Arc::clone(&clock);
        joins.push(std::thread::spawn(move || {
            let session = t.api.session();
            barrier.wait();
            for i in 0..launches * w {
                t.launch();
                // Bulk tenants intersperse synchronous copies: a heavier,
                // turn-holding mix the favored tenant never issues.
                if session != 1 && i % 4 == 3 {
                    t.refill();
                }
            }
            t.synchronize();
            (session, clock.now_ns() - t0)
        }));
    }
    let mut finishes: Vec<(u32, u64)> = joins
        .into_iter()
        .map(|j| j.join().expect("tenant thread panicked"))
        .collect();
    finishes.sort_unstable_by_key(|&(s, _)| s);
    let ops = server.scheduler.served_ops();
    let ns = server.scheduler.served_ns();
    finishes
        .into_iter()
        .map(|(s, finish_ns)| FairRow {
            session: s,
            served_ops: ops[&s] - base_ops[&s],
            served_ns: ns[&s] - base_ns[&s],
            finish_ns,
        })
        .collect()
}

fn main() {
    let launches = parse_launches().unwrap_or(48);
    println!("Multi-tenant async execution — 2 tenants × {launches} vectorAdd launches\n");

    let o = overlap(launches);
    let speedup = o.serial_ns as f64 / o.pipelined_ns as f64;
    let overlap_factor = o.device_time_ns as f64 / o.busy_span_ns.max(1) as f64;
    println!(
        "  serial    {:>10.3} ms\n  pipelined {:>10.3} ms   speedup {speedup:.2}x",
        o.serial_ns as f64 / 1e6,
        o.pipelined_ns as f64 / 1e6,
    );
    println!(
        "  device busy span {:.3} ms for {:.3} ms of queued work → overlap {overlap_factor:.2}x\n",
        o.busy_span_ns as f64 / 1e6,
        o.device_time_ns as f64 / 1e6,
    );

    let policies = [
        ("fifo", SchedulerPolicy::Fifo),
        ("round_robin", SchedulerPolicy::RoundRobin),
        ("priority", SchedulerPolicy::Priority),
    ];
    let mut policy_json = Vec::new();
    let mut favored_finish: Vec<(String, u64)> = Vec::new();
    for (name, policy) in policies {
        let rows = fairness(policy, launches / 4);
        println!("  {name}: per-session (ops, device-ms, finish-ms) with 1:2:3:4 offered load");
        let mut row_json = Vec::new();
        for r in &rows {
            println!(
                "    session {}: {} ops, {:.3} ms served, finished at {:.3} ms",
                r.session,
                r.served_ops,
                r.served_ns as f64 / 1e6,
                r.finish_ns as f64 / 1e6,
            );
            row_json.push(format!(
                "{{\"session\": {}, \"served_ops\": {}, \"served_ns\": {}, \"finish_ns\": {}}}",
                r.session, r.served_ops, r.served_ns, r.finish_ns
            ));
        }
        // The scheduler must actually differentiate: the favored, lightest
        // tenant always completes first under Priority.
        if policy == SchedulerPolicy::Priority {
            let first = rows
                .iter()
                .min_by_key(|r| r.finish_ns)
                .map(|r| r.session)
                .unwrap();
            assert_eq!(
                first, 1,
                "priority must let its favored (lightest) tenant finish first"
            );
        }
        favored_finish.push((name.to_string(), rows[0].finish_ns));
        policy_json.push(format!("    \"{name}\": [{}]", row_json.join(", ")));
    }
    let fifo_t1 = favored_finish
        .iter()
        .find(|(n, _)| n == "fifo")
        .map(|&(_, f)| f)
        .unwrap();
    let prio_t1 = favored_finish
        .iter()
        .find(|(n, _)| n == "priority")
        .map(|&(_, f)| f)
        .unwrap();
    let favoritism = fifo_t1 as f64 / prio_t1.max(1) as f64;
    println!(
        "\n  favored tenant finish: fifo {:.3} ms vs priority {:.3} ms → {favoritism:.2}x sooner",
        fifo_t1 as f64 / 1e6,
        prio_t1 as f64 / 1e6,
    );

    let json = format!(
        "{{\n  \"launches_per_tenant\": {launches},\n  \"elements_per_vector\": {N},\n  \
         \"serial_ns\": {},\n  \"pipelined_ns\": {},\n  \"speedup\": {speedup:.4},\n  \
         \"busy_span_ns\": {},\n  \"device_time_ns\": {},\n  \
         \"overlap_factor\": {overlap_factor:.4},\n  \
         \"favored_tenant_finish_fifo_over_priority\": {favoritism:.4},\n  \
         \"fairness\": {{\n{}\n  }}\n}}\n",
        o.serial_ns,
        o.pipelined_ns,
        o.busy_span_ns,
        o.device_time_ns,
        policy_json.join(",\n"),
    );
    let path = "BENCH_multitenant.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\n  → wrote {path}"),
        Err(e) => eprintln!("\n  ! could not write {path}: {e}"),
    }
}

fn parse_launches() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--launches" {
            return args.next()?.parse().ok();
        }
    }
    None
}
