//! Live-migration cost snapshot: streamed incremental checkpoint vs a
//! naive stop-and-copy, across dirty rates — written to
//! `BENCH_migrate.json`.
//!
//! ```text
//! cargo run --release -p cricket-bench --bin migrate
//! cargo run --release -p cricket-bench --bin migrate -- --blocks 32 --rounds 3
//! cargo run --release -p cricket-bench --bin migrate -- --smoke
//! ```
//!
//! Each cell stands up a two-shard fleet, loads one session with a fixed
//! working set, then live-migrates it while a synthetic workload rewrites
//! `dirty%` of device memory before the first pre-copy round and half as
//! much before each subsequent one (the textbook converging pre-copy).
//! The streamed migration ships the base snapshot while the source keeps
//! serving, then only dirty deltas; a naive migration would pause the
//! session and ship the full footprint again. The acceptance claim:
//! **at ≤ 25% dirty rate the incremental resync moves < 50% of the naive
//! full-copy bytes** — self-asserted below.

use cricket_client::{CricketClient, Endpoint};
use oncrpc::{OpaqueAuth, RetryPolicy};
use std::time::Duration;

const BLOCK: u64 = 64 * 1024;

struct Cell {
    dirty_pct: u64,
    rounds: u32,
    base_bytes: u64,
    delta_bytes: u64,
    final_bytes: u64,
    naive_bytes: u64,
    pause_ns: u64,
}

impl Cell {
    fn streamed(&self) -> u64 {
        self.base_bytes + self.delta_bytes + self.final_bytes
    }
    fn resync(&self) -> u64 {
        self.delta_bytes + self.final_bytes
    }
    fn resync_ratio(&self) -> f64 {
        self.resync() as f64 / (self.naive_bytes as f64).max(1.0)
    }
}

/// Rewrite `pct`% of every live block (a prefix memset with a fresh value)
/// so the next delta epoch sees exactly that fraction dirty.
fn dirty(client: &mut CricketClient, blocks: &[u64], pct: u64, val: i32) {
    let len = (BLOCK * pct / 100).min(BLOCK);
    if len == 0 {
        return;
    }
    for &b in blocks {
        client.memset(b, val, len).expect("memset");
    }
}

fn measure(blocks_n: usize, rounds: u32, dirty_pct: u64) -> Cell {
    let fleet = cricket_fleet::FleetBuilder::new(2)
        .heartbeat(Duration::from_secs(3600))
        .launch()
        .expect("launch fleet");
    let endpoint = Endpoint::directory(fleet.dir_addr()).expect("endpoint");
    let token = 0xBE7C_0000 | u64::from(rounds);
    let (t, addr) = endpoint
        .connect_transport_for(Some(token))
        .expect("resolve shard");
    let mut client = CricketClient::over(t, cricket_client::env::ClientFlavor::RustRpcLib, None);
    {
        let rpc = client.rpc();
        rpc.set_credential(OpaqueAuth::client_token(token));
        rpc.set_retry_policy(RetryPolicy {
            max_attempts: 40,
            base_delay: Duration::from_micros(50),
            max_delay: Duration::from_millis(1),
            retry_non_idempotent: true,
        });
        rpc.set_call_timeout(Some(Duration::from_millis(250)))
            .expect("timeout");
        let ep = endpoint;
        rpc.set_reconnect(move || {
            let (t, _addr) = ep
                .connect_transport_for(Some(token))
                .map_err(|e| oncrpc::RpcError::Io(std::io::Error::other(e.to_string())))?;
            Ok(Box::new(t))
        });
    }
    let from = fleet
        .shard_by_port(u32::from(addr.port()))
        .expect("landed on a fleet shard");
    let to = (from + 1) % fleet.len();

    // The working set: `blocks_n` × 64 KiB, fully written once.
    let fill = vec![0xA5u8; BLOCK as usize];
    let blocks: Vec<u64> = (0..blocks_n)
        .map(|_| {
            let p = client.malloc(BLOCK).expect("malloc");
            client.memcpy_htod(p, &fill).expect("htod");
            p
        })
        .collect();

    // Base snapshot streams while the source keeps serving.
    let mut mig = fleet
        .begin_migration(token, from, to)
        .expect("begin migration");

    // Converging pre-copy: the workload rewrites dirty_pct% before the
    // first round and half as much before each later one; the interval
    // before the cutover's fenced final delta halves once more.
    let mut pct = dirty_pct;
    for r in 0..rounds {
        dirty(&mut client, &blocks, pct, i32::from(r as u8) + 1);
        mig.round(&fleet).expect("pre-copy round");
        pct /= 2;
    }
    dirty(&mut client, &blocks, pct, 0x7E);
    // A sentinel the destination must reproduce exactly.
    let sentinel: Vec<u8> = (0..256u32).map(|i| (i % 249) as u8).collect();
    client
        .memcpy_htod(blocks[blocks_n - 1] + BLOCK - 256, &sentinel)
        .expect("sentinel htod");

    mig.cutover(&fleet).expect("cutover");
    let report = mig.finish();

    // First post-cutover call rides the reconnect hook to the new home;
    // the sentinel proves the final delta carried the last writes.
    let back = client
        .memcpy_dtoh(blocks[blocks_n - 1] + BLOCK - 256, 256)
        .expect("post-cutover dtoh");
    assert_eq!(back, sentinel, "migration corrupted the working set");
    for &b in &blocks {
        client.free(b).expect("free");
    }
    drop(client);
    fleet.shutdown();

    Cell {
        dirty_pct,
        rounds: report.rounds,
        base_bytes: report.base_bytes,
        delta_bytes: report.delta_bytes,
        final_bytes: report.final_bytes,
        naive_bytes: report.naive_bytes,
        pause_ns: report.pause_ns,
    }
}

struct Args {
    blocks: usize,
    rounds: u32,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        blocks: 16,
        rounds: 2,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--blocks" => a.blocks = it.next().and_then(|v| v.parse().ok()).unwrap_or(16),
            "--rounds" => a.rounds = it.next().and_then(|v| v.parse().ok()).unwrap_or(2),
            "--smoke" => a.smoke = true,
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    if a.smoke {
        a.blocks = a.blocks.min(8);
        a.rounds = a.rounds.min(2);
    }
    a
}

fn main() {
    let args = parse_args();
    let dirty_points: Vec<u64> = if args.smoke {
        vec![10, 25]
    } else {
        vec![5, 10, 25, 50, 100]
    };
    println!(
        "Live migration — {} × 64 KiB working set, {} pre-copy rounds, dirty rates {:?}%\n",
        args.blocks, args.rounds, dirty_points
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &pct in &dirty_points {
        let cell = measure(args.blocks, args.rounds, pct);
        println!(
            "  dirty {:>3}%: base {:>8} B + resync {:>8} B vs naive {:>8} B → {:>5.1}% of a full re-copy, pause {:>7.3} ms",
            cell.dirty_pct,
            cell.base_bytes,
            cell.resync(),
            cell.naive_bytes,
            cell.resync_ratio() * 100.0,
            cell.pause_ns as f64 / 1e6,
        );
        cells.push(cell);
    }

    // Acceptance: at every dirty rate ≤ 25%, the streamed resync moves
    // less than half the bytes a naive stop-and-copy would.
    for c in cells.iter().filter(|c| c.dirty_pct <= 25) {
        assert!(
            c.resync_ratio() < 0.5,
            "acceptance: at {}% dirty the resync moved {:.1}% of the naive bytes (floor 50%)",
            c.dirty_pct,
            c.resync_ratio() * 100.0
        );
    }
    println!("\n  → every ≤25%-dirty cell resynced < 50% of the naive full-copy bytes");

    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        rows.push_str(&format!(
            "    {{\"dirty_pct\": {}, \"rounds\": {}, \"base_bytes\": {}, \"delta_bytes\": {}, \
             \"final_bytes\": {}, \"streamed_bytes\": {}, \"naive_bytes\": {}, \
             \"resync_ratio\": {:.4}, \"pause_ns\": {}}}{}\n",
            c.dirty_pct,
            c.rounds,
            c.base_bytes,
            c.delta_bytes,
            c.final_bytes,
            c.streamed(),
            c.naive_bytes,
            c.resync_ratio(),
            c.pause_ns,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    let json = format!(
        "{{\n  \"working_set_blocks\": {},\n  \"block_bytes\": {BLOCK},\n  \"rounds\": {},\n  \
         \"workload\": \"prefix memset of dirty% per block, halving each pre-copy round\",\n  \
         \"cells\": [\n{rows}  ],\n  \
         \"accept\": {{\"max_dirty_pct\": 25, \"max_resync_ratio\": 0.5}}\n}}\n",
        args.blocks, args.rounds,
    );
    let path = "BENCH_migrate.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("  → wrote {path}"),
        Err(e) => eprintln!("  ! could not write {path}: {e}"),
    }
}
