//! Design ablations beyond the paper's figures, for choices DESIGN.md calls
//! out:
//!
//! 1. **RPC fragment size** — RPC-Lib's fragmented record marking is what
//!    permits large transfers; tiny fragments cost real header/processing
//!    overhead.
//! 2. **RustyHermit's §3.1 virtio features** — the paper's contributed
//!    `CSUM`/`GUEST_CSUM`/`MRG_RXBUF` support, measured by comparing
//!    against the pre-paper ("legacy") Hermit driver.
//! 3. **Cubin compression** — image size vs. the decompression work the
//!    loader performs (the paper's compressed-fatbin support).
//! 4. **The paper's future work** (§5, §4.2 outlook): RustyHermit with TCP
//!    segmentation offload, and a vDPA data path without vm-exits.
//!
//! ```text
//! cargo run --release -p cricket-bench --bin ablation_design
//! ```

use cricket_bench::ablation_fragment_size;
use cricket_client::sim::simulated;
use cricket_client::{CubinBuilder, EnvConfig};
use proxy_apps::bandwidth::{run as bw_run, BandwidthConfig};

fn main() {
    // 1. Fragment size sweep on a 64 MiB H2D transfer (RustyHermit).
    println!("RPC fragment size vs 64 MiB H2D transfer time (RustyHermit):");
    for (frag, secs) in ablation_fragment_size(64 << 20, &[4 << 10, 64 << 10, 1 << 20, 8 << 20]) {
        println!("  fragment {:>8} KiB: {:>8.4} s", frag >> 10, secs);
    }

    // 2. The paper's virtio contributions to RustyHermit.
    println!("\nRustyHermit virtio features (paper §3.1) — H2D bandwidth:");
    for env in [EnvConfig::RustyHermitLegacy, EnvConfig::RustyHermit] {
        let (ctx, _s) = simulated(env);
        let r = bw_run(
            &ctx,
            &BandwidthConfig {
                bytes: 256 << 20,
                iterations: 1,
            },
        )
        .expect("bandwidth");
        println!(
            "  {:<26} H2D {:>8.1} MiB/s, D2H {:>8.1} MiB/s",
            env.label(),
            r.h2d_mib_s,
            r.d2h_mib_s
        );
    }

    // 4 is printed last; see below.
    // 3. Cubin compression: size on the wire vs. load time.
    println!("\nCubin compression (module with a large device-code section):");
    let code: Vec<u8> = b"SASS basic block; ld.global; st.global; bar.sync; "
        .iter()
        .cycle()
        .take(512 * 1024)
        .copied()
        .collect();
    for compressed in [false, true] {
        let image = CubinBuilder::new()
            .kernel("empty", &[])
            .code(&code)
            .build(compressed);
        let (ctx, setup) = simulated(EnvConfig::RustyHermit);
        let t0 = setup.seconds();
        let module = ctx.load_module(&image).expect("load");
        let load_secs = setup.seconds() - t0;
        drop(module);
        println!(
            "  compressed={:<5} image {:>7} KiB, cuModuleLoadData {:.4} s (virtual)",
            compressed,
            image.len() >> 10,
            load_secs
        );
    }

    // 4. Future work: Hermit + TSO, Hermit + vDPA.
    println!("\nPaper future work (§5): projected RustyHermit improvements:");
    for env in [
        EnvConfig::RustyHermit,
        EnvConfig::RustyHermitTso,
        EnvConfig::RustyHermitVdpa,
    ] {
        let (ctx, setup) = simulated(env);
        let r = bw_run(
            &ctx,
            &BandwidthConfig {
                bytes: 256 << 20,
                iterations: 1,
            },
        )
        .expect("bandwidth");
        // Per-call latency probe: 200 cudaGetDeviceCount calls.
        let t0 = setup.seconds();
        ctx.with_raw(|raw| {
            for _ in 0..200 {
                raw.device_count().expect("count");
            }
        });
        let per_call_us = (setup.seconds() - t0) / 200.0 * 1e6;
        println!(
            "  {:<28} H2D {:>8.1} MiB/s, D2H {:>8.1} MiB/s, {:>6.1} µs/call",
            env.label(),
            r.h2d_mib_s,
            r.d2h_mib_s,
            per_call_us
        );
    }
}
