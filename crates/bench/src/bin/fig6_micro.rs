//! Regenerate paper **Figure 6**: "Execution time of 100 000 calls of CUDA
//! APIs" — (a) cudaGetDeviceCount, (b) cudaMalloc+cudaFree, (c) kernel
//! launch — across the five configurations, plus the paper's C-vs-Rust
//! launch-path comparison.
//!
//! ```text
//! cargo run --release -p cricket-bench --bin fig6_micro             # 100 000 calls
//! cargo run --release -p cricket-bench --bin fig6_micro -- --calls 1000
//! ```

use cricket_bench::{fig6_micro, launch_c_vs_rust, Micro};

fn main() {
    let calls = parse_calls().unwrap_or(100_000);
    println!("Figure 6 — execution time of {calls} CUDA API calls\n");
    for which in [
        Micro::GetDeviceCount,
        Micro::MallocFree,
        Micro::KernelLaunch,
    ] {
        let s = fig6_micro(which, calls);
        print!("{}", s.render());
        let native = s.get("Rust").unwrap();
        println!(
            "  → per call: Rust {:.1} µs, Hermit {:.1} µs ({:.2}x), Linux VM {:.1} µs ({:.2}x)\n",
            native / calls as f64 * 1e6,
            s.get("Hermit").unwrap() / calls as f64 * 1e6,
            s.get("Hermit").unwrap() / native,
            s.get("Linux VM").unwrap() / calls as f64 * 1e6,
            s.get("Linux VM").unwrap() / native,
        );
    }

    let (c_us, rust_us) = launch_c_vs_rust(calls.min(20_000));
    println!(
        "launch path: C {c_us:.2} µs/call vs Rust {rust_us:.2} µs/call → Rust {:.1} % faster (paper: 6.3 %)",
        (c_us - rust_us) / c_us * 100.0
    );
}

fn parse_calls() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--calls" {
            return args.next()?.parse().ok();
        }
    }
    None
}
