//! Regenerate paper **Figure 7**: "Memory transfer bandwidth based on 10
//! averaged runs of bandwidthTest ... with 512 MiB of memory" — (a)
//! device-to-host, (b) host-to-device — plus the extra rows for the
//! ablation configurations, the copies-per-byte figure of merit for the
//! zero-copy RPC data path, and a `BENCH_fig7.json` snapshot.
//!
//! ```text
//! cargo run --release -p cricket-bench --bin fig7_bandwidth              # 512 MiB
//! cargo run --release -p cricket-bench --bin fig7_bandwidth -- --mib 64
//! ```

use cricket_bench::{fig7_bandwidth, fig7_copies_per_byte, Series};

/// Copies-per-byte measured on the seed revision (pre zero-copy data path):
/// arg encode into scratch, per-fragment record assembly, reply `Vec`
/// allocation + zero-fill, and the reply-tail `to_vec`.
const SEED_H2D_COPIES_PER_BYTE: f64 = 4.0;

fn main() {
    let mib = parse_mib().unwrap_or(512);
    let bytes = mib << 20;
    println!("Figure 7 — bandwidthTest with {mib} MiB transfers\n");
    let d2h = fig7_bandwidth(false, bytes, true);
    print!("{}", d2h.render());
    println!();
    let h2d = fig7_bandwidth(true, bytes, true);
    print!("{}", h2d.render());

    let native = h2d.get("Rust").unwrap();
    println!(
        "\n  → H2D retention vs native: Linux VM {:.0} % (paper ≥80 %), \
         Hermit {:.1} % (paper ≈9.8 % in one direction), Unikraft {:.1} %",
        h2d.get("Linux VM").unwrap() / native * 100.0,
        h2d.get("Hermit").unwrap() / native * 100.0,
        h2d.get("Unikraft").unwrap() / native * 100.0,
    );
    println!(
        "  → Linux VM without offloads: {:.1} MiB/s H2D (paper ≈923.9 MiB/s)",
        h2d.get("Linux VM (no offloads)").unwrap()
    );

    // Copy telemetry: measured on a fresh single transfer, small enough to
    // keep the run cheap but large enough to amortize header bytes.
    let copies = fig7_copies_per_byte(bytes.min(32 << 20));
    println!(
        "  → RPC-stack copies per transferred byte: H2D {:.2} (seed ≥{:.0}), D2H {:.2}",
        copies.h2d_copies_per_byte, SEED_H2D_COPIES_PER_BYTE, copies.d2h_copies_per_byte,
    );

    let json = render_json(mib, &d2h, &h2d, copies);
    let path = "BENCH_fig7.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("  → wrote {path}"),
        Err(e) => eprintln!("  ! could not write {path}: {e}"),
    }
}

/// Hand-rolled JSON (no serde in the offline build): bandwidth series plus
/// the before/after copies-per-byte trajectory.
fn render_json(
    mib: usize,
    d2h: &Series,
    h2d: &Series,
    copies: cricket_bench::CopyReport,
) -> String {
    let series = |s: &Series| -> String {
        let points: Vec<String> = s
            .points
            .iter()
            .map(|p| format!("{{\"config\": {:?}, \"mib_s\": {:.3}}}", p.config, p.value))
            .collect();
        format!("[{}]", points.join(", "))
    };
    format!(
        "{{\n  \"transfer_mib\": {mib},\n  \"d2h\": {},\n  \"h2d\": {},\n  \
         \"copies_per_byte\": {{\n    \"seed_h2d\": {SEED_H2D_COPIES_PER_BYTE:.1},\n    \
         \"h2d\": {:.4},\n    \"d2h\": {:.4}\n  }}\n}}\n",
        series(d2h),
        series(h2d),
        copies.h2d_copies_per_byte,
        copies.d2h_copies_per_byte,
    )
}

fn parse_mib() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--mib" {
            return args.next()?.parse().ok();
        }
    }
    None
}
