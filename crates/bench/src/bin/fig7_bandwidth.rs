//! Regenerate paper **Figure 7**: "Memory transfer bandwidth based on 10
//! averaged runs of bandwidthTest ... with 512 MiB of memory" — (a)
//! device-to-host, (b) host-to-device — plus the extra rows for the
//! ablation configurations, the copies-per-byte figure of merit for the
//! zero-copy RPC data path, the wire-efficiency extensions (N-lane
//! striped transfers, sparse payload encoding), and a `BENCH_fig7.json`
//! snapshot.
//!
//! ```text
//! cargo run --release -p cricket-bench --bin fig7_bandwidth              # 512 MiB
//! cargo run --release -p cricket-bench --bin fig7_bandwidth -- --mib 64
//! cargo run --release -p cricket-bench --bin fig7_bandwidth -- --smoke   # CI: 64 MiB, asserts, no JSON
//! ```

use cricket_bench::{fig7_bandwidth, fig7_copies_per_byte, fig7_sparse_wire, fig7_striped, Series};

/// Copies-per-byte measured on the seed revision (pre zero-copy data path):
/// arg encode into scratch, per-fragment record assembly, reply `Vec`
/// allocation + zero-fill, and the reply-tail `to_vec`.
const SEED_H2D_COPIES_PER_BYTE: f64 = 4.0;

/// Stripe-pool width for the striped rows.
const STRIPE_LANES: usize = 4;

/// Zero-page densities for the sparse-encode section.
const SPARSE_PCTS: [usize; 4] = [0, 50, 90, 100];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mib = parse_mib().unwrap_or(if smoke { 64 } else { 512 });
    let bytes = mib << 20;
    println!("Figure 7 — bandwidthTest with {mib} MiB transfers\n");
    let d2h = fig7_bandwidth(false, bytes, true);
    print!("{}", d2h.render());
    println!();
    let h2d = fig7_bandwidth(true, bytes, true);
    print!("{}", h2d.render());

    let native = h2d.get("Rust").unwrap();
    println!(
        "\n  → H2D retention vs native: Linux VM {:.0} % (paper ≥80 %), \
         Hermit {:.1} % (paper ≈9.8 % in one direction), Unikraft {:.1} %",
        h2d.get("Linux VM").unwrap() / native * 100.0,
        h2d.get("Hermit").unwrap() / native * 100.0,
        h2d.get("Unikraft").unwrap() / native * 100.0,
    );
    println!(
        "  → Linux VM without offloads: {:.1} MiB/s H2D (paper ≈923.9 MiB/s)",
        h2d.get("Linux VM (no offloads)").unwrap()
    );

    // Copy telemetry: measured on a fresh single transfer, small enough to
    // keep the run cheap but large enough to amortize header bytes.
    let copies = fig7_copies_per_byte(bytes.min(32 << 20));
    println!(
        "  → RPC-stack copies per transferred byte: H2D {:.2} (seed ≥{:.0}), D2H {:.2}",
        copies.h2d_copies_per_byte, SEED_H2D_COPIES_PER_BYTE, copies.d2h_copies_per_byte,
    );

    // Wire efficiency round 2: multi-connection striping. Measured on the
    // wire-bound Hermit configuration at the full transfer size.
    let striped = fig7_striped(bytes, STRIPE_LANES);
    println!(
        "  → {}-lane striping (Hermit, {mib} MiB): H2D {:.1} → {:.1} MiB/s ({:.2}x), \
         D2H {:.1} → {:.1} MiB/s ({:.2}x)",
        striped.lanes,
        striped.h2d_single_mib_s,
        striped.h2d_striped_mib_s,
        striped.h2d_speedup(),
        striped.d2h_single_mib_s,
        striped.d2h_striped_mib_s,
        striped.d2h_speedup(),
    );
    if bytes >= 64 << 20 {
        assert!(
            striped.h2d_speedup() >= 1.5 && striped.d2h_speedup() >= 1.5,
            "striping must beat a single connection ≥1.5x at ≥64 MiB: \
             h2d {:.2}x, d2h {:.2}x",
            striped.h2d_speedup(),
            striped.d2h_speedup(),
        );
    }

    // Sparse payload encoding: wire bytes by zero-page density. A smaller
    // transfer keeps the section cheap — the ratio is size-independent.
    let sparse = fig7_sparse_wire(bytes.min(32 << 20), &SPARSE_PCTS);
    for p in &sparse {
        println!(
            "  → sparse encode at {:>3} % zero pages: {} raw → {} wire bytes \
             ({:.2}x, {} pages elided)",
            p.zero_pct,
            p.raw_bytes,
            p.wire_bytes,
            p.raw_bytes as f64 / p.wire_bytes.max(1) as f64,
            p.pages_elided,
        );
    }
    let dense = sparse.iter().find(|p| p.zero_pct == 0).unwrap();
    let p90 = sparse.iter().find(|p| p.zero_pct == 90).unwrap();
    assert!(
        dense.wire_bytes as f64 <= dense.raw_bytes as f64 * 1.05,
        "fully-dense payloads must stay within 5% of raw: {dense:?}"
    );
    assert!(
        p90.wire_bytes * 5 <= p90.raw_bytes,
        "90%-zero payloads must cut wire bytes ≥5x: {p90:?}"
    );

    // Process-wide wire telemetry across everything this run transferred.
    let wire = oncrpc::telemetry::wire_snapshot();
    println!(
        "  → wire telemetry: {} raw → {} wire bytes ({:.3}x), \
         {} stripes sent, {} sparse pages elided",
        wire.raw_bytes,
        wire.wire_bytes,
        wire.compression(),
        wire.stripes_sent,
        wire.sparse_pages_elided,
    );

    if smoke {
        println!("  → smoke OK (striping ≥1.5x, sparse ≥5x at 90% zeros, dense ≤1.05x)");
        return;
    }

    let json = render_json(mib, &d2h, &h2d, copies, &striped, &sparse);
    let path = "BENCH_fig7.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("  → wrote {path}"),
        Err(e) => eprintln!("  ! could not write {path}: {e}"),
    }
}

/// Hand-rolled JSON (no serde in the offline build): bandwidth series plus
/// the before/after copies-per-byte trajectory, the striped-transfer rows,
/// and the sparse-encode section.
fn render_json(
    mib: usize,
    d2h: &Series,
    h2d: &Series,
    copies: cricket_bench::CopyReport,
    striped: &cricket_bench::StripeReport,
    sparse: &[cricket_bench::SparsePoint],
) -> String {
    let series = |s: &Series| -> String {
        let points: Vec<String> = s
            .points
            .iter()
            .map(|p| format!("{{\"config\": {:?}, \"mib_s\": {:.3}}}", p.config, p.value))
            .collect();
        format!("[{}]", points.join(", "))
    };
    let sparse_rows: Vec<String> = sparse
        .iter()
        .map(|p| {
            format!(
                "{{\"zero_pct\": {}, \"raw_bytes\": {}, \"wire_bytes\": {}, \
                 \"pages_elided\": {}}}",
                p.zero_pct, p.raw_bytes, p.wire_bytes, p.pages_elided
            )
        })
        .collect();
    format!(
        "{{\n  \"transfer_mib\": {mib},\n  \"d2h\": {},\n  \"h2d\": {},\n  \
         \"copies_per_byte\": {{\n    \"seed_h2d\": {SEED_H2D_COPIES_PER_BYTE:.1},\n    \
         \"h2d\": {:.4},\n    \"d2h\": {:.4}\n  }},\n  \
         \"striped\": {{\n    \"lanes\": {},\n    \"config\": \"Hermit\",\n    \
         \"h2d_single_mib_s\": {:.3},\n    \"h2d_striped_mib_s\": {:.3},\n    \
         \"h2d_speedup\": {:.3},\n    \"d2h_single_mib_s\": {:.3},\n    \
         \"d2h_striped_mib_s\": {:.3},\n    \"d2h_speedup\": {:.3}\n  }},\n  \
         \"sparse_encode\": [{}]\n}}\n",
        series(d2h),
        series(h2d),
        copies.h2d_copies_per_byte,
        copies.d2h_copies_per_byte,
        striped.lanes,
        striped.h2d_single_mib_s,
        striped.h2d_striped_mib_s,
        striped.h2d_speedup(),
        striped.d2h_single_mib_s,
        striped.d2h_striped_mib_s,
        striped.d2h_speedup(),
        sparse_rows.join(", "),
    )
}

fn parse_mib() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--mib" {
            return args.next()?.parse().ok();
        }
    }
    None
}
