//! Regenerate paper **Figure 7**: "Memory transfer bandwidth based on 10
//! averaged runs of bandwidthTest ... with 512 MiB of memory" — (a)
//! device-to-host, (b) host-to-device — plus the extra rows for the
//! ablation configurations.
//!
//! ```text
//! cargo run --release -p cricket-bench --bin fig7_bandwidth              # 512 MiB
//! cargo run --release -p cricket-bench --bin fig7_bandwidth -- --mib 64
//! ```

use cricket_bench::fig7_bandwidth;

fn main() {
    let mib = parse_mib().unwrap_or(512);
    let bytes = mib << 20;
    println!("Figure 7 — bandwidthTest with {mib} MiB transfers\n");
    let d2h = fig7_bandwidth(false, bytes, true);
    print!("{}", d2h.render());
    println!();
    let h2d = fig7_bandwidth(true, bytes, true);
    print!("{}", h2d.render());

    let native = h2d.get("Rust").unwrap();
    println!(
        "\n  → H2D retention vs native: Linux VM {:.0} % (paper ≥80 %), \
         Hermit {:.1} % (paper ≈9.8 % in one direction), Unikraft {:.1} %",
        h2d.get("Linux VM").unwrap() / native * 100.0,
        h2d.get("Hermit").unwrap() / native * 100.0,
        h2d.get("Unikraft").unwrap() / native * 100.0,
    );
    println!(
        "  → Linux VM without offloads: {:.1} MiB/s H2D (paper ≈923.9 MiB/s)",
        h2d.get("Linux VM (no offloads)").unwrap()
    );
}

fn parse_mib() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--mib" {
            return args.next()?.parse().ok();
        }
    }
    None
}
