//! Quantify the paper's motivation (§1, §5): unikernel fleets are far
//! denser than the GPU partitions static assignment can offer, so remote,
//! schedulable GPU sharing (Cricket) is required.
//!
//! ```text
//! cargo run --release -p cricket-bench --bin motivation
//! ```

use unikernel::boot::{instances_per_node, sharing_pressure, Footprint, A100_SRIOV_PARTITIONS};
use unikernel::GuestKind;

fn main() {
    // The paper's GPU node: 1.5 TiB memory, 4 GPUs.
    const NODE_GIB: u64 = 1536;
    const GPUS: u32 = 4;

    println!("Deployment footprint per guest (paper §1/§3.1 motivation):\n");
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>16} {:>16}",
        "guest",
        "image MiB",
        "boot ms",
        "min mem MiB",
        "syscall ns",
        "fit/1.5TiB node",
        "per GPU partition"
    );
    for kind in [
        GuestKind::LinuxVm,
        GuestKind::Unikraft,
        GuestKind::RustyHermit,
    ] {
        let fp = Footprint::of(kind);
        let fit = instances_per_node(kind, NODE_GIB);
        let pressure = sharing_pressure(kind, NODE_GIB, GPUS);
        println!(
            "{:<14} {:>10.0} {:>10.0} {:>12.0} {:>12.0} {:>16} {:>15.0}x",
            format!("{kind:?}"),
            fp.image_mib,
            fp.boot_ms,
            fp.min_memory_mib,
            fp.syscall_ns,
            fit,
            pressure
        );
    }
    println!(
        "\nStatic GPU assignment offers at most {GPUS} GPUs x {A100_SRIOV_PARTITIONS} SR-IOV \
         partitions = {} contexts per node;",
        GPUS * A100_SRIOV_PARTITIONS
    );
    println!(
        "a RustyHermit fleet outnumbers them {:.0}:1 — the paper's case for Cricket's\n\
         remote, schedulable GPU sharing.",
        sharing_pressure(GuestKind::RustyHermit, NODE_GIB, GPUS)
    );
}
