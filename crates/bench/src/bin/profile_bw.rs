//! Internal profiling helper: one environment, one direction, one size.
//! `profile_bw <env-index 0..6> <mib> [d2h]`
use cricket_client::sim::SimSetup;
use cricket_client::EnvConfig;
use proxy_apps::bandwidth::{run, BandwidthConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let idx: usize = args[1].parse().unwrap();
    let mib: usize = args[2].parse().unwrap();
    let envs = [
        EnvConfig::CNative,
        EnvConfig::RustNative,
        EnvConfig::LinuxVm,
        EnvConfig::Unikraft,
        EnvConfig::RustyHermit,
        EnvConfig::LinuxVmNoOffload,
        EnvConfig::RustyHermitLegacy,
    ];
    let env = envs[idx];
    let wall = std::time::Instant::now();
    let setup = SimSetup::new();
    let ctx = setup.context(env);
    let r = run(
        &ctx,
        &BandwidthConfig {
            bytes: mib << 20,
            iterations: 1,
        },
    )
    .unwrap();
    println!(
        "{:?} {} MiB: wall {:.2}s, h2d {:.0} MiB/s d2h {:.0} MiB/s",
        env,
        mib,
        wall.elapsed().as_secs_f64(),
        r.h2d_mib_s,
        r.d2h_mib_s
    );
}
