//! Connection-scaling snapshot: concurrent sessions served per server
//! thread, completion-driven reactor vs. the thread-per-connection
//! baseline at an equal thread budget — written to `BENCH_connscale.json`.
//!
//! ```text
//! cargo run --release -p cricket-bench --bin connscale
//! cargo run --release -p cricket-bench --bin connscale -- --sessions 80 --budget 8
//! cargo run --release -p cricket-bench --bin connscale -- --smoke
//! ```
//!
//! The baseline is [`ServeMode::PipelinedBounded`]: a fixed pool of
//! `budget` serving threads (libtirpc-style), each owning one connection
//! to completion — with two threads per served connection (reader +
//! reply writer), it can hold at most `budget` sessions concurrently.
//! The reactor serves *every* session from `workers + 3` threads (poller,
//! writer, accept, worker shards), chosen so its whole thread budget fits
//! inside the baseline's. The acceptance claim: **≥ 5× more concurrent
//! sessions at equal aggregate throughput** — every reactor session makes
//! progress, and ops/s stays within tolerance of the baseline.

use cricket_client::{CricketClient, Endpoint};
use cricket_server::{CricketServer, ServeMode, ServerBuilder};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tcp_client(addr: std::net::SocketAddr) -> CricketClient {
    CricketClient::connect(&Endpoint::Addr(addr)).expect("connect")
}

struct RunResult {
    sessions: usize,
    server_threads: usize,
    total_ops: u64,
    elapsed: Duration,
    min_session_ops: u64,
    inline_replies: u64,
    parked_calls: u64,
}

impl RunResult {
    fn ops_per_sec(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Serve in `mode`, open `sessions` concurrent connections, and drive them
/// round-robin from `drivers` client threads for `secs`. Every op is a
/// synchronous round trip; most are `Done`-class (`cudaGetDeviceCount`),
/// every 16th visit also runs a `Parked` malloc/free pair so the worker
/// path is exercised. Returns aggregate and per-session progress.
fn measure(
    mode: ServeMode,
    sessions: usize,
    drivers: usize,
    secs: f64,
    server_threads: usize,
) -> RunResult {
    let server = CricketServer::a100();
    let handle = ServerBuilder::new("127.0.0.1:0")
        .server(Arc::clone(&server))
        .mode(mode)
        .serve()
        .expect("serve");
    let addr = handle.addr();
    let t0 = oncrpc::telemetry::reactor_snapshot();

    // All connections are opened (and stay open) before measurement: the
    // baseline gets exactly as many sessions as it has serving slots, so
    // every one of its connections is actively served.
    let mut pool: Vec<Vec<CricketClient>> = (0..drivers).map(|_| Vec::new()).collect();
    for i in 0..sessions {
        pool[i % drivers].push(tcp_client(addr));
    }

    let deadline = Instant::now() + Duration::from_secs_f64(secs);
    let total = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let joins: Vec<_> = pool
        .into_iter()
        .map(|mut chunk| {
            let total = Arc::clone(&total);
            std::thread::spawn(move || {
                let mut per: Vec<u64> = vec![0; chunk.len()];
                let mut round = 0u64;
                while Instant::now() < deadline {
                    for (i, c) in chunk.iter_mut().enumerate() {
                        assert_eq!(c.device_count().expect("device_count"), 4);
                        per[i] += 1;
                        if round % 16 == 15 {
                            let p = c.malloc(1024).expect("malloc");
                            c.free(p).expect("free");
                            per[i] += 2;
                        }
                    }
                    round += 1;
                }
                let sum: u64 = per.iter().sum();
                total.fetch_add(sum, Ordering::Relaxed);
                per.into_iter().min().unwrap_or(0)
            })
        })
        .collect();
    let min_session_ops = joins
        .into_iter()
        .map(|j| j.join().expect("driver panicked"))
        .min()
        .unwrap_or(0);
    let elapsed = started.elapsed();
    handle.shutdown();
    let t1 = oncrpc::telemetry::reactor_snapshot().since(&t0);
    RunResult {
        sessions,
        server_threads,
        total_ops: total.load(Ordering::Relaxed),
        elapsed,
        min_session_ops,
        inline_replies: t1.inline_replies,
        parked_calls: t1.parked_calls,
    }
}

struct Args {
    sessions: usize,
    budget: usize,
    secs: f64,
    drivers: usize,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        sessions: 0,
        budget: 8,
        secs: 1.0,
        drivers: 4,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--sessions" => a.sessions = it.next().and_then(|v| v.parse().ok()).unwrap_or(0),
            "--budget" => a.budget = it.next().and_then(|v| v.parse().ok()).unwrap_or(8),
            "--secs" => a.secs = it.next().and_then(|v| v.parse().ok()).unwrap_or(1.0),
            "--drivers" => a.drivers = it.next().and_then(|v| v.parse().ok()).unwrap_or(4),
            "--smoke" => a.smoke = true,
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    if a.smoke {
        a.budget = a.budget.min(4);
        a.secs = a.secs.min(0.3);
        a.drivers = a.drivers.min(2);
    }
    if a.sessions == 0 {
        a.sessions = a.budget * 5;
    }
    a
}

fn main() {
    let args = parse_args();
    // Reactor thread budget: poller + writer + accept + worker shards must
    // fit inside the baseline's serving pool alone (which additionally
    // spends a reply-writer thread per served connection).
    let workers = args.budget.saturating_sub(3).max(1);
    println!(
        "Connection scaling — thread budget {}, baseline {} sessions vs reactor {} sessions\n",
        args.budget, args.budget, args.sessions
    );

    let base = measure(
        ServeMode::PipelinedBounded {
            max_conns: args.budget,
        },
        args.budget,
        args.drivers,
        args.secs,
        args.budget * 2 + 1,
    );
    let reac = measure(
        ServeMode::Reactor { workers },
        args.sessions,
        args.drivers,
        args.secs,
        workers + 3,
    );

    let session_ratio = reac.sessions as f64 / base.sessions as f64;
    let throughput_ratio = reac.ops_per_sec() / base.ops_per_sec().max(1e-9);
    println!(
        "  baseline (pipelined pool of {}): {:>4} sessions, {:>9.0} ops/s ({} threads)",
        args.budget,
        base.sessions,
        base.ops_per_sec(),
        base.server_threads,
    );
    println!(
        "  reactor  ({workers} worker shards): {:>4} sessions, {:>9.0} ops/s ({} threads, {} inline / {} parked)",
        reac.sessions,
        reac.ops_per_sec(),
        reac.server_threads,
        reac.inline_replies,
        reac.parked_calls,
    );
    println!(
        "\n  → {session_ratio:.1}x the concurrent sessions at {:.2}x the aggregate throughput",
        throughput_ratio
    );

    // Every reactor session made progress — "concurrent" means served, not
    // merely accepted (the baseline physically cannot serve beyond its
    // pool, which is the point of the comparison).
    assert!(
        reac.min_session_ops > 0,
        "a reactor session was starved (min ops 0 across {} sessions)",
        reac.sessions
    );
    assert!(base.min_session_ops > 0, "baseline session starved");
    assert!(
        reac.inline_replies > 0 && reac.parked_calls > 0,
        "classification did not split Done/Parked: {} inline, {} parked",
        reac.inline_replies,
        reac.parked_calls
    );
    assert!(
        session_ratio >= 5.0,
        "acceptance: need ≥5x sessions, got {session_ratio:.2}x"
    );
    // "Equal aggregate throughput": the reactor multiplexes 5x the
    // sessions without giving up the baseline's ops/s (10% tolerance for
    // scheduler noise on small boxes; smoke runs are looser still).
    let floor = if args.smoke { 0.5 } else { 0.9 };
    assert!(
        throughput_ratio >= floor,
        "acceptance: reactor throughput fell to {throughput_ratio:.2}x of baseline (floor {floor})"
    );

    let json = format!(
        "{{\n  \"thread_budget\": {},\n  \"drivers\": {},\n  \"secs\": {},\n  \
         \"baseline\": {{\"mode\": \"pipelined_bounded\", \"sessions\": {}, \"server_threads\": {}, \
         \"total_ops\": {}, \"ops_per_sec\": {:.0}, \"min_session_ops\": {}}},\n  \
         \"reactor\": {{\"mode\": \"reactor\", \"workers\": {workers}, \"sessions\": {}, \
         \"server_threads\": {}, \"total_ops\": {}, \"ops_per_sec\": {:.0}, \
         \"min_session_ops\": {}, \"inline_replies\": {}, \"parked_calls\": {}}},\n  \
         \"session_ratio\": {session_ratio:.4},\n  \"throughput_ratio\": {throughput_ratio:.4}\n}}\n",
        args.budget,
        args.drivers,
        args.secs,
        base.sessions,
        base.server_threads,
        base.total_ops,
        base.ops_per_sec(),
        base.min_session_ops,
        reac.sessions,
        reac.server_threads,
        reac.total_ops,
        reac.ops_per_sec(),
        reac.min_session_ops,
        reac.inline_replies,
        reac.parked_calls,
    );
    if args.smoke {
        println!("\n  (smoke run: BENCH_connscale.json left untouched)");
    } else {
        let path = "BENCH_connscale.json";
        match std::fs::write(path, &json) {
            Ok(()) => println!("\n  → wrote {path}"),
            Err(e) => eprintln!("\n  ! could not write {path}: {e}"),
        }
    }
}
