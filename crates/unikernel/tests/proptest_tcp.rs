//! Property tests on the functional guest TCP/virtio data path: arbitrary
//! payloads must survive segmentation → (optional host TSO split) →
//! checksum verification → reassembly, and corruption must always be
//! detected when software verification is active.

use proptest::prelude::*;
use unikernel::features::VirtioFeatures;
use unikernel::tcp::{handshake, TcpEndpoint};
use unikernel::virtio_net::{guest_tx, host_segment, GSO_MAX};

fn carry(data: &[u8], mtu: usize, sw_csum: bool, tso: bool) -> Vec<u8> {
    let client_mtu = if tso { GSO_MAX + 40 } else { mtu };
    let mut tx = TcpEndpoint::new(client_mtu, sw_csum, sw_csum);
    let mut rx = TcpEndpoint::new(mtu, sw_csum, sw_csum);
    handshake(&mut tx, &mut rx);
    let features = if tso {
        VirtioFeatures::qemu_device()
    } else if sw_csum {
        VirtioFeatures::MRG_RXBUF
    } else {
        VirtioFeatures::CSUM | VirtioFeatures::GUEST_CSUM
    };
    let supers = tx.send(data);
    for frame in guest_tx(features, supers, mtu.saturating_sub(40).max(1)) {
        for seg in host_segment(frame) {
            assert!(rx.receive(&seg), "in-order valid segment must be accepted");
        }
    }
    rx.read(usize::MAX)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn payloads_survive_software_path(
        data in proptest::collection::vec(any::<u8>(), 0..60_000),
        mtu in 100usize..9_500,
    ) {
        prop_assert_eq!(carry(&data, mtu, true, false), data);
    }

    #[test]
    fn payloads_survive_tso_path(
        data in proptest::collection::vec(any::<u8>(), 0..200_000),
    ) {
        prop_assert_eq!(carry(&data, 9000, false, true), data);
    }

    #[test]
    fn payloads_survive_offloaded_csum_path(
        data in proptest::collection::vec(any::<u8>(), 0..60_000),
    ) {
        prop_assert_eq!(carry(&data, 9000, false, false), data);
    }

    #[test]
    fn single_bitflips_always_detected_by_software_verify(
        data in proptest::collection::vec(any::<u8>(), 16..5_000),
        flip_byte_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let mut tx = TcpEndpoint::new(9000, true, true);
        let mut rx = TcpEndpoint::new(9000, true, true);
        handshake(&mut tx, &mut rx);
        let mut segs = tx.send(&data);
        let seg = &mut segs[0];
        let idx = ((seg.payload.len() - 1) as f64 * flip_byte_frac) as usize;
        seg.payload[idx] ^= 1 << flip_bit;
        prop_assert!(!rx.receive(seg), "corrupted segment must be dropped");
        prop_assert_eq!(rx.available(), 0);
    }

    #[test]
    fn sequence_numbers_are_contiguous(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..5_000), 1..10),
    ) {
        let mut tx = TcpEndpoint::new(9000, true, true);
        let mut rx = TcpEndpoint::new(9000, true, true);
        handshake(&mut tx, &mut rx);
        let mut expected_seq = tx.snd_nxt;
        let mut total = 0usize;
        for chunk in &chunks {
            for seg in tx.send(chunk) {
                prop_assert_eq!(seg.header.seq, expected_seq);
                expected_seq = expected_seq.wrapping_add(seg.payload.len() as u32);
                prop_assert!(rx.receive(&seg));
            }
            total += chunk.len();
        }
        prop_assert_eq!(rx.available(), total);
        let all: Vec<u8> = chunks.concat();
        prop_assert_eq!(rx.read(usize::MAX), all);
    }
}
