//! Virtio-net frame layer: `virtio_net_hdr`, host-side TSO splitting, and
//! merged receive buffers.
//!
//! With TSO negotiated, the guest hands the device one super-frame of up to
//! 64 KiB with `gso_size` set; the *host* (vhost/NIC) splits it into wire
//! segments — that splitting really happens here, in [`host_segment`].
//! On receive, with `MRG_RXBUF` the device writes a large packet across
//! several guest buffers ([`deliver_mrg`]); without it the guest must post
//! worst-case buffers and copy once more ([`deliver_fixed`]).

use crate::features::VirtioFeatures;
use crate::tcp::{SegHeader, Segment};
use simnet::checksum::internet_checksum;
use simnet::segment::TSO_SEGMENT;

/// The `virtio_net_hdr` prepended to every frame on the virtqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtioNetHdr {
    /// Checksum must be completed by the device (`VIRTIO_NET_HDR_F_NEEDS_CSUM`).
    pub needs_csum: bool,
    /// GSO segment size (0 = no GSO).
    pub gso_size: u16,
    /// Number of merged buffers this packet spans (RX with MRG_RXBUF).
    pub num_buffers: u16,
}

/// One frame as it crosses the virtqueue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Virtio header.
    pub hdr: VirtioNetHdr,
    /// The TCP segment (super-segment when GSO).
    pub segment: Segment,
}

/// Guest TX: wrap TCP segments into virtqueue frames according to the
/// negotiated features. With TSO the caller should have produced
/// super-segments (MSS up to 64 KiB); this function marks them for GSO.
pub fn guest_tx(features: VirtioFeatures, segments: Vec<Segment>, wire_mss: usize) -> Vec<Frame> {
    let tso = features.contains(VirtioFeatures::HOST_TSO4);
    let csum = features.contains(VirtioFeatures::CSUM);
    segments
        .into_iter()
        .map(|segment| Frame {
            hdr: VirtioNetHdr {
                needs_csum: csum,
                gso_size: if tso && segment.payload.len() > wire_mss {
                    wire_mss as u16
                } else {
                    0
                },
                num_buffers: 1,
            },
            segment,
        })
        .collect()
}

/// Host side: finalize a frame for the wire — complete deferred checksums
/// and split GSO super-frames into MSS-sized wire segments. This is the
/// work TSO/checksum offload moves off the guest's vCPU.
pub fn host_segment(frame: Frame) -> Vec<Segment> {
    let Frame { hdr, segment } = frame;
    let finalize = |mut seg: Segment| -> Segment {
        if hdr.needs_csum {
            seg.header.checksum = seg.expected_checksum();
            seg.header.csum_offloaded = false; // now valid on the wire
        }
        seg
    };
    if hdr.gso_size == 0 || segment.payload.len() <= hdr.gso_size as usize {
        return vec![finalize(segment)];
    }
    let mss = hdr.gso_size as usize;
    let mut out = Vec::with_capacity(segment.payload.len().div_ceil(mss));
    let mut seq = segment.header.seq;
    for chunk in segment.payload.chunks(mss) {
        let seg = Segment {
            header: SegHeader {
                seq,
                ack: segment.header.ack,
                syn: false,
                ack_flag: segment.header.ack_flag,
                checksum: 0,
                csum_offloaded: false,
            },
            payload: chunk.to_vec(),
        };
        seq = seq.wrapping_add(chunk.len() as u32);
        let mut seg = seg;
        seg.header.checksum = seg.expected_checksum();
        out.push(seg);
    }
    out
}

/// Largest super-segment the guest may hand down with TSO.
pub const GSO_MAX: usize = TSO_SEGMENT;

/// RX with merged buffers: the packet is written across as many `buf_size`
/// buffers as needed; returns (reassembled bytes, buffers consumed, copies
/// performed). One copy per buffer.
pub fn deliver_mrg(payload: &[u8], buf_size: usize) -> (Vec<u8>, usize, usize) {
    let buffers = payload.len().div_ceil(buf_size).max(1);
    (payload.to_vec(), buffers, buffers)
}

/// RX without merged buffers: each packet needs one worst-case buffer and an
/// extra linearizing copy into the stack (2 copies total).
pub fn deliver_fixed(payload: &[u8]) -> (Vec<u8>, usize, usize) {
    let staged = payload.to_vec(); // copy 1: into the posted buffer
    (staged.clone(), 1, 2) // copy 2: linearize into the stack
}

/// Device-side checksum validation for RX when the guest negotiated
/// `GUEST_CSUM` (the device marks the packet valid; guest skips verify).
pub fn device_validates(seg: &Segment) -> bool {
    if seg.header.csum_offloaded {
        // Sender deferred; device computed it before the wire in
        // host_segment, so a still-offloaded segment only appears on
        // loopback paths — accept it.
        true
    } else {
        seg.verify()
    }
}

/// Convenience: full checksum for raw bytes (used by tests comparing guest
/// and device checksums).
pub fn raw_checksum(bytes: &[u8]) -> u16 {
    internet_checksum(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{handshake, TcpEndpoint};

    fn established_pair(mtu: usize, sw_csum: bool) -> (TcpEndpoint, TcpEndpoint) {
        let mut c = TcpEndpoint::new(mtu, sw_csum, sw_csum);
        let mut s = TcpEndpoint::new(mtu, sw_csum, sw_csum);
        handshake(&mut c, &mut s);
        (c, s)
    }

    #[test]
    fn tso_path_splits_on_host() {
        // Guest with TSO: TCP layer uses a 64 KiB MSS; host splits to 8960.
        let mut guest = TcpEndpoint::new(GSO_MAX + 40, false, false);
        let mut peer = TcpEndpoint::new(9000, true, true);
        handshake(&mut guest, &mut peer);
        let data = vec![0xa5u8; 100_000];
        let supers = guest.send(&data);
        assert_eq!(supers.len(), 2, "two 64 KiB super-segments");
        let frames = guest_tx(VirtioFeatures::qemu_device(), supers, 9000 - 40);
        let mut wire: Vec<Segment> = Vec::new();
        for f in frames {
            wire.extend(host_segment(f));
        }
        assert_eq!(wire.len(), 100_000usize.div_ceil(8960));
        // Receiver (software verify) accepts every host-built segment.
        for seg in &wire {
            assert!(seg.verify(), "host-computed checksum must verify");
            assert!(peer.receive(seg));
        }
        assert_eq!(peer.read(usize::MAX), data);
    }

    #[test]
    fn non_tso_guest_segments_itself() {
        let (mut c, _s) = established_pair(9000, true);
        let data = vec![1u8; 50_000];
        let segs = c.send(&data);
        let frames = guest_tx(VirtioFeatures::MRG_RXBUF, segs, 8960);
        // No GSO marking, no device checksum work.
        assert!(frames
            .iter()
            .all(|f| f.hdr.gso_size == 0 && !f.hdr.needs_csum));
        let wire: Vec<Segment> = frames.into_iter().flat_map(host_segment).collect();
        assert_eq!(wire.len(), 50_000usize.div_ceil(8960));
        assert!(wire.iter().all(|s| s.verify()));
    }

    #[test]
    fn csum_offload_defers_to_host() {
        let (mut c, _s) = established_pair(9000, false);
        let segs = c.send(b"needs checksum");
        assert!(segs[0].header.csum_offloaded);
        let frames = guest_tx(VirtioFeatures::CSUM, segs, 8960);
        assert!(frames[0].hdr.needs_csum);
        let wire = host_segment(frames[0].clone());
        assert!(!wire[0].header.csum_offloaded);
        assert!(wire[0].verify());
    }

    #[test]
    fn mrg_rxbuf_uses_fewer_copies_for_big_packets() {
        let payload = vec![3u8; 60_000];
        let (out_m, bufs_m, copies_m) = deliver_mrg(&payload, 4096);
        let (out_f, bufs_f, copies_f) = deliver_fixed(&payload);
        assert_eq!(out_m, payload);
        assert_eq!(out_f, payload);
        assert_eq!(bufs_m, 60_000usize.div_ceil(4096));
        assert_eq!(bufs_f, 1);
        // Mrg: one copy per buffer but no linearization; fixed: 2 full copies.
        assert_eq!(copies_m, bufs_m);
        assert_eq!(copies_f, 2);
    }

    #[test]
    fn device_validation_detects_corruption() {
        let (mut c, _s) = established_pair(9000, true);
        let mut segs = c.send(b"payload under test");
        assert!(device_validates(&segs[0]));
        segs[0].payload[0] ^= 1;
        assert!(!device_validates(&segs[0]));
    }
}
