//! Deployment-footprint model: boot time, image size, memory floor.
//!
//! The paper's motivation rests on deployment density: unikernels are
//! "customizable, lightweight, and robust" (§1), RustyHermit showed "lower
//! memory footprint, disk overhead, and system call latencies when compared
//! to a Linux VM" (§3.1 citing [13]), and the §5 conclusion argues that
//! *"Because the use case of unikernels involves using many unikernels to
//! run isolated applications, mapping entire GPUs to individual unikernels
//! is not feasible"* — the A100 offers at most **7** SR-IOV partitions
//! (§1 citing [17]).
//!
//! This module quantifies that argument with literature-scale footprint
//! numbers per guest type, so the `motivation` harness can print how many
//! instances fit the paper's GPU node against how many GPU partitions exist.

use crate::guest::GuestKind;

/// Static deployment footprint of one guest instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Footprint {
    /// Kernel+app image size on disk, MiB.
    pub image_mib: f64,
    /// Cold boot to application start, milliseconds.
    pub boot_ms: f64,
    /// Minimum practical guest memory, MiB.
    pub min_memory_mib: f64,
    /// System-call / kernel-entry latency, nanoseconds.
    pub syscall_ns: f64,
}

impl Footprint {
    /// Footprint table per guest kind. Sources: HermitCore/RustyHermit
    /// papers (MiB-scale images, sub-100 ms boots, ~100 ns "syscalls"),
    /// Unikraft EuroSys'21 (ms-scale boots, ~1 MiB images), typical cloud
    /// Fedora images for the VM row.
    pub fn of(kind: GuestKind) -> Self {
        match kind {
            GuestKind::NativeLinux => Footprint {
                image_mib: 0.0, // no guest image: the host itself
                boot_ms: 0.0,
                min_memory_mib: 0.0,
                syscall_ns: 1_300.0,
            },
            GuestKind::LinuxVm => Footprint {
                image_mib: 350.0,
                boot_ms: 8_000.0,
                min_memory_mib: 512.0,
                syscall_ns: 1_300.0,
            },
            GuestKind::Unikraft => Footprint {
                image_mib: 2.0,
                boot_ms: 40.0,
                min_memory_mib: 16.0,
                syscall_ns: 200.0,
            },
            GuestKind::RustyHermit | GuestKind::RustyHermitLegacy | GuestKind::RustyHermitTso => {
                Footprint {
                    image_mib: 4.0,
                    boot_ms: 60.0,
                    min_memory_mib: 32.0,
                    syscall_ns: 150.0,
                }
            }
        }
    }
}

/// SR-IOV partitions an A100 supports (paper §1: "the A100 GPU supports
/// partitioning using SR-IOV, but only allows for seven such partitions").
pub const A100_SRIOV_PARTITIONS: u32 = 7;

/// How many instances of `kind` fit into `node_memory_gib` of host memory
/// (ignoring CPU; the memory floor is the binding constraint for unikernel
/// fleets).
pub fn instances_per_node(kind: GuestKind, node_memory_gib: u64) -> u64 {
    let fp = Footprint::of(kind);
    if fp.min_memory_mib == 0.0 {
        return 1; // native: the host runs one OS
    }
    ((node_memory_gib * 1024) as f64 / fp.min_memory_mib) as u64
}

/// The paper's density argument: instances per node divided by the GPU
/// partitions available with static assignment. A ratio ≫ 1 means static
/// GPU assignment cannot serve a unikernel fleet — Cricket-style sharing is
/// required.
pub fn sharing_pressure(kind: GuestKind, node_memory_gib: u64, gpus_per_node: u32) -> f64 {
    let instances = instances_per_node(kind, node_memory_gib) as f64;
    let partitions = (gpus_per_node * A100_SRIOV_PARTITIONS) as f64;
    instances / partitions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unikernels_are_far_lighter_than_vms() {
        let vm = Footprint::of(GuestKind::LinuxVm);
        let hermit = Footprint::of(GuestKind::RustyHermit);
        let unikraft = Footprint::of(GuestKind::Unikraft);
        assert!(hermit.image_mib < vm.image_mib / 10.0);
        assert!(unikraft.image_mib < vm.image_mib / 10.0);
        assert!(hermit.boot_ms < vm.boot_ms / 10.0);
        assert!(hermit.min_memory_mib < vm.min_memory_mib / 4.0);
        assert!(hermit.syscall_ns < vm.syscall_ns);
    }

    #[test]
    fn density_on_the_papers_gpu_node() {
        // The paper's GPU node has 1.5 TiB of memory and 4 GPUs.
        let hermit = instances_per_node(GuestKind::RustyHermit, 1536);
        let vms = instances_per_node(GuestKind::LinuxVm, 1536);
        assert!(hermit > 10_000, "hermit fleet size {hermit}");
        assert!(vms < 4_000, "vm fleet size {vms}");
        assert!(hermit > 10 * vms);
    }

    #[test]
    fn sharing_pressure_motivates_cricket() {
        // With 4 GPUs × 7 partitions = 28 static assignments against tens of
        // thousands of unikernels, static assignment is infeasible.
        let pressure = sharing_pressure(GuestKind::RustyHermit, 1536, 4);
        assert!(
            pressure > 100.0,
            "unikernel fleets need >100x more GPU contexts than SR-IOV offers ({pressure:.0}x)"
        );
        // For classic VMs the pressure is far lower (though still > 1).
        let vm_pressure = sharing_pressure(GuestKind::LinuxVm, 1536, 4);
        assert!(vm_pressure < pressure / 10.0);
    }

    #[test]
    fn native_is_one_instance() {
        assert_eq!(instances_per_node(GuestKind::NativeLinux, 1536), 1);
    }
}
