//! Per-environment guests: negotiated features + calibrated cost tables.
//!
//! Calibration (see DESIGN.md §4 for the paper anchors):
//!
//! * Fig. 6 shape — per small RPC round trip: native ≈ 27 µs, RustyHermit
//!   ≈ 2.0–2.2× native (smallest virtualized overhead), Unikraft slightly
//!   above Hermit, Linux VM the slowest.
//! * Fig. 7 shape — bulk H2D: native near wire speed (single-core bound),
//!   Linux VM ≥ 80 % of native, RustyHermit ≈ 10 % in the worse direction,
//!   Unikraft slightly below Hermit; the §4.2 ablation (Linux VM with
//!   TSO/csum/SG off) ≈ 920 MiB/s.
//!
//! The per-event constants are chosen from public measurements of the
//! mechanisms (KVM vm-exit + vhost notify ≈ 10 µs; Linux syscall ≈ 1.3 µs;
//! single-address-space "syscall" = function call ≈ 0.1–0.2 µs; guest
//! context switch 1–3 µs) and then nudged within plausible ranges so the
//! emergent end-to-end numbers match the anchors.

use crate::features::{negotiate, VirtioFeatures};
use simnet::virtio::VirtqueueConfig;
use simnet::GuestCosts;

/// The five client environments of the paper's Table 1 (the C and Rust
/// native configurations share the `NativeLinux` guest; their difference is
/// client-library behavior, modeled in `cricket-client`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuestKind {
    /// Bare-metal Rocky Linux (the paper's "C" and "Rust" rows).
    NativeLinux,
    /// Fedora VM under QEMU/KVM with virtio-net.
    LinuxVm,
    /// Unikraft unikernel (lwIP).
    Unikraft,
    /// RustyHermit unikernel (smoltcp), with the paper's virtio additions.
    RustyHermit,
    /// RustyHermit before the paper's §3.1 improvements (ablation).
    RustyHermitLegacy,
    /// RustyHermit with TCP segmentation offload — the paper's future work
    /// ("there are ongoing efforts to support TCP segmentation offloading,
    /// which we expect to increase performance significantly", §5).
    RustyHermitTso,
}

impl GuestKind {
    /// All evaluated kinds in Table 1 order (legacy Hermit excluded).
    pub fn table1() -> [GuestKind; 4] {
        [
            GuestKind::NativeLinux,
            GuestKind::LinuxVm,
            GuestKind::Unikraft,
            GuestKind::RustyHermit,
        ]
    }
}

/// A fully configured guest environment.
#[derive(Debug, Clone, PartialEq)]
pub struct Guest {
    /// Which environment this is.
    pub kind: GuestKind,
    /// Features negotiated with the (QEMU) device.
    pub features: VirtioFeatures,
    /// The cost table the path model consumes.
    pub costs: GuestCosts,
}

/// KVM vm-exit + host-side virtio notify handling + guest re-entry.
const VMEXIT_NS: u64 = 12_500;

impl Guest {
    /// Build a guest of `kind` with an IP MTU of 9000 (the paper's setup).
    pub fn new(kind: GuestKind) -> Self {
        Self::with_mtu(kind, 9000)
    }

    /// Build a guest with an explicit MTU.
    pub fn with_mtu(kind: GuestKind, mtu: usize) -> Self {
        let device = VirtioFeatures::qemu_device();
        match kind {
            GuestKind::NativeLinux => {
                let mut costs = GuestCosts::native_linux();
                costs.mtu = mtu;
                Self {
                    kind,
                    // Native hardware offers the same offload set.
                    features: VirtioFeatures::linux_driver(),
                    costs,
                }
            }
            GuestKind::LinuxVm => {
                let features = negotiate(device, VirtioFeatures::linux_driver());
                let costs = GuestCosts {
                    name: "linux-vm".into(),
                    virtualized: true,
                    // Full Linux guest: real syscalls, scheduler wakeups,
                    // softirq RX path — the deepest stack of the four.
                    syscall_ns: 1_300,
                    context_switch_ns: 2_800,
                    vmexit_ns: VMEXIT_NS,
                    tx_fixed_ns: 5_000,
                    rx_fixed_ns: 7_000,
                    tx_seg_ns: 1_000,
                    rx_seg_ns: 1_200,
                    copy_ns_per_byte: 0.05,
                    csum_ns_per_byte: 0.40,
                    // vhost zero-copy TX: with scatter-gather the host
                    // transmits guest pages directly (no extra copy).
                    tx_extra_copies: 0,
                    virtq: VirtqueueConfig {
                        ring_size: 256,
                        kick_batch: 4,
                        mrg_rxbuf: features.contains(VirtioFeatures::MRG_RXBUF),
                    },
                    rx_coalesce: 16,
                    rx_gro: true,
                    offloads: features.offloads(),
                    mtu,
                };
                Self {
                    kind,
                    features,
                    costs,
                }
            }
            GuestKind::Unikraft => {
                let features = negotiate(device, VirtioFeatures::unikraft_driver());
                let costs = GuestCosts {
                    name: "unikraft".into(),
                    virtualized: true,
                    // Single address space: "syscalls" are function calls
                    // into lib-lwip; no guest context switches.
                    syscall_ns: 200,
                    context_switch_ns: 0,
                    vmexit_ns: VMEXIT_NS,
                    tx_fixed_ns: 4_500,
                    rx_fixed_ns: 5_500,
                    // lwIP's per-segment pbuf handling is heavier than
                    // Linux's skb fast path.
                    tx_seg_ns: 3_000,
                    rx_seg_ns: 3_500,
                    copy_ns_per_byte: 0.05,
                    csum_ns_per_byte: 0.40,
                    tx_extra_copies: 1, // no scatter-gather: linearize
                    virtq: VirtqueueConfig {
                        ring_size: 256,
                        kick_batch: 2,
                        mrg_rxbuf: features.contains(VirtioFeatures::MRG_RXBUF),
                    },
                    rx_coalesce: 4,
                    rx_gro: false,
                    offloads: features.offloads(),
                    mtu,
                };
                Self {
                    kind,
                    features,
                    costs,
                }
            }
            GuestKind::RustyHermit => {
                let features = negotiate(device, VirtioFeatures::hermit_driver());
                let costs = GuestCosts {
                    name: "rustyhermit".into(),
                    virtualized: true,
                    syscall_ns: 150,
                    context_switch_ns: 0,
                    vmexit_ns: VMEXIT_NS,
                    tx_fixed_ns: 3_500,
                    rx_fixed_ns: 4_500,
                    // smoltcp per-segment work; reduced internal copies per
                    // the paper's §3.1 ("reduced the amount of internal
                    // copies") reflected in tx_extra_copies = 1 despite no
                    // scatter-gather (copy_ns counts it once).
                    tx_seg_ns: 3_000,
                    rx_seg_ns: 3_000,
                    copy_ns_per_byte: 0.05,
                    csum_ns_per_byte: 0.40,
                    tx_extra_copies: 1,
                    virtq: VirtqueueConfig {
                        ring_size: 256,
                        kick_batch: 2,
                        mrg_rxbuf: features.contains(VirtioFeatures::MRG_RXBUF),
                    },
                    rx_coalesce: 4,
                    rx_gro: false,
                    offloads: features.offloads(),
                    mtu,
                };
                Self {
                    kind,
                    features,
                    costs,
                }
            }
            GuestKind::RustyHermitTso => {
                let mut g = Self::with_mtu(GuestKind::RustyHermit, mtu);
                g.kind = GuestKind::RustyHermitTso;
                g.features = g.features | VirtioFeatures::HOST_TSO4;
                g.costs.name = "rustyhermit-tso".into();
                g.costs.offloads.tso = true;
                // TSO batches kicks naturally: one descriptor chain per
                // 64 KiB super-segment.
                g.costs.virtq.kick_batch = 4;
                g
            }
            GuestKind::RustyHermitLegacy => {
                let mut g = Self::with_mtu(GuestKind::RustyHermit, mtu);
                let features = negotiate(device, VirtioFeatures::hermit_legacy_driver());
                g.kind = GuestKind::RustyHermitLegacy;
                g.features = features;
                g.costs.name = "rustyhermit-legacy".into();
                g.costs.offloads = features.offloads();
                g.costs.virtq.mrg_rxbuf = false;
                // Pre-paper driver also made more internal copies.
                g.costs.tx_extra_copies = 2;
                g
            }
        }
    }

    /// The §4.2 outlook: vDPA "removes the virtualization overhead from the
    /// data path by allowing direct access to hardware queues" — kicks
    /// become doorbell writes to hardware instead of vm-exits.
    pub fn with_vdpa(mut self) -> Self {
        assert!(
            self.costs.virtualized,
            "vDPA only applies to virtualized guests"
        );
        self.costs.name = format!("{}+vdpa", self.costs.name);
        // A doorbell write to a hardware queue costs ~0.5 µs instead of a
        // ~12.5 µs trap into the hypervisor.
        self.costs.vmexit_ns = 500;
        self
    }

    /// The paper's §4.2 ablation: Linux VM with TSO, TX checksum offload
    /// and scatter-gather disabled.
    pub fn linux_vm_offloads_disabled() -> Self {
        let mut g = Self::new(GuestKind::LinuxVm);
        g.costs.name = "linux-vm-no-offload".into();
        g.costs.offloads.tso = false;
        g.costs.offloads.tx_csum = false;
        g.costs.offloads.scatter_gather = false;
        // vhost zero-copy TX requires scatter-gather; the copy returns.
        g.costs.tx_extra_copies = 1;
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NetPath;

    fn round_ns(kind: GuestKind) -> u64 {
        let g = Guest::new(kind);
        NetPath::to_gpu_node(g.costs)
            .rpc_round(48, 32, 8_000)
            .total_ns()
    }

    #[test]
    fn fig6_latency_ordering_matches_paper() {
        let native = round_ns(GuestKind::NativeLinux);
        let hermit = round_ns(GuestKind::RustyHermit);
        let unikraft = round_ns(GuestKind::Unikraft);
        let vm = round_ns(GuestKind::LinuxVm);
        // "the Linux VM requires the most time for all evaluated APIs,
        //  while RustyHermit shows the smallest overhead, but still requires
        //  more than double the time of the native executions"
        assert!(
            hermit < unikraft && unikraft < vm,
            "hermit={hermit} unikraft={unikraft} vm={vm}"
        );
        assert!(
            hermit > 2 * native,
            "hermit {hermit} must exceed 2x native {native}"
        );
        assert!(
            vm < 4 * native,
            "vm {vm} implausibly slow vs native {native}"
        );
    }

    #[test]
    fn fig7_bandwidth_shape_matches_paper() {
        let bw = |g: Guest| NetPath::to_gpu_node(g.costs).bulk_bandwidth_bps(512 << 20, true);
        let native = bw(Guest::new(GuestKind::NativeLinux));
        let vm = bw(Guest::new(GuestKind::LinuxVm));
        let hermit = bw(Guest::new(GuestKind::RustyHermit));
        let unikraft = bw(Guest::new(GuestKind::Unikraft));
        let vm_noofl = bw(Guest::linux_vm_offloads_disabled());

        // "the Linux VM can retain at least 80 % of performance"
        assert!(vm / native > 0.70, "vm/native = {}", vm / native);
        // "RustyHermit can only reach approx. 9.8 % in one direction"
        let hermit_frac = hermit / native;
        assert!(
            (0.05..0.25).contains(&hermit_frac),
            "hermit/native = {hermit_frac}"
        );
        // Unikraft (no checksum offload) below Hermit.
        assert!(unikraft < hermit, "unikraft={unikraft} hermit={hermit}");
        // Ablation: ≈ 923.9 MiB/s host-to-device.
        let mibps = vm_noofl / (1024.0 * 1024.0);
        assert!(
            (500.0..2000.0).contains(&mibps),
            "VM-without-offloads H2D = {mibps} MiB/s"
        );
    }

    #[test]
    fn legacy_hermit_is_worse_than_paper_hermit() {
        let new = Guest::new(GuestKind::RustyHermit);
        let old = Guest::new(GuestKind::RustyHermitLegacy);
        let bw_new = NetPath::to_gpu_node(new.costs).bulk_bandwidth_bps(64 << 20, true);
        let bw_old = NetPath::to_gpu_node(old.costs).bulk_bandwidth_bps(64 << 20, true);
        assert!(
            bw_old < bw_new,
            "paper's virtio work must improve bandwidth: {bw_old} vs {bw_new}"
        );
    }

    #[test]
    fn features_match_kind() {
        assert!(Guest::new(GuestKind::RustyHermit)
            .features
            .contains(VirtioFeatures::MRG_RXBUF));
        assert!(!Guest::new(GuestKind::Unikraft)
            .features
            .contains(VirtioFeatures::CSUM));
        assert!(Guest::new(GuestKind::LinuxVm)
            .features
            .contains(VirtioFeatures::HOST_TSO4));
        assert_eq!(
            Guest::new(GuestKind::RustyHermitLegacy).features,
            VirtioFeatures::empty()
        );
    }

    #[test]
    fn unikernels_have_no_guest_context_switches() {
        assert_eq!(
            Guest::new(GuestKind::RustyHermit).costs.context_switch_ns,
            0
        );
        assert_eq!(Guest::new(GuestKind::Unikraft).costs.context_switch_ns, 0);
        assert!(Guest::new(GuestKind::LinuxVm).costs.context_switch_ns > 0);
    }

    #[test]
    fn future_work_tso_improves_hermit_bandwidth() {
        let plain = Guest::new(GuestKind::RustyHermit);
        let tso = Guest::new(GuestKind::RustyHermitTso);
        let bw = |g: Guest| NetPath::to_gpu_node(g.costs).bulk_bandwidth_bps(256 << 20, true);
        let (b_plain, b_tso) = (bw(plain), bw(tso));
        assert!(
            b_tso > 3.0 * b_plain,
            "TSO should increase Hermit H2D significantly: {b_plain} -> {b_tso}"
        );
    }

    #[test]
    fn future_work_vdpa_cuts_per_call_latency() {
        let plain = Guest::new(GuestKind::RustyHermit);
        let vdpa = Guest::new(GuestKind::RustyHermit).with_vdpa();
        let t = |g: Guest| {
            NetPath::to_gpu_node(g.costs)
                .rpc_round(48, 32, 8_000)
                .total_ns()
        };
        let (t_plain, t_vdpa) = (t(plain), t(vdpa));
        assert!(
            t_vdpa + 15_000 < t_plain,
            "vDPA removes ~2 vm-exits per round: {t_plain} -> {t_vdpa}"
        );
    }

    #[test]
    fn mtu_parameter_respected() {
        let g = Guest::with_mtu(GuestKind::RustyHermit, 1500);
        assert_eq!(g.costs.mtu, 1500);
    }
}
