//! A small functional TCP data path (the smoltcp/lwIP stand-in).
//!
//! The simulated transports route the *actual RPC bytes* through this code:
//! segments are produced with real headers and — when checksum offload is
//! not negotiated — really computed Internet checksums, and the receive side
//! really verifies them. The wire between the two simulated hosts is
//! lossless and ordered, so no retransmission machinery is required; what
//! matters for the reproduction is that the offload feature bits select
//! genuinely different code paths.

use simnet::checksum::{internet_checksum, ones_complement_sum};

/// TCP connection states (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// No connection.
    Closed,
    /// Active open sent SYN.
    SynSent,
    /// Passive open received SYN, sent SYN-ACK.
    SynReceived,
    /// Three-way handshake complete.
    Established,
}

/// Segment header (the fields the data path needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegHeader {
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Cumulative acknowledgment.
    pub ack: u32,
    /// SYN flag.
    pub syn: bool,
    /// ACK flag.
    pub ack_flag: bool,
    /// Checksum over header-pseudo + payload; 0 when offloaded to the
    /// device (which fills it before the wire).
    pub checksum: u16,
    /// True when the sender deferred checksumming to the device.
    pub csum_offloaded: bool,
}

/// One TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Header.
    pub header: SegHeader,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Segment {
    fn checksum_input(seq: u32, ack: u32, payload: &[u8]) -> Vec<u8> {
        // Pseudo-header: seq, ack, length — enough to catch corruption in
        // tests; a real stack also covers addresses and ports.
        let mut buf = Vec::with_capacity(14 + payload.len());
        buf.extend_from_slice(&seq.to_be_bytes());
        buf.extend_from_slice(&ack.to_be_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(payload);
        if buf.len() % 2 != 0 {
            // RFC 1071: odd-length data is zero-padded to a 16-bit boundary
            // so the checksum word that follows stays aligned.
            buf.push(0);
        }
        buf
    }

    /// Compute the checksum this segment should carry.
    pub fn expected_checksum(&self) -> u16 {
        internet_checksum(&Self::checksum_input(
            self.header.seq,
            self.header.ack,
            &self.payload,
        ))
    }

    /// Verify an on-wire segment's checksum.
    pub fn verify(&self) -> bool {
        // Sum including the transmitted checksum must be 0xffff.
        let mut input = Self::checksum_input(self.header.seq, self.header.ack, &self.payload);
        input.extend_from_slice(&self.header.checksum.to_be_bytes());
        ones_complement_sum(&input) == 0xffff
    }
}

/// One endpoint of a connection.
#[derive(Debug)]
pub struct TcpEndpoint {
    /// Connection state.
    pub state: State,
    /// Next sequence number to send.
    pub snd_nxt: u32,
    /// Next sequence number expected.
    pub rcv_nxt: u32,
    /// Maximum segment size (MTU minus 40 bytes of IP+TCP headers).
    pub mss: usize,
    /// Driver computes checksums in software (no `VIRTIO_NET_F_CSUM`).
    pub tx_csum_in_software: bool,
    /// Driver verifies RX checksums in software (no `GUEST_CSUM`).
    pub rx_verify_in_software: bool,
    /// In-order reassembled receive data.
    rx_buffer: Vec<u8>,
    /// Segments dropped due to checksum failure (telemetry).
    pub rx_checksum_failures: u64,
}

impl TcpEndpoint {
    /// New endpoint for a link `mtu`, with software checksums per flags.
    pub fn new(mtu: usize, tx_csum_in_software: bool, rx_verify_in_software: bool) -> Self {
        Self {
            state: State::Closed,
            snd_nxt: 0x1000, // deterministic ISS for reproducibility
            rcv_nxt: 0,
            mss: mtu.saturating_sub(40).max(1),
            tx_csum_in_software,
            rx_verify_in_software,
            rx_buffer: Vec::new(),
            rx_checksum_failures: 0,
        }
    }

    fn make_segment(
        &self,
        seq: u32,
        ack: u32,
        syn: bool,
        ack_flag: bool,
        payload: Vec<u8>,
    ) -> Segment {
        let mut seg = Segment {
            header: SegHeader {
                seq,
                ack,
                syn,
                ack_flag,
                checksum: 0,
                csum_offloaded: !self.tx_csum_in_software,
            },
            payload,
        };
        if self.tx_csum_in_software {
            seg.header.checksum = seg.expected_checksum();
        }
        seg
    }

    /// Active open: produce the SYN.
    pub fn connect(&mut self) -> Segment {
        assert_eq!(self.state, State::Closed);
        self.state = State::SynSent;
        let seg = self.make_segment(self.snd_nxt, 0, true, false, Vec::new());
        self.snd_nxt = self.snd_nxt.wrapping_add(1);
        seg
    }

    /// Passive side: process a SYN, produce the SYN-ACK.
    pub fn accept(&mut self, syn: &Segment) -> Option<Segment> {
        if self.state != State::Closed || !syn.header.syn {
            return None;
        }
        self.rcv_nxt = syn.header.seq.wrapping_add(1);
        self.state = State::SynReceived;
        let seg = self.make_segment(self.snd_nxt, self.rcv_nxt, true, true, Vec::new());
        self.snd_nxt = self.snd_nxt.wrapping_add(1);
        Some(seg)
    }

    /// Active side: process the SYN-ACK, produce the final ACK.
    pub fn complete_handshake(&mut self, synack: &Segment) -> Option<Segment> {
        if self.state != State::SynSent || !synack.header.syn || !synack.header.ack_flag {
            return None;
        }
        if synack.header.ack != self.snd_nxt {
            return None;
        }
        self.rcv_nxt = synack.header.seq.wrapping_add(1);
        self.state = State::Established;
        Some(self.make_segment(self.snd_nxt, self.rcv_nxt, false, true, Vec::new()))
    }

    /// Passive side: process the final ACK.
    pub fn finish_accept(&mut self, ack: &Segment) -> bool {
        if self.state != State::SynReceived || !ack.header.ack_flag {
            return false;
        }
        if ack.header.ack != self.snd_nxt {
            return false;
        }
        self.state = State::Established;
        true
    }

    /// Segment `data` into MSS-sized segments with sequence numbers and
    /// (when not offloaded) software checksums.
    pub fn send(&mut self, data: &[u8]) -> Vec<Segment> {
        assert_eq!(self.state, State::Established, "send before handshake");
        let mut out = Vec::with_capacity(data.len().div_ceil(self.mss));
        for chunk in data.chunks(self.mss) {
            let seg = self.make_segment(self.snd_nxt, self.rcv_nxt, false, true, chunk.to_vec());
            self.snd_nxt = self.snd_nxt.wrapping_add(chunk.len() as u32);
            out.push(seg);
        }
        out
    }

    /// Receive one in-order segment; verified payload lands in the buffer.
    /// Returns false if the segment was dropped (bad checksum / wrong seq).
    pub fn receive(&mut self, seg: &Segment) -> bool {
        assert_eq!(self.state, State::Established, "receive before handshake");
        if self.rx_verify_in_software && !seg.header.csum_offloaded && !seg.verify() {
            self.rx_checksum_failures += 1;
            return false;
        }
        if seg.header.seq != self.rcv_nxt {
            return false; // out-of-order: lossless FIFO wire never does this
        }
        self.rcv_nxt = self.rcv_nxt.wrapping_add(seg.payload.len() as u32);
        self.rx_buffer.extend_from_slice(&seg.payload);
        true
    }

    /// Drain up to `max` bytes of reassembled data.
    pub fn read(&mut self, max: usize) -> Vec<u8> {
        let n = max.min(self.rx_buffer.len());
        self.rx_buffer.drain(..n).collect()
    }

    /// Bytes available to read.
    pub fn available(&self) -> usize {
        self.rx_buffer.len()
    }
}

/// Run the three-way handshake between two endpoints.
pub fn handshake(client: &mut TcpEndpoint, server: &mut TcpEndpoint) {
    let syn = client.connect();
    let synack = server.accept(&syn).expect("server accepts SYN");
    let ack = client
        .complete_handshake(&synack)
        .expect("client completes");
    assert!(server.finish_accept(&ack), "server finishes");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TcpEndpoint, TcpEndpoint) {
        let mut c = TcpEndpoint::new(9000, true, true);
        let mut s = TcpEndpoint::new(9000, true, true);
        handshake(&mut c, &mut s);
        (c, s)
    }

    #[test]
    fn handshake_reaches_established() {
        let (c, s) = pair();
        assert_eq!(c.state, State::Established);
        assert_eq!(s.state, State::Established);
    }

    #[test]
    fn handshake_rejects_wrong_ack() {
        let mut c = TcpEndpoint::new(9000, true, true);
        let mut s = TcpEndpoint::new(9000, true, true);
        let _syn = c.connect();
        let bogus = Segment {
            header: SegHeader {
                seq: 1,
                ack: 0xbad,
                syn: true,
                ack_flag: true,
                checksum: 0,
                csum_offloaded: true,
            },
            payload: vec![],
        };
        assert!(c.complete_handshake(&bogus).is_none());
        // A second connect attempt from a non-Closed state is also refused.
        assert!(
            s.accept(&bogus).is_some(),
            "fresh passive endpoint accepts a SYN"
        );
        assert!(s.accept(&bogus).is_none(), "but only once");
    }

    #[test]
    fn data_flows_and_reassembles() {
        let (mut c, mut s) = pair();
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        let segs = c.send(&data);
        assert_eq!(segs.len(), data.len().div_ceil(8960));
        for seg in &segs {
            assert!(s.receive(seg));
        }
        assert_eq!(s.available(), data.len());
        assert_eq!(s.read(usize::MAX), data);
    }

    #[test]
    fn software_checksums_catch_corruption() {
        let (mut c, mut s) = pair();
        let mut segs = c.send(b"important gpu data");
        segs[0].payload[3] ^= 0x40;
        assert!(!s.receive(&segs[0]));
        assert_eq!(s.rx_checksum_failures, 1);
        assert_eq!(s.available(), 0);
    }

    #[test]
    fn offloaded_checksums_skip_software_verify() {
        // Sender offloads (checksum 0), receiver trusts the device.
        let mut c = TcpEndpoint::new(9000, false, false);
        let mut s = TcpEndpoint::new(9000, false, false);
        handshake(&mut c, &mut s);
        let segs = c.send(b"hello");
        assert!(segs[0].header.csum_offloaded);
        assert_eq!(segs[0].header.checksum, 0);
        assert!(s.receive(&segs[0]));
        assert_eq!(s.read(16), b"hello");
    }

    #[test]
    fn out_of_order_segment_rejected() {
        let (mut c, mut s) = pair();
        let segs = c.send(&vec![7u8; 20_000]);
        assert!(segs.len() >= 3);
        assert!(!s.receive(&segs[1]), "skipping a segment must fail");
        assert!(s.receive(&segs[0]));
        assert!(s.receive(&segs[1]));
    }

    #[test]
    fn duplex_traffic() {
        let (mut c, mut s) = pair();
        for seg in c.send(b"request") {
            s.receive(&seg);
        }
        assert_eq!(s.read(64), b"request");
        for seg in s.send(b"reply!") {
            c.receive(&seg);
        }
        assert_eq!(c.read(64), b"reply!");
    }

    #[test]
    fn mss_respects_mtu() {
        let e = TcpEndpoint::new(1500, true, true);
        assert_eq!(e.mss, 1460);
        let e = TcpEndpoint::new(9000, true, true);
        assert_eq!(e.mss, 8960);
    }

    #[test]
    #[should_panic(expected = "send before handshake")]
    fn send_before_handshake_panics() {
        let mut e = TcpEndpoint::new(9000, true, true);
        let _ = e.send(b"nope");
    }
}
