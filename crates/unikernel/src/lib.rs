//! Guest environment models for the five evaluated configurations.
//!
//! The paper runs its client application natively, in a Fedora VM, and in
//! the Unikraft and RustyHermit unikernels. This crate models those guests:
//!
//! * [`features`] — virtio-net feature bits and device↔driver negotiation.
//!   The per-guest driver capabilities encode exactly the paper's situation:
//!   RustyHermit gained `CSUM`/`GUEST_CSUM`/`MRG_RXBUF` in the paper (§3.1)
//!   but has no TSO; Unikraft lacks checksum offload ("has been proposed",
//!   §4.2); the Linux guest negotiates everything.
//! * [`tcp`] — a small functional TCP data path (smoltcp-stand-in):
//!   handshake, MSS segmentation, really-computed Internet checksums when
//!   the checksum offload is not negotiated, in-order reassembly. The
//!   simulated transports route real RPC bytes through this code.
//! * [`virtio_net`] — the virtio-net frame layer: `virtio_net_hdr` with
//!   GSO/checksum flags, host-side TSO splitting, merged RX buffers.
//! * [`guest`] — ties a negotiated feature set to a [`simnet::GuestCosts`]
//!   table per environment, with the calibration notes.
//! * [`boot`] — deployment footprints (image size, boot time, memory floor)
//!   quantifying the paper's density argument for GPU sharing.

pub mod boot;
pub mod features;
pub mod guest;
pub mod tcp;
pub mod virtio_net;

pub use features::{negotiate, VirtioFeatures};
pub use guest::{Guest, GuestKind};
