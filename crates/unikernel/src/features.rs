//! Virtio-net feature bits and negotiation (virtio spec §5.1.3).
//!
//! During device initialization the driver reads the device's offered
//! feature bits and acknowledges the subset it supports; only features both
//! sides know end up active. The paper's RustyHermit contribution is
//! precisely adding driver support for three of these bits.

use simnet::OffloadFeatures;
use std::fmt;
use std::ops::{BitAnd, BitOr};

/// A set of virtio-net feature bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VirtioFeatures(pub u64);

impl VirtioFeatures {
    /// Device handles packets with partial checksum (`VIRTIO_NET_F_CSUM`).
    pub const CSUM: VirtioFeatures = VirtioFeatures(1 << 0);
    /// Driver handles packets with partial checksum
    /// (`VIRTIO_NET_F_GUEST_CSUM`).
    pub const GUEST_CSUM: VirtioFeatures = VirtioFeatures(1 << 1);
    /// Device can receive merged RX buffers (`VIRTIO_NET_F_MRG_RXBUF`).
    pub const MRG_RXBUF: VirtioFeatures = VirtioFeatures(1 << 15);
    /// Device handles TSOv4 (`VIRTIO_NET_F_HOST_TSO4`).
    pub const HOST_TSO4: VirtioFeatures = VirtioFeatures(1 << 11);
    /// Device handles TSOv6 (`VIRTIO_NET_F_HOST_TSO6`).
    pub const HOST_TSO6: VirtioFeatures = VirtioFeatures(1 << 12);
    /// Driver can merge receive buffers — guest side of GSO
    /// (`VIRTIO_NET_F_GUEST_TSO4`).
    pub const GUEST_TSO4: VirtioFeatures = VirtioFeatures(1 << 7);
    /// Scatter-gather on TX (part of `VIRTIO_NET_F_*` / `NETIF_F_SG` in
    /// practice; modeled as its own bit).
    pub const SG: VirtioFeatures = VirtioFeatures(1 << 33);

    /// Empty set.
    pub const fn empty() -> Self {
        VirtioFeatures(0)
    }

    /// True if every bit of `other` is present.
    pub fn contains(&self, other: VirtioFeatures) -> bool {
        self.0 & other.0 == other.0
    }

    /// What a modern QEMU/vhost virtio-net device offers.
    pub fn qemu_device() -> Self {
        Self::CSUM
            | Self::GUEST_CSUM
            | Self::MRG_RXBUF
            | Self::HOST_TSO4
            | Self::HOST_TSO6
            | Self::GUEST_TSO4
            | Self::SG
    }

    /// Linux guest driver: supports everything QEMU offers.
    pub fn linux_driver() -> Self {
        Self::qemu_device()
    }

    /// RustyHermit driver *after the paper's improvements*: checksum
    /// offloads and merged RX buffers, but no TSO and no scatter-gather.
    pub fn hermit_driver() -> Self {
        Self::CSUM | Self::GUEST_CSUM | Self::MRG_RXBUF
    }

    /// RustyHermit driver *before* the paper (ablation A2): none of the
    /// three contributed features.
    pub fn hermit_legacy_driver() -> Self {
        Self::empty()
    }

    /// Unikraft (lwIP) driver: merged RX buffers only; "Unikraft does not
    /// support checksum offloading, yet" (§4.2).
    pub fn unikraft_driver() -> Self {
        Self::MRG_RXBUF
    }

    /// Decode into the offload flags the cost model consumes.
    pub fn offloads(&self) -> OffloadFeatures {
        OffloadFeatures {
            tso: self.contains(Self::HOST_TSO4),
            tx_csum: self.contains(Self::CSUM),
            rx_csum: self.contains(Self::GUEST_CSUM),
            mrg_rxbuf: self.contains(Self::MRG_RXBUF),
            scatter_gather: self.contains(Self::SG),
        }
    }
}

impl BitOr for VirtioFeatures {
    type Output = Self;
    fn bitor(self, rhs: Self) -> Self {
        VirtioFeatures(self.0 | rhs.0)
    }
}

impl BitAnd for VirtioFeatures {
    type Output = Self;
    fn bitand(self, rhs: Self) -> Self {
        VirtioFeatures(self.0 & rhs.0)
    }
}

impl fmt::Display for VirtioFeatures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (Self::CSUM, "CSUM"),
            (Self::GUEST_CSUM, "GUEST_CSUM"),
            (Self::MRG_RXBUF, "MRG_RXBUF"),
            (Self::HOST_TSO4, "HOST_TSO4"),
            (Self::HOST_TSO6, "HOST_TSO6"),
            (Self::GUEST_TSO4, "GUEST_TSO4"),
            (Self::SG, "SG"),
        ];
        let mut first = true;
        for (bit, name) in names {
            if self.contains(bit) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "(none)")?;
        }
        Ok(())
    }
}

/// Negotiate: the intersection of what the device offers and the driver
/// acknowledges.
pub fn negotiate(device: VirtioFeatures, driver: VirtioFeatures) -> VirtioFeatures {
    device & driver
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_is_intersection() {
        let n = negotiate(
            VirtioFeatures::qemu_device(),
            VirtioFeatures::hermit_driver(),
        );
        assert!(n.contains(VirtioFeatures::CSUM));
        assert!(n.contains(VirtioFeatures::GUEST_CSUM));
        assert!(n.contains(VirtioFeatures::MRG_RXBUF));
        assert!(!n.contains(VirtioFeatures::HOST_TSO4));
        assert!(!n.contains(VirtioFeatures::SG));
    }

    #[test]
    fn device_cannot_grant_unoffered_features() {
        let limited_device = VirtioFeatures::CSUM;
        let n = negotiate(limited_device, VirtioFeatures::linux_driver());
        assert_eq!(n, VirtioFeatures::CSUM);
    }

    #[test]
    fn linux_negotiates_everything() {
        let n = negotiate(
            VirtioFeatures::qemu_device(),
            VirtioFeatures::linux_driver(),
        );
        let o = n.offloads();
        assert!(o.tso && o.tx_csum && o.rx_csum && o.mrg_rxbuf && o.scatter_gather);
    }

    #[test]
    fn hermit_offloads_match_paper() {
        let o = negotiate(
            VirtioFeatures::qemu_device(),
            VirtioFeatures::hermit_driver(),
        )
        .offloads();
        assert!(!o.tso, "RustyHermit has no TSO (the paper's future work)");
        assert!(
            o.tx_csum && o.rx_csum && o.mrg_rxbuf,
            "the paper's §3.1 additions"
        );
    }

    #[test]
    fn unikraft_offloads_match_paper() {
        let o = negotiate(
            VirtioFeatures::qemu_device(),
            VirtioFeatures::unikraft_driver(),
        )
        .offloads();
        assert!(
            !o.tx_csum && !o.rx_csum,
            "no checksum offload in Unikraft yet"
        );
        assert!(!o.tso);
        assert!(o.mrg_rxbuf);
    }

    #[test]
    fn legacy_hermit_has_nothing() {
        let o = negotiate(
            VirtioFeatures::qemu_device(),
            VirtioFeatures::hermit_legacy_driver(),
        )
        .offloads();
        assert!(!o.tx_csum && !o.rx_csum && !o.mrg_rxbuf && !o.tso);
    }

    #[test]
    fn display_lists_features() {
        let s = VirtioFeatures::hermit_driver().to_string();
        assert!(s.contains("CSUM") && s.contains("MRG_RXBUF"));
        assert_eq!(VirtioFeatures::empty().to_string(), "(none)");
    }
}
