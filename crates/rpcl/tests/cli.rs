//! Integration tests of the `rpclgen` command-line compiler (the
//! reproduction's `rpcgen`).

use std::process::Command;

fn rpclgen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rpclgen"))
}

const DEMO_SPEC: &str = r#"
    const MAX = 64;
    struct point { int x; int y; };
    program DEMO { version DEMO_V1 { point MOVE(point) = 1; } = 1; } = 99;
"#;

fn write_spec(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("demo.x");
    std::fs::write(&path, DEMO_SPEC).unwrap();
    path
}

#[test]
fn generates_to_stdout() {
    let dir = std::env::temp_dir().join("rpclgen-test-stdout");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = write_spec(&dir);
    let out = rpclgen().arg(&spec).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let code = String::from_utf8(out.stdout).unwrap();
    assert!(code.contains("pub struct Point"));
    assert!(code.contains("pub struct DemoV1Client"));
    assert!(code.contains("pub trait DemoV1Service"));
}

#[test]
fn writes_output_file_and_respects_flags() {
    let dir = std::env::temp_dir().join("rpclgen-test-out");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = write_spec(&dir);
    let out_path = dir.join("generated.rs");
    let out = rpclgen()
        .arg("--client-only")
        .arg("--xdr-path")
        .arg("::my_xdr")
        .arg("-o")
        .arg(&out_path)
        .arg(&spec)
        .output()
        .unwrap();
    assert!(out.status.success());
    let code = std::fs::read_to_string(&out_path).unwrap();
    assert!(code.contains("DemoV1Client"));
    assert!(
        !code.contains("DemoV1Service"),
        "--client-only must skip the server"
    );
    assert!(code.contains("::my_xdr::Xdr"));
}

#[test]
fn reports_parse_errors_with_line_numbers() {
    let dir = std::env::temp_dir().join("rpclgen-test-err");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.x");
    std::fs::write(&path, "const A = 1;\nstruct s { int 5x; };\n").unwrap();
    let out = rpclgen().arg(&path).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("line 2"), "stderr: {err}");
}

#[test]
fn missing_input_is_an_error() {
    let out = rpclgen().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn nonexistent_file_is_an_error() {
    let out = rpclgen().arg("/no/such/file.x").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn unknown_flag_is_an_error() {
    let out = rpclgen().arg("--frobnicate").output().unwrap();
    assert!(!out.status.success());
}
