//! Golden tests: the rpcl compiler against the real `cricket.x` interface
//! specification that drives the whole reproduction, plus structural
//! properties of generated code for random specifications.

use proptest::prelude::*;
use rpcl::{compile, generate, parse, Options};

const CRICKET_X: &str = include_str!("../../cricket-proto/proto/cricket.x");

#[test]
fn cricket_spec_parses() {
    let spec = parse(CRICKET_X).expect("cricket.x must parse");
    // 1 const, 1 enum, 1 typedef + 8 structs/unions + 1 program.
    assert!(spec.definitions.len() >= 11);
}

#[test]
fn cricket_codegen_contains_every_expected_item() {
    let code = compile(CRICKET_X).unwrap();
    for item in [
        "pub const CRICKET_CUDA: u32 = 537395001;",
        "pub const CRICKET_V1: u32 = 1;",
        "pub mod cricket_v1 {",
        "pub const CUDA_LAUNCH_KERNEL: u32 = 23;",
        "pub struct RpcDim3",
        "pub enum U64Result",
        "pub enum CudaError",
        "pub type MemData = Vec<u8>;",
        "pub struct CricketV1Client",
        "pub trait CricketV1Service",
        "pub struct CricketV1Dispatch<S>(pub S);",
        "fn cuda_memcpy_htod(&mut self, arg0: &u64, arg1: &[u8])",
        "fn cusolver_dn_dgetrs(&self,",
    ] {
        assert!(code.contains(item), "generated code is missing `{item}`");
    }
}

#[test]
fn cricket_codegen_is_deterministic() {
    assert_eq!(compile(CRICKET_X).unwrap(), compile(CRICKET_X).unwrap());
}

#[test]
fn client_only_output_has_no_server_items() {
    let spec = parse(CRICKET_X).unwrap();
    let code = generate(
        &spec,
        &Options {
            server: false,
            ..Options::default()
        },
    );
    assert!(code.contains("CricketV1Client"));
    assert!(!code.contains("CricketV1Service"));
    assert!(!code.contains("Dispatch"));
}

proptest! {
    /// Random well-formed specs must parse and generate; the generated code
    /// must be balanced and contain one client struct per version.
    #[test]
    fn random_specs_generate_balanced_code(
        n_consts in 0usize..4,
        n_procs in 1usize..8,
        prog_num in 1i64..1_000_000,
    ) {
        let mut src = String::new();
        for i in 0..n_consts {
            src.push_str(&format!("const CONST_{i} = {i};\n"));
        }
        src.push_str("struct arg_s { int a; opaque blob<>; };\n");
        src.push_str("program P {\n  version PV {\n");
        for p in 0..n_procs {
            src.push_str(&format!("    arg_s PROC_{p}(arg_s, int) = {p};\n"));
        }
        src.push_str(&format!("  }} = 1;\n}} = {prog_num};\n"));

        let code = compile(&src).unwrap();
        let opens = code.matches('{').count();
        let closes = code.matches('}').count();
        prop_assert_eq!(opens, closes, "unbalanced braces");
        prop_assert!(code.contains("pub struct PvClient"));
        for p in 0..n_procs {
            let needle = format!("pub const PROC_{p}: u32 = {p};");
            let found = code.contains(&needle);
            prop_assert!(found, "missing {}", needle);
        }
    }

    /// The lexer/parser must never panic on arbitrary input.
    #[test]
    fn parser_never_panics(src in "\\PC{0,400}") {
        let _ = parse(&src);
    }

    /// Arbitrary byte soup (valid UTF-8) through compile: error or success,
    /// no panic.
    #[test]
    fn compile_never_panics(src in proptest::string::string_regex("[a-z{}();=<>,*0-9 \\n]{0,300}").unwrap()) {
        let _ = compile(&src);
    }
}
