//! Recursive-descent parser for RPCL.

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};
use crate::Error;
use std::collections::HashMap;

/// Parse an RPCL source file into a [`Spec`].
///
/// Constant references (`case SOME_CONST:`, `opaque buf<MAX>`) are resolved
/// against `const` and `enum` definitions that appear earlier in the file,
/// matching rpcgen's single-pass behaviour.
pub fn parse(source: &str) -> Result<Spec, Error> {
    let tokens = tokenize(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        consts: HashMap::new(),
        enums: HashMap::new(),
    };
    p.spec()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Resolved `const` values (also enum variants).
    consts: HashMap<String, i64>,
    /// enum type name → variants, for union discriminant resolution.
    enums: HashMap<String, Vec<(String, i64)>>,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, Error> {
        Err(Error {
            line: self.line(),
            message: message.into(),
        })
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), Error> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, Error> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        match self.peek() {
            TokenKind::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{kw}`, found {other}")),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    /// A number literal or a previously defined constant name.
    fn value(&mut self) -> Result<(i64, String), Error> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.bump();
                Ok((n, n.to_string()))
            }
            TokenKind::Ident(name) => {
                if let Some(&v) = self.consts.get(&name) {
                    self.bump();
                    Ok((v, name))
                } else {
                    self.err(format!("unknown constant `{name}`"))
                }
            }
            other => self.err(format!("expected value, found {other}")),
        }
    }

    fn spec(&mut self) -> Result<Spec, Error> {
        let mut definitions = Vec::new();
        while self.peek() != &TokenKind::Eof {
            definitions.push(self.definition()?);
        }
        Ok(Spec { definitions })
    }

    fn definition(&mut self) -> Result<Definition, Error> {
        match self.peek().clone() {
            TokenKind::Ident(kw) => match kw.as_str() {
                "const" => self.const_def(),
                "enum" => self.enum_def(),
                "struct" => self.struct_def(),
                "union" => self.union_def(),
                "typedef" => self.typedef_def(),
                "program" => self.program_def(),
                other => self.err(format!("expected definition keyword, found `{other}`")),
            },
            other => self.err(format!("expected definition, found {other}")),
        }
    }

    fn const_def(&mut self) -> Result<Definition, Error> {
        self.expect_keyword("const")?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::Eq)?;
        let (value, _) = self.value()?;
        self.expect(&TokenKind::Semi)?;
        if self.consts.insert(name.clone(), value).is_some() {
            return self.err(format!("duplicate constant `{name}`"));
        }
        Ok(Definition::Const(ConstDef { name, value }))
    }

    fn enum_def(&mut self) -> Result<Definition, Error> {
        self.expect_keyword("enum")?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut variants = Vec::new();
        let mut next_implicit = 0i64;
        loop {
            let vname = self.expect_ident()?;
            let value = if self.peek() == &TokenKind::Eq {
                self.bump();
                let (v, _) = self.value()?;
                v
            } else {
                // XDR requires explicit values, but C-style implicit
                // numbering is common in the wild; follow C semantics.
                next_implicit
            };
            next_implicit = value + 1;
            self.consts.insert(vname.clone(), value);
            variants.push((vname, value));
            match self.bump() {
                TokenKind::Comma => {
                    // Allow trailing comma before `}`.
                    if self.peek() == &TokenKind::RBrace {
                        self.bump();
                        break;
                    }
                }
                TokenKind::RBrace => break,
                other => return self.err(format!("expected `,` or `}}`, found {other}")),
            }
        }
        self.expect(&TokenKind::Semi)?;
        self.enums.insert(name.clone(), variants.clone());
        Ok(Definition::Enum(EnumDef { name, variants }))
    }

    fn struct_def(&mut self) -> Result<Definition, Error> {
        self.expect_keyword("struct")?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            let decl = self.declaration()?;
            self.expect(&TokenKind::Semi)?;
            fields.push(decl);
        }
        self.expect(&TokenKind::RBrace)?;
        self.expect(&TokenKind::Semi)?;
        if fields.is_empty() {
            return self.err(format!("struct `{name}` has no members"));
        }
        Ok(Definition::Struct(StructDef { name, fields }))
    }

    fn union_def(&mut self) -> Result<Definition, Error> {
        self.expect_keyword("union")?;
        let name = self.expect_ident()?;
        self.expect_keyword("switch")?;
        self.expect(&TokenKind::LParen)?;
        let discriminant = self.declaration()?;
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::LBrace)?;

        let mut cases: Vec<UnionCase> = Vec::new();
        let mut default = None;
        loop {
            if self.at_keyword("case") {
                let mut values = Vec::new();
                // One or more stacked `case X:` labels share a declaration.
                while self.at_keyword("case") {
                    self.bump();
                    let (v, spelling) = self.value()?;
                    self.expect(&TokenKind::Colon)?;
                    values.push((v, spelling));
                }
                let decl = self.void_or_declaration()?;
                self.expect(&TokenKind::Semi)?;
                cases.push(UnionCase { values, decl });
            } else if self.at_keyword("default") {
                self.bump();
                self.expect(&TokenKind::Colon)?;
                let decl = self.void_or_declaration()?;
                self.expect(&TokenKind::Semi)?;
                if default.replace(decl).is_some() {
                    return self.err("duplicate `default:` arm");
                }
            } else {
                break;
            }
        }
        self.expect(&TokenKind::RBrace)?;
        self.expect(&TokenKind::Semi)?;
        if cases.is_empty() {
            return self.err(format!("union `{name}` has no case arms"));
        }
        // Reject duplicate case values across arms.
        let mut seen = std::collections::HashSet::new();
        for c in &cases {
            for (v, _) in &c.values {
                if !seen.insert(*v) {
                    return self.err(format!("duplicate case value {v} in union `{name}`"));
                }
            }
        }
        Ok(Definition::Union(UnionDef {
            name,
            discriminant,
            cases,
            default,
        }))
    }

    fn typedef_def(&mut self) -> Result<Definition, Error> {
        self.expect_keyword("typedef")?;
        let decl = self.declaration()?;
        self.expect(&TokenKind::Semi)?;
        Ok(Definition::Typedef(TypedefDef { decl }))
    }

    fn program_def(&mut self) -> Result<Definition, Error> {
        self.expect_keyword("program")?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut versions = Vec::new();
        while self.at_keyword("version") {
            versions.push(self.version_def()?);
        }
        self.expect(&TokenKind::RBrace)?;
        self.expect(&TokenKind::Eq)?;
        let (number, _) = self.value()?;
        self.expect(&TokenKind::Semi)?;
        if versions.is_empty() {
            return self.err(format!("program `{name}` has no versions"));
        }
        self.consts.insert(name.clone(), number);
        Ok(Definition::Program(ProgramDef {
            name,
            number,
            versions,
        }))
    }

    fn version_def(&mut self) -> Result<VersionDef, Error> {
        self.expect_keyword("version")?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut procedures = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            procedures.push(self.procedure_def()?);
        }
        self.expect(&TokenKind::RBrace)?;
        self.expect(&TokenKind::Eq)?;
        let (number, _) = self.value()?;
        self.expect(&TokenKind::Semi)?;
        self.consts.insert(name.clone(), number);
        // Reject duplicate procedure numbers or names.
        let mut nums = std::collections::HashSet::new();
        let mut names = std::collections::HashSet::new();
        for p in &procedures {
            if !nums.insert(p.number) {
                return self.err(format!("duplicate procedure number {}", p.number));
            }
            if !names.insert(p.name.clone()) {
                return self.err(format!("duplicate procedure name `{}`", p.name));
            }
        }
        Ok(VersionDef {
            name,
            number,
            procedures,
        })
    }

    fn procedure_def(&mut self) -> Result<ProcedureDef, Error> {
        // Optional leading qualifiers (RPCL extensions), in any order:
        // `idempotent` marks the procedure safe for automatic client-side
        // retry; `batchable` marks it recordable into a command batch.
        let mut idempotent = false;
        let mut batchable = false;
        loop {
            if !idempotent && self.at_keyword("idempotent") {
                idempotent = true;
                self.bump();
            } else if !batchable && self.at_keyword("batchable") {
                batchable = true;
                self.bump();
            } else {
                break;
            }
        }
        let result = self.type_spec()?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                args.push(self.type_spec()?);
                if self.peek() == &TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::Eq)?;
        let (number, _) = self.value()?;
        self.expect(&TokenKind::Semi)?;
        // `(void)` normalizes to no arguments.
        if args.len() == 1 && args[0].is_void() {
            args.clear();
        }
        if args.iter().any(TypeSpec::is_void) {
            return self.err("`void` cannot be combined with other arguments");
        }
        // Batch replies carry one status int per sub-op, so only procedures
        // whose whole result is that status can be deferred into a batch.
        if batchable && result != TypeSpec::Int {
            return self.err(format!(
                "`batchable` procedure `{name}` must return plain `int`"
            ));
        }
        Ok(ProcedureDef {
            name,
            number,
            result,
            args,
            idempotent,
            batchable,
        })
    }

    /// `void` (as a bare union-arm body) or a full declaration.
    fn void_or_declaration(&mut self) -> Result<Option<Declaration>, Error> {
        if self.at_keyword("void") {
            self.bump();
            Ok(None)
        } else {
            Ok(Some(self.declaration()?))
        }
    }

    fn type_spec(&mut self) -> Result<TypeSpec, Error> {
        let ident = self.expect_ident()?;
        Ok(match ident.as_str() {
            "int" => TypeSpec::Int,
            "unsigned" => {
                // `unsigned int`, `unsigned hyper`, or bare `unsigned`.
                match self.peek() {
                    TokenKind::Ident(s) if s == "int" => {
                        self.bump();
                        TypeSpec::UInt
                    }
                    TokenKind::Ident(s) if s == "hyper" => {
                        self.bump();
                        TypeSpec::UHyper
                    }
                    TokenKind::Ident(s) if s == "char" || s == "short" => {
                        // rpcgen extensions; map to u32 like rpcgen does.
                        self.bump();
                        TypeSpec::UInt
                    }
                    _ => TypeSpec::UInt,
                }
            }
            "hyper" => TypeSpec::Hyper,
            "float" => TypeSpec::Float,
            "double" => TypeSpec::Double,
            "quadruple" => return self.err("quadruple-precision floats are not supported"),
            "bool" => TypeSpec::Bool,
            "void" => TypeSpec::Void,
            "string" => TypeSpec::StringType,
            "opaque" => TypeSpec::Opaque,
            "struct" | "enum" | "union" => {
                // `struct foo bar` style: the tag is the type name.
                TypeSpec::Named(self.expect_ident()?)
            }
            _ => TypeSpec::Named(ident),
        })
    }

    fn declaration(&mut self) -> Result<Declaration, Error> {
        let ty = self.type_spec()?;
        if ty.is_void() {
            return self.err("`void` is not a valid member type");
        }
        let kind_is_pointer = if self.peek() == &TokenKind::Star {
            self.bump();
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        let kind = if kind_is_pointer {
            DeclKind::Pointer
        } else {
            match self.peek() {
                TokenKind::LBracket => {
                    self.bump();
                    let (n, _) = self.value()?;
                    if n <= 0 {
                        return self.err("fixed array size must be positive");
                    }
                    self.expect(&TokenKind::RBracket)?;
                    DeclKind::FixedArray(n as u64)
                }
                TokenKind::Lt => {
                    self.bump();
                    let max = if self.peek() == &TokenKind::Gt {
                        None
                    } else {
                        let (n, _) = self.value()?;
                        if n <= 0 {
                            return self.err("array bound must be positive");
                        }
                        Some(n as u64)
                    };
                    self.expect(&TokenKind::Gt)?;
                    DeclKind::VarArray(max)
                }
                _ => DeclKind::Plain,
            }
        };
        // Validate decoration compatibility.
        match (&ty, &kind) {
            (TypeSpec::Opaque, DeclKind::Plain | DeclKind::Pointer) => {
                return self.err("`opaque` requires an array declaration")
            }
            (TypeSpec::StringType, k) if !matches!(k, DeclKind::VarArray(_)) => {
                return self.err("`string` requires `<max>` or `<>`")
            }
            _ => {}
        }
        Ok(Declaration { name, ty, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_consts_and_enum() {
        let spec = parse("const A = 5; const B = A; enum color { RED = 1, GREEN = 2 };").unwrap();
        assert_eq!(spec.definitions.len(), 3);
        match &spec.definitions[1] {
            Definition::Const(c) => assert_eq!(c.value, 5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_struct_with_all_decorations() {
        let spec = parse(
            r#"struct s {
                int plain;
                unsigned hyper big;
                opaque fixed[16];
                opaque var<1024>;
                opaque unbounded<>;
                string name<64>;
                int nums[4];
                double samples<>;
                s *next;
            };"#,
        )
        .unwrap();
        let Definition::Struct(s) = &spec.definitions[0] else {
            panic!()
        };
        assert_eq!(s.fields.len(), 9);
        assert_eq!(s.fields[2].kind, DeclKind::FixedArray(16));
        assert_eq!(s.fields[3].kind, DeclKind::VarArray(Some(1024)));
        assert_eq!(s.fields[4].kind, DeclKind::VarArray(None));
        assert_eq!(s.fields[8].kind, DeclKind::Pointer);
    }

    #[test]
    fn parse_union() {
        let spec = parse(
            r#"union ptr_result switch (int err) {
                case 0: unsigned hyper ptr;
                case 1:
                case 2: int detail;
                default: void;
            };"#,
        )
        .unwrap();
        let Definition::Union(u) = &spec.definitions[0] else {
            panic!()
        };
        assert_eq!(u.cases.len(), 2);
        assert_eq!(u.cases[1].values.len(), 2);
        assert_eq!(u.default, Some(None));
    }

    #[test]
    fn union_with_enum_discriminant() {
        let spec = parse(
            r#"enum kind { K_A = 0, K_B = 1 };
               union v switch (kind k) {
                 case K_A: int a;
                 case K_B: void;
               };"#,
        )
        .unwrap();
        let Definition::Union(u) = &spec.definitions[1] else {
            panic!()
        };
        assert_eq!(u.cases[0].values[0], (0, "K_A".into()));
    }

    #[test]
    fn duplicate_case_rejected() {
        assert!(parse("union u switch (int d) { case 0: int a; case 0: int b; };").is_err());
    }

    #[test]
    fn parse_program() {
        let spec = parse(
            r#"program CRICKET {
                version CRICKET_V1 {
                    void NULLPROC(void) = 0;
                    int ADD(int, int) = 1;
                } = 1;
                version CRICKET_V2 {
                    void NULLPROC(void) = 0;
                } = 2;
            } = 99;"#,
        )
        .unwrap();
        let Definition::Program(p) = &spec.definitions[0] else {
            panic!()
        };
        assert_eq!(p.number, 99);
        assert_eq!(p.versions.len(), 2);
        assert_eq!(p.versions[0].procedures[1].args.len(), 2);
        assert!(p.versions[0].procedures[0].args.is_empty());
    }

    #[test]
    fn typedef_forms() {
        let spec =
            parse("typedef opaque mem_data<>; typedef unsigned hyper ptr; typedef int four[4];")
                .unwrap();
        assert_eq!(spec.definitions.len(), 3);
    }

    #[test]
    fn const_in_bound() {
        let spec = parse("const MAX = 512; struct s { opaque buf<MAX>; };").unwrap();
        let Definition::Struct(s) = &spec.definitions[1] else {
            panic!()
        };
        assert_eq!(s.fields[0].kind, DeclKind::VarArray(Some(512)));
    }

    #[test]
    fn forward_const_reference_rejected() {
        assert!(parse("struct s { opaque buf<MAX>; }; const MAX = 512;").is_err());
    }

    #[test]
    fn duplicate_proc_number_rejected() {
        assert!(
            parse("program P { version V { void A(void) = 1; void B(void) = 1; } = 1; } = 9;")
                .is_err()
        );
    }

    #[test]
    fn error_reports_line() {
        let err = parse("const A = 1;\nstruct s {\n  int 5bad;\n};").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn opaque_without_array_rejected() {
        assert!(parse("struct s { opaque x; };").is_err());
        assert!(parse("struct s { string x; };").is_err());
    }
}
