//! Tokenizer for the RPC language.

use crate::Error;

/// A lexical token with its source line (for diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds of the RPC language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// Integer literal (decimal, 0x hex, or 0 octal), possibly negative.
    Number(i64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `*`
    Star,
    /// `:`
    Colon,
    /// End of input sentinel.
    Eof,
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Number(n) => write!(f, "number `{n}`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Tokenize RPCL `source`.
///
/// Handles `/* ... */` and `// ...` comments and `%`-passthrough lines
/// (which rpcgen copies into the output verbatim; we discard them).
pub fn tokenize(source: &str) -> Result<Vec<Token>, Error> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let n = bytes.len();

    while i < n {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'%' => {
                // Passthrough line: skip to end of line.
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= n {
                        return Err(Error {
                            line: start_line,
                            message: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'{' => {
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    line,
                });
                i += 1;
            }
            b'}' => {
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    line,
                });
                i += 1;
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line,
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line,
                });
                i += 1;
            }
            b'[' => {
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    line,
                });
                i += 1;
            }
            b']' => {
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    line,
                });
                i += 1;
            }
            b'<' => {
                tokens.push(Token {
                    kind: TokenKind::Lt,
                    line,
                });
                i += 1;
            }
            b'>' => {
                tokens.push(Token {
                    kind: TokenKind::Gt,
                    line,
                });
                i += 1;
            }
            b';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    line,
                });
                i += 1;
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
                i += 1;
            }
            b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    line,
                });
                i += 1;
            }
            b'*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    line,
                });
                i += 1;
            }
            b':' => {
                tokens.push(Token {
                    kind: TokenKind::Colon,
                    line,
                });
                i += 1;
            }
            b'-' | b'0'..=b'9' => {
                let start = i;
                if c == b'-' {
                    i += 1;
                    if i >= n || !bytes[i].is_ascii_digit() {
                        return Err(Error {
                            line,
                            message: "`-` not followed by a digit".into(),
                        });
                    }
                }
                let digits_start = i;
                let (radix, text_start) =
                    if bytes[i] == b'0' && i + 1 < n && (bytes[i + 1] | 0x20) == b'x' {
                        i += 2;
                        (16, i)
                    } else if bytes[i] == b'0' && i + 1 < n && bytes[i + 1].is_ascii_digit() {
                        i += 1;
                        (8, i)
                    } else {
                        (10, i)
                    };
                while i < n && bytes[i].is_ascii_alphanumeric() {
                    i += 1;
                }
                let _ = digits_start;
                let text = &source[text_start..i];
                let value = i64::from_str_radix(text, radix).map_err(|_| Error {
                    line,
                    message: format!("invalid number literal `{}`", &source[start..i]),
                })?;
                let value = if c == b'-' { -value } else { value };
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    line,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(source[start..i].to_string()),
                    line,
                });
            }
            other => {
                return Err(Error {
                    line,
                    message: format!("unexpected character `{}`", other as char),
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("struct s { int x; };"),
            vec![
                TokenKind::Ident("struct".into()),
                TokenKind::Ident("s".into()),
                TokenKind::LBrace,
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Semi,
                TokenKind::RBrace,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 -2 0x10 010 0"),
            vec![
                TokenKind::Number(1),
                TokenKind::Number(-2),
                TokenKind::Number(16),
                TokenKind::Number(8),
                TokenKind::Number(0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_and_passthrough() {
        let src = "/* block\ncomment */ int // line comment\n%#include <stdio.h>\nx";
        assert_eq!(
            kinds(src),
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = tokenize("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(tokenize("/* never ends").is_err());
    }

    #[test]
    fn bad_number_is_error() {
        assert!(tokenize("0xZZ").is_err());
        assert!(tokenize("- x").is_err());
    }

    #[test]
    fn unexpected_char_is_error() {
        let err = tokenize("int a; @").unwrap_err();
        assert!(err.message.contains('@'));
    }
}
