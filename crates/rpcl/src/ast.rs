//! Abstract syntax tree for RPCL specifications.

/// A complete parsed specification (one `.x` file).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Spec {
    /// Top-level definitions in source order.
    pub definitions: Vec<Definition>,
}

/// One top-level definition.
#[derive(Debug, Clone, PartialEq)]
pub enum Definition {
    /// `const NAME = value;`
    Const(ConstDef),
    /// `enum name { ... };`
    Enum(EnumDef),
    /// `struct name { ... };`
    Struct(StructDef),
    /// `union name switch (...) { ... };`
    Union(UnionDef),
    /// `typedef declaration;`
    Typedef(TypedefDef),
    /// `program NAME { ... } = number;`
    Program(ProgramDef),
}

/// A named integer constant.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDef {
    /// RPCL name (conventionally upper case).
    pub name: String,
    /// Constant value.
    pub value: i64,
}

/// An enumeration.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumDef {
    /// Type name.
    pub name: String,
    /// `(variant name, value)` pairs in source order.
    pub variants: Vec<(String, i64)>,
}

/// A structure.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// Member declarations in source order.
    pub fields: Vec<Declaration>,
}

/// A discriminated union.
#[derive(Debug, Clone, PartialEq)]
pub struct UnionDef {
    /// Type name.
    pub name: String,
    /// Discriminant declaration (`int err`, `my_enum kind`, ...).
    pub discriminant: Declaration,
    /// Case arms. Each arm may be selected by several case values.
    pub cases: Vec<UnionCase>,
    /// Optional `default:` arm declaration (`None` body means `void`).
    pub default: Option<Option<Declaration>>,
}

/// One `case` arm of a union.
#[derive(Debug, Clone, PartialEq)]
pub struct UnionCase {
    /// The case values selecting this arm (resolved constants) paired with
    /// the spelling used in the source (for enum-discriminated unions).
    pub values: Vec<(i64, String)>,
    /// The arm's declaration; `None` = `void`.
    pub decl: Option<Declaration>,
}

/// A `typedef`.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedefDef {
    /// The declaration whose name becomes the new type name.
    pub decl: Declaration,
}

/// A `program` block.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramDef {
    /// Program name.
    pub name: String,
    /// Program number.
    pub number: i64,
    /// Versions in source order.
    pub versions: Vec<VersionDef>,
}

/// A `version` block inside a program.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionDef {
    /// Version name.
    pub name: String,
    /// Version number.
    pub number: i64,
    /// Procedures in source order.
    pub procedures: Vec<ProcedureDef>,
}

/// One remote procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcedureDef {
    /// Procedure name.
    pub name: String,
    /// Procedure number.
    pub number: i64,
    /// Result type (`Void` for `void`).
    pub result: TypeSpec,
    /// Argument types (empty or `[Void]` for `(void)`).
    pub args: Vec<TypeSpec>,
    /// Declared `idempotent` in the interface: safe to retransmit without
    /// at-most-once protection, so generated clients may auto-retry it.
    pub idempotent: bool,
    /// Declared `batchable` in the interface: an async, non-result-bearing
    /// op (plain `int` status result) that clients may record into a
    /// command batch instead of sending immediately. Codegen emits a
    /// `*_record` stub and an `is_batchable` table for these.
    pub batchable: bool,
}

/// A variable declaration: a type applied to a name with an optional
/// array/pointer decoration.
#[derive(Debug, Clone, PartialEq)]
pub struct Declaration {
    /// Declared name.
    pub name: String,
    /// Element or base type.
    pub ty: TypeSpec,
    /// Array/pointer decoration.
    pub kind: DeclKind,
}

/// How a declaration's type is decorated.
#[derive(Debug, Clone, PartialEq)]
pub enum DeclKind {
    /// Plain value: `T name`.
    Plain,
    /// Fixed array: `T name[N]`.
    FixedArray(u64),
    /// Variable array: `T name<max?>`; `None` = unbounded.
    VarArray(Option<u64>),
    /// Optional ("pointer"): `T *name`.
    Pointer,
}

/// Base type specifiers.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeSpec {
    /// `int`
    Int,
    /// `unsigned int` / `unsigned`
    UInt,
    /// `hyper`
    Hyper,
    /// `unsigned hyper`
    UHyper,
    /// `float`
    Float,
    /// `double`
    Double,
    /// `bool`
    Bool,
    /// `void`
    Void,
    /// `string` (only valid with `VarArray` decoration)
    StringType,
    /// `opaque` (only valid with array decorations)
    Opaque,
    /// Reference to a named type (struct/enum/union/typedef).
    Named(String),
}

impl TypeSpec {
    /// True for `void`.
    pub fn is_void(&self) -> bool {
        matches!(self, TypeSpec::Void)
    }
}

/// Convert an RPCL identifier to a Rust type name (`CamelCase`).
///
/// `ptr_result` → `PtrResult`, `CUDA_ERROR` → `CudaError`, `dint` → `Dint`.
pub fn rust_type_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut upper_next = true;
    for ch in name.chars() {
        if ch == '_' {
            upper_next = true;
        } else if upper_next {
            out.extend(ch.to_uppercase());
            upper_next = false;
        } else {
            out.extend(ch.to_lowercase());
        }
    }
    out
}

/// Convert an RPCL identifier to a Rust value/method name (`snake_case`).
pub fn rust_value_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    let mut prev_lower = false;
    for ch in name.chars() {
        if ch == '_' {
            out.push('_');
            prev_lower = false;
        } else if ch.is_uppercase() {
            if prev_lower {
                out.push('_');
            }
            out.extend(ch.to_lowercase());
            prev_lower = false;
        } else {
            out.push(ch);
            // Only a lowercase letter (not a digit) triggers an underscore
            // before the next uppercase letter: "C2C" → "c2c", not "c2_c".
            prev_lower = ch.is_lowercase();
        }
    }
    // Avoid Rust keywords that plausibly appear as field names.
    match out.as_str() {
        "type" | "fn" | "impl" | "ref" | "self" | "mod" | "use" | "move" | "box" | "in"
        | "loop" | "match" | "where" | "async" => format!("r#{out}"),
        _ => out,
    }
}

/// Convert an RPCL identifier to a Rust constant name (`SCREAMING_SNAKE`).
pub fn rust_const_name(name: &str) -> String {
    let snake = rust_value_name(name);
    snake.trim_start_matches("r#").to_uppercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(rust_type_name("ptr_result"), "PtrResult");
        assert_eq!(rust_type_name("CUDA_ERROR"), "CudaError");
        assert_eq!(rust_type_name("mem_data"), "MemData");
        assert_eq!(rust_type_name("x"), "X");
    }

    #[test]
    fn value_names() {
        assert_eq!(rust_value_name("CUDA_MALLOC"), "cuda_malloc");
        assert_eq!(rust_value_name("getDeviceCount"), "get_device_count");
        assert_eq!(rust_value_name("type"), "r#type");
    }

    #[test]
    fn const_names() {
        assert_eq!(rust_const_name("cuda_malloc"), "CUDA_MALLOC");
        assert_eq!(rust_const_name("RPC_PROG"), "RPC_PROG");
    }
}
