//! `rpclgen` — command-line RPCL→Rust compiler (the reproduction's `rpcgen`).
//!
//! Usage:
//! ```text
//! rpclgen [--client-only | --server-only] [--xdr-path P] [--oncrpc-path P] \
//!         [-o OUTPUT.rs] INPUT.x
//! ```

use rpcl::{generate, parse, Options};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut opts = Options::default();
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--client-only" => opts.server = false,
            "--server-only" => opts.client = false,
            "--xdr-path" => match args.next() {
                Some(p) => opts.xdr_path = p,
                None => return usage("--xdr-path requires a value"),
            },
            "--oncrpc-path" => match args.next() {
                Some(p) => opts.oncrpc_path = p,
                None => return usage("--oncrpc-path requires a value"),
            },
            "-o" => match args.next() {
                Some(p) => output = Some(p),
                None => return usage("-o requires a value"),
            },
            "-h" | "--help" => return usage(""),
            other if other.starts_with('-') => return usage(&format!("unknown flag {other}")),
            other => {
                if input.replace(other.to_string()).is_some() {
                    return usage("multiple input files given");
                }
            }
        }
    }

    let Some(input) = input else {
        return usage("no input file");
    };
    let source = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rpclgen: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match parse(&source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rpclgen: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let code = generate(&spec, &opts);
    match output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, code) {
                eprintln!("rpclgen: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{code}"),
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("rpclgen: {err}");
    }
    eprintln!(
        "usage: rpclgen [--client-only | --server-only] [--xdr-path P] \
         [--oncrpc-path P] [-o OUTPUT.rs] INPUT.x"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
