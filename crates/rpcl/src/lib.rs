//! RPCL compiler — the reproduction of RPC-Lib's code generation.
//!
//! The paper generates ONC RPC client code for Cricket from the RPCL
//! interface specification using Rust procedural macros, and the server side
//! with `rpcgen`. This crate plays both roles for the reproduction: it parses
//! the *Remote Procedure Call Language* (RFC 5531 §12 / RFC 4506) and emits
//! Rust source containing
//!
//! * data types (`struct`/`enum`/`union`/`typedef`) with [`xdr::Xdr`] impls,
//! * `const` items for RPCL constants and procedure numbers,
//! * a typed **client stub** per program version (wrapping
//!   `oncrpc::RpcClient`), and
//! * a **service trait + dispatcher** per program version (implementing
//!   `oncrpc::Dispatch`), the analogue of `rpcgen`'s server skeleton.
//!
//! `cricket-proto` runs this compiler from its `build.rs` over
//! `proto/cricket.x`, so the whole Cricket reproduction exercises this path
//! end to end — "functions listed in the RPCL file are immediately available
//! for applications" (paper §3.5).
//!
//! The supported grammar is the `rpcgen -N` (newstyle, multi-argument)
//! dialect:
//!
//! ```text
//! const C = 42;
//! enum e { A = 1, B = 2 };
//! struct s { int a; opaque blob<>; string name<64>; u *next; };
//! union r switch (int err) { case 0: unsigned hyper ptr; default: void; };
//! typedef opaque mem_data<>;
//! program PROG { version VERS { r PROC(s, int) = 1; } = 1; } = 0x20000099;
//! ```

pub mod ast;
pub mod codegen;
pub mod lexer;
pub mod parser;

pub use ast::Spec;
pub use codegen::{generate, Options};
pub use parser::parse;

/// Errors produced while compiling an RPCL specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// 1-based line where the problem was detected.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rpcl error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for Error {}

/// Convenience: parse `source` and generate Rust code with default options.
pub fn compile(source: &str) -> Result<String, Error> {
    let spec = parse(source)?;
    Ok(generate(&spec, &Options::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_smoke() {
        let src = r#"
            const ANSWER = 42;
            struct point { int x; int y; };
            program DEMO {
                version DEMO_V1 {
                    point MOVE(point) = 1;
                } = 1;
            } = 0x2000_0001;
        "#;
        // The grammar does not allow underscores in numbers; expect an error.
        assert!(compile(src).is_err());
    }

    #[test]
    fn end_to_end_valid() {
        let src = r#"
            const ANSWER = 42;
            struct point { int x; int y; };
            program DEMO {
                version DEMO_V1 {
                    point MOVE(point) = 1;
                } = 1;
            } = 536870913;
        "#;
        let out = compile(src).unwrap();
        assert!(out.contains("pub const ANSWER: i64 = 42;"));
        assert!(out.contains("pub struct Point"));
        assert!(out.contains("pub struct DemoV1Client"));
        assert!(out.contains("pub trait DemoV1Service"));
    }
}
