//! Build script: compile `proto/cricket.x` with the rpcl compiler.
//!
//! This is the reproduction's analogue of the paper's build flow, where
//! procedural macros generate client code from the RPCL spec at compile time
//! and `rpcgen` generates the server skeleton from the same file.

use std::path::PathBuf;

fn main() {
    println!("cargo:rerun-if-changed=proto/cricket.x");
    let source = std::fs::read_to_string("proto/cricket.x").expect("read proto/cricket.x");
    let spec = rpcl::parse(&source).unwrap_or_else(|e| panic!("cricket.x: {e}"));
    // `no_alloc` also emits the fixed-buffer CricketV1NoAllocClient used by
    // unikernel guests with a static request buffer.
    let opts = rpcl::Options {
        no_alloc: true,
        ..rpcl::Options::default()
    };
    let code = rpcl::generate(&spec, &opts);
    let out: PathBuf = std::env::var_os("OUT_DIR").expect("OUT_DIR").into();
    std::fs::write(out.join("cricket_proto.rs"), code).expect("write generated code");
}
