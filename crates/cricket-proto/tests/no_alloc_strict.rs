//! Strict regression for the `no_alloc` codegen mode: the generated
//! [`CricketV1NoAllocClient`] must perform **zero heap allocations,
//! period** — not just in the steady-state call loop (the weaker
//! guarantee `oncrpc/tests/zero_alloc.rs` checks for the pooled client),
//! but including client construction and the first call. Everything
//! lives in fixed-size buffers: the generated stub encodes into the
//! client's `[u8; BUF]` request array and decodes replies borrowed from
//! its `[u8; BUF]` reply array.
//!
//! The transport is a loopback built only from arrays: it captures one
//! request record, patches the request xid into a canned
//! `MSG_ACCEPTED`/`SUCCESS` reply, and serves it back.
//!
//! Installs [`oncrpc::telemetry::CountingAllocator`] process-wide, so
//! this file must stay a dedicated integration-test binary.

use cricket_proto::CricketV1NoAllocClient;
use oncrpc::telemetry::{allocation_count, CountingAllocator};
use oncrpc::Transport;
use std::io::{self, Read, Write};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// xid, REPLY, MSG_ACCEPTED, verf(0,0), SUCCESS — the fixed accepted-reply
/// header every canned reply starts with.
const REPLY_HEADER: usize = 24;
const REQ_CAP: usize = 1 << 15;
const REPLY_CAP: usize = 4 + REPLY_HEADER + 8 + 4096;

/// Allocation-free loopback "server": one request record in, one canned
/// success reply out. No `Vec` anywhere — a heap-allocating transport
/// would hide stub regressions from the counter.
struct Loopback {
    req: [u8; REQ_CAP],
    req_len: usize,
    reply: [u8; REPLY_CAP],
    reply_len: usize,
    reply_off: usize,
}

impl Loopback {
    /// A loopback whose reply carries `body` after the accepted-reply
    /// header (e.g. a BE i32 `0` for int-returning procs).
    fn new(body: &[u8]) -> Self {
        let payload = REPLY_HEADER + body.len();
        assert!(4 + payload <= REPLY_CAP);
        let mut reply = [0u8; REPLY_CAP];
        reply[..4].copy_from_slice(&(0x8000_0000u32 | payload as u32).to_be_bytes());
        reply[8..12].copy_from_slice(&1u32.to_be_bytes()); // msg_type = REPLY
        reply[4 + REPLY_HEADER..4 + payload].copy_from_slice(body);
        Self {
            req: [0u8; REQ_CAP],
            req_len: 0,
            reply,
            reply_len: 4 + payload,
            reply_off: 4 + payload,
        }
    }
}

impl Write for Loopback {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        assert!(
            self.req_len + buf.len() <= REQ_CAP,
            "request larger than the loopback buffer"
        );
        self.req[self.req_len..self.req_len + buf.len()].copy_from_slice(buf);
        self.req_len += buf.len();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.req_len != 0 {
            // xid sits right after the 4-byte record mark; echo it back.
            let xid: [u8; 4] = self.req[4..8].try_into().unwrap();
            self.reply[4..8].copy_from_slice(&xid);
            self.reply_off = 0;
            self.req_len = 0;
        }
        Ok(())
    }
}

impl Read for Loopback {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let avail = &self.reply[self.reply_off..self.reply_len];
        let n = avail.len().min(buf.len());
        buf[..n].copy_from_slice(&avail[..n]);
        self.reply_off += n;
        Ok(n)
    }
}

impl Transport for Loopback {
    fn describe(&self) -> String {
        "no-alloc loopback".into()
    }
}

/// One full client lifetime — construction plus a call mix covering every
/// generated encode shape (void args, scalar args, opaque payload args,
/// the new stripe and sparse procs) — under the allocation counter.
fn int_proc_round(payload: &[u8], sparse_blob: &[u8]) -> u64 {
    let before = allocation_count();
    let mut client: CricketV1NoAllocClient<Loopback, 8192> =
        CricketV1NoAllocClient::new(Loopback::new(&0i32.to_be_bytes()));
    client.set_client_token(0x0C0FFEE);
    for i in 0..200u64 {
        assert_eq!(client.cuda_set_device((i % 4) as i32).unwrap(), 0);
        assert_eq!(client.cuda_memcpy_htod(0x1000 + i, payload).unwrap(), 0);
        assert_eq!(
            client
                .cuda_memcpy_htod_stripe(0x1000, i * 4096, i as u32, payload)
                .unwrap(),
            0
        );
        assert_eq!(
            client.cuda_memcpy_htod_sparse(0x2000, sparse_blob).unwrap(),
            0
        );
        assert_eq!(client.cuda_memset(0x1000, 0, 64).unwrap(), 0);
        assert_eq!(client.cuda_device_synchronize().unwrap(), 0);
        assert_eq!(client.cuda_free(0x1000 + i).unwrap(), 0);
    }
    allocation_count() - before
}

#[test]
fn no_alloc_client_never_touches_the_heap() {
    // Prepared outside the measured window: the *application* may
    // allocate its payloads; the generated client must not.
    let payload = [0x5au8; 4096];
    let mut sparse_blob = Vec::new();
    let sparse_raw = [0u8; 8192];
    oncrpc::sparse::encode_into(&sparse_raw, 4096, &mut sparse_blob);

    // The counter is process-wide, so allocations from other threads (the
    // libtest harness) can leak into a measured window. A genuine stub
    // allocation happens in *every* round; ambient noise does not.
    // Run whole client lifetimes and require one to be exactly zero.
    let mut best = u64::MAX;
    for _ in 0..5 {
        best = best.min(int_proc_round(&payload, &sparse_blob));
        if best == 0 {
            break;
        }
    }
    assert_eq!(
        best, 0,
        "no_alloc client performed {best} heap allocations across a full \
         construct-and-1400-calls lifetime"
    );
}

/// The borrowed-bulk decode path (`(i32, &[u8])` returns) is also
/// allocation-free: D2H data is served as a slice into the client's
/// fixed reply buffer, never copied to the heap.
#[test]
fn bulk_returns_borrow_from_the_fixed_reply_buffer() {
    let mut body = [0u8; 4 + 4 + 256];
    body[..4].copy_from_slice(&0i32.to_be_bytes()); // err = 0
    body[4..8].copy_from_slice(&256u32.to_be_bytes()); // opaque<> length
    for (i, b) in body[8..].iter_mut().enumerate() {
        *b = i as u8;
    }

    let mut best = u64::MAX;
    for _ in 0..5 {
        let before = allocation_count();
        let mut client: CricketV1NoAllocClient<Loopback, 8192> =
            CricketV1NoAllocClient::new(Loopback::new(&body));
        for _ in 0..200 {
            let (err, data) = client.cuda_memcpy_dtoh(0x1000, 256).unwrap();
            assert_eq!(err, 0);
            assert_eq!(data.len(), 256);
            assert_eq!(data[0], 0);
            assert_eq!(data[255], 255);
        }
        best = best.min(allocation_count() - before);
        if best == 0 {
            break;
        }
    }
    assert_eq!(
        best, 0,
        "bulk D2H decode performed {best} heap allocations per lifetime"
    );
}
