//! Cricket CUDA RPC protocol, generated from `proto/cricket.x`.
//!
//! Everything in this crate is produced by the `rpcl` compiler at build time;
//! the `.x` file is the single source of truth for the wire protocol, exactly
//! as in the paper: *"functions listed in the RPCL file are immediately
//! available for applications"* (§3.5). The items of interest are:
//!
//! * [`CRICKET_CUDA`] / [`CRICKET_V1`] — program and version numbers,
//! * [`cricket_v1`] — procedure-number constants,
//! * data types ([`RpcDim3`], [`DeviceProp`], [`U64Result`], ...),
//! * [`CricketV1Client`] — the typed client stub (used by `cricket-client`),
//! * [`CricketV1Service`] / [`CricketV1Dispatch`] — the server skeleton
//!   (implemented by `cricket-server`).

include!(concat!(env!("OUT_DIR"), "/cricket_proto.rs"));

/// Convenience: convert a `u64_result` into `Result<u64, i32>`.
impl U64Result {
    /// Unwrap into `Result`, mapping the error arm to its raw code.
    pub fn into_result(self) -> Result<u64, i32> {
        match self {
            U64Result::Data(v) => Ok(v),
            U64Result::Default(err) => Err(err),
        }
    }
}

/// Convenience: convert an `int_result` into `Result<i32, i32>`.
impl IntResult {
    /// Unwrap into `Result`, mapping the error arm to its raw code.
    pub fn into_result(self) -> Result<i32, i32> {
        match self {
            IntResult::Data(v) => Ok(v),
            IntResult::Default(err) => Err(err),
        }
    }
}

/// Convenience: convert a `data_result` into `Result<Vec<u8>, i32>`.
impl DataResult {
    /// Unwrap into `Result`, mapping the error arm to its raw code.
    pub fn into_result(self) -> Result<Vec<u8>, i32> {
        match self {
            DataResult::Data(v) => Ok(v),
            DataResult::Default(err) => Err(err),
        }
    }
}

/// Convenience: convert a `float_result` into `Result<f32, i32>`.
impl FloatResult {
    /// Unwrap into `Result`, mapping the error arm to its raw code.
    pub fn into_result(self) -> Result<f32, i32> {
        match self {
            FloatResult::Data(v) => Ok(v),
            FloatResult::Default(err) => Err(err),
        }
    }
}

impl RpcDim3 {
    /// A 1×1×1 geometry.
    pub fn one() -> Self {
        Self { x: 1, y: 1, z: 1 }
    }

    /// Total element count (x·y·z).
    pub fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }
}

impl From<(u32, u32, u32)> for RpcDim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Self {
        Self { x, y, z }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_constants_match_spec() {
        assert_eq!(CRICKET_CUDA, 537395001);
        assert_eq!(CRICKET_V1, 1);
        assert_eq!(cricket_v1::RPC_NULL, 0);
        assert_eq!(cricket_v1::CUDA_MALLOC, 7);
        assert_eq!(cricket_v1::CUDA_LAUNCH_KERNEL, 23);
        assert_eq!(cricket_v1::CUSOLVER_DN_DGETRS, 54);
        assert_eq!(cricket_v1::SRV_SET_SCHEDULER, 64);
    }

    /// The batch-exec procedure must stay out of the idempotent table: a
    /// batch may contain non-idempotent sub-ops, so only the *client* may
    /// tag a flush retryable (and only when every recorded op is
    /// idempotent). The batchable table must list exactly the async
    /// status-only ops.
    #[test]
    fn batch_exec_tagging() {
        use cricket_v1::*;
        assert_eq!(CRICKET_BATCH_EXEC, 80);
        assert!(!is_idempotent(CRICKET_BATCH_EXEC));
        assert!(!is_batchable(CRICKET_BATCH_EXEC));
        for proc in [
            CUDA_MEMCPY_HTOD,
            CUDA_MEMCPY_DTOD,
            CUDA_MEMSET,
            CUDA_LAUNCH_KERNEL,
            CUDA_EVENT_RECORD,
            CUFFT_EXEC_C2C,
            CUFFT_EXEC_Z2Z,
            CUDA_MEMCPY_HTOD_SPARSE,
        ] {
            assert!(is_batchable(proc), "proc {proc} must be batchable");
            assert!(
                !is_idempotent(proc),
                "batchable proc {proc} is async/state-changing"
            );
        }
        // Sync points and handle-creating calls must never be batchable.
        for proc in [
            CUDA_DEVICE_SYNCHRONIZE,
            CUDA_STREAM_SYNCHRONIZE,
            CUDA_EVENT_SYNCHRONIZE,
            CUDA_MALLOC,
            CUDA_MEMCPY_DTOH,
        ] {
            assert!(!is_batchable(proc), "proc {proc} must not be batchable");
        }
        // Stripe procs: a write stripe mutates device memory (exactly-once
        // only via the replay cache, so NOT idempotent, NOT batchable —
        // striping exists to bypass single-connection serialization); a
        // read stripe is pure and freely retryable.
        assert_eq!(CUDA_MEMCPY_HTOD_STRIPE, 81);
        assert_eq!(CUDA_MEMCPY_DTOH_STRIPE, 82);
        assert_eq!(CUDA_MEMCPY_HTOD_SPARSE, 83);
        assert!(!is_idempotent(CUDA_MEMCPY_HTOD_STRIPE));
        assert!(!is_batchable(CUDA_MEMCPY_HTOD_STRIPE));
        assert!(is_idempotent(CUDA_MEMCPY_DTOH_STRIPE));
        assert!(!is_batchable(CUDA_MEMCPY_DTOH_STRIPE));
        assert!(!is_idempotent(CUDA_MEMCPY_HTOD_SPARSE));
    }

    #[test]
    fn batch_receipt_roundtrips() {
        let r = BatchResult::Receipt(BatchReceipt {
            statuses: vec![0, 0, 719, -1].into(),
            executed: 3,
            queued_ns: 12_000,
            last_completes_at_ns: 99_000,
        });
        let buf = xdr::encode(&r);
        assert_eq!(xdr::decode::<BatchResult>(&buf).unwrap(), r);
        let e = BatchResult::Default(400);
        let buf = xdr::encode(&e);
        assert_eq!(xdr::decode::<BatchResult>(&buf).unwrap(), e);
    }

    #[test]
    fn cuda_error_codes() {
        assert_eq!(CudaError::CudaSuccess as i32, 0);
        assert_eq!(CudaError::CudaErrorInvalidHandle as i32, 400);
        assert_eq!(
            CudaError::from_i32(719),
            Some(CudaError::CudaErrorLaunchFailure)
        );
        assert_eq!(CudaError::from_i32(12345), None);
    }

    #[test]
    fn result_union_roundtrips() {
        for v in [
            U64Result::Data(0xdead_beef_0000_0001),
            U64Result::Default(2),
        ] {
            let buf = xdr::encode(&v);
            assert_eq!(xdr::decode::<U64Result>(&buf).unwrap(), v);
        }
        let d = DataResult::Data(vec![1, 2, 3, 4, 5]);
        let buf = xdr::encode(&d);
        assert_eq!(xdr::decode::<DataResult>(&buf).unwrap(), d);
    }

    #[test]
    fn device_prop_roundtrip() {
        let p = DeviceProp {
            name: "NVIDIA A100-PCIE-40GB".into(),
            total_global_mem: 40 << 30,
            multi_processor_count: 108,
            clock_rate_khz: 1_410_000,
            major: 8,
            minor: 0,
            warp_size: 32,
            max_threads_per_block: 1024,
            memory_bandwidth_bytes_per_sec: 1_555_000_000_000,
        };
        let buf = xdr::encode(&p);
        assert_eq!(xdr::decode::<DeviceProp>(&buf).unwrap(), p);
    }

    #[test]
    fn dim3_helpers() {
        let d: RpcDim3 = (2, 3, 4).into();
        assert_eq!(d.count(), 24);
        assert_eq!(RpcDim3::one().count(), 1);
        let buf = xdr::encode(&d);
        assert_eq!(buf.len(), 12);
    }

    #[test]
    fn into_result_helpers() {
        assert_eq!(U64Result::Data(5).into_result(), Ok(5));
        assert_eq!(U64Result::Default(2).into_result(), Err(2));
        assert_eq!(IntResult::Data(-1).into_result(), Ok(-1));
        assert_eq!(FloatResult::Data(1.5).into_result(), Ok(1.5));
        assert_eq!(DataResult::Default(400).into_result(), Err(400));
    }

    /// The generated client and server must agree end to end over an
    /// in-memory transport, with a trivial hand-written service.
    #[test]
    fn generated_stub_and_skeleton_agree() {
        use oncrpc::{duplex_pair, RpcServer};
        use std::sync::Arc;

        struct Fake;
        #[allow(unused_variables)]
        impl CricketV1Service for Fake {
            fn rpc_null(&self) -> Result<(), oncrpc::AcceptStat> {
                Ok(())
            }
            fn cuda_get_device_count(&self) -> Result<IntResult, oncrpc::AcceptStat> {
                Ok(IntResult::Data(4))
            }
            fn cuda_get_device_properties(
                &self,
                arg0: i32,
            ) -> Result<PropResult, oncrpc::AcceptStat> {
                Ok(PropResult::Default(101))
            }
            fn cuda_set_device(&self, arg0: i32) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn cuda_get_device(&self) -> Result<IntResult, oncrpc::AcceptStat> {
                Ok(IntResult::Data(0))
            }
            fn cuda_device_synchronize(&self) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn cuda_device_reset(&self) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn cuda_malloc(&self, arg0: u64) -> Result<U64Result, oncrpc::AcceptStat> {
                Ok(U64Result::Data(0x1000 + arg0))
            }
            fn cuda_free(&self, arg0: u64) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn cuda_memcpy_htod(&self, arg0: u64, arg1: &[u8]) -> Result<i32, oncrpc::AcceptStat> {
                Ok(arg1.len() as i32)
            }
            fn cuda_memcpy_dtoh(
                &self,
                arg0: u64,
                arg1: u64,
            ) -> Result<DataResult, oncrpc::AcceptStat> {
                Ok(DataResult::Data(vec![7u8; arg1 as usize]))
            }
            fn cuda_memcpy_dtod(
                &self,
                arg0: u64,
                arg1: u64,
                arg2: u64,
            ) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn cuda_memset(
                &self,
                arg0: u64,
                arg1: i32,
                arg2: u64,
            ) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn cuda_memcpy_htod_stripe(
                &self,
                arg0: u64,
                arg1: u64,
                arg2: u32,
                arg3: &[u8],
            ) -> Result<i32, oncrpc::AcceptStat> {
                let _ = arg2;
                Ok((arg0 + arg1) as i32 + arg3.len() as i32)
            }
            fn cuda_memcpy_dtoh_stripe(
                &self,
                arg0: u64,
                arg1: u64,
                arg2: u64,
                arg3: u32,
            ) -> Result<DataResult, oncrpc::AcceptStat> {
                let _ = (arg0, arg1, arg3);
                Ok(DataResult::Data(vec![8u8; arg2 as usize]))
            }
            fn cuda_memcpy_htod_sparse(
                &self,
                arg0: u64,
                arg1: &[u8],
            ) -> Result<i32, oncrpc::AcceptStat> {
                let _ = arg0;
                Ok(arg1.len() as i32)
            }
            fn cuda_mem_get_info(&self) -> Result<MemInfoResult, oncrpc::AcceptStat> {
                Ok(MemInfoResult::Info(MemInfo { free: 1, total: 2 }))
            }
            fn cuda_get_last_error(&self) -> Result<IntResult, oncrpc::AcceptStat> {
                Ok(IntResult::Data(0))
            }
            fn cu_module_load_data(&self, arg0: &[u8]) -> Result<U64Result, oncrpc::AcceptStat> {
                Ok(U64Result::Data(arg0.len() as u64))
            }
            fn cu_module_get_function(
                &self,
                arg0: u64,
                arg1: &str,
            ) -> Result<U64Result, oncrpc::AcceptStat> {
                Ok(U64Result::Data(arg0 + arg1.len() as u64))
            }
            fn cu_module_unload(&self, arg0: u64) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn cuda_launch_kernel(
                &self,
                arg0: u64,
                arg1: RpcDim3,
                arg2: RpcDim3,
                arg3: u32,
                arg4: u64,
                arg5: &[u8],
            ) -> Result<i32, oncrpc::AcceptStat> {
                Ok((arg1.count() * arg2.count()) as i32)
            }
            fn cuda_stream_create(&self) -> Result<U64Result, oncrpc::AcceptStat> {
                Ok(U64Result::Data(1))
            }
            fn cuda_stream_destroy(&self, arg0: u64) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn cuda_stream_synchronize(&self, arg0: u64) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn cuda_event_create(&self) -> Result<U64Result, oncrpc::AcceptStat> {
                Ok(U64Result::Data(2))
            }
            fn cuda_event_record(&self, arg0: u64, arg1: u64) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn cuda_event_synchronize(&self, arg0: u64) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn cuda_event_elapsed_time(
                &self,
                arg0: u64,
                arg1: u64,
            ) -> Result<FloatResult, oncrpc::AcceptStat> {
                Ok(FloatResult::Data(1.25))
            }
            fn cuda_event_destroy(&self, arg0: u64) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn cublas_create(&self) -> Result<U64Result, oncrpc::AcceptStat> {
                Ok(U64Result::Data(3))
            }
            fn cublas_destroy(&self, arg0: u64) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            #[allow(clippy::too_many_arguments)]
            fn cublas_sgemm(
                &self,
                arg0: u64,
                arg1: i32,
                arg2: i32,
                arg3: i32,
                arg4: i32,
                arg5: i32,
                arg6: f32,
                arg7: u64,
                arg8: i32,
                arg9: u64,
                arg10: i32,
                arg11: f32,
                arg12: u64,
                arg13: i32,
            ) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            #[allow(clippy::too_many_arguments)]
            fn cublas_dgemm(
                &self,
                arg0: u64,
                arg1: i32,
                arg2: i32,
                arg3: i32,
                arg4: i32,
                arg5: i32,
                arg6: f64,
                arg7: u64,
                arg8: i32,
                arg9: u64,
                arg10: i32,
                arg11: f64,
                arg12: u64,
                arg13: i32,
            ) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn cusolver_dn_create(&self) -> Result<U64Result, oncrpc::AcceptStat> {
                Ok(U64Result::Data(4))
            }
            fn cusolver_dn_destroy(&self, arg0: u64) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn cusolver_dn_dgetrf_buffer_size(
                &self,
                arg0: u64,
                arg1: i32,
                arg2: i32,
                arg3: u64,
                arg4: i32,
            ) -> Result<IntResult, oncrpc::AcceptStat> {
                Ok(IntResult::Data(arg1 * arg2))
            }
            #[allow(clippy::too_many_arguments)]
            fn cusolver_dn_dgetrf(
                &self,
                arg0: u64,
                arg1: i32,
                arg2: i32,
                arg3: u64,
                arg4: i32,
                arg5: u64,
                arg6: u64,
                arg7: u64,
            ) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            #[allow(clippy::too_many_arguments)]
            fn cusolver_dn_dgetrs(
                &self,
                arg0: u64,
                arg1: i32,
                arg2: i32,
                arg3: i32,
                arg4: u64,
                arg5: i32,
                arg6: u64,
                arg7: u64,
                arg8: i32,
                arg9: u64,
            ) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn cufft_plan_1d(
                &self,
                arg0: i32,
                arg1: i32,
                arg2: i32,
            ) -> Result<U64Result, oncrpc::AcceptStat> {
                Ok(U64Result::Data((arg0 + arg1 + arg2) as u64))
            }
            fn cufft_destroy(&self, arg0: u64) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn cufft_exec_c2c(
                &self,
                arg0: u64,
                arg1: u64,
                arg2: u64,
                arg3: i32,
            ) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn cufft_exec_z2z(
                &self,
                arg0: u64,
                arg1: u64,
                arg2: u64,
                arg3: i32,
            ) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn cricket_batch_exec(&self, arg0: &[u8]) -> Result<BatchResult, oncrpc::AcceptStat> {
                // Count the sub-ops without interpreting them.
                let mut dec = xdr::XdrDecoder::new(arg0);
                let count = dec.get_u32().map_err(|_| oncrpc::AcceptStat::GarbageArgs)?;
                Ok(BatchResult::Receipt(BatchReceipt {
                    statuses: vec![0; count as usize].into(),
                    executed: count,
                    queued_ns: 0,
                    last_completes_at_ns: 0,
                }))
            }
            fn ckpt_capture(&self) -> Result<DataResult, oncrpc::AcceptStat> {
                Ok(DataResult::Data(vec![9, 9]))
            }
            fn ckpt_restore(&self, arg0: &[u8]) -> Result<i32, oncrpc::AcceptStat> {
                Ok(arg0.len() as i32)
            }
            fn srv_get_stats(&self) -> Result<ServerStats, oncrpc::AcceptStat> {
                Ok(ServerStats {
                    total_calls: 1,
                    bytes_in: 2,
                    bytes_out: 3,
                    kernels_launched: 4,
                    active_sessions: 5,
                    device_time_ns: 6,
                })
            }
            fn srv_reset_stats(&self) -> Result<i32, oncrpc::AcceptStat> {
                Ok(0)
            }
            fn srv_set_scheduler(&self, arg0: i32) -> Result<i32, oncrpc::AcceptStat> {
                Ok(arg0)
            }
            fn mig_apply_base(&self, arg0: &[u8]) -> Result<i32, oncrpc::AcceptStat> {
                Ok(arg0.len() as i32)
            }
            fn mig_apply_delta(&self, arg0: &[u8]) -> Result<IntResult, oncrpc::AcceptStat> {
                Ok(IntResult::Data(arg0.len() as i32))
            }
            fn mig_abort(&self, arg0: u64) -> Result<i32, oncrpc::AcceptStat> {
                Ok(arg0 as i32)
            }
            fn cricket_qos_set(&self, arg0: QosParams) -> Result<i32, oncrpc::AcceptStat> {
                Ok(arg0.weight as i32)
            }
        }

        let server = Arc::new(RpcServer::new());
        server.register(CRICKET_CUDA, CRICKET_V1, Arc::new(CricketV1Dispatch(Fake)));
        let (client_end, server_end) = duplex_pair();
        std::thread::spawn(move || {
            let mut conn = server_end;
            let _ = server.serve_connection(&mut conn);
        });
        let mut client = CricketV1Client::new(Box::new(client_end));

        client.rpc_null().unwrap();
        assert_eq!(client.cuda_get_device_count().unwrap(), IntResult::Data(4));
        assert_eq!(
            client.cuda_malloc(&256).unwrap().into_result().unwrap(),
            0x1100
        );
        assert_eq!(client.cuda_memcpy_htod(&0x1000, &[1, 2, 3]).unwrap(), 3);
        let back = client
            .cuda_memcpy_dtoh(&0x1000, &5)
            .unwrap()
            .into_result()
            .unwrap();
        assert_eq!(back, vec![7u8; 5]);
        let launched = client
            .cuda_launch_kernel(&0xf, &(4, 2, 1).into(), &(32, 1, 1).into(), &0, &0, &[])
            .unwrap();
        assert_eq!(launched, 8 * 32);
        let stats = client.srv_get_stats().unwrap();
        assert_eq!(stats.active_sessions, 5);
        assert_eq!(
            client.cuda_event_elapsed_time(&1, &2).unwrap(),
            FloatResult::Data(1.25)
        );
        assert_eq!(
            client.cuda_get_device_properties(&0).unwrap(),
            PropResult::Default(101)
        );
    }
}
