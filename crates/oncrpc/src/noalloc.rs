//! Allocation-free RPC client for unikernel guests.
//!
//! [`NoAllocRpcClient`] is the transport layer under the `no_alloc` rpcl
//! codegen mode: every call encodes into a fixed request array with
//! [`xdr::FixedEncoder`], hand-writes the RPC call header, sends the record
//! as one fragment, and reassembles the reply into a fixed reply array —
//! zero heap traffic, construction included. The allocating [`RpcClient`]
//! (retry policies, reconnection, scatter-gather bulk arguments) remains the
//! full-featured path; this client trades that machinery for a guaranteed
//! no-allocation steady state, which is what a unikernel guest with a static
//! heap budget wants on its call path.
//!
//! `BUF` bounds both the encoded request (header + arguments) and the
//! reassembled reply. Requests that do not fit fail with
//! [`RpcError::RecordTooLarge`] before any byte is written; replies that do
//! not fit fail the same way without over-reading the stream beyond the
//! offending fragment header.
//!
//! [`RpcClient`]: crate::client::RpcClient

use crate::error::{RpcError, RpcResult};
use crate::msg::{AcceptStat, RejectStat};
use crate::transport::Transport;
use xdr::{FixedEncoder, XdrDecoder};

const LAST_FRAGMENT: u32 = 0x8000_0000;
const LENGTH_MASK: u32 = 0x7fff_ffff;

/// Stale reply records tolerated per receive (mirrors `RpcClient`).
const MAX_STALE_REPLIES: u32 = 8;

/// Fixed-buffer synchronous RPC client: no allocation ever, including
/// construction.
pub struct NoAllocRpcClient<T: Transport, const BUF: usize> {
    transport: T,
    prog: u32,
    vers: u32,
    next_xid: u32,
    /// Client-instance token sent as an `AUTH_SHORT` credential when set
    /// (keys the server's replay cache), else `AUTH_NONE`.
    token: Option<u64>,
    /// Request record: 4-byte fragment header + encoded call.
    req: [u8; BUF],
    /// Reassembled reply record.
    reply: [u8; BUF],
}

impl<T: Transport, const BUF: usize> NoAllocRpcClient<T, BUF> {
    /// Create a client for `prog`/`vers` over `transport`. Allocation-free.
    pub fn new(transport: T, prog: u32, vers: u32) -> Self {
        Self {
            transport,
            prog,
            vers,
            next_xid: 1,
            token: None,
            req: [0u8; BUF],
            reply: [0u8; BUF],
        }
    }

    /// Send an `AUTH_SHORT` client token with every call (replay-cache key).
    pub fn set_client_token(&mut self, token: u64) {
        self.token = Some(token);
    }

    /// Access the transport (e.g. to set a read timeout).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Issue procedure `proc`; `encode_args` appends the arguments. Returns
    /// the reply result payload borrowed from the fixed reply buffer (valid
    /// until the next call).
    pub fn call(
        &mut self,
        proc: u32,
        encode_args: impl FnOnce(&mut FixedEncoder<'_>),
    ) -> RpcResult<&[u8]> {
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);

        // Encode past the 4-byte fragment header slot.
        let mut enc = FixedEncoder::new(&mut self.req[4..]);
        enc.put_u32(xid);
        enc.put_u32(0); // CALL
        enc.put_u32(crate::RPC_VERSION);
        enc.put_u32(self.prog);
        enc.put_u32(self.vers);
        enc.put_u32(proc);
        match self.token {
            // AUTH_SHORT carrying the 8-byte token (already 4-aligned).
            Some(token) => {
                enc.put_u32(crate::auth::AuthFlavor::Short as u32);
                enc.put_opaque(&token.to_be_bytes());
            }
            None => {
                enc.put_u32(0); // AUTH_NONE
                enc.put_u32(0);
            }
        }
        enc.put_u32(0); // verf AUTH_NONE
        enc.put_u32(0);
        encode_args(&mut enc);
        let len = enc.finish().map_err(|_| RpcError::RecordTooLarge {
            size: enc.len() + 4,
            max: BUF,
        })?;
        let header = (len as u32 & LENGTH_MASK) | LAST_FRAGMENT;
        self.req[..4].copy_from_slice(&header.to_be_bytes());
        self.transport.write_all(&self.req[..4 + len])?;
        self.transport.flush()?;

        let (payload_start, payload_end) =
            Self::receive_reply(&mut self.transport, &mut self.reply, xid)?;
        Ok(&self.reply[payload_start..payload_end])
    }

    /// Read reply records until `xid` answers, draining stale replies.
    /// Returns the result payload's bounds within `reply`.
    fn receive_reply(
        transport: &mut T,
        reply: &mut [u8; BUF],
        xid: u32,
    ) -> RpcResult<(usize, usize)> {
        let mut last_got = 0u32;
        for _ in 0..MAX_STALE_REPLIES {
            let record_len = Self::read_record(transport, reply)?;
            match Self::parse_reply(&reply[..record_len], xid)? {
                Some(start) => return Ok((start, record_len)),
                None => {
                    // Stale xid: the reply we want is still ahead.
                    last_got = u32::from_be_bytes([reply[0], reply[1], reply[2], reply[3]]);
                }
            }
        }
        Err(RpcError::XidMismatch {
            expected: xid,
            got: last_got,
        })
    }

    /// Reassemble one record-marked reply into `reply`, returning its length.
    fn read_record(transport: &mut T, reply: &mut [u8; BUF]) -> RpcResult<usize> {
        let mut total = 0usize;
        loop {
            let mut mark = [0u8; 4];
            transport.read_exact(&mut mark)?;
            let header = u32::from_be_bytes(mark);
            let frag_len = (header & LENGTH_MASK) as usize;
            if total + frag_len > BUF {
                return Err(RpcError::RecordTooLarge {
                    size: total + frag_len,
                    max: BUF,
                });
            }
            transport.read_exact(&mut reply[total..total + frag_len])?;
            total += frag_len;
            if header & LAST_FRAGMENT != 0 {
                return Ok(total);
            }
        }
    }

    /// Parse an accepted/denied reply header. Returns `Ok(Some(offset))` of
    /// the result payload on success, `Ok(None)` for a stale xid.
    fn parse_reply(record: &[u8], xid: u32) -> RpcResult<Option<usize>> {
        let mut dec = XdrDecoder::new(record);
        if dec.get_u32()? != xid {
            return Ok(None);
        }
        if dec.get_u32()? != 1 {
            return Err(RpcError::UnexpectedMessageType);
        }
        match dec.get_u32()? {
            0 => {
                // MSG_ACCEPTED: verifier (flavor + opaque), accept_stat.
                dec.get_u32()?;
                dec.get_opaque_ref()?;
                match dec.get_u32()? {
                    0 => Ok(Some(dec.position())),
                    6 => {
                        let hi = dec.get_u32()?;
                        let lo = dec.get_u32()?;
                        Err(RpcError::Busy {
                            retry_after_ns: ((hi as u64) << 32) | lo as u64,
                        })
                    }
                    stat => Err(RpcError::Accepted(match stat {
                        1 => AcceptStat::ProgUnavail,
                        2 => AcceptStat::ProgMismatch,
                        3 => AcceptStat::ProcUnavail,
                        4 => AcceptStat::GarbageArgs,
                        _ => AcceptStat::SystemErr,
                    })),
                }
            }
            1 => match dec.get_u32()? {
                0 => Err(RpcError::Rejected(RejectStat::RpcMismatch {
                    low: dec.get_u32()?,
                    high: dec.get_u32()?,
                })),
                _ => Err(RpcError::Rejected(RejectStat::AuthError(dec.get_u32()?))),
            },
            _ => Err(RpcError::UnexpectedMessageType),
        }
    }
}

impl<T: Transport, const BUF: usize> std::fmt::Debug for NoAllocRpcClient<T, BUF> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NoAllocRpcClient")
            .field("prog", &self.prog)
            .field("vers", &self.vers)
            .field("next_xid", &self.next_xid)
            .field("buf", &BUF)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// Loopback transport over fixed arrays: records the request, serves
    /// pre-canned reply records (xid patched from the request) on read.
    struct Loopback {
        req: [u8; 512],
        req_len: usize,
        reply: [u8; 512],
        reply_len: usize,
        read_pos: usize,
        /// Split the reply into fragments of this size when nonzero.
        refragment: usize,
        refrag: [u8; 512],
        refrag_len: usize,
    }

    impl Loopback {
        fn new() -> Self {
            Self {
                req: [0; 512],
                req_len: 0,
                reply: [0; 512],
                reply_len: 0,
                read_pos: 0,
                refragment: 0,
                refrag: [0; 512],
                refrag_len: 0,
            }
        }

        /// Queue an accepted-success reply whose payload is `result` and
        /// whose xid is patched at read time from the last request.
        fn canned_success(&mut self, result: &[u8]) {
            let body_len = 24 + result.len();
            let mark = (body_len as u32) | LAST_FRAGMENT;
            self.reply[..4].copy_from_slice(&mark.to_be_bytes());
            // xid placeholder at [4..8], patched in read().
            self.reply[8..12].copy_from_slice(&1u32.to_be_bytes()); // REPLY
            self.reply[12..16].copy_from_slice(&0u32.to_be_bytes()); // ACCEPTED
            self.reply[16..20].copy_from_slice(&0u32.to_be_bytes()); // verf flavor
            self.reply[20..24].copy_from_slice(&0u32.to_be_bytes()); // verf len
            self.reply[24..28].copy_from_slice(&0u32.to_be_bytes()); // SUCCESS
            self.reply[28..28 + result.len()].copy_from_slice(result);
            self.reply_len = 4 + body_len;
            self.read_pos = 0;
        }

        /// The xid of the most recent request (record body starts at 4).
        fn req_xid(&self) -> [u8; 4] {
            [self.req[4], self.req[5], self.req[6], self.req[7]]
        }
    }

    impl Read for Loopback {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.read_pos == 0 && self.reply_len > 0 {
                // Patch the canned xid, then optionally refragment.
                let xid = self.req_xid();
                self.reply[4..8].copy_from_slice(&xid);
                if self.refragment > 0 {
                    let body = self.reply_len - 4;
                    let frag = self.refragment;
                    let mut out = 0usize;
                    let mut off = 4usize;
                    let mut left = body;
                    while left > 0 {
                        let this = left.min(frag);
                        let last = this == left;
                        let mark = (this as u32) | if last { LAST_FRAGMENT } else { 0 };
                        self.refrag[out..out + 4].copy_from_slice(&mark.to_be_bytes());
                        out += 4;
                        let (dst, src) = (&mut self.refrag, &self.reply);
                        dst[out..out + this].copy_from_slice(&src[off..off + this]);
                        out += this;
                        off += this;
                        left -= this;
                    }
                    self.refrag_len = out;
                } else {
                    let (dst, src) = (&mut self.refrag, &self.reply);
                    dst[..self.reply_len].copy_from_slice(&src[..self.reply_len]);
                    self.refrag_len = self.reply_len;
                }
            }
            let avail = self.refrag_len.saturating_sub(self.read_pos);
            if avail == 0 {
                return Ok(0);
            }
            let n = avail.min(buf.len());
            buf[..n].copy_from_slice(&self.refrag[self.read_pos..self.read_pos + n]);
            self.read_pos += n;
            Ok(n)
        }
    }

    impl Write for Loopback {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.req[self.req_len..self.req_len + buf.len()].copy_from_slice(buf);
            self.req_len += buf.len();
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Transport for Loopback {}

    #[test]
    fn call_roundtrips_and_returns_payload() {
        let mut lo = Loopback::new();
        lo.canned_success(&7i32.to_be_bytes());
        let mut client: NoAllocRpcClient<Loopback, 256> = NoAllocRpcClient::new(lo, 99, 1);
        let reply = client.call(4, |enc| enc.put_u64(0xdead_beef)).unwrap();
        assert_eq!(reply, 7i32.to_be_bytes());
    }

    #[test]
    fn request_header_matches_allocating_client_layout() {
        let mut lo = Loopback::new();
        lo.canned_success(&[]);
        let mut client: NoAllocRpcClient<Loopback, 256> = NoAllocRpcClient::new(lo, 0x10, 0x2);
        client.call(0x3, |_| {}).unwrap();
        let req = &client.transport.req[..client.transport.req_len];
        // Record mark: last fragment, 40-byte AUTH_NONE header + no args.
        assert_eq!(&req[..4], &(40u32 | LAST_FRAGMENT).to_be_bytes());
        // Compare against the canonical encoder's call header.
        let msg = crate::msg::RpcMessage::call(
            u32::from_be_bytes([req[4], req[5], req[6], req[7]]),
            crate::msg::CallBody::new(0x10, 0x2, 0x3),
        );
        assert_eq!(&req[4..], xdr::encode(&msg).as_slice());
    }

    #[test]
    fn client_token_travels_as_auth_short() {
        let mut lo = Loopback::new();
        lo.canned_success(&[]);
        let mut client: NoAllocRpcClient<Loopback, 256> = NoAllocRpcClient::new(lo, 9, 1);
        client.set_client_token(0xc11e_0001);
        client.call(1, |_| {}).unwrap();
        let req = &client.transport.req[..client.transport.req_len];
        let msg: crate::msg::RpcMessage = xdr::decode(&req[4..]).unwrap();
        match msg.body {
            crate::msg::MessageBody::Call(c) => {
                assert_eq!(c.cred.as_client_token(), Some(0xc11e_0001));
            }
            other => panic!("not a call: {other:?}"),
        }
    }

    #[test]
    fn multi_fragment_replies_reassemble() {
        let mut lo = Loopback::new();
        let payload: Vec<u8> = (0u8..64).collect();
        lo.canned_success(&payload);
        lo.refragment = 7; // force many tiny fragments
        let mut client: NoAllocRpcClient<Loopback, 256> = NoAllocRpcClient::new(lo, 9, 1);
        let reply = client.call(1, |_| {}).unwrap();
        assert_eq!(reply, payload.as_slice());
    }

    #[test]
    fn oversized_request_fails_before_write() {
        let mut lo = Loopback::new();
        lo.canned_success(&[]);
        let mut client: NoAllocRpcClient<Loopback, 64> = NoAllocRpcClient::new(lo, 9, 1);
        let err = client
            .call(1, |enc| enc.put_opaque_fixed(&[0u8; 128]))
            .unwrap_err();
        assert!(matches!(err, RpcError::RecordTooLarge { .. }));
        assert_eq!(client.transport.req_len, 0, "nothing may hit the wire");
    }

    #[test]
    fn error_statuses_map_to_rpc_errors() {
        for (stat, want_busy) in [(5u32, false), (6u32, true)] {
            let mut lo = Loopback::new();
            lo.canned_success(&[0u8; 8]); // room for busy's (hi, lo) words
                                          // Overwrite accept_stat.
            lo.reply[24..28].copy_from_slice(&stat.to_be_bytes());
            let mut client: NoAllocRpcClient<Loopback, 256> = NoAllocRpcClient::new(lo, 9, 1);
            let err = client.call(1, |_| {}).unwrap_err();
            match err {
                RpcError::Busy { .. } => assert!(want_busy),
                RpcError::Accepted(AcceptStat::SystemErr) => assert!(!want_busy),
                other => panic!("unexpected error: {other:?}"),
            }
        }
    }

    #[test]
    fn eof_maps_to_connection_closed() {
        let lo = Loopback::new(); // no canned reply: read returns Ok(0) = EOF
        let mut client: NoAllocRpcClient<Loopback, 256> = NoAllocRpcClient::new(lo, 9, 1);
        let err = client.call(1, |_| {}).unwrap_err();
        assert!(matches!(err, RpcError::ConnectionClosed));
    }
}
