//! Completion-driven server reactor: multiplex many connections over a few
//! threads.
//!
//! The threaded paths in [`crate::server`] spend one OS thread per
//! connection; with thousands of tenant sessions the thread stacks and
//! scheduler churn become the ceiling long before the wire does. This module
//! replaces them with the classic reactor split, mirroring the
//! `RingResult::Done` vs `MoreIo` contract of io_uring-style RPC servers:
//!
//! ```text
//!   accept thread ──(new conns)──▶ reactor thread
//!                                    │  poll readiness (shims/polling)
//!                                    │  nonblocking reads → RecordAssembler
//!                                    │  classify call: Done | Parked
//!                            Done ───┤ execute inline, reply → completion ring
//!                          Parked ───┴─▶ submission ring, sharded by conn key
//!                                           │ worker pool (key % workers)
//!                                           ▼ execute, reply → completion ring
//!                                    writer thread: vectored write_record_sg
//! ```
//!
//! **Ordering guarantee.** Every `Parked` call for one connection lands on
//! the same worker shard (`key % workers`), whose queue is FIFO — so parked
//! replies stay in request order. A `Done` call is executed inline *only
//! when the connection has zero parked calls in flight* (`pending == 0`);
//! otherwise it is demoted to the shard like any parked call. Workers push
//! the encoded reply onto the completion ring *before* decrementing
//! `pending`, so when the reactor observes `pending == 0` every earlier
//! reply already sits ahead of anything it enqueues. Net effect: per-
//! connection reply order equals request order, exactly like the serial and
//! pipelined paths, which is what the byte-identical equivalence tests
//! assert.
//!
//! **Backpressure.** Each connection has a bounded in-flight budget
//! (`max_session_queue`). When it fills, the reactor stops reading that
//! socket ([`polling::Poller::suspend`]) — unread bytes accumulate in the
//! kernel buffer and the TCP window closes, pushing the stall back to the
//! client. Workers flag the poller when a stalled connection drains to the
//! low watermark and the reactor resumes it.
//!
//! **Slow readers.** The completion writer never blocks on any one socket:
//! replies are framed and queued per connection, and each flush pass
//! writes only what the kernel accepts, so a peer that stops reading its
//! replies delays nobody else. If such a peer accepts no bytes for
//! [`ReactorConfig::write_stall_deadline`] (or lets more than
//! [`ReactorConfig::max_write_backlog`] bytes pile up behind the record in
//! flight) the writer shuts its socket down; the reactor's read side
//! observes EOF and finalizes the connection normally.
//!
//! **Replay correctness.** Replies can complete out of *connection* order
//! (two connections make progress independently), but the at-most-once
//! cache is keyed by `(client token, xid)` and written inside
//! [`RpcServer::handle_record_into`] on whichever thread executes the call
//! — per-session ordering above means a retransmission still observes
//! either the cached reply or nothing, never a half-executed call.

use crate::error::{RpcError, RpcResult};
use crate::record::{write_record_sg, RecordAssembler, DEFAULT_MAX_FRAGMENT, MAX_RECORD};
use crate::server::{RpcServer, ServerHandle};
use crate::telemetry;
use parking_lot::Mutex;
use polling::{Event, Poller};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdr::XdrEncoder;

/// How one procedure completes, mirroring the io_uring server contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcClass {
    /// Replies synchronously from server state (host_call paths): safe to
    /// execute inline on the reactor thread.
    Done,
    /// May wait — on a scheduler turn, a stream retire, a condvar
    /// (enqueue_at / wait_* paths): must run on a worker shard so the
    /// reactor never blocks.
    Parked,
}

/// Classifier from `(prog, vers, proc)` to [`ProcClass`]. `None` from the
/// header peek (not a call, short record) is always treated as `Parked`.
pub type Classifier = Arc<dyn Fn(u32, u32, u32) -> ProcClass + Send + Sync>;

/// Tuning knobs for [`serve_tcp_reactor`].
#[derive(Clone)]
pub struct ReactorConfig {
    /// Worker shards executing `Parked` calls. Connection `key` is pinned
    /// to shard `key % workers`.
    pub workers: usize,
    /// Bounded per-connection in-flight budget before the reactor stops
    /// reading that socket (backpressure).
    pub max_session_queue: usize,
    /// Procedure classifier; `None` parks everything (always correct,
    /// never inline).
    pub classify: Option<Classifier>,
    /// Completion writer: a connection whose socket accepts no reply bytes
    /// for this long while replies are queued is declared dead and shut
    /// down, so one stalled client cannot head-of-line block the writer.
    pub write_stall_deadline: Duration,
    /// Completion writer: replies queued *behind* the record currently
    /// being written, per connection. Past this many bytes the peer is not
    /// reading and the connection is shut down instead of buffering more.
    pub max_write_backlog: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_session_queue: 64,
            classify: None,
            write_stall_deadline: Duration::from_secs(5),
            max_write_backlog: 8 * 1024 * 1024,
        }
    }
}

impl ReactorConfig {
    /// Chainable: worker shards executing `Parked` calls.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Chainable: bounded per-connection in-flight budget.
    pub fn max_session_queue(mut self, depth: usize) -> Self {
        self.max_session_queue = depth;
        self
    }

    /// Chainable: procedure classifier splitting `Done` from `Parked`.
    pub fn classify(mut self, classifier: Classifier) -> Self {
        self.classify = Some(classifier);
        self
    }

    /// Chainable: completion-writer stall deadline before a non-reading
    /// peer is shut down.
    pub fn write_stall_deadline(mut self, deadline: Duration) -> Self {
        self.write_stall_deadline = deadline;
        self
    }

    /// Chainable: completion-writer backlog byte bound per connection.
    pub fn max_write_backlog(mut self, bytes: usize) -> Self {
        self.max_write_backlog = bytes;
        self
    }
}

/// Per-connection service state handed back by the connection factory.
pub struct ConnHandler {
    /// The dispatch registry (usually one `RpcServer` per connection
    /// wrapping per-session state, sharing a replay cache).
    pub rpc: Arc<RpcServer>,
    /// Invoked exactly once when the connection is finalized — after its
    /// last in-flight call completed and its last reply was enqueued.
    /// Session teardown (scheduler forget, resource release) goes here.
    pub on_close: Option<Box<dyn FnOnce() + Send>>,
}

/// State shared between the reactor thread and the worker executing this
/// connection's parked calls.
struct ConnShared {
    /// Parked calls in flight (submitted, reply not yet on the completion
    /// ring). Incremented by the reactor before submit; decremented by the
    /// worker *after* pushing the reply.
    pending: AtomicUsize,
    /// Reactor wants a `Poller::notify` when `pending` drops (the
    /// connection is stalled or closing).
    attention: AtomicBool,
    /// A worker hit a dispatch error; the reactor must close this
    /// connection.
    dead: AtomicBool,
}

/// Reactor-thread-owned connection state.
struct Conn {
    stream: TcpStream,
    asm: RecordAssembler,
    rpc: Arc<RpcServer>,
    on_close: Option<Box<dyn FnOnce() + Send>>,
    shared: Arc<ConnShared>,
    /// Reading suspended: in-flight budget exhausted.
    stalled: bool,
    /// EOF / error seen; finalize when `pending` hits zero.
    closing: bool,
}

/// One decoded call on the submission ring.
struct Job {
    key: usize,
    rpc: Arc<RpcServer>,
    record: Vec<u8>,
    shared: Arc<ConnShared>,
}

/// Completion-ring message for the writer thread.
enum WriterMsg {
    /// Adopt the write half of connection `key`.
    Open(usize, TcpStream),
    /// One encoded reply record, returned to the pool after the write.
    Reply(usize, Vec<u8>),
    /// Connection finalized; drop the write half.
    Close(usize),
}

/// Largest buffer capacity [`BufPool::put`] will recycle. Records and
/// replies range up to `MAX_RECORD` (1 GiB); pooling those would let one
/// burst of large transfers pin `max_pooled` huge allocations forever, so
/// anything over this threshold is freed instead of pooled.
const MAX_POOLED_BUF_BYTES: usize = 64 * 1024;

/// Lock-based free list of byte buffers shared across reactor, workers and
/// writer. Bounded in count (`max_pooled`) *and* per-buffer bytes
/// ([`MAX_POOLED_BUF_BYTES`]) so a burst does not pin memory forever.
#[derive(Clone)]
struct BufPool {
    free: Arc<Mutex<Vec<Vec<u8>>>>,
    max_pooled: usize,
}

impl BufPool {
    fn new(max_pooled: usize) -> Self {
        Self {
            free: Arc::new(Mutex::new(Vec::new())),
            max_pooled,
        }
    }

    fn get(&self) -> Vec<u8> {
        if let Some(buf) = self.free.lock().pop() {
            telemetry::add_reactor_buf_reused(1);
            buf
        } else {
            telemetry::add_reactor_buf_allocated(1);
            Vec::with_capacity(1024)
        }
    }

    fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() > MAX_POOLED_BUF_BYTES {
            return;
        }
        buf.clear();
        let mut free = self.free.lock();
        if free.len() < self.max_pooled {
            free.push(buf);
        }
    }
}

/// Peek `(prog, vers, proc)` out of an un-decoded call record.
/// Returns `None` for anything that is not a plausible call header; the
/// caller parks such records so the full decoder produces the proper error
/// reply off the reactor thread.
fn peek_call(record: &[u8]) -> Option<(u32, u32, u32)> {
    if record.len() < 24 {
        return None;
    }
    let word =
        |i: usize| u32::from_be_bytes([record[i], record[i + 1], record[i + 2], record[i + 3]]);
    if word(4) != 0 {
        return None; // msg_type != CALL
    }
    Some((word(12), word(16), word(20)))
}

/// Per-connection outbound state owned by the completion writer.
///
/// `O_NONBLOCK` lives on the open file description, so the writer's
/// `try_clone` handle shares nonblocking mode with the reactor's read
/// handle — and the writer *keeps* it nonblocking: replies are framed into
/// wire-format buffers and queued here, and each flush pass writes only
/// what the kernel buffer accepts. A peer that stops reading its replies
/// therefore blocks only its own queue, never the writer thread; every
/// other connection keeps draining.
struct Outbound {
    stream: TcpStream,
    /// Framed records waiting for the socket; the front one may be
    /// partially written (`offset` bytes already gone).
    queue: VecDeque<Vec<u8>>,
    offset: usize,
    /// Total unwritten bytes across `queue`.
    queued_bytes: usize,
    /// Last time the socket accepted at least one byte (or the queue went
    /// empty). Reset when a reply lands on an idle queue.
    last_progress: Instant,
    /// `WriterMsg::Close` received: drop this entry once the queue drains.
    closing: bool,
}

impl Outbound {
    /// Write as much queued data as the socket accepts right now.
    /// `Ok(())` may leave data queued (kernel buffer full); `Err` means
    /// the connection is gone.
    fn flush(&mut self, reply_pool: &BufPool) -> io::Result<()> {
        while let Some(front) = self.queue.front() {
            match (&mut &self.stream).write(&front[self.offset..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.offset += n;
                    self.queued_bytes -= n;
                    self.last_progress = Instant::now();
                    if self.offset == front.len() {
                        self.offset = 0;
                        if let Some(done) = self.queue.pop_front() {
                            reply_pool.put(done);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Bytes queued *behind* the record currently being written. A single
    /// huge reply in flight is legitimate; an ever-growing line behind it
    /// means the peer is not reading.
    fn backlog(&self) -> usize {
        let front_left = self
            .queue
            .front()
            .map(|f| f.len() - self.offset)
            .unwrap_or(0);
        self.queued_bytes - front_left
    }
}

/// Bind a TCP listener and serve it with the completion-driven reactor.
///
/// `factory(conn_id)` is invoked on the accept thread for every accepted
/// connection and returns that connection's dispatch registry plus close
/// hook. Shutdown (via the returned [`ServerHandle`]) drains every
/// in-flight call, flushes every enqueued reply, and runs every `on_close`
/// hook before the handle's join returns.
pub fn serve_tcp_reactor<A, F>(addr: A, cfg: ReactorConfig, factory: F) -> RpcResult<ServerHandle>
where
    A: ToSocketAddrs,
    F: Fn(u64) -> ConnHandler + Send + Sync + 'static,
{
    if cfg.workers == 0 || cfg.max_session_queue == 0 {
        return Err(RpcError::Io(io::Error::new(
            io::ErrorKind::InvalidInput,
            "reactor needs at least one worker and a nonzero session queue",
        )));
    }
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_accept = Arc::clone(&stop);
    let poller = Arc::new(Poller::new());
    let poller_accept = Arc::clone(&poller);
    let (newconn_tx, newconn_rx) =
        crossbeam_channel::unbounded::<(usize, TcpStream, ConnHandler)>();

    let reactor_join = std::thread::Builder::new()
        .name("oncrpc-reactor".into())
        .spawn({
            let stop = Arc::clone(&stop);
            let poller = Arc::clone(&poller);
            move || reactor_main(cfg, stop, poller, newconn_rx)
        })
        .expect("spawn reactor thread");

    let accept_join = std::thread::Builder::new()
        .name("oncrpc-accept".into())
        .spawn(move || {
            let mut next_key: usize = 1;
            for stream in listener.incoming() {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Small RPCs must not eat Nagle delays on the eager path.
                let _ = stream.set_nodelay(true);
                let key = next_key;
                next_key += 1;
                let handler = factory(key as u64);
                if newconn_tx.send((key, stream, handler)).is_err() {
                    break;
                }
                poller_accept.notify();
            }
            // Hang up the new-connection ring so the reactor drains and
            // exits, then wait for it to flush replies and close hooks.
            drop(newconn_tx);
            poller_accept.notify();
            let _ = reactor_join.join();
        })
        .expect("spawn accept thread");

    Ok(ServerHandle::from_parts(local, stop, accept_join))
}

/// The reactor event loop. Owns every connection's read half, the worker
/// pool, and the writer thread; returns only after all of them drained.
fn reactor_main(
    cfg: ReactorConfig,
    stop: Arc<AtomicBool>,
    poller: Arc<Poller>,
    newconn_rx: crossbeam_channel::Receiver<(usize, TcpStream, ConnHandler)>,
) {
    let record_pool = BufPool::new(cfg.workers * cfg.max_session_queue);
    let reply_pool = BufPool::new(cfg.workers * cfg.max_session_queue);

    let (writer_tx, writer_rx) = crossbeam_channel::unbounded::<WriterMsg>();
    let writer_join = std::thread::Builder::new()
        .name("oncrpc-completion".into())
        .spawn({
            let reply_pool = reply_pool.clone();
            let stall_deadline = cfg.write_stall_deadline;
            let max_backlog = cfg.max_write_backlog;
            move || writer_main(writer_rx, reply_pool, stall_deadline, max_backlog)
        })
        .expect("spawn completion writer");

    let mut worker_txs = Vec::with_capacity(cfg.workers);
    let mut worker_joins = Vec::with_capacity(cfg.workers);
    for shard in 0..cfg.workers {
        let (tx, rx) = crossbeam_channel::unbounded::<Job>();
        worker_txs.push(tx);
        let writer_tx = writer_tx.clone();
        let record_pool = record_pool.clone();
        let reply_pool = reply_pool.clone();
        let poller = Arc::clone(&poller);
        worker_joins.push(
            std::thread::Builder::new()
                .name(format!("oncrpc-worker-{shard}"))
                .spawn(move || worker_main(rx, writer_tx, record_pool, reply_pool, poller))
                .expect("spawn worker thread"),
        );
    }

    let low_watermark = (cfg.max_session_queue / 2).max(1);
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut events: Vec<Event> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut inline_enc = XdrEncoder::with_capacity(4096);
    let mut accepting = true;

    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // Adopt newly accepted connections.
        loop {
            match newconn_rx.try_recv() {
                Ok((key, stream, handler)) => {
                    if poller.register(&stream, key).is_err() {
                        continue;
                    }
                    let Ok(write_half) = stream.try_clone() else {
                        poller.deregister(key);
                        continue;
                    };
                    let _ = writer_tx.send(WriterMsg::Open(key, write_half));
                    conns.insert(
                        key,
                        Conn {
                            stream,
                            asm: RecordAssembler::new(MAX_RECORD),
                            rpc: handler.rpc,
                            on_close: handler.on_close,
                            shared: Arc::new(ConnShared {
                                pending: AtomicUsize::new(0),
                                attention: AtomicBool::new(false),
                                dead: AtomicBool::new(false),
                            }),
                            stalled: false,
                            closing: false,
                        },
                    );
                }
                Err(crossbeam_channel::TryRecvError::Empty) => break,
                Err(crossbeam_channel::TryRecvError::Disconnected) => {
                    accepting = false;
                    break;
                }
            }
        }
        if !accepting && conns.is_empty() {
            break; // accept loop gone and nothing left to serve
        }

        let _ = poller.wait(&mut events, Duration::from_millis(2));
        for ev in events.drain(..) {
            if let Some(conn) = conns.get_mut(&ev.key) {
                if conn.stalled || conn.closing {
                    continue;
                }
                drain_conn(
                    conn,
                    ev.key,
                    &cfg,
                    &poller,
                    &worker_txs,
                    &writer_tx,
                    &record_pool,
                    &reply_pool,
                    &mut scratch,
                    &mut inline_enc,
                    low_watermark,
                );
            }
        }

        // Sweep: finalize drained closing connections, resume drained
        // stalled ones.
        let mut to_finalize: Vec<usize> = Vec::new();
        for (&key, conn) in conns.iter_mut() {
            if conn.shared.dead.load(Ordering::Acquire) && !conn.closing {
                conn.closing = true;
                conn.shared.attention.store(true, Ordering::Release);
                // Stop reporting readiness for a connection we will never
                // read again; the drained-pending finalize is driven by
                // worker notify(), not a hot readiness loop.
                poller.suspend(key);
            }
            if conn.closing {
                if conn.shared.pending.load(Ordering::Acquire) == 0 {
                    to_finalize.push(key);
                }
                continue;
            }
            if conn.stalled && conn.shared.pending.load(Ordering::Acquire) <= low_watermark {
                conn.stalled = false;
                conn.shared.attention.store(false, Ordering::Release);
                poller.resume(key);
                drain_conn(
                    conn,
                    key,
                    &cfg,
                    &poller,
                    &worker_txs,
                    &writer_tx,
                    &record_pool,
                    &reply_pool,
                    &mut scratch,
                    &mut inline_enc,
                    low_watermark,
                );
                if conn.closing && conn.shared.pending.load(Ordering::Acquire) == 0 {
                    to_finalize.push(key);
                }
            }
        }
        for key in to_finalize {
            finalize(key, &mut conns, &poller, &writer_tx);
        }
    }

    // Shutdown: stop submitting, let workers drain the submission rings,
    // flush the completion ring, then run every close hook.
    drop(worker_txs);
    for j in worker_joins {
        let _ = j.join();
    }
    let keys: Vec<usize> = conns.keys().copied().collect();
    for key in keys {
        finalize(key, &mut conns, &poller, &writer_tx);
    }
    drop(writer_tx);
    let _ = writer_join.join();
}

/// Read and dispatch everything currently available on one connection.
#[allow(clippy::too_many_arguments)]
fn drain_conn(
    conn: &mut Conn,
    key: usize,
    cfg: &ReactorConfig,
    poller: &Poller,
    worker_txs: &[crossbeam_channel::Sender<Job>],
    writer_tx: &crossbeam_channel::Sender<WriterMsg>,
    record_pool: &BufPool,
    reply_pool: &BufPool,
    scratch: &mut [u8],
    inline_enc: &mut XdrEncoder,
    _low_watermark: usize,
) {
    loop {
        // Dispatch complete records until the in-flight budget is spent.
        while conn.shared.pending.load(Ordering::Acquire) < cfg.max_session_queue {
            let rec = match conn.asm.next_record() {
                Ok(Some(rec)) => rec,
                Ok(None) => break,
                Err(_) => {
                    conn.closing = true;
                    conn.shared.attention.store(true, Ordering::Release);
                    poller.suspend(key);
                    return;
                }
            };
            let class = match (&cfg.classify, peek_call(rec)) {
                (Some(f), Some((prog, vers, proc))) => f(prog, vers, proc),
                _ => ProcClass::Parked,
            };
            if class == ProcClass::Done && conn.shared.pending.load(Ordering::Acquire) == 0 {
                // Inline fast path: nothing in flight for this connection,
                // so replying from the reactor thread preserves order.
                if conn.rpc.handle_record_into(rec, inline_enc).is_err() {
                    conn.closing = true;
                    conn.shared.attention.store(true, Ordering::Release);
                    poller.suspend(key);
                    return;
                }
                let mut out = reply_pool.get();
                out.extend_from_slice(inline_enc.as_slice());
                let _ = writer_tx.send(WriterMsg::Reply(key, out));
                telemetry::add_reactor_inline(1);
            } else {
                let mut buf = record_pool.get();
                buf.extend_from_slice(rec);
                conn.shared.pending.fetch_add(1, Ordering::AcqRel);
                let job = Job {
                    key,
                    rpc: Arc::clone(&conn.rpc),
                    record: buf,
                    shared: Arc::clone(&conn.shared),
                };
                let _ = worker_txs[key % worker_txs.len()].send(job);
                telemetry::add_reactor_parked(1);
            }
        }
        if conn.shared.pending.load(Ordering::Acquire) >= cfg.max_session_queue {
            // Budget spent: stop reading this socket; the kernel buffer
            // fills and TCP flow control stalls the client.
            conn.stalled = true;
            conn.shared.attention.store(true, Ordering::Release);
            poller.suspend(key);
            telemetry::add_reactor_stall(1);
            return;
        }
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.closing = true;
                conn.shared.attention.store(true, Ordering::Release);
                poller.suspend(key);
                return;
            }
            Ok(n) => conn.asm.extend(&scratch[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.closing = true;
                conn.shared.attention.store(true, Ordering::Release);
                poller.suspend(key);
                return;
            }
        }
    }
}

/// Tear down one connection: stop polling it, drop the write half, run the
/// close hook. Callers guarantee `pending == 0`.
fn finalize(
    key: usize,
    conns: &mut HashMap<usize, Conn>,
    poller: &Poller,
    writer_tx: &crossbeam_channel::Sender<WriterMsg>,
) {
    if let Some(mut conn) = conns.remove(&key) {
        poller.deregister(key);
        let _ = writer_tx.send(WriterMsg::Close(key));
        if let Some(hook) = conn.on_close.take() {
            hook();
        }
    }
}

/// Worker shard: execute parked calls in FIFO order, push replies onto the
/// completion ring, then publish the decrement.
fn worker_main(
    rx: crossbeam_channel::Receiver<Job>,
    writer_tx: crossbeam_channel::Sender<WriterMsg>,
    record_pool: BufPool,
    reply_pool: BufPool,
    poller: Arc<Poller>,
) {
    let mut enc = XdrEncoder::with_capacity(4096);
    while let Ok(job) = rx.recv() {
        let ok = job.rpc.handle_record_into(&job.record, &mut enc).is_ok();
        record_pool.put(job.record);
        if ok {
            let mut out = reply_pool.get();
            out.extend_from_slice(enc.as_slice());
            let _ = writer_tx.send(WriterMsg::Reply(job.key, out));
        } else {
            job.shared.dead.store(true, Ordering::Release);
        }
        // Reply is on the completion ring; only now may the reactor treat
        // this connection as drained (ordering guarantee — see module doc).
        job.shared.pending.fetch_sub(1, Ordering::AcqRel);
        if !ok || job.shared.attention.load(Ordering::Acquire) {
            poller.notify();
        }
    }
}

/// How long the writer sleeps between flush passes while at least one
/// socket has queued data the kernel will not yet accept.
const WRITER_RETRY_SLICE: Duration = Duration::from_micros(500);

/// Absorb one completion-ring message into the writer's connection map.
fn writer_admit(msg: WriterMsg, conns: &mut HashMap<usize, Outbound>, reply_pool: &BufPool) {
    match msg {
        WriterMsg::Open(key, stream) => {
            conns.insert(
                key,
                Outbound {
                    stream,
                    queue: VecDeque::new(),
                    offset: 0,
                    queued_bytes: 0,
                    last_progress: Instant::now(),
                    closing: false,
                },
            );
        }
        WriterMsg::Reply(key, buf) => {
            if let Some(ob) = conns.get_mut(&key) {
                // Frame once into wire format (fragment headers + body) so
                // a partial write can resume at a byte offset later; a
                // Vec<u8> sink never blocks so this cannot fail.
                let mut framed = reply_pool.get();
                let _ = write_record_sg(&mut framed, &[&buf], DEFAULT_MAX_FRAGMENT);
                if ob.queue.is_empty() {
                    // Idle queues carry a stale progress stamp; a fresh
                    // reply must get the full stall deadline.
                    ob.last_progress = Instant::now();
                }
                ob.queued_bytes += framed.len();
                ob.queue.push_back(framed);
            }
            reply_pool.put(buf);
        }
        WriterMsg::Close(key) => {
            if let Some(ob) = conns.get_mut(&key) {
                if ob.queue.is_empty() {
                    conns.remove(&key);
                } else {
                    // Replies still queued: keep flushing, drop on drain.
                    ob.closing = true;
                }
            }
        }
    }
}

/// Completion writer: single thread draining the completion ring into
/// nonblocking sockets, one bounded outbound queue per connection.
///
/// A connection is *killed* — socket shut down both ways so the reactor's
/// read side observes EOF and finalizes it — when its write fails, when it
/// accepts no bytes for `stall_deadline` while replies wait, or when more
/// than `max_backlog` bytes queue behind the record in flight. Everything
/// else keeps flowing meanwhile; a stalled peer can no longer wedge the
/// writer thread (or shutdown, which joins it).
fn writer_main(
    rx: crossbeam_channel::Receiver<WriterMsg>,
    reply_pool: BufPool,
    stall_deadline: Duration,
    max_backlog: usize,
) {
    let mut conns: HashMap<usize, Outbound> = HashMap::new();
    let mut open = true;
    loop {
        let pending = conns.values().any(|ob| !ob.queue.is_empty());
        if !pending {
            if !open {
                return; // ring hung up and every queue drained
            }
            // Nothing to flush: block until the ring produces work.
            match rx.recv() {
                Ok(msg) => writer_admit(msg, &mut conns, &reply_pool),
                Err(_) => open = false,
            }
        } else if open {
            // Queued data is waiting on kernel buffers: take whatever the
            // ring has, but come back quickly to re-probe writability.
            match rx.recv_timeout(WRITER_RETRY_SLICE) {
                Ok(msg) => writer_admit(msg, &mut conns, &reply_pool),
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => open = false,
            }
        } else {
            // Draining after hangup: pace the flush retries.
            std::thread::sleep(WRITER_RETRY_SLICE);
        }
        while open {
            match rx.try_recv() {
                Ok(msg) => writer_admit(msg, &mut conns, &reply_pool),
                Err(crossbeam_channel::TryRecvError::Empty) => break,
                Err(crossbeam_channel::TryRecvError::Disconnected) => {
                    open = false;
                }
            }
        }

        // Flush pass: every socket gets a chance each round; one blocked
        // peer only skips its own queue.
        let now = Instant::now();
        let mut done: Vec<usize> = Vec::new();
        for (&key, ob) in conns.iter_mut() {
            if ob.queue.is_empty() {
                if ob.closing {
                    done.push(key);
                }
                continue;
            }
            let dead = ob.flush(&reply_pool).is_err()
                || (!ob.queue.is_empty()
                    && (ob.backlog() > max_backlog
                        || now.duration_since(ob.last_progress) > stall_deadline));
            if dead {
                // Shut the shared file description down both ways: the
                // reactor's read half sees EOF/reset and finalizes the
                // connection through the normal closing path.
                let _ = ob.stream.shutdown(Shutdown::Both);
                telemetry::add_reactor_writer_kill(1);
                done.push(key);
            } else if ob.queue.is_empty() && ob.closing {
                done.push(key);
            }
        }
        for key in done {
            if let Some(ob) = conns.remove(&key) {
                for buf in ob.queue {
                    reply_pool.put(buf);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RpcClient;
    use crate::msg::{AcceptStat, CallBody, MessageBody, RpcMessage};
    use crate::record::{read_record, write_record};
    use crate::server::Dispatch;
    use crate::transport::TcpTransport;
    use std::sync::atomic::AtomicU64;
    use xdr::{Xdr, XdrDecoder};

    const PROG: u32 = 400;
    const VERS: u32 = 1;

    /// proc 1 = echo (parked), proc 2 = add (done), proc 3 = slow add
    /// (parked, sleeps to build queue depth).
    fn service() -> Arc<dyn Dispatch> {
        Arc::new(
            |proc: u32, args: &mut XdrDecoder<'_>, reply: &mut XdrEncoder| match proc {
                0 => Ok(()),
                1 => {
                    let data = args.get_opaque().map_err(|_| AcceptStat::GarbageArgs)?;
                    reply.put_opaque(data);
                    Ok(())
                }
                2 | 3 => {
                    let a = args.get_u32().map_err(|_| AcceptStat::GarbageArgs)?;
                    let b = args.get_u32().map_err(|_| AcceptStat::GarbageArgs)?;
                    if proc == 3 {
                        std::thread::sleep(Duration::from_micros(300));
                    }
                    reply.put_u32(a.wrapping_add(b));
                    Ok(())
                }
                _ => Err(AcceptStat::ProcUnavail),
            },
        )
    }

    fn classifier() -> Classifier {
        Arc::new(|_prog, _vers, proc| {
            if proc == 2 {
                ProcClass::Done
            } else {
                ProcClass::Parked
            }
        })
    }

    fn start(cfg: ReactorConfig) -> (ServerHandle, Arc<AtomicU64>) {
        let closes = Arc::new(AtomicU64::new(0));
        let closes2 = Arc::clone(&closes);
        let handle = serve_tcp_reactor("127.0.0.1:0", cfg, move |_conn| {
            let rpc = Arc::new(RpcServer::new());
            rpc.register(PROG, VERS, service());
            let closes = Arc::clone(&closes2);
            ConnHandler {
                rpc,
                on_close: Some(Box::new(move || {
                    closes.fetch_add(1, Ordering::SeqCst);
                })),
            }
        })
        .unwrap();
        (handle, closes)
    }

    #[test]
    fn concurrent_clients_mixed_done_and_parked() {
        let cfg = ReactorConfig {
            workers: 2,
            classify: Some(classifier()),
            ..ReactorConfig::default()
        };
        let (handle, closes) = start(cfg);
        let addr = handle.addr();
        let mut joins = Vec::new();
        for t in 0..8u32 {
            joins.push(std::thread::spawn(move || {
                let transport = TcpTransport::connect(addr).unwrap();
                let mut client = RpcClient::new(Box::new(transport), PROG, VERS);
                for i in 0..40u32 {
                    // Alternate inline-eligible and parked procedures.
                    let proc = if i % 2 == 0 { 2 } else { 3 };
                    let sum: u32 = client.call(proc, &(i, t)).unwrap();
                    assert_eq!(sum, i + t);
                    if i % 10 == 0 {
                        let out: Vec<u8> = client.call(1, &vec![i as u8; 64]).unwrap();
                        assert_eq!(out, vec![i as u8; 64]);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        handle.shutdown();
        assert_eq!(closes.load(Ordering::SeqCst), 8, "every conn closed once");
    }

    #[test]
    fn pipelined_burst_preserves_reply_order_across_classes() {
        let cfg = ReactorConfig {
            workers: 2,
            max_session_queue: 4,
            classify: Some(classifier()),
            ..ReactorConfig::default()
        };
        let (handle, _closes) = start(cfg);
        let stalls_before = telemetry::reactor_snapshot().stalls;
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Fire a burst mixing Done (2) and Parked (3) calls without reading
        // replies; with max_session_queue=4 this forces backpressure.
        const N: u32 = 64;
        for i in 0..N {
            let mut enc = XdrEncoder::new();
            let proc = if i % 3 == 0 { 2 } else { 3 };
            RpcMessage::call(i, CallBody::new(PROG, VERS, proc)).encode(&mut enc);
            (i, 1u32).encode(&mut enc);
            write_record(&mut stream, enc.as_slice(), DEFAULT_MAX_FRAGMENT).unwrap();
        }
        for i in 0..N {
            let rec = read_record(&mut stream, MAX_RECORD).unwrap().unwrap();
            let mut dec = XdrDecoder::new(&rec);
            let msg = RpcMessage::decode(&mut dec).unwrap();
            assert_eq!(msg.xid, i, "reply order must match request order");
            assert!(matches!(msg.body, MessageBody::Reply(_)));
            let sum = dec.get_u32().unwrap();
            assert_eq!(sum, i + 1);
        }
        let stalls_after = telemetry::reactor_snapshot().stalls;
        assert!(
            stalls_after > stalls_before,
            "a 64-deep burst against a 4-deep budget must stall at least once"
        );
        drop(stream);
        handle.shutdown();
    }

    #[test]
    fn slow_reader_is_killed_and_never_wedges_other_connections() {
        let cfg = ReactorConfig {
            workers: 2,
            max_session_queue: 256,
            classify: Some(classifier()),
            write_stall_deadline: Duration::from_millis(200),
            max_write_backlog: 256 * 1024,
        };
        let (handle, closes) = start(cfg);
        let addr = handle.addr();
        let kills_before = telemetry::reactor_snapshot().writer_kills;

        // A tenant that floods large echo calls and never reads one reply:
        // kernel buffers fill, the writer's backlog cap (or stall deadline)
        // trips, and the connection is shut down server-side.
        let stuck = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let payload = vec![0xabu8; 128 * 1024];
            for i in 0..256u32 {
                let mut enc = XdrEncoder::new();
                RpcMessage::call(i, CallBody::new(PROG, VERS, 1)).encode(&mut enc);
                payload.encode(&mut enc);
                if write_record(&mut stream, enc.as_slice(), DEFAULT_MAX_FRAGMENT).is_err() {
                    break; // server killed us — expected
                }
            }
            stream
        });

        // Meanwhile a healthy tenant on the same writer thread must keep
        // getting replies; before the per-connection outbound queues this
        // hung forever inside the single blocking writer.
        let transport = TcpTransport::connect(addr).unwrap();
        let mut client = RpcClient::new(Box::new(transport), PROG, VERS);
        for i in 0..50u32 {
            let sum: u32 = client.call(2, &(i, 1u32)).unwrap();
            assert_eq!(sum, i + 1);
        }

        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while telemetry::reactor_snapshot().writer_kills == kills_before {
            assert!(
                std::time::Instant::now() < deadline,
                "writer never killed the non-reading connection"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let stuck_stream = stuck.join().unwrap();
        drop(stuck_stream);
        drop(client);
        handle.shutdown();
        assert_eq!(closes.load(Ordering::SeqCst), 2, "both conns finalized");
    }

    #[test]
    fn unknown_proc_still_replies_through_worker() {
        let (handle, _closes) = start(ReactorConfig::default());
        let transport = TcpTransport::connect(handle.addr()).unwrap();
        let mut client = RpcClient::new(Box::new(transport), PROG, VERS);
        let err = client.call::<(), ()>(99, &()).unwrap_err();
        assert!(matches!(err, RpcError::Accepted(AcceptStat::ProcUnavail)));
        handle.shutdown();
    }

    #[test]
    fn shutdown_runs_close_hooks_for_live_conns() {
        let (handle, closes) = start(ReactorConfig::default());
        let addr = handle.addr();
        // Open connections, do one call each, keep them open.
        let mut clients = Vec::new();
        for _ in 0..5 {
            let transport = TcpTransport::connect(addr).unwrap();
            let mut client = RpcClient::new(Box::new(transport), PROG, VERS);
            client.call_null().unwrap();
            clients.push(client);
        }
        handle.shutdown();
        assert_eq!(
            closes.load(Ordering::SeqCst),
            5,
            "shutdown must finalize live connections"
        );
        drop(clients);
    }
}
