//! Byte-stream transports beneath the record-marking layer.
//!
//! A [`Transport`] is any duplex byte stream. Keeping the abstraction at the
//! byte level (rather than whole records) means *every* transport — real TCP,
//! the in-memory pipe used in tests, and the simulated unikernel network
//! paths — exercises the same record-marking and fragmentation code.

use crate::error::RpcResult;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A duplex byte stream usable for RPC.
pub trait Transport: Read + Write + Send {
    /// Human-readable description for diagnostics.
    fn describe(&self) -> String {
        "transport".into()
    }

    /// Bound how long a single `read` may block waiting for the peer.
    ///
    /// When the deadline expires, `read` fails with `WouldBlock`/`TimedOut`,
    /// which the record layer surfaces as [`crate::RpcError::TimedOut`].
    /// Transports without a timing source (e.g. the virtual-time simulated
    /// paths, which can never block) accept and ignore the setting.
    fn set_read_timeout(&mut self, _dur: Option<Duration>) -> RpcResult<()> {
        Ok(())
    }
}

/// TCP transport. `TCP_NODELAY` is enabled because RPC is latency-bound:
/// Nagle's algorithm would serialize the many small Cricket calls.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connect to a remote RPC server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> RpcResult<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Wrap an accepted stream (server side).
    pub fn from_stream(stream: TcpStream) -> RpcResult<Self> {
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Set a read timeout for replies.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> RpcResult<()> {
        self.stream.set_read_timeout(dur)?;
        Ok(())
    }

    /// Whether `TCP_NODELAY` is set on the socket. Exposed so tests can
    /// assert the small-RPC latency contract on both ends.
    pub fn nodelay(&self) -> RpcResult<bool> {
        Ok(self.stream.nodelay()?)
    }

    /// A second handle onto the same socket (`dup(2)` underneath), so one
    /// thread can keep reading requests while another writes replies —
    /// the carrier for [`crate::RpcServer::serve_pipelined`].
    pub fn try_clone(&self) -> RpcResult<Self> {
        Ok(Self {
            stream: self.stream.try_clone()?,
        })
    }
}

impl Read for TcpTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }
}

impl Write for TcpTransport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

impl Transport for TcpTransport {
    fn describe(&self) -> String {
        match self.stream.peer_addr() {
            Ok(a) => format!("tcp:{a}"),
            Err(_) => "tcp:?".into(),
        }
    }

    fn set_read_timeout(&mut self, dur: Option<Duration>) -> RpcResult<()> {
        TcpTransport::set_read_timeout(self, dur)
    }
}

/// One end of an in-memory duplex pipe built on unbounded channels.
///
/// Used for in-process client↔server tests and as the carrier inside the
/// simulated network paths. Reads block until data or hang-up.
pub struct MemTransport {
    tx: crossbeam_channel::Sender<Vec<u8>>,
    rx: crossbeam_channel::Receiver<Vec<u8>>,
    /// Partially consumed incoming chunk.
    pending: Vec<u8>,
    pending_off: usize,
    /// Per-read deadline; `None` blocks indefinitely.
    read_timeout: Option<Duration>,
    label: &'static str,
}

/// Create a connected pair of in-memory transports.
pub fn duplex_pair() -> (MemTransport, MemTransport) {
    let (a_tx, a_rx) = crossbeam_channel::unbounded();
    let (b_tx, b_rx) = crossbeam_channel::unbounded();
    (
        MemTransport {
            tx: a_tx,
            rx: b_rx,
            pending: Vec::new(),
            pending_off: 0,
            read_timeout: None,
            label: "mem:client",
        },
        MemTransport {
            tx: b_tx,
            rx: a_rx,
            pending: Vec::new(),
            pending_off: 0,
            read_timeout: None,
            label: "mem:server",
        },
    )
}

impl Read for MemTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.pending_off >= self.pending.len() {
            let chunk = match self.read_timeout {
                // A recv error means the sender dropped: clean EOF.
                None => self.rx.recv().ok(),
                Some(dur) => match self.rx.recv_timeout(dur) {
                    Ok(chunk) => Some(chunk),
                    Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                        return Err(io::Error::new(io::ErrorKind::TimedOut, "read timed out"));
                    }
                    Err(crossbeam_channel::RecvTimeoutError::Disconnected) => None,
                },
            };
            match chunk {
                Some(chunk) => {
                    self.pending = chunk;
                    self.pending_off = 0;
                }
                None => return Ok(0),
            }
        }
        let avail = &self.pending[self.pending_off..];
        let n = avail.len().min(buf.len());
        buf[..n].copy_from_slice(&avail[..n]);
        self.pending_off += n;
        Ok(n)
    }
}

impl Write for MemTransport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        // The chunk copy into the channel stands in for a real socket's
        // copy-into-kernel-buffer; it is the one buffering copy on the send
        // side and is charged to the copy telemetry.
        crate::telemetry::add_memmoved(buf.len());
        self.tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))?;
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Transport for MemTransport {
    fn describe(&self) -> String {
        self.label.into()
    }

    fn set_read_timeout(&mut self, dur: Option<Duration>) -> RpcResult<()> {
        self.read_timeout = dur;
        Ok(())
    }
}

impl std::fmt::Debug for MemTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemTransport")
            .field("label", &self.label)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{read_record, write_record, MAX_RECORD};

    #[test]
    fn duplex_roundtrip() {
        let (mut a, mut b) = duplex_pair();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn partial_reads_across_chunks() {
        let (mut a, mut b) = duplex_pair();
        a.write_all(b"abc").unwrap();
        a.write_all(b"defgh").unwrap();
        let mut buf = [0u8; 2];
        let mut collected = Vec::new();
        for _ in 0..4 {
            b.read_exact(&mut buf).unwrap();
            collected.extend_from_slice(&buf);
        }
        assert_eq!(collected, b"abcdefgh");
    }

    #[test]
    fn eof_when_peer_dropped() {
        let (a, mut b) = duplex_pair();
        drop(a);
        let mut buf = [0u8; 1];
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn records_flow_over_mem_transport() {
        let (mut a, mut b) = duplex_pair();
        let payload: Vec<u8> = (0..5000u32).map(|i| i as u8).collect();
        write_record(&mut a, &payload, 512).unwrap();
        let got = read_record(&mut b, MAX_RECORD).unwrap().unwrap();
        assert_eq!(got, payload);
    }

    /// Small RPCs are latency-bound: Nagle must be off on the client
    /// connection, on the accepted server socket, and survive the
    /// `try_clone` used to split reader/writer halves.
    #[test]
    fn tcp_nodelay_on_both_ends() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            TcpTransport::from_stream(stream).unwrap()
        });
        let client = TcpTransport::connect(addr).unwrap();
        let accepted = server.join().unwrap();
        assert!(
            client.nodelay().unwrap(),
            "client connection must set TCP_NODELAY"
        );
        assert!(
            accepted.nodelay().unwrap(),
            "accepted socket must set TCP_NODELAY"
        );
        assert!(
            client.try_clone().unwrap().nodelay().unwrap(),
            "cloned write half must keep TCP_NODELAY"
        );
    }

    /// The reactor accept path sets TCP_NODELAY on raw accepted sockets
    /// before the transport wrapper is ever involved.
    #[test]
    fn reactor_accept_path_sets_nodelay() {
        let handle = crate::reactor::serve_tcp_reactor(
            "127.0.0.1:0",
            crate::reactor::ReactorConfig::default(),
            |_conn| crate::reactor::ConnHandler {
                rpc: std::sync::Arc::new(crate::server::RpcServer::new()),
                on_close: None,
            },
        )
        .unwrap();
        let client = TcpTransport::connect(handle.addr()).unwrap();
        assert!(client.nodelay().unwrap());
        drop(client);
        handle.shutdown();
    }

    #[test]
    fn tcp_transport_roundtrip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream).unwrap();
            let rec = read_record(&mut t, MAX_RECORD).unwrap().unwrap();
            write_record(&mut t, &rec, 64).unwrap(); // echo
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        let payload = vec![42u8; 1000];
        write_record(&mut client, &payload, 100).unwrap();
        let echoed = read_record(&mut client, MAX_RECORD).unwrap().unwrap();
        assert_eq!(echoed, payload);
        server.join().unwrap();
    }
}
