//! Client-side command coalescing: record async ops into a batch, flush
//! them as one RPC.
//!
//! Generated `*_record` stubs append `(proc, args)` pairs to a
//! [`BatchBuilder`]; a flush sends the accumulated body as the single
//! `mem_data` argument of a protocol-level batch procedure (Cricket's
//! `CRICKET_BATCH_EXEC`). The builder keeps the body in final wire form —
//! `u32` op count, then per op a `u32` proc number followed by that
//! procedure's ordinary XDR argument stream — so a flush defers the whole
//! body as one scatter-gather segment with no re-encode and no copy.
//!
//! [`BatchPolicy`] decides *when* to flush: queue depth, byte budget, and
//! an adaptive watermark that shrinks under low offered load so a workload
//! that syncs after every op degenerates to eager (unbatched-equivalent)
//! sends instead of paying a deferral it cannot amortize.
//! [`BatchStats`] feeds the `rpcs_per_op` and batch-size-histogram
//! telemetry reported by benches and examples.

use xdr::XdrEncoder;

/// Status sentinel for sub-ops never issued because an earlier op of the
/// same stream slice failed (mirrors the server's `batch_receipt` contract).
pub const BATCH_SKIPPED: i32 = -1;

/// Accumulates recorded ops in wire form until the next flush.
#[derive(Debug, Default)]
pub struct BatchBuilder {
    enc: XdrEncoder,
    procs: Vec<u32>,
    all_idempotent: bool,
}

impl BatchBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        let mut b = Self {
            enc: XdrEncoder::new(),
            procs: Vec::new(),
            all_idempotent: true,
        };
        b.enc.put_u32(0); // op-count placeholder, patched at finish()
        b
    }

    /// Append one op: proc number, then `encode_args` writes the same XDR
    /// argument stream the immediate stub would send. `idempotent` is the
    /// per-proc tag; the batch as a whole is idempotent only if every
    /// recorded op is.
    pub fn record(
        &mut self,
        proc: u32,
        idempotent: bool,
        encode_args: impl FnOnce(&mut XdrEncoder),
    ) {
        self.procs.push(proc);
        self.all_idempotent &= idempotent;
        self.enc.put_u32(proc);
        encode_args(&mut self.enc);
    }

    /// Number of ops recorded since the last flush.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Current body size in bytes (including the count prefix).
    pub fn body_bytes(&self) -> usize {
        self.enc.len()
    }

    /// True if every recorded op was declared `idempotent` — the flush RPC
    /// may then be tagged retryable under the at-most-once machinery.
    pub fn all_idempotent(&self) -> bool {
        self.all_idempotent
    }

    /// Proc number of the i-th recorded op (for mapping a failed status
    /// index back to the originating call).
    pub fn proc_at(&self, index: usize) -> Option<u32> {
        self.procs.get(index).copied()
    }

    /// Finalize: patch the op count into the body prefix and hand the body
    /// out for the flush RPC. The builder is left empty but keeps no
    /// allocation — pass the body back via [`BatchBuilder::recycle`] after
    /// the flush to reuse it.
    pub fn finish(&mut self) -> Vec<u8> {
        let count = self.procs.len() as u32;
        let mut body = std::mem::take(&mut self.enc).into_inner();
        body[0..4].copy_from_slice(&count.to_be_bytes());
        self.procs.clear();
        self.all_idempotent = true;
        body
    }

    /// Return a flushed body buffer for reuse by the next batch.
    pub fn recycle(&mut self, mut body: Vec<u8>) {
        body.clear();
        self.enc = XdrEncoder::from_vec(body);
        self.enc.put_u32(0);
    }
}

/// Why a batch was flushed (telemetry + adaptive-watermark feedback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// A synchronization or non-batchable call forced the flush.
    Sync,
    /// The adaptive depth watermark was reached.
    Depth,
    /// The byte budget was reached.
    Bytes,
}

/// Flush policy: hard caps plus an adaptive depth watermark.
///
/// The watermark grows (doubles, up to `max_ops`) each time a batch fills
/// to it — sustained offered load earns deeper coalescing — and shrinks
/// (halves, down to 1) each time a sync point flushes a nearly-empty
/// batch. At watermark 1 every record flushes immediately, so a
/// latency-sensitive single-op workload pays at most one watermark-miss
/// before the engine stops deferring, keeping its latency within noise of
/// the unbatched path.
#[derive(Debug, Clone)]
pub struct BatchPolicy {
    /// Hard cap on ops per batch (and ceiling for the watermark).
    pub max_ops: usize,
    /// Byte budget per batch body.
    pub max_bytes: usize,
    /// Current adaptive depth watermark, in `[1, max_ops]`.
    watermark: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self::new(64, 48 * 1024)
    }
}

impl BatchPolicy {
    /// Policy with the given caps; the watermark starts at `max_ops`
    /// (optimistic: the first sync point will shrink it if load is low).
    pub fn new(max_ops: usize, max_bytes: usize) -> Self {
        Self {
            max_ops: max_ops.max(1),
            max_bytes,
            watermark: max_ops.max(1),
        }
    }

    /// Current adaptive depth watermark.
    pub fn watermark(&self) -> usize {
        self.watermark
    }

    /// Should the builder be flushed after the op just recorded?
    pub fn should_flush(&self, pending_ops: usize, pending_bytes: usize) -> Option<FlushReason> {
        if pending_ops >= self.watermark || pending_ops >= self.max_ops {
            Some(FlushReason::Depth)
        } else if pending_bytes >= self.max_bytes {
            Some(FlushReason::Bytes)
        } else {
            None
        }
    }

    /// Feed back a flush: depth-triggered flushes deepen the watermark,
    /// sync-triggered flushes of short batches shrink it.
    pub fn on_flush(&mut self, reason: FlushReason, ops: usize) {
        match reason {
            FlushReason::Depth | FlushReason::Bytes => {
                self.watermark = (self.watermark * 2).min(self.max_ops);
            }
            FlushReason::Sync if ops < 2 => {
                self.watermark = (self.watermark / 2).max(1);
            }
            FlushReason::Sync => {}
        }
    }
}

/// Per-connection coalescing telemetry.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BatchStats {
    /// Batch flush RPCs sent.
    pub batches: u64,
    /// Ops that traveled inside a batch.
    pub ops_batched: u64,
    /// Batchable ops that were sent eagerly (watermark at 1).
    pub ops_eager: u64,
    /// Flushes forced by a sync point or non-batchable call.
    pub flush_sync: u64,
    /// Flushes triggered by the depth watermark.
    pub flush_depth: u64,
    /// Flushes triggered by the byte budget.
    pub flush_bytes: u64,
    /// Batch-size histogram: buckets of ops-per-batch
    /// `1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, 65+`.
    pub size_histogram: [u64; 8],
}

impl BatchStats {
    /// Record one flushed batch of `ops` ops.
    pub fn record_flush(&mut self, reason: FlushReason, ops: usize) {
        self.batches += 1;
        self.ops_batched += ops as u64;
        match reason {
            FlushReason::Sync => self.flush_sync += 1,
            FlushReason::Depth => self.flush_depth += 1,
            FlushReason::Bytes => self.flush_bytes += 1,
        }
        let bucket = match ops {
            0 | 1 => 0,
            2 => 1,
            3..=4 => 2,
            5..=8 => 3,
            9..=16 => 4,
            17..=32 => 5,
            33..=64 => 6,
            _ => 7,
        };
        self.size_histogram[bucket] += 1;
    }

    /// RPC round trips per batched op: 1.0 means no coalescing at all.
    pub fn rpcs_per_op(&self) -> f64 {
        let ops = self.ops_batched + self.ops_eager;
        if ops == 0 {
            return 1.0;
        }
        (self.batches + self.ops_eager) as f64 / ops as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_carries_count_then_ops() {
        let mut b = BatchBuilder::new();
        assert!(b.is_empty());
        b.record(23, false, |enc| enc.put_u64(0xabcd));
        b.record(12, true, |enc| {
            enc.put_u64(0x1000);
            enc.put_i32(0);
        });
        assert_eq!(b.len(), 2);
        assert!(!b.all_idempotent());
        assert_eq!(b.proc_at(0), Some(23));
        assert_eq!(b.proc_at(1), Some(12));
        let body = b.finish();
        let mut dec = xdr::XdrDecoder::new(&body);
        assert_eq!(dec.get_u32().unwrap(), 2); // count
        assert_eq!(dec.get_u32().unwrap(), 23); // op 0: proc
        assert_eq!(dec.get_u64().unwrap(), 0xabcd);
        assert_eq!(dec.get_u32().unwrap(), 12); // op 1: proc
        assert_eq!(dec.get_u64().unwrap(), 0x1000);
        assert_eq!(dec.get_i32().unwrap(), 0);
        assert!(dec.finish().is_ok());
        // Builder is reset and the recycled buffer is reusable.
        assert!(b.is_empty());
        b.recycle(body);
        b.record(34, true, |enc| enc.put_u64(7));
        assert!(b.all_idempotent());
        let body = b.finish();
        assert_eq!(&body[0..4], &1u32.to_be_bytes());
    }

    #[test]
    fn watermark_adapts_to_offered_load() {
        let mut p = BatchPolicy::new(64, 1 << 20);
        assert_eq!(p.watermark(), 64);
        // Low load: sync points with short batches shrink the watermark to 1.
        for _ in 0..10 {
            p.on_flush(FlushReason::Sync, 1);
        }
        assert_eq!(p.watermark(), 1);
        assert_eq!(p.should_flush(1, 64), Some(FlushReason::Depth));
        // High load: depth flushes double it back up to the cap.
        for _ in 0..10 {
            p.on_flush(FlushReason::Depth, p.watermark());
        }
        assert_eq!(p.watermark(), 64);
        // Byte budget fires independently of depth.
        assert_eq!(p.should_flush(2, 1 << 21), Some(FlushReason::Bytes));
        assert_eq!(p.should_flush(2, 64), None);
        // Long sync flushes do not shrink a hot watermark.
        p.on_flush(FlushReason::Sync, 32);
        assert_eq!(p.watermark(), 64);
    }

    #[test]
    fn stats_histogram_and_rpcs_per_op() {
        let mut s = BatchStats::default();
        s.record_flush(FlushReason::Depth, 16);
        s.record_flush(FlushReason::Depth, 16);
        s.record_flush(FlushReason::Sync, 1);
        assert_eq!(s.batches, 3);
        assert_eq!(s.ops_batched, 33);
        assert_eq!(s.size_histogram[4], 2); // 9–16 bucket
        assert_eq!(s.size_histogram[0], 1);
        // 3 RPCs for 33 ops.
        assert!((s.rpcs_per_op() - 3.0 / 33.0).abs() < 1e-12);
        let empty = BatchStats::default();
        assert_eq!(empty.rpcs_per_op(), 1.0);
    }
}
