//! Record marking (RFC 5531 §11) with multi-fragment support.
//!
//! Over a stream transport, each RPC message is a *record* composed of one or
//! more *fragments*. A fragment starts with a 4-byte big-endian header whose
//! top bit marks the final fragment and whose low 31 bits give the fragment
//! length. Support for records spanning many fragments is the capability the
//! paper calls out as missing from the `onc_rpc` crate — without it, CUDA
//! memory transfers would be capped at one fragment.

use crate::error::{RpcError, RpcResult};
use crate::telemetry;
use std::io::{IoSlice, Read, Write};

/// Default maximum bytes of payload per fragment when writing.
///
/// Real libtirpc uses fragments of up to 2^31-1 bytes; Cricket's transfers
/// are chunked near this size. We default to 1 MiB so large transfers
/// genuinely exercise the multi-fragment path, and make it configurable for
/// the fragmentation ablation benchmark.
pub const DEFAULT_MAX_FRAGMENT: usize = 1 << 20;

/// Hard cap on a reassembled record (1 GiB) to bound memory under malicious
/// or corrupt headers.
pub const MAX_RECORD: usize = 1 << 30;

const LAST_FRAGMENT: u32 = 0x8000_0000;
const LENGTH_MASK: u32 = 0x7fff_ffff;

/// Split `payload` into record-marked fragments and write them to `w`.
///
/// `max_fragment` bounds the payload bytes per fragment. A zero-length
/// payload is sent as a single empty final fragment, which RFC 5531 permits.
pub fn write_record<W: Write + ?Sized>(
    w: &mut W,
    payload: &[u8],
    max_fragment: usize,
) -> RpcResult<()> {
    write_record_sg(w, &[payload], max_fragment).map(|_| ())
}

/// Write one record whose payload is the concatenation of `segs`, as a chain
/// of `IoSlice`s (fragment header + borrowed payload slices) handed to
/// [`Write::write_vectored`]. The wire bytes are identical to
/// [`write_record`] over the flattened payload, but the payload is never
/// copied into an intermediate buffer and no heap allocation occurs.
///
/// Returns the number of fragments emitted.
pub fn write_record_sg<W: Write + ?Sized>(
    w: &mut W,
    segs: &[&[u8]],
    max_fragment: usize,
) -> RpcResult<u64> {
    assert!(max_fragment > 0, "max_fragment must be positive");
    // Fragment gather list: one header slot plus payload slices. A fragment
    // spanning more than BATCH-1 segments is emitted with several vectored
    // writes — still allocation-free.
    const BATCH: usize = 16;
    let total: usize = segs.iter().map(|s| s.len()).sum();
    let (mut seg_idx, mut seg_off) = (0usize, 0usize);
    let mut offset = 0;
    let mut fragments = 0u64;
    loop {
        let remaining = total - offset;
        let frag_len = remaining.min(max_fragment);
        let last = frag_len == remaining;
        let header = (frag_len as u32 & LENGTH_MASK) | if last { LAST_FRAGMENT } else { 0 };
        let header_bytes = header.to_be_bytes();
        let mut iov: [IoSlice<'_>; BATCH] = [IoSlice::new(&[]); BATCH];
        iov[0] = IoSlice::new(&header_bytes);
        let mut n = 1;
        let mut needed = frag_len;
        while needed > 0 {
            if n == BATCH {
                write_all_vectored(w, &mut iov[..n])?;
                n = 0;
                continue;
            }
            let seg = segs[seg_idx];
            let avail = seg.len() - seg_off;
            if avail == 0 {
                seg_idx += 1;
                seg_off = 0;
                continue;
            }
            let take = avail.min(needed);
            iov[n] = IoSlice::new(&seg[seg_off..seg_off + take]);
            n += 1;
            seg_off += take;
            needed -= take;
            if seg_off == seg.len() {
                seg_idx += 1;
                seg_off = 0;
            }
        }
        if n > 0 {
            write_all_vectored(w, &mut iov[..n])?;
        }
        fragments += 1;
        offset += frag_len;
        if last {
            break;
        }
    }
    w.flush()?;
    Ok(fragments)
}

/// `write_all` over a gather list, advancing across short writes.
fn write_all_vectored<W: Write + ?Sized>(w: &mut W, mut bufs: &mut [IoSlice<'_>]) -> RpcResult<()> {
    // Drop leading empty slices so `write_vectored(&[])` is never reached.
    IoSlice::advance_slices(&mut bufs, 0);
    while !bufs.is_empty() {
        match w.write_vectored(bufs) {
            Ok(0) => {
                return Err(RpcError::Io(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "failed to write whole record",
                )))
            }
            Ok(n) => IoSlice::advance_slices(&mut bufs, n),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Read one complete record (all fragments) from `r`.
///
/// Returns `Ok(None)` if the stream is cleanly closed *before* the first
/// header byte — i.e. the peer hung up between records, which is how servers
/// detect client disconnects. EOF in the middle of a record is an error.
pub fn read_record<R: Read + ?Sized>(r: &mut R, max_record: usize) -> RpcResult<Option<Vec<u8>>> {
    let mut record = Vec::new();
    Ok(read_record_into(r, &mut record, max_record)?.map(|_| record))
}

/// Read one complete record into a caller-owned buffer, reusing its
/// allocation. The buffer is cleared first; on success it holds exactly the
/// record bytes and the record length is returned. `Ok(None)` means the
/// stream closed cleanly before the first header byte.
///
/// Unlike building a fresh `Vec` per record, a pooled buffer in steady state
/// costs no allocation and no zero-fill: each fragment is appended with a
/// bounded `read_to_end`, which only writes bytes actually received.
pub fn read_record_into<R: Read + ?Sized>(
    r: &mut R,
    record: &mut Vec<u8>,
    max_record: usize,
) -> RpcResult<Option<usize>> {
    record.clear();
    let mut first = true;
    loop {
        let mut header = [0u8; 4];
        if first {
            // Distinguish clean EOF from a mid-record cut.
            match read_exact_or_eof(r, &mut header)? {
                ReadOutcome::Eof => return Ok(None),
                ReadOutcome::Filled => {}
            }
        } else {
            r.read_exact(&mut header).map_err(RpcError::from)?;
        }
        first = false;
        let word = u32::from_be_bytes(header);
        let last = word & LAST_FRAGMENT != 0;
        let len = (word & LENGTH_MASK) as usize;
        if record.len() + len > max_record {
            return Err(RpcError::RecordTooLarge {
                size: record.len() + len,
                max: max_record,
            });
        }
        record.reserve(len);
        // `take(len)` bounds the read; `read_to_end` appends without
        // zero-filling and stops at the limit without an extra syscall.
        let got = (&mut *r)
            .take(len as u64)
            .read_to_end(record)
            .map_err(RpcError::from)?;
        if got < len {
            return Err(RpcError::ConnectionClosed);
        }
        if last {
            telemetry::add_memmoved(record.len());
            return Ok(Some(record.len()));
        }
    }
}

enum ReadOutcome {
    Filled,
    Eof,
}

/// `read_exact`, but a clean EOF before the first byte yields `Eof` instead
/// of an error.
fn read_exact_or_eof<R: Read + ?Sized>(r: &mut R, buf: &mut [u8]) -> RpcResult<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(ReadOutcome::Eof);
                }
                return Err(RpcError::ConnectionClosed);
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Filled)
}

/// Incremental, pull-based record reassembly for nonblocking reads.
///
/// The blocking readers above own their stream and can park inside `read`;
/// an event-driven server cannot — it receives whatever bytes the socket
/// had and must resume mid-header or mid-fragment on the next readiness
/// event. `RecordAssembler` decouples byte arrival from record extraction:
/// feed raw bytes with [`RecordAssembler::extend`], then drain complete
/// records with [`RecordAssembler::next_record`] — which the caller may
/// stop calling at any point (backpressure) without losing stream state.
///
/// Steady state allocates nothing: the raw buffer and the assembled-record
/// buffer are both reused, and the raw buffer is compacted only when the
/// consumed prefix dominates.
#[derive(Debug)]
pub struct RecordAssembler {
    /// Raw unparsed stream bytes; `off` is the consumed prefix.
    buf: Vec<u8>,
    off: usize,
    /// The assembled record handed out by the last `next_record`.
    record: Vec<u8>,
    max_record: usize,
}

impl Default for RecordAssembler {
    fn default() -> Self {
        Self::new(MAX_RECORD)
    }
}

impl RecordAssembler {
    /// Create an assembler that rejects records larger than `max_record`.
    pub fn new(max_record: usize) -> Self {
        Self {
            buf: Vec::new(),
            off: 0,
            record: Vec::new(),
            max_record,
        }
    }

    /// Append raw bytes received from the stream.
    pub fn extend(&mut self, data: &[u8]) {
        // Compact before growing: once more than half the buffer is dead
        // prefix, slide the live tail down instead of reallocating past it.
        if self.off > 0 && self.off * 2 >= self.buf.len() {
            self.buf.drain(..self.off);
            self.off = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet returned as part of a complete record.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.off
    }

    /// Extract the next complete record, if the buffer holds one.
    ///
    /// Returns `Ok(None)` when more bytes are needed; the partial state is
    /// kept. The returned slice is valid until the next call.
    pub fn next_record(&mut self) -> RpcResult<Option<&[u8]>> {
        let avail = &self.buf[self.off..];
        let mut pos = 0usize;
        let mut total = 0usize;
        // First pass: walk the fragment headers to see whether the whole
        // record has arrived (records are small on the hot path, and the
        // walk touches only headers — 4 bytes per fragment).
        loop {
            if avail.len() < pos + 4 {
                return Ok(None);
            }
            let word = u32::from_be_bytes(avail[pos..pos + 4].try_into().unwrap());
            let len = (word & LENGTH_MASK) as usize;
            total += len;
            if total > self.max_record {
                return Err(RpcError::RecordTooLarge {
                    size: total,
                    max: self.max_record,
                });
            }
            if avail.len() < pos + 4 + len {
                return Ok(None);
            }
            pos += 4 + len;
            if word & LAST_FRAGMENT != 0 {
                break;
            }
        }
        // Second pass: gather the fragment payloads contiguously.
        self.record.clear();
        self.record.reserve(total);
        let mut at = 0usize;
        loop {
            let word = u32::from_be_bytes(avail[at..at + 4].try_into().unwrap());
            let len = (word & LENGTH_MASK) as usize;
            self.record.extend_from_slice(&avail[at + 4..at + 4 + len]);
            at += 4 + len;
            if word & LAST_FRAGMENT != 0 {
                break;
            }
        }
        debug_assert_eq!(at, pos);
        self.off += pos;
        telemetry::add_memmoved(self.record.len());
        Ok(Some(&self.record))
    }
}

/// Buffered record writer bound to a `Write` stream.
#[derive(Debug)]
pub struct RecordWriter<W: Write> {
    inner: W,
    max_fragment: usize,
    /// Number of fragments emitted, for tests and telemetry.
    pub fragments_written: u64,
}

impl<W: Write> RecordWriter<W> {
    /// Wrap `inner` with the default fragment size.
    pub fn new(inner: W) -> Self {
        Self::with_max_fragment(inner, DEFAULT_MAX_FRAGMENT)
    }

    /// Wrap `inner` with a custom maximum fragment payload size.
    pub fn with_max_fragment(inner: W, max_fragment: usize) -> Self {
        assert!(max_fragment > 0);
        Self {
            inner,
            max_fragment,
            fragments_written: 0,
        }
    }

    /// Write one record. The fragment counter reflects only records that
    /// were written in full — a failed write no longer inflates it.
    pub fn write_record(&mut self, payload: &[u8]) -> RpcResult<()> {
        let frags = write_record_sg(&mut self.inner, &[payload], self.max_fragment)?;
        self.fragments_written += frags;
        Ok(())
    }

    /// Write one record from a gather list without flattening it first.
    pub fn write_record_sg(&mut self, segs: &[&[u8]]) -> RpcResult<()> {
        let frags = write_record_sg(&mut self.inner, segs, self.max_fragment)?;
        self.fragments_written += frags;
        Ok(())
    }

    /// Access the underlying stream.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

/// Buffered record reader bound to a `Read` stream, owning a pooled
/// reassembly buffer reused across records.
#[derive(Debug)]
pub struct RecordReader<R: Read> {
    inner: R,
    max_record: usize,
    buf: Vec<u8>,
}

impl<R: Read> RecordReader<R> {
    /// Wrap `inner` with the default record size cap.
    pub fn new(inner: R) -> Self {
        Self::with_max_record(inner, MAX_RECORD)
    }

    /// Wrap `inner` with a custom record size cap.
    pub fn with_max_record(inner: R, max_record: usize) -> Self {
        Self {
            inner,
            max_record,
            buf: Vec::new(),
        }
    }

    /// Read the next record into a fresh `Vec`; `None` on clean
    /// end-of-stream. Allocates per record — prefer
    /// [`RecordReader::read_record_pooled`] on hot paths.
    pub fn read_record(&mut self) -> RpcResult<Option<Vec<u8>>> {
        read_record(&mut self.inner, self.max_record)
    }

    /// Read the next record into the pooled buffer and borrow it. In steady
    /// state (record sizes repeat or shrink) this performs no allocation.
    /// The returned slice is valid until the next read.
    pub fn read_record_pooled(&mut self) -> RpcResult<Option<&[u8]>> {
        match read_record_into(&mut self.inner, &mut self.buf, self.max_record)? {
            Some(n) => Ok(Some(&self.buf[..n])),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(payload: &[u8], max_fragment: usize) -> Vec<u8> {
        let mut wire = Vec::new();
        write_record(&mut wire, payload, max_fragment).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        read_record(&mut cursor, MAX_RECORD).unwrap().unwrap()
    }

    #[test]
    fn single_fragment_roundtrip() {
        let data = b"hello rpc".to_vec();
        assert_eq!(roundtrip(&data, 1024), data);
    }

    #[test]
    fn empty_record_roundtrip() {
        assert_eq!(roundtrip(&[], 1024), Vec::<u8>::new());
    }

    #[test]
    fn multi_fragment_roundtrip() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        // Force many fragments.
        assert_eq!(roundtrip(&data, 100), data);
    }

    #[test]
    fn fragment_boundary_exact_multiple() {
        // Payload is an exact multiple of the fragment size: the final
        // fragment must be full-sized and flagged last (no empty trailer).
        let data = vec![7u8; 400];
        let mut wire = Vec::new();
        write_record(&mut wire, &data, 100).unwrap();
        // 4 fragments x (4 header + 100 payload)
        assert_eq!(wire.len(), 4 * 104);
        let last_header = u32::from_be_bytes(wire[3 * 104..3 * 104 + 4].try_into().unwrap());
        assert!(last_header & LAST_FRAGMENT != 0);
        assert_eq!(last_header & LENGTH_MASK, 100);
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_record(&mut cursor, MAX_RECORD).unwrap().unwrap(), data);
    }

    #[test]
    fn fragment_count_tracked() {
        let mut w = RecordWriter::with_max_fragment(Vec::new(), 10);
        w.write_record(&[0u8; 35]).unwrap();
        assert_eq!(w.fragments_written, 4);
        w.write_record(&[]).unwrap();
        assert_eq!(w.fragments_written, 5);
    }

    #[test]
    fn clean_eof_between_records() {
        let mut cursor = std::io::Cursor::new(Vec::<u8>::new());
        assert!(read_record(&mut cursor, MAX_RECORD).unwrap().is_none());
    }

    #[test]
    fn eof_mid_record_is_error() {
        let mut wire = Vec::new();
        write_record(&mut wire, &[1u8; 64], 1024).unwrap();
        wire.truncate(10); // cut inside the payload
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_record(&mut cursor, MAX_RECORD),
            Err(RpcError::ConnectionClosed) | Err(RpcError::Io(_))
        ));
    }

    #[test]
    fn eof_mid_header_is_error() {
        let wire = vec![0x80, 0x00]; // half a header
        let mut cursor = std::io::Cursor::new(wire);
        assert!(read_record(&mut cursor, MAX_RECORD).is_err());
    }

    #[test]
    fn oversized_record_rejected() {
        let mut wire = Vec::new();
        write_record(&mut wire, &[1u8; 1000], 100).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_record(&mut cursor, 500),
            Err(RpcError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn multiple_records_sequential() {
        let mut wire = Vec::new();
        write_record(&mut wire, b"first", 3).unwrap();
        write_record(&mut wire, b"second-record", 4).unwrap();
        write_record(&mut wire, b"", 4).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(
            read_record(&mut cursor, MAX_RECORD).unwrap().unwrap(),
            b"first"
        );
        assert_eq!(
            read_record(&mut cursor, MAX_RECORD).unwrap().unwrap(),
            b"second-record"
        );
        assert_eq!(read_record(&mut cursor, MAX_RECORD).unwrap().unwrap(), b"");
        assert!(read_record(&mut cursor, MAX_RECORD).unwrap().is_none());
    }

    #[test]
    fn assembler_single_and_multi_fragment() {
        let mut wire = Vec::new();
        write_record(&mut wire, b"hello", 1024).unwrap();
        write_record(&mut wire, &[9u8; 350], 100).unwrap(); // 4 fragments
        let mut asm = RecordAssembler::default();
        asm.extend(&wire);
        assert_eq!(asm.next_record().unwrap().unwrap(), b"hello");
        assert_eq!(asm.next_record().unwrap().unwrap(), &[9u8; 350][..]);
        assert!(asm.next_record().unwrap().is_none());
        assert_eq!(asm.pending_bytes(), 0);
    }

    #[test]
    fn assembler_survives_byte_at_a_time_arrival() {
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 253) as u8).collect();
        let mut wire = Vec::new();
        write_record(&mut wire, &payload, 64).unwrap();
        let mut asm = RecordAssembler::default();
        let mut out = None;
        for (i, b) in wire.iter().enumerate() {
            asm.extend(std::slice::from_ref(b));
            match asm.next_record().unwrap() {
                Some(rec) => {
                    assert_eq!(i, wire.len() - 1, "record completed early");
                    out = Some(rec.to_vec());
                }
                None => assert!(i < wire.len() - 1, "record never completed"),
            }
        }
        assert_eq!(out.unwrap(), payload);
    }

    #[test]
    fn assembler_interleaves_partial_records_and_reuses_buffers() {
        let mut asm = RecordAssembler::default();
        for round in 0..50u8 {
            let payload = vec![round; 700];
            let mut wire = Vec::new();
            write_record(&mut wire, &payload, 256).unwrap();
            let (a, b) = wire.split_at(wire.len() / 2);
            asm.extend(a);
            assert!(asm.next_record().unwrap().is_none());
            asm.extend(b);
            assert_eq!(asm.next_record().unwrap().unwrap(), &payload[..]);
        }
        // Compaction keeps the raw buffer from growing with round count.
        assert!(
            asm.buf.capacity() < 16 * 1024,
            "raw buffer grew unboundedly"
        );
    }

    #[test]
    fn assembler_rejects_oversized_records() {
        let mut wire = Vec::new();
        write_record(&mut wire, &[1u8; 1000], 100).unwrap();
        let mut asm = RecordAssembler::new(500);
        asm.extend(&wire);
        assert!(matches!(
            asm.next_record(),
            Err(RpcError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn assembler_empty_record() {
        let mut wire = Vec::new();
        write_record(&mut wire, &[], 1024).unwrap();
        let mut asm = RecordAssembler::default();
        asm.extend(&wire);
        assert_eq!(asm.next_record().unwrap().unwrap(), b"");
    }

    #[test]
    fn large_transfer_many_fragments() {
        // A "GPU memory transfer" sized record: 8 MiB over 1 MiB fragments.
        let data: Vec<u8> = (0..(8 << 20)).map(|i| (i * 31 % 256) as u8).collect();
        let out = roundtrip(&data, DEFAULT_MAX_FRAGMENT);
        assert_eq!(out.len(), data.len());
        assert_eq!(out, data);
    }
}
