//! Record marking (RFC 5531 §11) with multi-fragment support.
//!
//! Over a stream transport, each RPC message is a *record* composed of one or
//! more *fragments*. A fragment starts with a 4-byte big-endian header whose
//! top bit marks the final fragment and whose low 31 bits give the fragment
//! length. Support for records spanning many fragments is the capability the
//! paper calls out as missing from the `onc_rpc` crate — without it, CUDA
//! memory transfers would be capped at one fragment.

use crate::error::{RpcError, RpcResult};
use std::io::{Read, Write};

/// Default maximum bytes of payload per fragment when writing.
///
/// Real libtirpc uses fragments of up to 2^31-1 bytes; Cricket's transfers
/// are chunked near this size. We default to 1 MiB so large transfers
/// genuinely exercise the multi-fragment path, and make it configurable for
/// the fragmentation ablation benchmark.
pub const DEFAULT_MAX_FRAGMENT: usize = 1 << 20;

/// Hard cap on a reassembled record (1 GiB) to bound memory under malicious
/// or corrupt headers.
pub const MAX_RECORD: usize = 1 << 30;

const LAST_FRAGMENT: u32 = 0x8000_0000;
const LENGTH_MASK: u32 = 0x7fff_ffff;

/// Split `payload` into record-marked fragments and write them to `w`.
///
/// `max_fragment` bounds the payload bytes per fragment. A zero-length
/// payload is sent as a single empty final fragment, which RFC 5531 permits.
pub fn write_record<W: Write + ?Sized>(
    w: &mut W,
    payload: &[u8],
    max_fragment: usize,
) -> RpcResult<()> {
    assert!(max_fragment > 0, "max_fragment must be positive");
    let mut offset = 0;
    loop {
        let remaining = payload.len() - offset;
        let frag_len = remaining.min(max_fragment);
        let last = frag_len == remaining;
        let header = (frag_len as u32 & LENGTH_MASK) | if last { LAST_FRAGMENT } else { 0 };
        w.write_all(&header.to_be_bytes())?;
        w.write_all(&payload[offset..offset + frag_len])?;
        offset += frag_len;
        if last {
            break;
        }
    }
    w.flush()?;
    Ok(())
}

/// Read one complete record (all fragments) from `r`.
///
/// Returns `Ok(None)` if the stream is cleanly closed *before* the first
/// header byte — i.e. the peer hung up between records, which is how servers
/// detect client disconnects. EOF in the middle of a record is an error.
pub fn read_record<R: Read + ?Sized>(r: &mut R, max_record: usize) -> RpcResult<Option<Vec<u8>>> {
    let mut record = Vec::new();
    let mut first = true;
    loop {
        let mut header = [0u8; 4];
        if first {
            // Distinguish clean EOF from a mid-record cut.
            match read_exact_or_eof(r, &mut header)? {
                ReadOutcome::Eof => return Ok(None),
                ReadOutcome::Filled => {}
            }
        } else {
            r.read_exact(&mut header).map_err(RpcError::from)?;
        }
        first = false;
        let word = u32::from_be_bytes(header);
        let last = word & LAST_FRAGMENT != 0;
        let len = (word & LENGTH_MASK) as usize;
        if record.len() + len > max_record {
            return Err(RpcError::RecordTooLarge {
                size: record.len() + len,
                max: max_record,
            });
        }
        let start = record.len();
        record.resize(start + len, 0);
        r.read_exact(&mut record[start..]).map_err(RpcError::from)?;
        if last {
            return Ok(Some(record));
        }
    }
}

enum ReadOutcome {
    Filled,
    Eof,
}

/// `read_exact`, but a clean EOF before the first byte yields `Eof` instead
/// of an error.
fn read_exact_or_eof<R: Read + ?Sized>(r: &mut R, buf: &mut [u8]) -> RpcResult<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(ReadOutcome::Eof);
                }
                return Err(RpcError::ConnectionClosed);
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Filled)
}

/// Buffered record writer bound to a `Write` stream.
#[derive(Debug)]
pub struct RecordWriter<W: Write> {
    inner: W,
    max_fragment: usize,
    /// Number of fragments emitted, for tests and telemetry.
    pub fragments_written: u64,
}

impl<W: Write> RecordWriter<W> {
    /// Wrap `inner` with the default fragment size.
    pub fn new(inner: W) -> Self {
        Self::with_max_fragment(inner, DEFAULT_MAX_FRAGMENT)
    }

    /// Wrap `inner` with a custom maximum fragment payload size.
    pub fn with_max_fragment(inner: W, max_fragment: usize) -> Self {
        assert!(max_fragment > 0);
        Self {
            inner,
            max_fragment,
            fragments_written: 0,
        }
    }

    /// Write one record.
    pub fn write_record(&mut self, payload: &[u8]) -> RpcResult<()> {
        let frags = payload.len().div_ceil(self.max_fragment).max(1);
        self.fragments_written += frags as u64;
        write_record(&mut self.inner, payload, self.max_fragment)
    }

    /// Access the underlying stream.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

/// Buffered record reader bound to a `Read` stream.
#[derive(Debug)]
pub struct RecordReader<R: Read> {
    inner: R,
    max_record: usize,
}

impl<R: Read> RecordReader<R> {
    /// Wrap `inner` with the default record size cap.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            max_record: MAX_RECORD,
        }
    }

    /// Wrap `inner` with a custom record size cap.
    pub fn with_max_record(inner: R, max_record: usize) -> Self {
        Self { inner, max_record }
    }

    /// Read the next record; `None` on clean end-of-stream.
    pub fn read_record(&mut self) -> RpcResult<Option<Vec<u8>>> {
        read_record(&mut self.inner, self.max_record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(payload: &[u8], max_fragment: usize) -> Vec<u8> {
        let mut wire = Vec::new();
        write_record(&mut wire, payload, max_fragment).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        read_record(&mut cursor, MAX_RECORD).unwrap().unwrap()
    }

    #[test]
    fn single_fragment_roundtrip() {
        let data = b"hello rpc".to_vec();
        assert_eq!(roundtrip(&data, 1024), data);
    }

    #[test]
    fn empty_record_roundtrip() {
        assert_eq!(roundtrip(&[], 1024), Vec::<u8>::new());
    }

    #[test]
    fn multi_fragment_roundtrip() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        // Force many fragments.
        assert_eq!(roundtrip(&data, 100), data);
    }

    #[test]
    fn fragment_boundary_exact_multiple() {
        // Payload is an exact multiple of the fragment size: the final
        // fragment must be full-sized and flagged last (no empty trailer).
        let data = vec![7u8; 400];
        let mut wire = Vec::new();
        write_record(&mut wire, &data, 100).unwrap();
        // 4 fragments x (4 header + 100 payload)
        assert_eq!(wire.len(), 4 * 104);
        let last_header = u32::from_be_bytes(wire[3 * 104..3 * 104 + 4].try_into().unwrap());
        assert!(last_header & LAST_FRAGMENT != 0);
        assert_eq!(last_header & LENGTH_MASK, 100);
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_record(&mut cursor, MAX_RECORD).unwrap().unwrap(), data);
    }

    #[test]
    fn fragment_count_tracked() {
        let mut w = RecordWriter::with_max_fragment(Vec::new(), 10);
        w.write_record(&[0u8; 35]).unwrap();
        assert_eq!(w.fragments_written, 4);
        w.write_record(&[]).unwrap();
        assert_eq!(w.fragments_written, 5);
    }

    #[test]
    fn clean_eof_between_records() {
        let mut cursor = std::io::Cursor::new(Vec::<u8>::new());
        assert!(read_record(&mut cursor, MAX_RECORD).unwrap().is_none());
    }

    #[test]
    fn eof_mid_record_is_error() {
        let mut wire = Vec::new();
        write_record(&mut wire, &[1u8; 64], 1024).unwrap();
        wire.truncate(10); // cut inside the payload
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_record(&mut cursor, MAX_RECORD),
            Err(RpcError::ConnectionClosed) | Err(RpcError::Io(_))
        ));
    }

    #[test]
    fn eof_mid_header_is_error() {
        let wire = vec![0x80, 0x00]; // half a header
        let mut cursor = std::io::Cursor::new(wire);
        assert!(read_record(&mut cursor, MAX_RECORD).is_err());
    }

    #[test]
    fn oversized_record_rejected() {
        let mut wire = Vec::new();
        write_record(&mut wire, &[1u8; 1000], 100).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_record(&mut cursor, 500),
            Err(RpcError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn multiple_records_sequential() {
        let mut wire = Vec::new();
        write_record(&mut wire, b"first", 3).unwrap();
        write_record(&mut wire, b"second-record", 4).unwrap();
        write_record(&mut wire, b"", 4).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(
            read_record(&mut cursor, MAX_RECORD).unwrap().unwrap(),
            b"first"
        );
        assert_eq!(
            read_record(&mut cursor, MAX_RECORD).unwrap().unwrap(),
            b"second-record"
        );
        assert_eq!(
            read_record(&mut cursor, MAX_RECORD).unwrap().unwrap(),
            b""
        );
        assert!(read_record(&mut cursor, MAX_RECORD).unwrap().is_none());
    }

    #[test]
    fn large_transfer_many_fragments() {
        // A "GPU memory transfer" sized record: 8 MiB over 1 MiB fragments.
        let data: Vec<u8> = (0..(8 << 20)).map(|i| (i * 31 % 256) as u8).collect();
        let out = roundtrip(&data, DEFAULT_MAX_FRAGMENT);
        assert_eq!(out.len(), data.len());
        assert_eq!(out, data);
    }
}
