//! Authentication flavors (RFC 5531 §8.2, §9.1).
//!
//! Cricket itself uses `AUTH_NONE`; `AUTH_SYS` (historically `AUTH_UNIX`) is
//! implemented for completeness and exercised by tests.

use xdr::{Xdr, XdrDecoder, XdrEncoder, XdrError, XdrResult, XdrVec};

/// Well-known auth flavor numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum AuthFlavor {
    /// No authentication.
    None = 0,
    /// Unix-style credentials (uid/gid/machine name).
    Sys = 1,
    /// Short-hand verifier issued by the server.
    Short = 2,
}

impl AuthFlavor {
    /// Parse a wire flavor number.
    pub fn from_u32(v: u32) -> Option<Self> {
        match v {
            0 => Some(AuthFlavor::None),
            1 => Some(AuthFlavor::Sys),
            2 => Some(AuthFlavor::Short),
            _ => None,
        }
    }
}

/// Maximum opaque auth body size permitted by RFC 5531.
pub const MAX_AUTH_BODY: usize = 400;

/// An authentication item: flavor + opaque body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpaqueAuth {
    /// Flavor number (may be a value we do not recognize; passed through).
    pub flavor: u32,
    /// Flavor-specific payload, at most [`MAX_AUTH_BODY`] bytes.
    pub body: Vec<u8>,
}

impl OpaqueAuth {
    /// `AUTH_NONE` credential/verifier.
    pub fn none() -> Self {
        Self {
            flavor: AuthFlavor::None as u32,
            body: Vec::new(),
        }
    }

    /// Build an `AUTH_SYS` credential.
    pub fn sys(cred: &AuthSysParams) -> Self {
        let mut enc = XdrEncoder::new();
        cred.encode(&mut enc);
        Self {
            flavor: AuthFlavor::Sys as u32,
            body: enc.into_inner(),
        }
    }

    /// Decode the body as `AUTH_SYS` parameters, if the flavor matches.
    pub fn as_sys(&self) -> Option<AuthSysParams> {
        if self.flavor != AuthFlavor::Sys as u32 {
            return None;
        }
        xdr::decode(&self.body).ok()
    }

    /// Build a credential carrying a stable client-instance token, used to
    /// key the server's at-most-once replay cache. `AUTH_SHORT` is the
    /// natural carrier: RFC 5531 defines it as an opaque server-interpreted
    /// handle, and Cricket does not otherwise use it.
    pub fn client_token(token: u64) -> Self {
        Self {
            flavor: AuthFlavor::Short as u32,
            body: token.to_be_bytes().to_vec(),
        }
    }

    /// Extract a client token written by [`OpaqueAuth::client_token`].
    pub fn as_client_token(&self) -> Option<u64> {
        if self.flavor != AuthFlavor::Short as u32 {
            return None;
        }
        Some(u64::from_be_bytes(self.body.as_slice().try_into().ok()?))
    }
}

impl Xdr for OpaqueAuth {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.flavor);
        enc.put_opaque(&self.body);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let flavor = dec.get_u32()?;
        let body = dec.get_opaque_max(MAX_AUTH_BODY)?.to_vec();
        Ok(Self { flavor, body })
    }
}

/// `AUTH_SYS` credential contents (RFC 5531 Appendix A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthSysParams {
    /// Seconds since epoch at credential creation.
    pub stamp: u32,
    /// Caller's machine name.
    pub machinename: String,
    /// Effective user id.
    pub uid: u32,
    /// Effective group id.
    pub gid: u32,
    /// Supplementary group ids (at most 16).
    pub gids: Vec<u32>,
}

impl Xdr for AuthSysParams {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.stamp);
        enc.put_string(&self.machinename);
        enc.put_u32(self.uid);
        enc.put_u32(self.gid);
        enc.put_array(&self.gids);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let stamp = dec.get_u32()?;
        let machinename = dec.get_string()?;
        if machinename.len() > 255 {
            return Err(XdrError::LengthOutOfBounds {
                len: machinename.len(),
                max: 255,
            });
        }
        let uid = dec.get_u32()?;
        let gid = dec.get_u32()?;
        let gids: XdrVec<u32> = dec.get()?;
        if gids.len() > 16 {
            return Err(XdrError::LengthOutOfBounds {
                len: gids.len(),
                max: 16,
            });
        }
        Ok(Self {
            stamp,
            machinename,
            uid,
            gid,
            gids: gids.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_auth_is_empty() {
        let a = OpaqueAuth::none();
        let buf = xdr::encode(&a);
        assert_eq!(buf, [0, 0, 0, 0, 0, 0, 0, 0]); // flavor 0, length 0
        assert_eq!(xdr::decode::<OpaqueAuth>(&buf).unwrap(), a);
    }

    #[test]
    fn sys_auth_roundtrip() {
        let params = AuthSysParams {
            stamp: 12345,
            machinename: "gpu-node-0".into(),
            uid: 1000,
            gid: 1000,
            gids: vec![4, 24, 27],
        };
        let auth = OpaqueAuth::sys(&params);
        assert_eq!(auth.flavor, AuthFlavor::Sys as u32);
        let back = xdr::decode::<OpaqueAuth>(&xdr::encode(&auth)).unwrap();
        assert_eq!(back.as_sys().unwrap(), params);
    }

    #[test]
    fn oversized_auth_body_rejected() {
        let a = OpaqueAuth {
            flavor: 0,
            body: vec![0u8; MAX_AUTH_BODY + 1],
        };
        let buf = xdr::encode(&a);
        assert!(xdr::decode::<OpaqueAuth>(&buf).is_err());
    }

    #[test]
    fn as_sys_on_wrong_flavor_is_none() {
        assert!(OpaqueAuth::none().as_sys().is_none());
    }

    #[test]
    fn client_token_roundtrip() {
        let auth = OpaqueAuth::client_token(0xdead_beef_cafe_f00d);
        assert_eq!(auth.flavor, AuthFlavor::Short as u32);
        let back = xdr::decode::<OpaqueAuth>(&xdr::encode(&auth)).unwrap();
        assert_eq!(back.as_client_token(), Some(0xdead_beef_cafe_f00d));
        assert!(OpaqueAuth::none().as_client_token().is_none());
    }

    #[test]
    fn too_many_gids_rejected() {
        let params = AuthSysParams {
            stamp: 0,
            machinename: "m".into(),
            uid: 0,
            gid: 0,
            gids: vec![0; 17],
        };
        let mut enc = XdrEncoder::new();
        params.encode(&mut enc);
        assert!(xdr::decode::<AuthSysParams>(enc.as_slice()).is_err());
    }
}
