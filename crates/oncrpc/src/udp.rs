//! ONC RPC over UDP (RFC 5531 §11, datagram mode).
//!
//! Over UDP every RPC message is exactly one datagram — no record marking,
//! and therefore **no fragmentation**: calls and replies are limited to one
//! datagram (~64 KiB). This is precisely why Cricket runs over TCP — GPU
//! memory transfers do not fit — but a complete ONC RPC implementation
//! supports both, and the latency-only Cricket procedures work fine over
//! UDP. The client implements the classic timeout/retransmission loop with
//! xid matching (stale replies from earlier retransmissions are discarded).

use crate::error::{RpcError, RpcResult};
use crate::server::RpcServer;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdr::{Xdr, XdrDecoder, XdrEncoder};

/// Practical maximum UDP payload (IPv4 reassembly limit minus headers).
pub const MAX_DATAGRAM: usize = 65_507;

/// A synchronous UDP RPC client.
pub struct UdpClient {
    socket: UdpSocket,
    prog: u32,
    vers: u32,
    next_xid: u32,
    /// Reply timeout per attempt.
    pub timeout: Duration,
    /// Total attempts (1 initial + retransmissions).
    pub attempts: u32,
    /// Retransmissions performed (telemetry, exercised by loss tests).
    pub retransmissions: u64,
}

impl UdpClient {
    /// Create a client bound to an ephemeral port, "connected" to `server`.
    pub fn connect<A: ToSocketAddrs>(server: A, prog: u32, vers: u32) -> RpcResult<Self> {
        let socket = UdpSocket::bind("0.0.0.0:0")?;
        socket.connect(server)?;
        Ok(Self {
            socket,
            prog,
            vers,
            next_xid: 0x7f00_0001,
            timeout: Duration::from_millis(200),
            attempts: 5,
            retransmissions: 0,
        })
    }

    /// Issue procedure `proc` with `args`, decoding the reply as `R`.
    pub fn call<A: Xdr, R: Xdr>(&mut self, proc: u32, args: &A) -> RpcResult<R> {
        use crate::msg::{AcceptStat, CallBody, MessageBody, ReplyBody, RpcMessage};

        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);

        let mut enc = XdrEncoder::with_capacity(256);
        RpcMessage::call(xid, CallBody::new(self.prog, self.vers, proc)).encode(&mut enc);
        args.encode(&mut enc);
        if enc.len() > MAX_DATAGRAM {
            return Err(RpcError::RecordTooLarge {
                size: enc.len(),
                max: MAX_DATAGRAM,
            });
        }

        let mut buf = vec![0u8; MAX_DATAGRAM];
        for attempt in 0..self.attempts {
            if attempt > 0 {
                self.retransmissions += 1;
            }
            self.socket.send(enc.as_slice())?;
            // Drain datagrams until our xid answers or the attempt deadline
            // fires. The deadline is absolute (`Instant`), not per `recv`:
            // a stream of stale replies from earlier attempts or calls must
            // not keep extending the wait, or a reissued call could block
            // for as long as a chatty peer keeps talking.
            let deadline = Instant::now() + self.timeout;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break; // retransmit
                }
                self.socket.set_read_timeout(Some(remaining))?;
                let n = match self.socket.recv(&mut buf) {
                    Ok(n) => n,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        break; // retransmit
                    }
                    Err(e) => return Err(e.into()),
                };
                let mut dec = XdrDecoder::new(&buf[..n]);
                let Ok(msg) = RpcMessage::decode(&mut dec) else {
                    continue; // malformed datagram: ignore
                };
                if msg.xid != xid {
                    continue; // stale reply from an earlier attempt
                }
                let body = match msg.body {
                    MessageBody::Reply(b) => b,
                    MessageBody::Call(_) => return Err(RpcError::UnexpectedMessageType),
                };
                return match body {
                    ReplyBody::Accepted {
                        stat: AcceptStat::Success,
                        ..
                    } => {
                        let result = R::decode(&mut dec)?;
                        dec.finish()?;
                        Ok(result)
                    }
                    ReplyBody::Accepted { stat, .. } => Err(RpcError::Accepted(stat)),
                    ReplyBody::Denied(stat) => Err(RpcError::Rejected(stat)),
                };
            }
        }
        Err(RpcError::TimedOut)
    }
}

/// Handle to a running UDP server; dropping it requests shutdown.
pub struct UdpServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl UdpServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown and wait for the loop to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for UdpServerHandle {
    fn drop(&mut self) {
        if self.join.is_some() {
            self.stop_and_join();
        }
    }
}

/// Fault schedule for [`serve_udp_with`] — the datagram-mode analogue of
/// the chaos transport's scripted events.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplySchedule {
    /// Silently drop every n-th request (exercises retransmission).
    pub loss_every: Option<u64>,
    /// Withhold the reply to the n-th request (1-based) for the given
    /// duration, then send it *twice*: the classic delayed-duplicate that a
    /// correct client must tolerate across reissued calls.
    pub delay_duplicate: Option<(u64, Duration)>,
}

/// Serve `server` on a UDP socket (one datagram in, one datagram out).
/// `loss_every` is a test hook: when `Some(n)`, every n-th request is
/// silently dropped, exercising client retransmission.
pub fn serve_udp<A: ToSocketAddrs>(
    server: Arc<RpcServer>,
    addr: A,
    loss_every: Option<u64>,
) -> RpcResult<UdpServerHandle> {
    serve_udp_with(
        server,
        addr,
        ReplySchedule {
            loss_every,
            delay_duplicate: None,
        },
    )
}

/// [`serve_udp`] with a full [`ReplySchedule`].
pub fn serve_udp_with<A: ToSocketAddrs>(
    server: Arc<RpcServer>,
    addr: A,
    schedule: ReplySchedule,
) -> RpcResult<UdpServerHandle> {
    let socket = UdpSocket::bind(addr)?;
    let local = socket.local_addr()?;
    socket.set_read_timeout(Some(Duration::from_millis(50)))?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("oncrpc-udp".into())
        .spawn(move || {
            let mut buf = vec![0u8; MAX_DATAGRAM];
            let mut received = 0u64;
            while !stop2.load(Ordering::SeqCst) {
                let (n, peer) = match socket.recv_from(&mut buf) {
                    Ok(r) => r,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(_) => break,
                };
                received += 1;
                if let Some(every) = schedule.loss_every {
                    if received.is_multiple_of(every) {
                        continue; // simulated datagram loss
                    }
                }
                if let Ok(reply) = server.handle_record(&buf[..n]) {
                    if reply.len() <= MAX_DATAGRAM {
                        if let Some((nth, delay)) = schedule.delay_duplicate {
                            if received == nth {
                                std::thread::sleep(delay);
                                let _ = socket.send_to(&reply, peer);
                            }
                        }
                        let _ = socket.send_to(&reply, peer);
                    }
                }
            }
        })
        .expect("spawn udp thread");
    Ok(UdpServerHandle {
        addr: local,
        stop,
        join: Some(join),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::AcceptStat;
    use crate::server::DispatchResult;

    fn adder() -> Arc<RpcServer> {
        let s = Arc::new(RpcServer::new());
        s.register(
            700,
            1,
            Arc::new(
                |proc: u32, args: &mut XdrDecoder<'_>, reply: &mut XdrEncoder| -> DispatchResult {
                    match proc {
                        0 => Ok(()),
                        1 => {
                            let a = args.get_u32().map_err(|_| AcceptStat::GarbageArgs)?;
                            let b = args.get_u32().map_err(|_| AcceptStat::GarbageArgs)?;
                            reply.put_u32(a + b);
                            Ok(())
                        }
                        2 => {
                            let data = args.get_opaque().map_err(|_| AcceptStat::GarbageArgs)?;
                            reply.put_opaque(data);
                            Ok(())
                        }
                        _ => Err(AcceptStat::ProcUnavail),
                    }
                },
            ),
        );
        s
    }

    #[test]
    fn udp_call_roundtrip() {
        let handle = serve_udp(adder(), "127.0.0.1:0", None).unwrap();
        let mut client = UdpClient::connect(handle.addr(), 700, 1).unwrap();
        client.call::<(), ()>(0, &()).unwrap();
        let sum: u32 = client.call(1, &(19u32, 23u32)).unwrap();
        assert_eq!(sum, 42);
        assert_eq!(client.retransmissions, 0);
        handle.shutdown();
    }

    #[test]
    fn retransmission_survives_datagram_loss() {
        // Drop every 2nd request: each call may need a retry.
        let handle = serve_udp(adder(), "127.0.0.1:0", Some(2)).unwrap();
        let mut client = UdpClient::connect(handle.addr(), 700, 1).unwrap();
        client.timeout = Duration::from_millis(80);
        for i in 0..6u32 {
            let sum: u32 = client.call(1, &(i, 1u32)).unwrap();
            assert_eq!(sum, i + 1);
        }
        assert!(
            client.retransmissions >= 2,
            "loss must have forced retransmissions: {}",
            client.retransmissions
        );
        handle.shutdown();
    }

    #[test]
    fn oversized_call_rejected_client_side() {
        let handle = serve_udp(adder(), "127.0.0.1:0", None).unwrap();
        let mut client = UdpClient::connect(handle.addr(), 700, 1).unwrap();
        let big = vec![0u8; 80_000];
        let err = client.call::<Vec<u8>, Vec<u8>>(2, &big).unwrap_err();
        assert!(matches!(err, RpcError::RecordTooLarge { .. }));
        handle.shutdown();
    }

    #[test]
    fn unreachable_server_times_out() {
        // Nothing listens on this ephemeral-but-closed port.
        let dead = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = dead.local_addr().unwrap();
        drop(dead);
        let mut client = UdpClient::connect(addr, 700, 1).unwrap();
        client.timeout = Duration::from_millis(30);
        client.attempts = 2;
        let err = client.call::<(), ()>(0, &()).unwrap_err();
        // ICMP port-unreachable may surface as an IO error, or we time out.
        assert!(matches!(
            err,
            RpcError::TimedOut | RpcError::Io(_) | RpcError::ConnectionClosed
        ));
    }

    #[test]
    fn delayed_duplicate_reply_not_taken_by_reissued_call() {
        // The reply to the first request is withheld past the client's
        // attempt timeout, then delivered twice. The retransmissions produce
        // further duplicates. The first call must still return the right
        // answer, and the *next* call (fresh xid) must skip every stale
        // duplicate instead of accepting one as its own reply.
        let handle = serve_udp_with(
            adder(),
            "127.0.0.1:0",
            ReplySchedule {
                loss_every: None,
                delay_duplicate: Some((1, Duration::from_millis(150))),
            },
        )
        .unwrap();
        let mut client = UdpClient::connect(handle.addr(), 700, 1).unwrap();
        client.timeout = Duration::from_millis(60);
        let sum: u32 = client.call(1, &(20u32, 22u32)).unwrap();
        assert_eq!(sum, 42);
        assert!(client.retransmissions >= 1);
        // Reissued call: stale xid-A duplicates are still queued.
        let sum: u32 = client.call(1, &(100u32, 1u32)).unwrap();
        assert_eq!(sum, 101);
        handle.shutdown();
    }

    #[test]
    fn stale_reply_stream_cannot_extend_the_deadline() {
        // A peer that answers every request with a firehose of wrong-xid
        // datagrams must not keep resetting the attempt timeout: the
        // deadline is absolute, so the call fails in bounded time.
        use crate::msg::{ReplyBody, RpcMessage};
        let noisy = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = noisy.local_addr().unwrap();
        std::thread::spawn(move || {
            let mut buf = [0u8; 2048];
            let Ok((_, peer)) = noisy.recv_from(&mut buf) else {
                return;
            };
            let mut enc = XdrEncoder::new();
            RpcMessage::reply(1, ReplyBody::success()).encode(&mut enc);
            let started = std::time::Instant::now();
            while started.elapsed() < Duration::from_secs(2) {
                let _ = noisy.send_to(enc.as_slice(), peer);
                std::thread::sleep(Duration::from_millis(15));
            }
        });
        let mut client = UdpClient::connect(addr, 700, 1).unwrap();
        client.timeout = Duration::from_millis(60);
        client.attempts = 2;
        let started = std::time::Instant::now();
        let err = client.call::<(), ()>(0, &()).unwrap_err();
        assert!(matches!(err, RpcError::TimedOut));
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "stale datagrams extended the deadline: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn wrong_program_rejected_over_udp() {
        let handle = serve_udp(adder(), "127.0.0.1:0", None).unwrap();
        let mut client = UdpClient::connect(handle.addr(), 999, 1).unwrap();
        let err = client.call::<(), ()>(0, &()).unwrap_err();
        assert!(matches!(err, RpcError::Accepted(AcceptStat::ProgUnavail)));
        handle.shutdown();
    }
}
