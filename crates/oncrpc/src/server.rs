//! RPC server: program registry, per-connection record loop, threaded TCP
//! listener, and an in-process dispatch entry point used by the simulated
//! environments.

use crate::error::{RpcError, RpcResult};
use crate::msg::{AcceptStat, MessageBody, ReplyBody, RpcMessage};
use crate::record::{read_record_into, write_record, DEFAULT_MAX_FRAGMENT, MAX_RECORD};
use crate::transport::Transport;
use crate::RPC_VERSION;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use xdr::{Xdr, XdrDecoder, XdrEncoder};

/// Outcome of one dispatched procedure.
pub type DispatchResult = Result<(), AcceptStat>;

thread_local! {
    /// Retry-after hint for the next `AcceptStat::Busy` returned by a
    /// dispatch on this thread. Dispatch and reply encoding happen on the
    /// same thread in every serve path (blocking loops, pipelined writer,
    /// reactor workers), so a handoff through a thread-local is safe and
    /// keeps the `Dispatch` trait's error channel a bare `AcceptStat`.
    static BUSY_RETRY_AFTER_NS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Fallback hint when a service sheds with `AcceptStat::Busy` without
/// setting one: 1ms.
pub const DEFAULT_BUSY_RETRY_AFTER_NS: u64 = 1_000_000;

/// Record the retry-after hint (nanoseconds) that should accompany an
/// `AcceptStat::Busy` about to be returned from the current dispatch.
pub fn set_busy_retry_after_ns(ns: u64) {
    BUSY_RETRY_AFTER_NS.with(|c| c.set(ns));
}

fn take_busy_retry_after_ns() -> u64 {
    let ns = BUSY_RETRY_AFTER_NS.with(|c| c.replace(0));
    if ns == 0 {
        DEFAULT_BUSY_RETRY_AFTER_NS
    } else {
        ns
    }
}

/// A service implementation for one RPC program version.
///
/// Generated server skeletons implement this by decoding `args`, invoking the
/// user's service trait, and encoding results into `reply`. Returning
/// `Err(stat)` produces the corresponding accepted-but-failed reply.
pub trait Dispatch: Send + Sync {
    /// Handle procedure `proc`. Arguments are read from `args`; results are
    /// appended to `reply` only on success.
    fn dispatch(
        &self,
        proc: u32,
        args: &mut XdrDecoder<'_>,
        reply: &mut XdrEncoder,
    ) -> DispatchResult;
}

impl<F> Dispatch for F
where
    F: Fn(u32, &mut XdrDecoder<'_>, &mut XdrEncoder) -> DispatchResult + Send + Sync,
{
    fn dispatch(
        &self,
        proc: u32,
        args: &mut XdrDecoder<'_>,
        reply: &mut XdrEncoder,
    ) -> DispatchResult {
        self(proc, args, reply)
    }
}

/// Admission gate for token-tagged calls (see
/// [`RpcServer::set_token_gate`]). `admit` runs before the replay-cache
/// lookup; returning `false` refuses the call by closing its connection.
/// `complete` fires when an admitted call leaves the server — replied,
/// replayed, or failed — so implementations can track in-flight calls per
/// token: live migration drains a token's in-flight work between evicting
/// it and taking the final snapshot. Plain `Fn(u64) -> bool` closures
/// implement the trait with a no-op `complete`.
pub trait TokenGate: Send + Sync {
    /// May a call from `token` proceed?
    fn admit(&self, token: u64) -> bool;
    /// An admitted call from `token` has finished.
    fn complete(&self, _token: u64) {}
}

impl<F: Fn(u64) -> bool + Send + Sync> TokenGate for F {
    fn admit(&self, token: u64) -> bool {
        self(token)
    }
}

/// Calls `complete` on every exit path of an admitted call.
struct GateGuard(Option<(Arc<dyn TokenGate>, u64)>);

impl Drop for GateGuard {
    fn drop(&mut self) {
        if let Some((gate, token)) = self.0.take() {
            gate.complete(token);
        }
    }
}

/// Registry of (program, version) → service.
#[derive(Default)]
pub struct RpcServer {
    services: RwLock<HashMap<(u32, u32), Arc<dyn Dispatch>>>,
    /// Optional at-most-once duplicate-request cache. Only calls carrying a
    /// client token in their credential participate; `AUTH_NONE` traffic is
    /// untouched.
    replay: RwLock<Option<Arc<crate::replay::ReplayCache>>>,
    /// Optional per-call admission gate on the client token (live
    /// migration's eviction mechanism). `AUTH_NONE` traffic is untouched.
    token_gate: RwLock<Option<Arc<dyn TokenGate>>>,
}

impl RpcServer {
    /// Create an empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable at-most-once semantics for token-tagged clients. The cache is
    /// shared (`Arc`) so several `RpcServer` instances — e.g. one per
    /// connection — can dedupe retransmissions that arrive on a *new*
    /// connection after a reset.
    pub fn set_replay_cache(&self, cache: Arc<crate::replay::ReplayCache>) {
        *self.replay.write() = Some(cache);
    }

    /// The installed replay cache, if any.
    pub fn replay_cache(&self) -> Option<Arc<crate::replay::ReplayCache>> {
        self.replay.read().clone()
    }

    /// Install a per-call admission gate consulted with the client token of
    /// every token-tagged call, *before* the replay-cache lookup. When the
    /// gate returns `false` the call is not answered at all — its connection
    /// is torn down — so the client's retry logic reconnects and its
    /// retransmission (same xid) lands wherever it is pointed next. This is
    /// how live migration evicts a session from its source server.
    pub fn set_token_gate(&self, gate: Arc<dyn TokenGate>) {
        *self.token_gate.write() = Some(gate);
    }

    /// Register `service` for `prog`/`vers`, replacing any prior entry.
    pub fn register(&self, prog: u32, vers: u32, service: Arc<dyn Dispatch>) {
        self.services.write().insert((prog, vers), service);
    }

    /// Remove a registration.
    pub fn unregister(&self, prog: u32, vers: u32) {
        self.services.write().remove(&(prog, vers));
    }

    /// Registered versions of `prog`, for `PROG_MISMATCH` replies.
    fn version_range(&self, prog: u32) -> Option<(u32, u32)> {
        let services = self.services.read();
        let mut range: Option<(u32, u32)> = None;
        for &(p, v) in services.keys() {
            if p == prog {
                range = Some(match range {
                    None => (v, v),
                    Some((lo, hi)) => (lo.min(v), hi.max(v)),
                });
            }
        }
        range
    }

    /// Process one already-read request record, producing the bytes of the
    /// complete reply record.
    ///
    /// Allocating convenience wrapper over [`RpcServer::handle_record_into`];
    /// callers with a call loop should pass a reused encoder to that method
    /// instead.
    pub fn handle_record(&self, record: &[u8]) -> RpcResult<Vec<u8>> {
        let mut reply_enc = XdrEncoder::with_capacity(64);
        self.handle_record_into(record, &mut reply_enc)?;
        Ok(reply_enc.into_inner())
    }

    /// Process one already-read request record, encoding the complete reply
    /// record into `reply_enc` (cleared first). This is the core of the
    /// server and also the entry point for the in-process
    /// (simulated-network) mode.
    ///
    /// The reply header is encoded optimistically as `Success` and the
    /// service appends results directly after it — no intermediate result
    /// buffer, no post-dispatch copy. If the service fails, the encoder is
    /// rolled back and the error header is encoded instead.
    pub fn handle_record_into(&self, record: &[u8], reply_enc: &mut XdrEncoder) -> RpcResult<()> {
        reply_enc.clear();
        let mut dec = XdrDecoder::new(record);
        let msg = RpcMessage::decode(&mut dec)?;
        let call = match msg.body {
            MessageBody::Call(c) => c,
            MessageBody::Reply(_) => return Err(RpcError::UnexpectedMessageType),
        };

        if call.rpcvers != RPC_VERSION {
            RpcMessage::reply(
                msg.xid,
                ReplyBody::Denied(crate::msg::RejectStat::RpcMismatch {
                    low: RPC_VERSION,
                    high: RPC_VERSION,
                }),
            )
            .encode(reply_enc);
            return Ok(());
        }

        let service = self.services.read().get(&(call.prog, call.vers)).cloned();
        let Some(service) = service else {
            let body = match self.version_range(call.prog) {
                Some((lo, hi)) => ReplyBody::prog_mismatch(lo, hi),
                None => ReplyBody::failure(AcceptStat::ProgUnavail),
            };
            RpcMessage::reply(msg.xid, body).encode(reply_enc);
            return Ok(());
        };

        let token = call.cred.as_client_token();

        // Admission gate: a refused token gets no reply — the connection
        // closes so the client's retransmission lands on a fresh connection
        // (for migration: at the session's new home). Admitted calls hold
        // the guard until the reply is encoded, so `complete` pairs with
        // every successful `admit` on all exit paths.
        let mut gate_guard = GateGuard(None);
        if let (Some(gate), Some(t)) = (self.token_gate.read().clone(), token) {
            if !gate.admit(t) {
                return Err(RpcError::ConnectionClosed);
            }
            gate_guard.0 = Some((gate, t));
        }

        // At-most-once: a retransmission (same client token, same xid)
        // replays the reply that was already produced — the procedure body
        // never runs twice.
        let replay = self.replay.read().clone();
        let token = replay.as_ref().and(token);
        if let (Some(cache), Some(token)) = (&replay, token) {
            if let Some(cached) = cache.lookup(token, msg.xid) {
                reply_enc.extend_raw(&cached);
                return Ok(());
            }
        }

        RpcMessage::reply(msg.xid, ReplyBody::success()).encode(reply_enc);
        let header_len = reply_enc.len();
        if let Err(stat) = service.dispatch(call.proc, &mut dec, reply_enc) {
            // Roll back any partial results plus the optimistic header.
            reply_enc.truncate(0);
            debug_assert!(header_len > 0);
            if stat == AcceptStat::Busy {
                // Shed without executing: the reply carries the retry-after
                // hint and must NOT enter the replay cache — the client's
                // retransmission has to re-attempt execution, not replay
                // the rejection.
                RpcMessage::reply(msg.xid, ReplyBody::busy(take_busy_retry_after_ns()))
                    .encode(reply_enc);
                return Ok(());
            }
            RpcMessage::reply(msg.xid, ReplyBody::failure(stat)).encode(reply_enc);
        }
        // Cache the outcome — success *or* failure — so a retransmission
        // observes the identical reply.
        if let (Some(cache), Some(token)) = (&replay, token) {
            cache.store(token, msg.xid, reply_enc.as_slice());
        }
        Ok(())
    }

    /// Serve one connection until the peer disconnects. The request record
    /// buffer and reply encoder are pooled per connection, so steady-state
    /// service does not allocate.
    pub fn serve_connection<T: Read + Write>(&self, conn: &mut T) -> RpcResult<()> {
        let mut record = Vec::with_capacity(4096);
        let mut reply_enc = XdrEncoder::with_capacity(4096);
        loop {
            if read_record_into(conn, &mut record, MAX_RECORD)?.is_none() {
                return Ok(());
            }
            self.handle_record_into(&record, &mut reply_enc)?;
            write_record(conn, reply_enc.as_slice(), DEFAULT_MAX_FRAGMENT)?;
        }
    }

    /// Serve a boxed transport (helper for threads that own their transport).
    pub fn serve_transport(&self, mut t: Box<dyn Transport>) -> RpcResult<()> {
        self.serve_connection(&mut t)
    }

    /// Serve one connection with a pipelined reply path.
    ///
    /// The calling thread reads and dispatches requests strictly in arrival
    /// order; a scoped writer thread drains the already-encoded replies onto
    /// `writer`. A client that streams several asynchronous calls
    /// back-to-back (e.g. kernel launches that only *enqueue* device work)
    /// no longer serializes on reply N crossing the wire before request N+1
    /// is dispatched. Reply order is preserved because dispatch stays on one
    /// thread, and reply buffers are recycled through a bounded free list so
    /// steady state does not allocate.
    ///
    /// `reader` and `writer` must be two handles onto the same duplex
    /// connection (e.g. [`crate::transport::TcpTransport::try_clone`]).
    pub fn serve_pipelined<R, W>(&self, reader: &mut R, mut writer: W) -> RpcResult<()>
    where
        R: Read,
        W: Write + Send,
    {
        let (full_tx, full_rx) = crossbeam_channel::bounded::<Vec<u8>>(PIPELINE_DEPTH);
        let (free_tx, free_rx) = crossbeam_channel::bounded::<Vec<u8>>(PIPELINE_DEPTH);
        std::thread::scope(|scope| {
            let writer_join = scope.spawn(move || -> RpcResult<()> {
                while let Ok(reply) = full_rx.recv() {
                    write_record(&mut writer, &reply, DEFAULT_MAX_FRAGMENT)?;
                    writer.flush()?;
                    let mut recycled = reply;
                    recycled.clear();
                    let _ = free_tx.try_send(recycled);
                }
                Ok(())
            });
            let mut record = Vec::with_capacity(4096);
            let mut reply_enc = XdrEncoder::with_capacity(4096);
            let read_result: RpcResult<()> = loop {
                match read_record_into(reader, &mut record, MAX_RECORD) {
                    Ok(None) => break Ok(()), // clean EOF
                    Ok(Some(_)) => {}
                    Err(e) => break Err(e),
                }
                if let Err(e) = self.handle_record_into(&record, &mut reply_enc) {
                    break Err(e);
                }
                let mut out = free_rx.try_recv().unwrap_or_default();
                out.extend_from_slice(reply_enc.as_slice());
                if full_tx.send(out).is_err() {
                    // The writer hit an I/O error and hung up; surface it.
                    break Ok(());
                }
            };
            // Hang up the reply queue so the writer drains and exits, then
            // prefer the reader's error (it is the root cause on resets).
            drop(full_tx);
            let write_result = writer_join.join().expect("reply writer panicked");
            read_result.and(write_result)
        })
    }
}

/// Depth of the reply pipeline used by [`RpcServer::serve_pipelined`]: how
/// many encoded replies may be in flight between dispatch and the wire
/// before the dispatcher blocks.
pub const PIPELINE_DEPTH: usize = 32;

/// Handle to a running TCP server; dropping it requests shutdown.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Assemble a handle from its parts (used by the threaded accept loop
    /// here and by the [`crate::reactor`] event loop).
    pub(crate) fn from_parts(
        addr: std::net::SocketAddr,
        stop: Arc<AtomicBool>,
        join: std::thread::JoinHandle<()>,
    ) -> Self {
        Self {
            addr,
            stop,
            join: Some(join),
        }
    }

    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Request shutdown and wait for the accept loop to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the listener so the accept loop observes the flag.
        let _ = std::net::TcpStream::connect(self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.join.is_some() {
            self.stop_and_join();
        }
    }
}

/// Bind a TCP listener and run `handler` on a dedicated thread for every
/// accepted connection. This is the generic accept loop behind
/// [`serve_tcp`]; servers that need per-connection state (session ids,
/// cleanup when a client vanishes) pass their own handler.
pub fn serve_tcp_with<A, F>(addr: A, handler: F) -> RpcResult<ServerHandle>
where
    A: ToSocketAddrs,
    F: Fn(crate::transport::TcpTransport) + Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handler = Arc::new(handler);
    let join = std::thread::Builder::new()
        .name("oncrpc-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let handler = Arc::clone(&handler);
                let _ = std::thread::Builder::new()
                    .name("oncrpc-conn".into())
                    .spawn(move || {
                        if let Ok(t) = crate::transport::TcpTransport::from_stream(stream) {
                            handler(t);
                        }
                    });
            }
        })
        .expect("spawn accept thread");
    Ok(ServerHandle {
        addr: local,
        stop,
        join: Some(join),
    })
}

/// Bind a TCP listener and serve `server` on background threads
/// (one thread per connection, as libtirpc-based Cricket does).
pub fn serve_tcp<A: ToSocketAddrs>(server: Arc<RpcServer>, addr: A) -> RpcResult<ServerHandle> {
    serve_tcp_with(addr, move |mut t| {
        let _ = server.serve_connection(&mut t);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RpcClient;
    use crate::msg::RejectStat;
    use crate::transport::{duplex_pair, TcpTransport};

    /// Echo service: proc 0 = null, proc 1 = echo opaque, proc 2 = add two u32.
    fn echo_service() -> Arc<dyn Dispatch> {
        Arc::new(
            |proc: u32, args: &mut XdrDecoder<'_>, reply: &mut XdrEncoder| match proc {
                0 => Ok(()),
                1 => {
                    let data = args.get_opaque().map_err(|_| AcceptStat::GarbageArgs)?;
                    reply.put_opaque(data);
                    Ok(())
                }
                2 => {
                    let a = args.get_u32().map_err(|_| AcceptStat::GarbageArgs)?;
                    let b = args.get_u32().map_err(|_| AcceptStat::GarbageArgs)?;
                    reply.put_u32(a.wrapping_add(b));
                    Ok(())
                }
                _ => Err(AcceptStat::ProcUnavail),
            },
        )
    }

    fn spawn_pair(server: Arc<RpcServer>) -> RpcClient {
        let (client_end, server_end) = duplex_pair();
        std::thread::spawn(move || {
            let mut conn = server_end;
            let _ = server.serve_connection(&mut conn);
        });
        RpcClient::new(Box::new(client_end), 400, 1)
    }

    fn test_server() -> Arc<RpcServer> {
        let s = Arc::new(RpcServer::new());
        s.register(400, 1, echo_service());
        s
    }

    #[test]
    fn null_call() {
        let mut client = spawn_pair(test_server());
        client.call_null().unwrap();
        assert_eq!(client.stats().calls, 1);
    }

    #[test]
    fn echo_and_add() {
        let mut client = spawn_pair(test_server());
        let out: Vec<u8> = client.call(1, &vec![9u8, 8, 7]).unwrap();
        assert_eq!(out, vec![9, 8, 7]);
        let sum: u32 = client.call(2, &(40u32, 2u32)).unwrap();
        assert_eq!(sum, 42);
    }

    #[test]
    fn large_echo_exercises_fragmentation() {
        let mut client = spawn_pair(test_server());
        client.set_max_fragment(4096);
        let big: Vec<u8> = (0..1_000_000u32).map(|i| (i % 255) as u8).collect();
        let out: Vec<u8> = client.call(1, &big).unwrap();
        assert_eq!(out, big);
    }

    #[test]
    fn unknown_proc_reports_proc_unavail() {
        let mut client = spawn_pair(test_server());
        let err = client.call::<(), ()>(99, &()).unwrap_err();
        assert!(matches!(err, RpcError::Accepted(AcceptStat::ProcUnavail)));
    }

    #[test]
    fn unknown_program_reports_prog_unavail() {
        let server = Arc::new(RpcServer::new());
        let mut client = spawn_pair(server);
        let err = client.call::<(), ()>(0, &()).unwrap_err();
        assert!(matches!(err, RpcError::Accepted(AcceptStat::ProgUnavail)));
    }

    #[test]
    fn wrong_version_reports_mismatch() {
        let server = test_server();
        let (client_end, server_end) = duplex_pair();
        let s2 = Arc::clone(&server);
        std::thread::spawn(move || {
            let mut conn = server_end;
            let _ = s2.serve_connection(&mut conn);
        });
        let mut client = RpcClient::new(Box::new(client_end), 400, 7);
        let err = client.call::<(), ()>(0, &()).unwrap_err();
        match err {
            RpcError::Accepted(AcceptStat::ProgMismatch) => {}
            other => panic!("expected ProgMismatch, got {other:?}"),
        }
    }

    #[test]
    fn bad_rpc_version_denied() {
        let server = test_server();
        // Hand-roll a call with rpcvers=3.
        let mut enc = XdrEncoder::new();
        let mut call = crate::msg::CallBody::new(400, 1, 0);
        call.rpcvers = 3;
        RpcMessage::call(5, call).encode(&mut enc);
        let reply = server.handle_record(enc.as_slice()).unwrap();
        let msg: RpcMessage = xdr::decode(&reply).unwrap();
        match msg.body {
            MessageBody::Reply(ReplyBody::Denied(RejectStat::RpcMismatch { low: 2, high: 2 })) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn garbage_args_status() {
        let mut client = spawn_pair(test_server());
        // proc 2 wants two u32s; send nothing.
        let err = client.call::<(), u32>(2, &()).unwrap_err();
        assert!(matches!(err, RpcError::Accepted(AcceptStat::GarbageArgs)));
    }

    #[test]
    fn tcp_end_to_end_with_concurrent_clients() {
        let server = test_server();
        let handle = serve_tcp(server, "127.0.0.1:0").unwrap();
        let addr = handle.addr();
        let mut joins = Vec::new();
        for t in 0..8 {
            joins.push(std::thread::spawn(move || {
                let transport = TcpTransport::connect(addr).unwrap();
                let mut client = RpcClient::new(Box::new(transport), 400, 1);
                for i in 0..50u32 {
                    let sum: u32 = client.call(2, &(i, t as u32)).unwrap();
                    assert_eq!(sum, i + t as u32);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        handle.shutdown();
    }

    #[test]
    fn pipelined_serving_preserves_reply_order() {
        let server = test_server();
        // In-memory duplex: the "reader" and "writer" halves are split by
        // hand, mirroring what TcpTransport::try_clone provides for sockets.
        let (mut client_end, server_end) = duplex_pair();
        let (reply_tx, reply_rx) = duplex_pair();
        std::thread::spawn(move || {
            let mut reader = server_end;
            let writer = reply_tx;
            let _ = server.serve_pipelined(&mut reader, writer);
        });
        // Fire a burst of calls without reading any reply, then collect:
        // replies must come back in request order.
        for i in 0..40u32 {
            let mut call_enc = XdrEncoder::new();
            RpcMessage::call(i, crate::msg::CallBody::new(400, 1, 2)).encode(&mut call_enc);
            (i, 1u32).encode(&mut call_enc);
            crate::record::write_record(
                &mut client_end,
                call_enc.as_slice(),
                crate::record::DEFAULT_MAX_FRAGMENT,
            )
            .unwrap();
        }
        let mut replies = reply_rx;
        for i in 0..40u32 {
            let rec = crate::record::read_record(&mut replies, MAX_RECORD)
                .unwrap()
                .unwrap();
            let mut dec = XdrDecoder::new(&rec);
            let msg = RpcMessage::decode(&mut dec).unwrap();
            assert_eq!(msg.xid, i, "replies must arrive in request order");
        }
        drop(client_end); // EOF ends the serve loop
    }

    #[test]
    fn pipelined_tcp_end_to_end() {
        let server = test_server();
        let handle = serve_tcp_with("127.0.0.1:0", {
            let server = Arc::clone(&server);
            move |mut conn: TcpTransport| {
                let writer = conn.try_clone().expect("dup socket");
                let _ = server.serve_pipelined(&mut conn, writer);
            }
        })
        .unwrap();
        let transport = TcpTransport::connect(handle.addr()).unwrap();
        let mut client = RpcClient::new(Box::new(transport), 400, 1);
        for i in 0..100u32 {
            let sum: u32 = client.call(2, &(i, 2u32)).unwrap();
            assert_eq!(sum, i + 2);
        }
        handle.shutdown();
    }

    #[test]
    fn token_gate_refuses_by_closing_the_connection() {
        let server = test_server();
        server.set_token_gate(Arc::new(|token| token != 0xBAD));

        // An admitted token is served normally.
        let mut enc = XdrEncoder::new();
        let mut call = crate::msg::CallBody::new(400, 1, 2);
        call.cred = crate::OpaqueAuth::client_token(0x600D);
        RpcMessage::call(1, call).encode(&mut enc);
        (3u32, 4u32).encode(&mut enc);
        assert!(server.handle_record(enc.as_slice()).is_ok());

        // A refused token produces a connection-fatal error, not a reply.
        let mut enc = XdrEncoder::new();
        let mut call = crate::msg::CallBody::new(400, 1, 2);
        call.cred = crate::OpaqueAuth::client_token(0xBAD);
        RpcMessage::call(2, call).encode(&mut enc);
        (3u32, 4u32).encode(&mut enc);
        assert!(matches!(
            server.handle_record(enc.as_slice()),
            Err(RpcError::ConnectionClosed)
        ));

        // Untagged (AUTH_NONE) traffic is not consulted at all.
        let mut enc = XdrEncoder::new();
        RpcMessage::call(3, crate::msg::CallBody::new(400, 1, 0)).encode(&mut enc);
        assert!(server.handle_record(enc.as_slice()).is_ok());
    }

    #[test]
    fn busy_reply_is_never_stored_in_the_replay_cache() {
        use std::sync::atomic::AtomicU32;
        let server = Arc::new(RpcServer::new());
        let executions = Arc::new(AtomicU32::new(0));
        let execs = Arc::clone(&executions);
        // Sheds the first attempt with a retry hint; executes afterwards.
        server.register(
            400,
            1,
            Arc::new(
                move |_proc: u32, _args: &mut XdrDecoder<'_>, reply: &mut XdrEncoder| {
                    if execs.fetch_add(1, Ordering::SeqCst) == 0 {
                        set_busy_retry_after_ns(123_456);
                        return Err(AcceptStat::Busy);
                    }
                    reply.put_u32(77);
                    Ok(())
                },
            ),
        );
        server.set_replay_cache(Arc::new(crate::replay::ReplayCache::new(16)));

        let call_record = |xid: u32| {
            let mut enc = XdrEncoder::new();
            let mut call = crate::msg::CallBody::new(400, 1, 1);
            call.cred = crate::OpaqueAuth::client_token(0xFEED);
            RpcMessage::call(xid, call).encode(&mut enc);
            enc.into_inner()
        };

        // Attempt 1: shed, with the hint we set on the dispatch thread.
        let reply = server.handle_record(&call_record(9)).unwrap();
        let msg: RpcMessage = xdr::decode(&reply).unwrap();
        let MessageBody::Reply(body) = msg.body else {
            panic!("expected reply")
        };
        assert_eq!(body.busy_retry_after_ns(), Some(123_456));

        // Retransmission (same token, same xid): must EXECUTE, not replay
        // the rejection — the busy reply was never cached.
        let reply = server.handle_record(&call_record(9)).unwrap();
        // The success reply carries a result payload after the header, so
        // decode the header only.
        let mut dec = XdrDecoder::new(&reply);
        let msg = RpcMessage::decode(&mut dec).unwrap();
        let MessageBody::Reply(body) = msg.body else {
            panic!("expected reply")
        };
        assert!(matches!(
            body,
            ReplyBody::Accepted {
                stat: AcceptStat::Success,
                ..
            }
        ));
        assert_eq!(dec.get_u32().unwrap(), 77);
        assert_eq!(executions.load(Ordering::SeqCst), 2);

        // Third retransmission: the *success* was cached, so the procedure
        // body does not run a third time.
        let reply2 = server.handle_record(&call_record(9)).unwrap();
        assert_eq!(reply2, reply);
        assert_eq!(executions.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn stats_track_bytes() {
        let mut client = spawn_pair(test_server());
        let payload = vec![1u8; 100];
        let _: Vec<u8> = client.call(1, &payload).unwrap();
        let stats = client.stats();
        assert_eq!(stats.calls, 1);
        assert!(stats.bytes_sent as usize >= 100);
        assert!(stats.bytes_received as usize >= 100);
    }
}
