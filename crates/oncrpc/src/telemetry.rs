//! Copy/allocation accounting for the RPC data path.
//!
//! The paper's only transfer mechanism is "memory as RPC arguments", so the
//! cost that gates Fig. 7 bandwidth is how many times a payload byte is
//! memcpy'd between the application buffer and its destination. These
//! process-global counters make that a measured number instead of a claim:
//! every layer that copies payload-sized data into one of its own buffers
//! calls [`add_memmoved`], the client call layer reports payload bytes via
//! [`add_transferred`], and benchmarks read [`snapshot`] around a workload
//! to report *bytes memmoved per byte transferred*.
//!
//! Counting convention (one increment per memcpy destination):
//! * client argument encode into the scratch buffer — owned stream bytes
//!   only, deferred scatter-gather slices are not copied and not counted;
//! * transport-internal send/receive buffering (the in-memory pipe's chunk
//!   copy, the simulated guest path's pending/incoming buffers) — the
//!   analogue of a real socket's copy into the kernel;
//! * record reassembly into the pooled receive buffer.
//!
//! The write into device memory itself is *not* a memmove: it is the
//! transfer endpoint, mirrored by [`add_transferred`] on the client. The
//! modeled TCP/virtio machinery inside the simulated wire is likewise
//! excluded — its copies model NIC/hypervisor work already charged in
//! virtual time by the cost model. On the zero-copy HtoD path this leaves
//! exactly two payload-sized copies: send buffering and reassembly.
//!
//! The counters are relaxed atomics: cheap enough to stay on in release
//! builds, and the benches read them single-threaded.
//!
//! [`CountingAllocator`] complements this with an allocation counter so the
//! "zero steady-state allocations in the client call loop" property is a
//! regression test, not a code-review hope. It must be installed by the
//! final binary/test via `#[global_allocator]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static BYTES_MEMMOVED: AtomicU64 = AtomicU64::new(0);
static BYTES_TRANSFERRED: AtomicU64 = AtomicU64::new(0);

/// Record `n` bytes copied between buffers inside the stack.
#[inline]
pub fn add_memmoved(n: usize) {
    BYTES_MEMMOVED.fetch_add(n as u64, Ordering::Relaxed);
}

/// Record `n` application payload bytes handed to the RPC layer.
#[inline]
pub fn add_transferred(n: usize) {
    BYTES_TRANSFERRED.fetch_add(n as u64, Ordering::Relaxed);
}

/// Point-in-time view of the copy counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CopySnapshot {
    /// Total bytes memcpy'd between internal buffers.
    pub bytes_memmoved: u64,
    /// Total application payload bytes transferred.
    pub bytes_transferred: u64,
}

impl CopySnapshot {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &CopySnapshot) -> CopySnapshot {
        CopySnapshot {
            bytes_memmoved: self.bytes_memmoved - earlier.bytes_memmoved,
            bytes_transferred: self.bytes_transferred - earlier.bytes_transferred,
        }
    }

    /// Bytes memmoved per byte transferred — the Fig. 7 figure of merit.
    pub fn copies_per_byte(&self) -> f64 {
        if self.bytes_transferred == 0 {
            0.0
        } else {
            self.bytes_memmoved as f64 / self.bytes_transferred as f64
        }
    }
}

/// Read both counters.
pub fn snapshot() -> CopySnapshot {
    CopySnapshot {
        bytes_memmoved: BYTES_MEMMOVED.load(Ordering::Relaxed),
        bytes_transferred: BYTES_TRANSFERRED.load(Ordering::Relaxed),
    }
}

/// Zero both counters (single-threaded bench setup only).
pub fn reset() {
    BYTES_MEMMOVED.store(0, Ordering::Relaxed);
    BYTES_TRANSFERRED.store(0, Ordering::Relaxed);
}

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Allocation-counting wrapper around the system allocator.
///
/// Install in a test or bench binary with
/// `#[global_allocator] static A: CountingAllocator = CountingAllocator;`
/// then compare [`allocation_count`] across the region under test.
pub struct CountingAllocator;

/// Number of heap allocations since process start (only meaningful when
/// [`CountingAllocator`] is installed as the global allocator).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// SAFETY: delegates every operation to `System` unchanged; the only extra
// behaviour is a relaxed counter increment on the allocating paths.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_deltas_and_ratio() {
        let before = snapshot();
        add_memmoved(300);
        add_transferred(100);
        let delta = snapshot().since(&before);
        assert_eq!(delta.bytes_memmoved, 300);
        assert_eq!(delta.bytes_transferred, 100);
        assert!((delta.copies_per_byte() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_transfer_ratio_is_zero() {
        let s = CopySnapshot::default();
        assert_eq!(s.copies_per_byte(), 0.0);
    }
}
