//! Copy/allocation accounting for the RPC data path.
//!
//! The paper's only transfer mechanism is "memory as RPC arguments", so the
//! cost that gates Fig. 7 bandwidth is how many times a payload byte is
//! memcpy'd between the application buffer and its destination. These
//! process-global counters make that a measured number instead of a claim:
//! every layer that copies payload-sized data into one of its own buffers
//! calls [`add_memmoved`], the client call layer reports payload bytes via
//! [`add_transferred`], and benchmarks read [`snapshot`] around a workload
//! to report *bytes memmoved per byte transferred*.
//!
//! Counting convention (one increment per memcpy destination):
//! * client argument encode into the scratch buffer — owned stream bytes
//!   only, deferred scatter-gather slices are not copied and not counted;
//! * transport-internal send/receive buffering (the in-memory pipe's chunk
//!   copy, the simulated guest path's pending/incoming buffers) — the
//!   analogue of a real socket's copy into the kernel;
//! * record reassembly into the pooled receive buffer.
//!
//! The write into device memory itself is *not* a memmove: it is the
//! transfer endpoint, mirrored by [`add_transferred`] on the client. The
//! modeled TCP/virtio machinery inside the simulated wire is likewise
//! excluded — its copies model NIC/hypervisor work already charged in
//! virtual time by the cost model. On the zero-copy HtoD path this leaves
//! exactly two payload-sized copies: send buffering and reassembly.
//!
//! The counters are relaxed atomics: cheap enough to stay on in release
//! builds, and the benches read them single-threaded.
//!
//! [`CountingAllocator`] complements this with an allocation counter so the
//! "zero steady-state allocations in the client call loop" property is a
//! regression test, not a code-review hope. It must be installed by the
//! final binary/test via `#[global_allocator]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static BYTES_MEMMOVED: AtomicU64 = AtomicU64::new(0);
static BYTES_TRANSFERRED: AtomicU64 = AtomicU64::new(0);

/// Record `n` bytes copied between buffers inside the stack.
#[inline]
pub fn add_memmoved(n: usize) {
    BYTES_MEMMOVED.fetch_add(n as u64, Ordering::Relaxed);
}

/// Record `n` application payload bytes handed to the RPC layer.
#[inline]
pub fn add_transferred(n: usize) {
    BYTES_TRANSFERRED.fetch_add(n as u64, Ordering::Relaxed);
}

/// Point-in-time view of the copy counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CopySnapshot {
    /// Total bytes memcpy'd between internal buffers.
    pub bytes_memmoved: u64,
    /// Total application payload bytes transferred.
    pub bytes_transferred: u64,
}

impl CopySnapshot {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &CopySnapshot) -> CopySnapshot {
        CopySnapshot {
            bytes_memmoved: self.bytes_memmoved - earlier.bytes_memmoved,
            bytes_transferred: self.bytes_transferred - earlier.bytes_transferred,
        }
    }

    /// Bytes memmoved per byte transferred — the Fig. 7 figure of merit.
    pub fn copies_per_byte(&self) -> f64 {
        if self.bytes_transferred == 0 {
            0.0
        } else {
            self.bytes_memmoved as f64 / self.bytes_transferred as f64
        }
    }
}

/// Read both counters.
pub fn snapshot() -> CopySnapshot {
    CopySnapshot {
        bytes_memmoved: BYTES_MEMMOVED.load(Ordering::Relaxed),
        bytes_transferred: BYTES_TRANSFERRED.load(Ordering::Relaxed),
    }
}

/// Zero both counters (single-threaded bench setup only).
pub fn reset() {
    BYTES_MEMMOVED.store(0, Ordering::Relaxed);
    BYTES_TRANSFERRED.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Reactor counters: how the completion-driven server core spent its calls.
// Same relaxed-atomic convention as the copy counters above.

static REACTOR_INLINE_REPLIES: AtomicU64 = AtomicU64::new(0);
static REACTOR_PARKED_CALLS: AtomicU64 = AtomicU64::new(0);
static REACTOR_STALLS: AtomicU64 = AtomicU64::new(0);
static REACTOR_BUFS_REUSED: AtomicU64 = AtomicU64::new(0);
static REACTOR_BUFS_ALLOCATED: AtomicU64 = AtomicU64::new(0);
static REACTOR_WRITER_KILLS: AtomicU64 = AtomicU64::new(0);

/// Record a `Done`-classified call answered inline on the reactor thread.
#[inline]
pub fn add_reactor_inline(n: u64) {
    REACTOR_INLINE_REPLIES.fetch_add(n, Ordering::Relaxed);
}

/// Record a `Parked`-classified call handed to the worker shard.
#[inline]
pub fn add_reactor_parked(n: u64) {
    REACTOR_PARKED_CALLS.fetch_add(n, Ordering::Relaxed);
}

/// Record a session hitting its bounded queue (backpressure stall).
#[inline]
pub fn add_reactor_stall(n: u64) {
    REACTOR_STALLS.fetch_add(n, Ordering::Relaxed);
}

/// Record a pooled buffer recycled from a free list.
#[inline]
pub fn add_reactor_buf_reused(n: u64) {
    REACTOR_BUFS_REUSED.fetch_add(n, Ordering::Relaxed);
}

/// Record a buffer freshly allocated because the pool was empty.
#[inline]
pub fn add_reactor_buf_allocated(n: u64) {
    REACTOR_BUFS_ALLOCATED.fetch_add(n, Ordering::Relaxed);
}

/// Record the completion writer killing a connection that stopped
/// accepting reply bytes (stall deadline or backlog cap exceeded).
#[inline]
pub fn add_reactor_writer_kill(n: u64) {
    REACTOR_WRITER_KILLS.fetch_add(n, Ordering::Relaxed);
}

/// Point-in-time view of the reactor counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReactorSnapshot {
    /// Calls classified `Done` and answered from the reactor thread.
    pub inline_replies: u64,
    /// Calls classified `Parked` and executed on a worker shard.
    pub parked_calls: u64,
    /// Backpressure stalls (bounded per-session queue filled).
    pub stalls: u64,
    /// Pooled buffers recycled.
    pub bufs_reused: u64,
    /// Buffers allocated because no pooled one was free.
    pub bufs_allocated: u64,
    /// Connections the completion writer killed for not reading replies.
    pub writer_kills: u64,
}

impl ReactorSnapshot {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &ReactorSnapshot) -> ReactorSnapshot {
        ReactorSnapshot {
            inline_replies: self.inline_replies - earlier.inline_replies,
            parked_calls: self.parked_calls - earlier.parked_calls,
            stalls: self.stalls - earlier.stalls,
            bufs_reused: self.bufs_reused - earlier.bufs_reused,
            bufs_allocated: self.bufs_allocated - earlier.bufs_allocated,
            writer_kills: self.writer_kills - earlier.writer_kills,
        }
    }
}

/// Read the reactor counters.
pub fn reactor_snapshot() -> ReactorSnapshot {
    ReactorSnapshot {
        inline_replies: REACTOR_INLINE_REPLIES.load(Ordering::Relaxed),
        parked_calls: REACTOR_PARKED_CALLS.load(Ordering::Relaxed),
        stalls: REACTOR_STALLS.load(Ordering::Relaxed),
        bufs_reused: REACTOR_BUFS_REUSED.load(Ordering::Relaxed),
        bufs_allocated: REACTOR_BUFS_ALLOCATED.load(Ordering::Relaxed),
        writer_kills: REACTOR_WRITER_KILLS.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// Wire-efficiency counters: what the striping and sparse-encoding layers
// actually put on (or kept off) the wire. Same relaxed-atomic convention.

static WIRE_RAW_BYTES: AtomicU64 = AtomicU64::new(0);
static WIRE_SENT_BYTES: AtomicU64 = AtomicU64::new(0);
static STRIPES_SENT: AtomicU64 = AtomicU64::new(0);
static SPARSE_PAGES_ELIDED: AtomicU64 = AtomicU64::new(0);

/// Record `n` raw payload bytes entering a wire-efficiency codec decision
/// (before sparse encoding / striping).
#[inline]
pub fn add_wire_raw(n: usize) {
    WIRE_RAW_BYTES.fetch_add(n as u64, Ordering::Relaxed);
}

/// Record `n` payload bytes actually shipped after the codec decision.
#[inline]
pub fn add_wire_sent(n: usize) {
    WIRE_SENT_BYTES.fetch_add(n as u64, Ordering::Relaxed);
}

/// Record `n` stripe calls issued by a stripe pool.
#[inline]
pub fn add_stripes_sent(n: u64) {
    STRIPES_SENT.fetch_add(n, Ordering::Relaxed);
}

/// Record `n` all-zero pages elided by the sparse encoder.
#[inline]
pub fn add_sparse_pages_elided(n: u64) {
    SPARSE_PAGES_ELIDED.fetch_add(n, Ordering::Relaxed);
}

/// Point-in-time view of the wire-efficiency counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireSnapshot {
    /// Payload bytes offered to the codec layer.
    pub raw_bytes: u64,
    /// Payload bytes shipped after sparse/striping decisions.
    pub wire_bytes: u64,
    /// Stripe calls issued across all stripe pools.
    pub stripes_sent: u64,
    /// All-zero pages the sparse encoder kept off the wire.
    pub sparse_pages_elided: u64,
}

impl WireSnapshot {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &WireSnapshot) -> WireSnapshot {
        WireSnapshot {
            raw_bytes: self.raw_bytes - earlier.raw_bytes,
            wire_bytes: self.wire_bytes - earlier.wire_bytes,
            stripes_sent: self.stripes_sent - earlier.stripes_sent,
            sparse_pages_elided: self.sparse_pages_elided - earlier.sparse_pages_elided,
        }
    }

    /// Raw bytes per wire byte — the sparse-codec figure of merit (>1 means
    /// the codec kept bytes off the wire).
    pub fn compression(&self) -> f64 {
        if self.wire_bytes == 0 {
            0.0
        } else {
            self.raw_bytes as f64 / self.wire_bytes as f64
        }
    }
}

/// Read the wire-efficiency counters.
pub fn wire_snapshot() -> WireSnapshot {
    WireSnapshot {
        raw_bytes: WIRE_RAW_BYTES.load(Ordering::Relaxed),
        wire_bytes: WIRE_SENT_BYTES.load(Ordering::Relaxed),
        stripes_sent: STRIPES_SENT.load(Ordering::Relaxed),
        sparse_pages_elided: SPARSE_PAGES_ELIDED.load(Ordering::Relaxed),
    }
}

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Allocation-counting wrapper around the system allocator.
///
/// Install in a test or bench binary with
/// `#[global_allocator] static A: CountingAllocator = CountingAllocator;`
/// then compare [`allocation_count`] across the region under test.
pub struct CountingAllocator;

/// Number of heap allocations since process start (only meaningful when
/// [`CountingAllocator`] is installed as the global allocator).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// SAFETY: delegates every operation to `System` unchanged; the only extra
// behaviour is a relaxed counter increment on the allocating paths.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_deltas_and_ratio() {
        let before = snapshot();
        add_memmoved(300);
        add_transferred(100);
        let delta = snapshot().since(&before);
        assert_eq!(delta.bytes_memmoved, 300);
        assert_eq!(delta.bytes_transferred, 100);
        assert!((delta.copies_per_byte() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_transfer_ratio_is_zero() {
        let s = CopySnapshot::default();
        assert_eq!(s.copies_per_byte(), 0.0);
    }

    #[test]
    fn wire_snapshot_deltas_and_compression() {
        let before = wire_snapshot();
        add_wire_raw(1000);
        add_wire_sent(100);
        add_stripes_sent(4);
        add_sparse_pages_elided(9);
        let delta = wire_snapshot().since(&before);
        assert_eq!(delta.raw_bytes, 1000);
        assert_eq!(delta.wire_bytes, 100);
        assert_eq!(delta.stripes_sent, 4);
        assert_eq!(delta.sparse_pages_elided, 9);
        assert!((delta.compression() - 10.0).abs() < 1e-9);
        assert_eq!(WireSnapshot::default().compression(), 0.0);
    }
}
