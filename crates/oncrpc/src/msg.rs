//! RPC message structures (RFC 5531 §9).
//!
//! An [`RpcMessage`] is either a call or a reply, tagged by a transaction id
//! (`xid`). The *body* of a call (procedure arguments) and of a successful
//! reply (results) is not part of these structures — it follows them on the
//! wire and is produced/consumed by generated stubs.

use crate::auth::OpaqueAuth;
use crate::RPC_VERSION;
use xdr::{Xdr, XdrDecoder, XdrEncoder, XdrError, XdrResult};

/// Message direction discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum MsgType {
    /// A request from client to server.
    Call = 0,
    /// A response from server to client.
    Reply = 1,
}

/// Why a call was accepted-but-failed (RFC 5531 §9 `accept_stat`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum AcceptStat {
    /// RPC executed successfully; results follow.
    Success = 0,
    /// Remote hasn't exported the program.
    ProgUnavail = 1,
    /// Remote can't support the requested version; range follows.
    ProgMismatch = 2,
    /// Program can't support the requested procedure.
    ProcUnavail = 3,
    /// Procedure can't decode the supplied parameters.
    GarbageArgs = 4,
    /// Internal server error (memory allocation failure etc.).
    SystemErr = 5,
    /// Vendor extension (`CRICKET_BUSY`): the server shed this call under
    /// overload or quota pressure *without executing it*. The reply body
    /// carries a retry-after hint; because the procedure never ran, a
    /// retransmission is safe even for non-idempotent calls, and the
    /// server must NOT store this reply in its replay cache.
    Busy = 6,
}

impl AcceptStat {
    fn from_u32(v: u32) -> XdrResult<Self> {
        Ok(match v {
            0 => AcceptStat::Success,
            1 => AcceptStat::ProgUnavail,
            2 => AcceptStat::ProgMismatch,
            3 => AcceptStat::ProcUnavail,
            4 => AcceptStat::GarbageArgs,
            5 => AcceptStat::SystemErr,
            6 => AcceptStat::Busy,
            other => {
                return Err(XdrError::InvalidEnum {
                    type_name: "AcceptStat",
                    value: other as i32,
                })
            }
        })
    }
}

/// Why a call was rejected outright (RFC 5531 §9 `reject_stat`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectStat {
    /// RPC version number was not 2; the supported range follows.
    RpcMismatch {
        /// Lowest supported RPC version.
        low: u32,
        /// Highest supported RPC version.
        high: u32,
    },
    /// Authentication failed, with the `auth_stat` cause code.
    AuthError(u32),
}

/// Call body: which remote procedure to execute, with what credentials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallBody {
    /// RPC protocol version; must be 2.
    pub rpcvers: u32,
    /// Remote program number.
    pub prog: u32,
    /// Remote program version number.
    pub vers: u32,
    /// Procedure number within the program.
    pub proc: u32,
    /// Caller credential.
    pub cred: OpaqueAuth,
    /// Caller verifier.
    pub verf: OpaqueAuth,
}

impl CallBody {
    /// Construct a v2 call with `AUTH_NONE`.
    pub fn new(prog: u32, vers: u32, proc: u32) -> Self {
        Self {
            rpcvers: RPC_VERSION,
            prog,
            vers,
            proc,
            cred: OpaqueAuth::none(),
            verf: OpaqueAuth::none(),
        }
    }
}

impl Xdr for CallBody {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.rpcvers);
        enc.put_u32(self.prog);
        enc.put_u32(self.vers);
        enc.put_u32(self.proc);
        self.cred.encode(enc);
        self.verf.encode(enc);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Self {
            rpcvers: dec.get_u32()?,
            prog: dec.get_u32()?,
            vers: dec.get_u32()?,
            proc: dec.get_u32()?,
            cred: OpaqueAuth::decode(dec)?,
            verf: OpaqueAuth::decode(dec)?,
        })
    }
}

/// Reply body: accepted (with a status) or denied (with a cause).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyBody {
    /// The server processed the call. `Success` means results follow the
    /// message on the wire. `ProgMismatch` carries the supported range.
    Accepted {
        /// Server verifier.
        verf: OpaqueAuth,
        /// Outcome status.
        stat: AcceptStat,
        /// Status-dependent payload words. For `ProgMismatch`: the (low,
        /// high) supported versions. For `Busy`: the retry-after hint in
        /// nanoseconds split as (high word, low word) — see
        /// [`ReplyBody::busy`] / [`ReplyBody::busy_retry_after_ns`].
        mismatch: Option<(u32, u32)>,
    },
    /// The server refused the call.
    Denied(RejectStat),
}

impl ReplyBody {
    /// A successful accepted reply with a null verifier.
    pub fn success() -> Self {
        ReplyBody::Accepted {
            verf: OpaqueAuth::none(),
            stat: AcceptStat::Success,
            mismatch: None,
        }
    }

    /// An accepted-but-failed reply.
    pub fn failure(stat: AcceptStat) -> Self {
        debug_assert!(
            stat != AcceptStat::Success
                && stat != AcceptStat::ProgMismatch
                && stat != AcceptStat::Busy,
            "Busy replies carry a hint — use ReplyBody::busy"
        );
        ReplyBody::Accepted {
            verf: OpaqueAuth::none(),
            stat,
            mismatch: None,
        }
    }

    /// A `CRICKET_BUSY` shed reply: the call was not executed; the client
    /// should back off at least `retry_after_ns` before retransmitting.
    pub fn busy(retry_after_ns: u64) -> Self {
        ReplyBody::Accepted {
            verf: OpaqueAuth::none(),
            stat: AcceptStat::Busy,
            mismatch: Some(((retry_after_ns >> 32) as u32, retry_after_ns as u32)),
        }
    }

    /// The retry-after hint of a [`ReplyBody::busy`] reply, if this is one.
    pub fn busy_retry_after_ns(&self) -> Option<u64> {
        match self {
            ReplyBody::Accepted {
                stat: AcceptStat::Busy,
                mismatch,
                ..
            } => {
                let (hi, lo) = mismatch.unwrap_or((0, 0));
                Some(((hi as u64) << 32) | lo as u64)
            }
            _ => None,
        }
    }

    /// An accepted reply reporting a program version mismatch.
    pub fn prog_mismatch(low: u32, high: u32) -> Self {
        ReplyBody::Accepted {
            verf: OpaqueAuth::none(),
            stat: AcceptStat::ProgMismatch,
            mismatch: Some((low, high)),
        }
    }
}

impl Xdr for ReplyBody {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            ReplyBody::Accepted {
                verf,
                stat,
                mismatch,
            } => {
                enc.put_u32(0); // MSG_ACCEPTED
                verf.encode(enc);
                enc.put_u32(*stat as u32);
                if matches!(*stat, AcceptStat::ProgMismatch | AcceptStat::Busy) {
                    let (low, high) = mismatch.unwrap_or((0, 0));
                    enc.put_u32(low);
                    enc.put_u32(high);
                }
            }
            ReplyBody::Denied(RejectStat::RpcMismatch { low, high }) => {
                enc.put_u32(1); // MSG_DENIED
                enc.put_u32(0); // RPC_MISMATCH
                enc.put_u32(*low);
                enc.put_u32(*high);
            }
            ReplyBody::Denied(RejectStat::AuthError(stat)) => {
                enc.put_u32(1); // MSG_DENIED
                enc.put_u32(1); // AUTH_ERROR
                enc.put_u32(*stat);
            }
        }
    }

    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        match dec.get_u32()? {
            0 => {
                let verf = OpaqueAuth::decode(dec)?;
                let stat = AcceptStat::from_u32(dec.get_u32()?)?;
                let mismatch = if matches!(stat, AcceptStat::ProgMismatch | AcceptStat::Busy) {
                    Some((dec.get_u32()?, dec.get_u32()?))
                } else {
                    None
                };
                Ok(ReplyBody::Accepted {
                    verf,
                    stat,
                    mismatch,
                })
            }
            1 => match dec.get_u32()? {
                0 => Ok(ReplyBody::Denied(RejectStat::RpcMismatch {
                    low: dec.get_u32()?,
                    high: dec.get_u32()?,
                })),
                1 => Ok(ReplyBody::Denied(RejectStat::AuthError(dec.get_u32()?))),
                other => Err(XdrError::InvalidUnionArm {
                    type_name: "ReplyBody::Denied",
                    discriminant: other as i32,
                }),
            },
            other => Err(XdrError::InvalidUnionArm {
                type_name: "ReplyBody",
                discriminant: other as i32,
            }),
        }
    }
}

/// A complete RPC message header (call or reply, without the payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcMessage {
    /// Transaction id, chosen by the client, echoed by the server.
    pub xid: u32,
    /// Call or reply body.
    pub body: MessageBody,
}

/// Body of an [`RpcMessage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageBody {
    /// A call header.
    Call(CallBody),
    /// A reply header.
    Reply(ReplyBody),
}

impl RpcMessage {
    /// Build a call message.
    pub fn call(xid: u32, body: CallBody) -> Self {
        Self {
            xid,
            body: MessageBody::Call(body),
        }
    }

    /// Build a reply message.
    pub fn reply(xid: u32, body: ReplyBody) -> Self {
        Self {
            xid,
            body: MessageBody::Reply(body),
        }
    }
}

impl Xdr for RpcMessage {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.xid);
        match &self.body {
            MessageBody::Call(c) => {
                enc.put_u32(MsgType::Call as u32);
                c.encode(enc);
            }
            MessageBody::Reply(r) => {
                enc.put_u32(MsgType::Reply as u32);
                r.encode(enc);
            }
        }
    }

    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let xid = dec.get_u32()?;
        let body = match dec.get_u32()? {
            0 => MessageBody::Call(CallBody::decode(dec)?),
            1 => MessageBody::Reply(ReplyBody::decode(dec)?),
            other => {
                return Err(XdrError::InvalidUnionArm {
                    type_name: "RpcMessage",
                    discriminant: other as i32,
                })
            }
        };
        Ok(Self { xid, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_header_roundtrip() {
        let msg = RpcMessage::call(7, CallBody::new(99, 1, 4));
        let buf = xdr::encode(&msg);
        assert_eq!(xdr::decode::<RpcMessage>(&buf).unwrap(), msg);
    }

    #[test]
    fn call_header_wire_layout() {
        let msg = RpcMessage::call(0x11223344, CallBody::new(0x10, 0x2, 0x3));
        let buf = xdr::encode(&msg);
        // xid, msg_type=0, rpcvers=2, prog, vers, proc, cred(2 words), verf(2 words)
        assert_eq!(buf.len(), 10 * 4);
        assert_eq!(&buf[0..4], &[0x11, 0x22, 0x33, 0x44]);
        assert_eq!(&buf[4..8], &[0, 0, 0, 0]);
        assert_eq!(&buf[8..12], &[0, 0, 0, 2]);
    }

    #[test]
    fn success_reply_roundtrip() {
        let msg = RpcMessage::reply(9, ReplyBody::success());
        let buf = xdr::encode(&msg);
        assert_eq!(xdr::decode::<RpcMessage>(&buf).unwrap(), msg);
    }

    #[test]
    fn prog_mismatch_reply_roundtrip() {
        let msg = RpcMessage::reply(9, ReplyBody::prog_mismatch(1, 3));
        let buf = xdr::encode(&msg);
        match xdr::decode::<RpcMessage>(&buf).unwrap().body {
            MessageBody::Reply(ReplyBody::Accepted {
                stat: AcceptStat::ProgMismatch,
                mismatch: Some((1, 3)),
                ..
            }) => {}
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn denied_replies_roundtrip() {
        for body in [
            ReplyBody::Denied(RejectStat::RpcMismatch { low: 2, high: 2 }),
            ReplyBody::Denied(RejectStat::AuthError(5)),
        ] {
            let msg = RpcMessage::reply(1, body.clone());
            let buf = xdr::encode(&msg);
            assert_eq!(
                xdr::decode::<RpcMessage>(&buf).unwrap().body,
                MessageBody::Reply(body)
            );
        }
    }

    #[test]
    fn bad_msg_type_rejected() {
        let mut enc = XdrEncoder::new();
        enc.put_u32(1); // xid
        enc.put_u32(9); // invalid msg type
        assert!(xdr::decode::<RpcMessage>(enc.as_slice()).is_err());
    }

    #[test]
    fn busy_reply_roundtrips_its_retry_hint() {
        // Hint wider than 32 bits to exercise the (hi, lo) word split.
        let hint = (7u64 << 32) | 123_456;
        let msg = RpcMessage::reply(4, ReplyBody::busy(hint));
        let back = xdr::decode::<RpcMessage>(&xdr::encode(&msg)).unwrap();
        assert_eq!(back, msg);
        match back.body {
            MessageBody::Reply(body) => {
                assert_eq!(body.busy_retry_after_ns(), Some(hint));
            }
            other => panic!("unexpected decode: {other:?}"),
        }
        assert_eq!(ReplyBody::success().busy_retry_after_ns(), None);
    }

    #[test]
    fn failure_reply_statuses_roundtrip() {
        for stat in [
            AcceptStat::ProgUnavail,
            AcceptStat::ProcUnavail,
            AcceptStat::GarbageArgs,
            AcceptStat::SystemErr,
        ] {
            let msg = RpcMessage::reply(3, ReplyBody::failure(stat));
            let back = xdr::decode::<RpcMessage>(&xdr::encode(&msg)).unwrap();
            assert_eq!(back, msg);
        }
    }
}
