//! At-most-once duplicate-request cache (the classic ONC RPC "DRC").
//!
//! A client that retransmits a call after a timeout or reconnect reuses the
//! original transaction id, and tags itself with a stable client token in
//! its credential ([`crate::OpaqueAuth::client_token`]). The server keeps the
//! encoded reply of each recent call keyed by `(client token, xid)`;
//! when the same call arrives again the cached reply bytes are replayed
//! verbatim instead of re-executing the procedure. That is what makes
//! retrying *non-idempotent* procedures (`cuMemAlloc`, module load) safe:
//! the side effect happens exactly once, while the wire sees the answer as
//! many times as it asks.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Observability counters; `hits` is the acceptance-criteria telemetry for
/// "non-idempotent call executed exactly once".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Retransmissions answered from the cache (procedure not re-executed).
    pub hits: u64,
    /// Replies stored.
    pub stores: u64,
    /// Entries evicted to respect the per-client capacity.
    pub evictions: u64,
}

/// Per-client FIFO of (xid, encoded reply record).
type ClientWindow = VecDeque<(u32, Vec<u8>)>;

/// Bounded per-client reply cache keyed by `(client token, xid)`.
#[derive(Debug)]
pub struct ReplayCache {
    per_client: Mutex<HashMap<u64, ClientWindow>>,
    capacity_per_client: usize,
    hits: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
}

/// Replies a client can have in flight is tiny (the client here is
/// synchronous), so a short window per client is plenty.
pub const DEFAULT_REPLAY_WINDOW: usize = 64;

impl Default for ReplayCache {
    fn default() -> Self {
        Self::new(DEFAULT_REPLAY_WINDOW)
    }
}

impl ReplayCache {
    /// Create a cache retaining at most `capacity_per_client` replies per
    /// client token.
    pub fn new(capacity_per_client: usize) -> Self {
        assert!(capacity_per_client > 0);
        Self {
            per_client: Mutex::new(HashMap::new()),
            capacity_per_client,
            hits: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The cached reply for `(client, xid)`, if the call was already served.
    pub fn lookup(&self, client: u64, xid: u32) -> Option<Vec<u8>> {
        let map = self.per_client.lock();
        let reply = map
            .get(&client)?
            .iter()
            .find(|(x, _)| *x == xid)
            .map(|(_, r)| r.clone())?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(reply)
    }

    /// Remember the reply produced for `(client, xid)`.
    pub fn store(&self, client: u64, xid: u32, reply: &[u8]) {
        let mut map = self.per_client.lock();
        let window = map.entry(client).or_default();
        // A retransmission that raced past the lookup must not duplicate
        // the entry.
        if window.iter().any(|(x, _)| *x == xid) {
            return;
        }
        if window.len() >= self.capacity_per_client {
            window.pop_front();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        window.push_back((xid, reply.to_vec()));
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop all state for a client (connection teardown / session release).
    pub fn forget_client(&self, client: u64) {
        self.per_client.lock().remove(&client);
    }

    /// Export a client's window oldest-first (live migration: the cached
    /// replies travel with the session so a retransmission that lands on
    /// the destination still replays instead of re-executing).
    pub fn export_client(&self, client: u64) -> Vec<(u32, Vec<u8>)> {
        self.per_client
            .lock()
            .get(&client)
            .map(|w| w.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Install an exported window for a client, replacing any existing one.
    /// Entries beyond this cache's capacity keep only the newest (matching
    /// what eviction would have retained); imports are not counted as
    /// stores — the side effects happened on the exporting server.
    pub fn import_client(&self, client: u64, mut entries: Vec<(u32, Vec<u8>)>) {
        if entries.len() > self.capacity_per_client {
            entries.drain(..entries.len() - self.capacity_per_client);
        }
        self.per_client.lock().insert(client, entries.into());
    }

    /// Number of clients with live windows (leak checks in soak tests).
    pub fn client_count(&self) -> usize {
        self.per_client.lock().len()
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> ReplayStats {
        ReplayStats {
            hits: self.hits.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_then_lookup_hits() {
        let c = ReplayCache::new(4);
        assert!(c.lookup(1, 10).is_none());
        c.store(1, 10, b"abcd");
        assert_eq!(c.lookup(1, 10).unwrap(), b"abcd");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().stores, 1);
    }

    #[test]
    fn clients_are_isolated() {
        let c = ReplayCache::new(4);
        c.store(1, 10, b"one!");
        assert!(c.lookup(2, 10).is_none());
    }

    #[test]
    fn window_evicts_oldest() {
        let c = ReplayCache::new(2);
        c.store(1, 1, b"a...");
        c.store(1, 2, b"b...");
        c.store(1, 3, b"c...");
        assert!(c.lookup(1, 1).is_none());
        assert!(c.lookup(1, 3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn duplicate_store_is_ignored() {
        let c = ReplayCache::new(4);
        c.store(1, 7, b"orig");
        c.store(1, 7, b"dupe");
        assert_eq!(c.lookup(1, 7).unwrap(), b"orig");
        assert_eq!(c.stats().stores, 1);
    }

    #[test]
    fn forget_client_clears_window() {
        let c = ReplayCache::new(4);
        c.store(9, 1, b"gone");
        c.forget_client(9);
        assert!(c.lookup(9, 1).is_none());
    }

    #[test]
    fn export_import_moves_a_window() {
        let src = ReplayCache::new(4);
        src.store(5, 1, b"aaaa");
        src.store(5, 2, b"bbbb");
        let dst = ReplayCache::new(4);
        dst.import_client(5, src.export_client(5));
        src.forget_client(5);
        assert_eq!(dst.lookup(5, 1).unwrap(), b"aaaa");
        assert_eq!(dst.lookup(5, 2).unwrap(), b"bbbb");
        assert_eq!(dst.stats().stores, 0, "imports are not stores");
        assert_eq!(src.client_count(), 0);
        assert_eq!(dst.client_count(), 1);
    }

    #[test]
    fn import_truncates_to_capacity_keeping_newest() {
        let dst = ReplayCache::new(2);
        dst.import_client(
            1,
            vec![(1, b"a".to_vec()), (2, b"b".to_vec()), (3, b"c".to_vec())],
        );
        assert!(dst.lookup(1, 1).is_none());
        assert!(dst.lookup(1, 2).is_some());
        assert!(dst.lookup(1, 3).is_some());
    }
}
