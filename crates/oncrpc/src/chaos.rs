//! Deterministic fault injection for RPC transports.
//!
//! A [`FaultyTransport`] wraps any [`Transport`] and misbehaves according to
//! a [`FaultPlan`]: a seeded PRNG plus an optional scripted event list. Every
//! decision the plan makes is appended to an event trace, and decisions
//! depend only on the seed and the operation counter — never on wall-clock
//! time — so a failing schedule is named by its seed and replays exactly.
//!
//! The wrapper is *record-aware* in both directions: outgoing bytes are
//! buffered until a complete record-marking record is present, and incoming
//! replies are pulled from the inner transport one record at a time. Faults
//! therefore hit whole RPC messages (drop, duplicate, truncate, corrupt,
//! delay, reset) rather than arbitrary byte positions, which keeps the
//! schedule independent of the caller's fragment size.

use crate::error::RpcResult;
use crate::record::{read_record, write_record, DEFAULT_MAX_FRAGMENT, MAX_RECORD};
use crate::transport::Transport;
use parking_lot::Mutex;
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::Duration;

/// One kind of injected misbehavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The connection resets while sending a request.
    ResetOnSend,
    /// A request record vanishes on the way to the server.
    DropRequest,
    /// One byte of the request payload is flipped.
    CorruptRequest,
    /// Only a prefix of the request reaches the server, then the
    /// connection is dead.
    TruncateRequest,
    /// A reply record vanishes on the way back; the read times out.
    DropReply,
    /// The reply is withheld for one read (which times out), then delivered
    /// late — the classic delayed-duplicate scenario once the client
    /// retransmits.
    DelayReply,
    /// The reply record is delivered twice.
    DuplicateReply,
    /// Only a prefix of the reply arrives, then the connection is dead.
    TruncateReply,
    /// One byte of the reply payload is flipped.
    CorruptReply,
}

impl Fault {
    fn code(self) -> &'static str {
        match self {
            Fault::ResetOnSend => "reset-on-send",
            Fault::DropRequest => "drop-request",
            Fault::CorruptRequest => "corrupt-request",
            Fault::TruncateRequest => "truncate-request",
            Fault::DropReply => "drop-reply",
            Fault::DelayReply => "delay-reply",
            Fault::DuplicateReply => "duplicate-reply",
            Fault::TruncateReply => "truncate-reply",
            Fault::CorruptReply => "corrupt-reply",
        }
    }
}

/// Direction of the record a decision applied to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Client → server record.
    Request,
    /// Server → client record.
    Reply,
}

/// One entry in the replayable event trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Operation counter at decision time (records seen, both directions).
    pub op: u64,
    /// Which direction the record was traveling.
    pub dir: Dir,
    /// The injected fault, or `None` for clean delivery.
    pub fault: Option<Fault>,
    /// Fault-specific detail (byte offset for corruption, prefix length for
    /// truncation); zero otherwise.
    pub detail: u64,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = match self.dir {
            Dir::Request => "req",
            Dir::Reply => "rep",
        };
        match self.fault {
            Some(fault) => write!(f, "{}:{}:{}@{}", self.op, dir, fault.code(), self.detail),
            None => write!(f, "{}:{}:ok", self.op, dir),
        }
    }
}

/// Per-fault probabilities in permille (‰), applied per record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// ‰ chance a request send resets the connection.
    pub reset_on_send: u32,
    /// ‰ chance a request record is dropped.
    pub drop_request: u32,
    /// ‰ chance a request byte is corrupted.
    pub corrupt_request: u32,
    /// ‰ chance a request is truncated mid-record.
    pub truncate_request: u32,
    /// ‰ chance a reply record is dropped.
    pub drop_reply: u32,
    /// ‰ chance a reply is delayed past one read.
    pub delay_reply: u32,
    /// ‰ chance a reply record is duplicated.
    pub duplicate_reply: u32,
    /// ‰ chance a reply is truncated mid-record.
    pub truncate_reply: u32,
    /// ‰ chance a reply byte is corrupted.
    pub corrupt_reply: u32,
    /// Hard cap on injected faults; once reached the transport runs clean,
    /// guaranteeing every bounded-retry test terminates.
    pub max_faults: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            reset_on_send: 30,
            drop_request: 30,
            corrupt_request: 20,
            truncate_request: 15,
            drop_reply: 30,
            delay_reply: 30,
            duplicate_reply: 30,
            truncate_reply: 15,
            corrupt_reply: 20,
            max_faults: 16,
        }
    }
}

impl FaultConfig {
    /// The default mix minus the corruption faults. Every fault in this set
    /// is either *detected* by the stack (reset, truncation, timeout) or
    /// *masked* by at-most-once retry, so a hardened client must complete
    /// every call with the correct result — the invariant the seeded CI
    /// matrix pins. Payload corruption, by contrast, is undetectable without
    /// an end-to-end checksum (on real wires TCP's checksum covers it): a
    /// flipped byte in still-well-formed XDR executes with wrong arguments
    /// or returns wrong data, so corruption is exercised separately under a
    /// weaker no-panic/no-hang contract.
    pub fn lossy() -> Self {
        Self {
            corrupt_request: 0,
            corrupt_reply: 0,
            ..Self::default()
        }
    }

    /// A configuration that never injects anything (useful as a baseline).
    pub fn none() -> Self {
        Self {
            reset_on_send: 0,
            drop_request: 0,
            corrupt_request: 0,
            truncate_request: 0,
            drop_reply: 0,
            delay_reply: 0,
            duplicate_reply: 0,
            truncate_reply: 0,
            corrupt_reply: 0,
            max_faults: 0,
        }
    }
}

/// splitmix64: tiny, seedable, and excellent avalanche for the low state
/// volume we need. Hand-rolled so the harness has no RNG dependency and the
/// stream is fixed forever (seeds printed by CI must replay years later).
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Bernoulli trial with probability `permille`/1000.
    pub fn roll(&mut self, permille: u32) -> bool {
        self.below(1000) < permille as u64
    }
}

/// Shared handle to a [`FaultPlan`]: every [`FaultyTransport`] driven by a
/// schedule holds one, so reconnects continue where the dead transport
/// stopped and tests can read the trace when the run ends.
pub type SharedFaultPlan = Arc<Mutex<FaultPlan>>;

/// A replayable fault schedule: seeded probabilities plus scripted events.
///
/// Scripted events take precedence: if one is registered for the current
/// operation index it fires regardless of the dice. Every decision —
/// including clean deliveries — lands in [`FaultPlan::trace`], so two runs
/// of the same workload under the same seed can be compared byte for byte
/// via [`FaultPlan::trace_string`].
#[derive(Debug)]
pub struct FaultPlan {
    rng: ChaosRng,
    cfg: FaultConfig,
    /// (operation index, fault) pairs; consumed when their index arrives.
    script: Vec<(u64, Fault)>,
    ops: u64,
    faults_injected: u64,
    trace: Vec<TraceEvent>,
}

impl FaultPlan {
    /// A plan driven purely by the seeded PRNG with default probabilities.
    pub fn from_seed(seed: u64) -> Self {
        Self::from_seed_with(seed, FaultConfig::default())
    }

    /// A plan driven by the seeded PRNG with explicit probabilities.
    pub fn from_seed_with(seed: u64, cfg: FaultConfig) -> Self {
        Self {
            rng: ChaosRng::new(seed),
            cfg,
            script: Vec::new(),
            ops: 0,
            faults_injected: 0,
            trace: Vec::new(),
        }
    }

    /// A purely scripted plan: `events` maps operation indices (records
    /// seen, both directions, starting at 0) to faults. No dice are rolled.
    pub fn scripted(events: Vec<(u64, Fault)>) -> Self {
        Self {
            rng: ChaosRng::new(0),
            cfg: FaultConfig::none(),
            script: events,
            ops: 0,
            faults_injected: 0,
            trace: Vec::new(),
        }
    }

    /// Add scripted events on top of a seeded plan.
    pub fn with_script(mut self, events: Vec<(u64, Fault)>) -> Self {
        self.script = events;
        self
    }

    /// Move the plan behind its shared handle. One handle can drive any
    /// number of successive [`FaultyTransport`]s — a reconnect continues
    /// the same schedule — and is inspected afterwards for its trace.
    pub fn into_shared(self) -> SharedFaultPlan {
        Arc::new(Mutex::new(self))
    }

    /// Number of faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// The decision trace so far.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// The trace rendered one event per line — the byte-identical artifact
    /// the determinism test pins.
    pub fn trace_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for ev in &self.trace {
            let _ = writeln!(out, "{ev}");
        }
        out
    }

    fn take_scripted(&mut self, op: u64) -> Option<Fault> {
        let idx = self.script.iter().position(|&(at, _)| at == op)?;
        Some(self.script.swap_remove(idx).1)
    }

    fn decide(&mut self, dir: Dir, record_len: usize) -> TraceEvent {
        let op = self.ops;
        self.ops += 1;
        let scripted = self.take_scripted(op);
        let fault = if let Some(f) = scripted {
            Some(f)
        } else if self.faults_injected >= self.cfg.max_faults {
            None
        } else {
            // Fixed roll order per direction keeps the consumed PRNG stream
            // identical for identical workloads.
            match dir {
                Dir::Request => [
                    (Fault::ResetOnSend, self.cfg.reset_on_send),
                    (Fault::DropRequest, self.cfg.drop_request),
                    (Fault::CorruptRequest, self.cfg.corrupt_request),
                    (Fault::TruncateRequest, self.cfg.truncate_request),
                ]
                .into_iter()
                .find(|&(_, p)| self.rng.roll(p))
                .map(|(f, _)| f),
                Dir::Reply => [
                    (Fault::DropReply, self.cfg.drop_reply),
                    (Fault::DelayReply, self.cfg.delay_reply),
                    (Fault::DuplicateReply, self.cfg.duplicate_reply),
                    (Fault::TruncateReply, self.cfg.truncate_reply),
                    (Fault::CorruptReply, self.cfg.corrupt_reply),
                ]
                .into_iter()
                .find(|&(_, p)| self.rng.roll(p))
                .map(|(f, _)| f),
            }
        };
        let detail = match fault {
            Some(Fault::CorruptRequest | Fault::CorruptReply) => {
                self.rng.below(record_len.max(1) as u64)
            }
            Some(Fault::TruncateRequest | Fault::TruncateReply) => (record_len as u64) / 2,
            _ => 0,
        };
        if fault.is_some() {
            self.faults_injected += 1;
        }
        let ev = TraceEvent {
            op,
            dir,
            fault,
            detail,
        };
        self.trace.push(ev);
        ev
    }
}

/// Reads from a byte slice — used to strip record framing from the
/// buffered outgoing stream.
struct SliceReader<'a>(&'a [u8]);

impl Read for SliceReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.0.len().min(buf.len());
        buf[..n].copy_from_slice(&self.0[..n]);
        self.0 = &self.0[n..];
        Ok(n)
    }
}

/// Length of the complete record (framing included) at the head of `buf`,
/// or `None` while fragments are still missing.
fn complete_record_len(buf: &[u8]) -> Option<usize> {
    let mut off = 0usize;
    loop {
        if buf.len() < off + 4 {
            return None;
        }
        let header = u32::from_be_bytes(buf[off..off + 4].try_into().unwrap());
        let len = (header & 0x7fff_ffff) as usize;
        let last = header & 0x8000_0000 != 0;
        off = off.checked_add(4 + len)?;
        if buf.len() < off {
            return None;
        }
        if last {
            return Some(off);
        }
    }
}

fn reset_err() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionReset, "chaos: connection reset")
}

/// A [`Transport`] that injects the faults a [`FaultPlan`] schedules.
///
/// The plan is shared behind `Arc<Mutex<…>>` so the trace stays inspectable
/// after the transport is boxed into a client, and so a reconnecting client
/// can hand the *same* plan to its replacement transport, continuing the
/// schedule across connections.
pub struct FaultyTransport {
    inner: Box<dyn Transport>,
    plan: Arc<Mutex<FaultPlan>>,
    /// Outgoing bytes buffered until a full record is present.
    out_buf: Vec<u8>,
    /// Faulted, re-framed reply bytes ready for the client to read.
    in_buf: Vec<u8>,
    in_off: usize,
    /// A reply withheld by [`Fault::DelayReply`], delivered on the next read.
    delayed: Option<Vec<u8>>,
    /// Once set, writes fail with `ConnectionReset` and reads return EOF.
    broken: bool,
}

impl FaultyTransport {
    /// Wrap `inner`, misbehaving per `plan`.
    pub fn new(inner: Box<dyn Transport>, plan: Arc<Mutex<FaultPlan>>) -> Self {
        Self {
            inner,
            plan,
            out_buf: Vec::new(),
            in_buf: Vec::new(),
            in_off: 0,
            delayed: None,
            broken: false,
        }
    }

    /// The shared plan (for trace inspection or handing to a successor).
    pub fn plan(&self) -> Arc<Mutex<FaultPlan>> {
        Arc::clone(&self.plan)
    }

    /// Apply the plan to one complete outgoing record (framing included).
    fn forward_request(&mut self, record: &[u8]) -> io::Result<()> {
        let mut payload = read_record(&mut SliceReader(record), MAX_RECORD)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "chaos: bad record"))?
            .unwrap_or_default();
        let ev = self.plan.lock().decide(Dir::Request, payload.len());
        match ev.fault {
            None => {
                write_record(&mut self.inner, &payload, DEFAULT_MAX_FRAGMENT)
                    .map_err(|_| reset_err())?;
            }
            Some(Fault::ResetOnSend) => {
                self.broken = true;
                return Err(reset_err());
            }
            Some(Fault::DropRequest) => {} // vanishes; client deadline fires
            Some(Fault::CorruptRequest) => {
                let at = (ev.detail as usize).min(payload.len().saturating_sub(1));
                if !payload.is_empty() {
                    payload[at] ^= 0x5a;
                }
                write_record(&mut self.inner, &payload, DEFAULT_MAX_FRAGMENT)
                    .map_err(|_| reset_err())?;
            }
            Some(Fault::TruncateRequest) => {
                // Promise the full record, deliver a prefix, then die: the
                // server is left holding an incomplete record.
                let keep = ev.detail as usize;
                let header = (payload.len() as u32 | 0x8000_0000).to_be_bytes();
                let _ = self.inner.write_all(&header);
                let _ = self.inner.write_all(&payload[..keep]);
                let _ = self.inner.flush();
                self.broken = true;
                return Err(reset_err());
            }
            Some(other) => unreachable!("reply fault {other:?} on request path"),
        }
        self.inner.flush().map_err(|_| reset_err())
    }

    /// Pull one reply record from the inner transport, apply the plan, and
    /// queue the resulting bytes for the client. Returns `false` on EOF.
    fn fetch_reply(&mut self) -> io::Result<bool> {
        if let Some(delayed) = self.delayed.take() {
            self.queue_reply(&delayed, false);
            return Ok(true);
        }
        let payload = match read_record(&mut self.inner, MAX_RECORD) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(false),
            Err(crate::error::RpcError::TimedOut) => {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "read timed out"))
            }
            Err(crate::error::RpcError::Io(e)) => return Err(e),
            Err(_) => return Ok(false),
        };
        let ev = self.plan.lock().decide(Dir::Reply, payload.len());
        match ev.fault {
            None => self.queue_reply(&payload, false),
            Some(Fault::DropReply) => {
                // Swallowed: behave exactly like a reply that never came.
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "chaos: reply dropped",
                ));
            }
            Some(Fault::DelayReply) => {
                self.delayed = Some(payload);
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "chaos: reply delayed",
                ));
            }
            Some(Fault::DuplicateReply) => {
                self.queue_reply(&payload, false);
                self.queue_reply(&payload, false);
            }
            Some(Fault::TruncateReply) => {
                self.queue_reply(&payload[..ev.detail as usize], true);
                self.broken = true;
            }
            Some(Fault::CorruptReply) => {
                let mut p = payload;
                let at = (ev.detail as usize).min(p.len().saturating_sub(1));
                if !p.is_empty() {
                    p[at] ^= 0x5a;
                }
                self.queue_reply(&p, false);
            }
            Some(other) => unreachable!("request fault {other:?} on reply path"),
        }
        Ok(true)
    }

    /// Re-frame `payload` into the client-facing read buffer. When
    /// `truncated`, the framing promises the original length so the client's
    /// record reader observes a mid-record connection loss.
    fn queue_reply(&mut self, payload: &[u8], truncated: bool) {
        if self.in_off >= self.in_buf.len() {
            self.in_buf.clear();
            self.in_off = 0;
        }
        if truncated {
            // Header promising more than will ever arrive.
            let promised = (payload.len() as u32 + 8) | 0x8000_0000;
            self.in_buf.extend_from_slice(&promised.to_be_bytes());
            self.in_buf.extend_from_slice(payload);
        } else {
            let mut framed = Vec::with_capacity(payload.len() + 4);
            write_record(&mut framed, payload, DEFAULT_MAX_FRAGMENT).expect("vec write");
            self.in_buf.extend_from_slice(&framed);
        }
    }
}

impl Read for FaultyTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.in_off >= self.in_buf.len() {
            if self.broken {
                return Ok(0); // mid-record EOF → ConnectionClosed upstream
            }
            if !self.fetch_reply()? {
                return Ok(0);
            }
        }
        let avail = &self.in_buf[self.in_off..];
        let n = avail.len().min(buf.len());
        buf[..n].copy_from_slice(&avail[..n]);
        self.in_off += n;
        Ok(n)
    }
}

impl Write for FaultyTransport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.broken {
            return Err(reset_err());
        }
        self.out_buf.extend_from_slice(buf);
        while let Some(len) = complete_record_len(&self.out_buf) {
            let record: Vec<u8> = self.out_buf.drain(..len).collect();
            self.forward_request(&record)?;
        }
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        if self.broken {
            return Err(reset_err());
        }
        Ok(())
    }
}

impl Transport for FaultyTransport {
    fn describe(&self) -> String {
        format!("chaos({})", self.inner.describe())
    }

    fn set_read_timeout(&mut self, dur: Option<Duration>) -> RpcResult<()> {
        self.inner.set_read_timeout(dur)
    }
}

impl fmt::Debug for FaultyTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyTransport")
            .field("broken", &self.broken)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::duplex_pair;

    #[test]
    fn rng_stream_is_fixed() {
        // Pin the first outputs forever: CI prints seeds that must replay.
        let mut r = ChaosRng::new(42);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let mut r2 = ChaosRng::new(42);
        let again: Vec<u64> = (0..3).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        let mut r3 = ChaosRng::new(43);
        assert_ne!(first[0], r3.next_u64());
    }

    #[test]
    fn same_seed_same_decisions() {
        let mut a = FaultPlan::from_seed(7);
        let mut b = FaultPlan::from_seed(7);
        for i in 0..200 {
            let dir = if i % 2 == 0 { Dir::Request } else { Dir::Reply };
            assert_eq!(a.decide(dir, 100), b.decide(dir, 100));
        }
        assert_eq!(a.trace_string(), b.trace_string());
        assert!(!a.trace_string().is_empty());
    }

    #[test]
    fn scripted_events_fire_at_their_index() {
        let mut p = FaultPlan::scripted(vec![(2, Fault::DropReply), (0, Fault::ResetOnSend)]);
        assert_eq!(p.decide(Dir::Request, 10).fault, Some(Fault::ResetOnSend));
        assert_eq!(p.decide(Dir::Reply, 10).fault, None);
        assert_eq!(p.decide(Dir::Reply, 10).fault, Some(Fault::DropReply));
        assert_eq!(p.faults_injected(), 2);
    }

    #[test]
    fn max_faults_caps_injection() {
        let cfg = FaultConfig {
            drop_reply: 1000,
            max_faults: 3,
            ..FaultConfig::none()
        };
        let mut p = FaultPlan::from_seed_with(1, cfg);
        let injected = (0..10)
            .filter(|_| p.decide(Dir::Reply, 10).fault.is_some())
            .count();
        assert_eq!(injected, 3);
    }

    #[test]
    fn clean_plan_passes_records_through() {
        let (client_end, mut server_end) = duplex_pair();
        let plan = Arc::new(Mutex::new(FaultPlan::from_seed_with(
            0,
            FaultConfig::none(),
        )));
        let mut faulty = FaultyTransport::new(Box::new(client_end), Arc::clone(&plan));
        let payload: Vec<u8> = (0..3000u32).map(|i| i as u8).collect();
        write_record(&mut faulty, &payload, 256).unwrap();
        let got = read_record(&mut server_end, MAX_RECORD).unwrap().unwrap();
        assert_eq!(got, payload);
        // Echo back; the reply path re-frames but must preserve bytes.
        write_record(&mut server_end, &payload, 512).unwrap();
        let back = read_record(&mut faulty, MAX_RECORD).unwrap().unwrap();
        assert_eq!(back, payload);
        assert_eq!(plan.lock().trace().len(), 2);
        assert!(plan.lock().trace().iter().all(|e| e.fault.is_none()));
    }

    #[test]
    fn reset_on_send_breaks_the_transport() {
        let (client_end, _server_end) = duplex_pair();
        let plan = Arc::new(Mutex::new(FaultPlan::scripted(vec![(
            0,
            Fault::ResetOnSend,
        )])));
        let mut faulty = FaultyTransport::new(Box::new(client_end), plan);
        let err = write_record(&mut faulty, b"ping", 64).unwrap_err();
        assert!(matches!(err, crate::error::RpcError::Io(_)));
        // Still broken afterwards.
        assert!(write_record(&mut faulty, b"ping", 64).is_err());
        let mut buf = [0u8; 4];
        assert_eq!(faulty.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn duplicate_reply_is_delivered_twice() {
        let (client_end, mut server_end) = duplex_pair();
        let plan = Arc::new(Mutex::new(FaultPlan::scripted(vec![(
            1,
            Fault::DuplicateReply,
        )])));
        let mut faulty = FaultyTransport::new(Box::new(client_end), plan);
        write_record(&mut faulty, b"call", 64).unwrap();
        let _ = read_record(&mut server_end, MAX_RECORD).unwrap().unwrap();
        write_record(&mut server_end, b"answer", 64).unwrap();
        let a = read_record(&mut faulty, MAX_RECORD).unwrap().unwrap();
        let b = read_record(&mut faulty, MAX_RECORD).unwrap().unwrap();
        assert_eq!(a, b"answer");
        assert_eq!(b, b"answer");
    }

    #[test]
    fn truncated_reply_surfaces_as_connection_loss() {
        let (client_end, mut server_end) = duplex_pair();
        let plan = Arc::new(Mutex::new(FaultPlan::scripted(vec![(
            1,
            Fault::TruncateReply,
        )])));
        let mut faulty = FaultyTransport::new(Box::new(client_end), plan);
        write_record(&mut faulty, b"call", 64).unwrap();
        let _ = read_record(&mut server_end, MAX_RECORD).unwrap().unwrap();
        write_record(&mut server_end, b"long answer bytes", 64).unwrap();
        let err = read_record(&mut faulty, MAX_RECORD).unwrap_err();
        assert!(matches!(err, crate::error::RpcError::ConnectionClosed));
    }
}
