//! Synchronous RPC client.
//!
//! [`RpcClient`] issues calls over any [`Transport`], matching replies by
//! transaction id. Generated stubs (from `rpcl`) wrap it with typed methods;
//! see `cricket-proto` for the Cricket CUDA interface.
//!
//! The data path is zero-copy in steady state: requests are encoded into a
//! reused scratch buffer (bulk arguments can bypass even that via
//! [`RpcClient::call_raw_sg`] and scatter-gather records), and replies are
//! reassembled into a pooled buffer borrowed out through [`Reply`] — no
//! per-call allocation and no reply-tail copy.

use crate::auth::OpaqueAuth;
use crate::error::{RpcError, RpcResult};
use crate::msg::{AcceptStat, CallBody, MessageBody, ReplyBody, RpcMessage};
use crate::record::{read_record_into, write_record_sg, DEFAULT_MAX_FRAGMENT, MAX_RECORD};
use crate::telemetry;
use crate::transport::Transport;
use xdr::{Xdr, XdrDecoder, XdrEncoder, XdrSgEncoder};

/// Running tallies of client activity.
///
/// The paper reports per-application CUDA API call counts and transferred
/// bytes (§4.1); these counters are how our harness reproduces that table.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClientStats {
    /// Completed calls.
    pub calls: u64,
    /// Request bytes written (payload, excluding fragment headers). Only
    /// counted once the record write succeeded — a failed write leaves the
    /// counter untouched.
    pub bytes_sent: u64,
    /// Reply bytes read (payload, excluding fragment headers).
    pub bytes_received: u64,
}

/// Result payload of a successful call, borrowing the client's pooled reply
/// buffer (offset past the RPC reply header — no tail copy).
///
/// Derefs to `[u8]`, so existing decode code (`XdrDecoder::new(&reply)`,
/// `reply.len()`, `reply.is_empty()`) works unchanged. The borrow ends at
/// the next call, which is when the pooled buffer is reused.
#[derive(Debug)]
pub struct Reply<'a> {
    payload: &'a [u8],
}

impl std::ops::Deref for Reply<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.payload
    }
}

impl AsRef<[u8]> for Reply<'_> {
    fn as_ref(&self) -> &[u8] {
        self.payload
    }
}

impl Reply<'_> {
    /// Copy the payload out, detaching it from the pooled buffer.
    pub fn to_vec(&self) -> Vec<u8> {
        self.payload.to_vec()
    }
}

/// A synchronous ONC RPC client bound to one program+version on one transport.
pub struct RpcClient {
    transport: Box<dyn Transport>,
    prog: u32,
    vers: u32,
    next_xid: u32,
    max_fragment: usize,
    cred: OpaqueAuth,
    stats: ClientStats,
    /// Scratch encoder reused across calls to avoid per-call allocation.
    scratch: XdrEncoder,
    /// Pooled reply record buffer, reused across calls and borrowed out via
    /// [`Reply`].
    reply_buf: Vec<u8>,
}

impl RpcClient {
    /// Create a client for `prog`/`vers` over `transport`.
    pub fn new(transport: Box<dyn Transport>, prog: u32, vers: u32) -> Self {
        Self {
            transport,
            prog,
            vers,
            // Start from a fixed seed; xids only need per-connection
            // uniqueness on a reliable transport.
            next_xid: 1,
            max_fragment: DEFAULT_MAX_FRAGMENT,
            cred: OpaqueAuth::none(),
            stats: ClientStats::default(),
            scratch: XdrEncoder::with_capacity(256),
            reply_buf: Vec::with_capacity(256),
        }
    }

    /// Override the maximum fragment size (fragmentation ablation).
    pub fn set_max_fragment(&mut self, max_fragment: usize) {
        assert!(max_fragment > 0);
        self.max_fragment = max_fragment;
    }

    /// Use a non-default credential for subsequent calls.
    pub fn set_credential(&mut self, cred: OpaqueAuth) {
        self.cred = cred;
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Reset the activity counters.
    pub fn reset_stats(&mut self) {
        self.stats = ClientStats::default();
    }

    /// Issue procedure `proc`, encoding `args` and decoding the reply as `R`.
    pub fn call<A: Xdr, R: Xdr>(&mut self, proc: u32, args: &A) -> RpcResult<R> {
        let reply = self.call_raw(proc, |enc| args.encode(enc))?;
        let mut dec = XdrDecoder::new(&reply);
        let result = R::decode(&mut dec)?;
        dec.finish()?;
        Ok(result)
    }

    /// Issue procedure `proc` with a caller-controlled argument encoder,
    /// returning the reply payload borrowed from the pooled record buffer.
    /// This is the primitive the generated stubs use; it avoids intermediate
    /// argument structs for multi-parameter procedures.
    pub fn call_raw(
        &mut self,
        proc: u32,
        encode_args: impl FnOnce(&mut XdrEncoder),
    ) -> RpcResult<Reply<'_>> {
        self.call_raw_sg(proc, |enc| encode_args(enc))
    }

    /// Like [`RpcClient::call_raw`], but the encoder supports deferred
    /// (scatter-gather) opaques: bulk argument bytes are recorded as
    /// borrowed slices with lifetime `'d` and written to the transport as an
    /// iovec chain, never copied into the scratch buffer.
    pub fn call_raw_sg<'d>(
        &mut self,
        proc: u32,
        encode_args: impl FnOnce(&mut XdrSgEncoder<'d, '_>),
    ) -> RpcResult<Reply<'_>> {
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);

        let mut call = CallBody::new(self.prog, self.vers, proc);
        call.cred = self.cred.clone();
        let msg = RpcMessage::call(xid, call);

        self.scratch.clear();
        msg.encode(&mut self.scratch);
        let mut sg = XdrSgEncoder::new(&mut self.scratch);
        encode_args(&mut sg);
        let total = sg.total_len();
        // Only the owned stream was memcpy'd into scratch; deferred slices
        // travel as borrowed iovec entries.
        telemetry::add_memmoved(sg.len());
        sg.with_segments(|segs| write_record_sg(&mut self.transport, segs, self.max_fragment))?;
        self.stats.bytes_sent += total as u64;

        let received = read_record_into(&mut self.transport, &mut self.reply_buf, MAX_RECORD)?
            .ok_or(RpcError::ConnectionClosed)?;
        self.stats.bytes_received += received as u64;

        let mut dec = XdrDecoder::new(&self.reply_buf);
        let reply = RpcMessage::decode(&mut dec)?;
        if reply.xid != xid {
            return Err(RpcError::XidMismatch {
                expected: xid,
                got: reply.xid,
            });
        }
        let body = match reply.body {
            MessageBody::Reply(b) => b,
            MessageBody::Call(_) => return Err(RpcError::UnexpectedMessageType),
        };
        match body {
            ReplyBody::Accepted {
                stat: AcceptStat::Success,
                ..
            } => {
                self.stats.calls += 1;
                Ok(Reply {
                    payload: &self.reply_buf[dec.position()..],
                })
            }
            ReplyBody::Accepted { stat, .. } => Err(RpcError::Accepted(stat)),
            ReplyBody::Denied(stat) => Err(RpcError::Rejected(stat)),
        }
    }

    /// The conventional "null" procedure (proc 0): no args, no results.
    /// Useful as a ping / latency probe.
    pub fn call_null(&mut self) -> RpcResult<()> {
        self.call::<(), ()>(0, &())
    }

    /// Describe the underlying transport.
    pub fn describe(&self) -> String {
        self.transport.describe()
    }
}

impl std::fmt::Debug for RpcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcClient")
            .field("prog", &self.prog)
            .field("vers", &self.vers)
            .field("next_xid", &self.next_xid)
            .field("stats", &self.stats)
            .finish()
    }
}
