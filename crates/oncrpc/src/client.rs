//! Synchronous RPC client.
//!
//! [`RpcClient`] issues calls over any [`Transport`], matching replies by
//! transaction id. Generated stubs (from `rpcl`) wrap it with typed methods;
//! see `cricket-proto` for the Cricket CUDA interface.
//!
//! The data path is zero-copy in steady state: requests are encoded into a
//! reused scratch buffer (bulk arguments can bypass even that via
//! [`RpcClient::call_raw_sg`] and scatter-gather records), and replies are
//! reassembled into a pooled buffer borrowed out through [`Reply`] — no
//! per-call allocation and no reply-tail copy.

use crate::auth::OpaqueAuth;
use crate::error::{RpcError, RpcResult};
use crate::msg::{AcceptStat, CallBody, MessageBody, ReplyBody, RpcMessage};
use crate::record::{read_record_into, write_record_sg, DEFAULT_MAX_FRAGMENT, MAX_RECORD};
use crate::telemetry;
use crate::transport::Transport;
use std::time::Duration;
use xdr::{Xdr, XdrDecoder, XdrEncoder, XdrSgEncoder};

/// Running tallies of client activity.
///
/// The paper reports per-application CUDA API call counts and transferred
/// bytes (§4.1); these counters are how our harness reproduces that table.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClientStats {
    /// Completed calls.
    pub calls: u64,
    /// Request bytes written (payload, excluding fragment headers). Only
    /// counted once the record write succeeded — a failed write leaves the
    /// counter untouched.
    pub bytes_sent: u64,
    /// Reply bytes read (payload, excluding fragment headers).
    pub bytes_received: u64,
    /// Attempts beyond the first (timeouts, resets, corrupt replies).
    pub retries: u64,
    /// Transports replaced after a dead connection.
    pub reconnects: u64,
    /// Reply records discarded because their xid belonged to an abandoned
    /// earlier call (late replies after a timed-out attempt).
    pub stale_replies: u64,
}

/// Retry behavior for [`RpcClient::call_raw_sg_tagged`].
///
/// The default policy performs a single attempt — exactly the pre-resilience
/// behavior. With more attempts, only calls tagged *idempotent* are retried
/// unless [`RetryPolicy::retry_non_idempotent`] is set, which is safe only
/// when the server runs an at-most-once replay cache
/// ([`crate::replay::ReplayCache`]) and the client tags itself with
/// [`OpaqueAuth::client_token`]: retransmissions reuse the original xid, so
/// the server replays the recorded reply instead of re-executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per call (1 = never retry).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each attempt.
    pub base_delay: Duration,
    /// Cap on the exponential backoff.
    pub max_delay: Duration,
    /// Also retry non-idempotent calls (requires server replay cache).
    pub retry_non_idempotent: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 1,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(200),
            retry_non_idempotent: false,
        }
    }
}

/// Builder for a transport replacing one that died mid-call.
pub type Reconnector = Box<dyn FnMut() -> RpcResult<Box<dyn Transport>> + Send>;

/// Stale reply records drained per receive before giving up; with same-xid
/// retransmission a longer backlog means a desynchronized peer.
const MAX_STALE_REPLIES: u32 = 8;

/// Result payload of a successful call, borrowing the client's pooled reply
/// buffer (offset past the RPC reply header — no tail copy).
///
/// Derefs to `[u8]`, so existing decode code (`XdrDecoder::new(&reply)`,
/// `reply.len()`, `reply.is_empty()`) works unchanged. The borrow ends at
/// the next call, which is when the pooled buffer is reused.
#[derive(Debug)]
pub struct Reply<'a> {
    payload: &'a [u8],
}

impl std::ops::Deref for Reply<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.payload
    }
}

impl AsRef<[u8]> for Reply<'_> {
    fn as_ref(&self) -> &[u8] {
        self.payload
    }
}

impl Reply<'_> {
    /// Copy the payload out, detaching it from the pooled buffer.
    pub fn to_vec(&self) -> Vec<u8> {
        self.payload.to_vec()
    }
}

/// A synchronous ONC RPC client bound to one program+version on one transport.
pub struct RpcClient {
    transport: Box<dyn Transport>,
    prog: u32,
    vers: u32,
    next_xid: u32,
    max_fragment: usize,
    cred: OpaqueAuth,
    stats: ClientStats,
    policy: RetryPolicy,
    /// Per-call reply deadline, installed on the transport (and re-installed
    /// after every reconnect).
    call_timeout: Option<Duration>,
    /// Replacement-transport factory used when the connection dies mid-call.
    reconnect: Option<Reconnector>,
    /// Deterministic jitter state for backoff (simple LCG).
    jitter: u64,
    /// Scratch encoder reused across calls to avoid per-call allocation.
    scratch: XdrEncoder,
    /// Pooled reply record buffer, reused across calls and borrowed out via
    /// [`Reply`].
    reply_buf: Vec<u8>,
}

impl RpcClient {
    /// Create a client for `prog`/`vers` over `transport`.
    pub fn new(transport: Box<dyn Transport>, prog: u32, vers: u32) -> Self {
        Self {
            transport,
            prog,
            vers,
            // Start from a fixed seed; xids only need per-connection
            // uniqueness on a reliable transport.
            next_xid: 1,
            max_fragment: DEFAULT_MAX_FRAGMENT,
            cred: OpaqueAuth::none(),
            stats: ClientStats::default(),
            policy: RetryPolicy::default(),
            call_timeout: None,
            reconnect: None,
            jitter: 0x1234_5678_9abc_def0,
            scratch: XdrEncoder::with_capacity(256),
            reply_buf: Vec::with_capacity(256),
        }
    }

    /// Install a retry policy (attempts, backoff, non-idempotent opt-in).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        assert!(policy.max_attempts > 0);
        self.policy = policy;
    }

    /// Bound how long each attempt may wait for its reply. Applied to the
    /// current transport immediately and to every reconnected transport.
    pub fn set_call_timeout(&mut self, dur: Option<Duration>) -> RpcResult<()> {
        self.call_timeout = dur;
        self.transport.set_read_timeout(dur)
    }

    /// Install a factory producing a replacement transport when the
    /// connection dies (reset, EOF). Without one, connection loss is fatal
    /// to the call.
    pub fn set_reconnect(
        &mut self,
        f: impl FnMut() -> RpcResult<Box<dyn Transport>> + Send + 'static,
    ) {
        self.reconnect = Some(Box::new(f));
    }

    /// Override the maximum fragment size (fragmentation ablation).
    pub fn set_max_fragment(&mut self, max_fragment: usize) {
        assert!(max_fragment > 0);
        self.max_fragment = max_fragment;
    }

    /// Use a non-default credential for subsequent calls.
    pub fn set_credential(&mut self, cred: OpaqueAuth) {
        self.cred = cred;
    }

    /// Rebase the xid sequence. Stripe pools give each lane a disjoint xid
    /// space so replay-cache entries from different lanes can never collide
    /// even when the lanes share one client token.
    pub fn set_xid_base(&mut self, base: u32) {
        self.next_xid = base;
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Reset the activity counters.
    pub fn reset_stats(&mut self) {
        self.stats = ClientStats::default();
    }

    /// Issue procedure `proc`, encoding `args` and decoding the reply as `R`.
    pub fn call<A: Xdr, R: Xdr>(&mut self, proc: u32, args: &A) -> RpcResult<R> {
        let reply = self.call_raw(proc, |enc| args.encode(enc))?;
        let mut dec = XdrDecoder::new(&reply);
        let result = R::decode(&mut dec)?;
        dec.finish()?;
        Ok(result)
    }

    /// Issue procedure `proc` with a caller-controlled argument encoder,
    /// returning the reply payload borrowed from the pooled record buffer.
    /// This is the primitive the generated stubs use; it avoids intermediate
    /// argument structs for multi-parameter procedures.
    pub fn call_raw(
        &mut self,
        proc: u32,
        encode_args: impl FnOnce(&mut XdrEncoder),
    ) -> RpcResult<Reply<'_>> {
        self.call_raw_sg_tagged(proc, false, |enc| encode_args(enc))
    }

    /// [`RpcClient::call_raw`] for a procedure tagged idempotent in its
    /// RPCL definition: eligible for automatic retry under the policy.
    pub fn call_raw_tagged(
        &mut self,
        proc: u32,
        idempotent: bool,
        encode_args: impl FnOnce(&mut XdrEncoder),
    ) -> RpcResult<Reply<'_>> {
        self.call_raw_sg_tagged(proc, idempotent, |enc| encode_args(enc))
    }

    /// Like [`RpcClient::call_raw`], but the encoder supports deferred
    /// (scatter-gather) opaques: bulk argument bytes are recorded as
    /// borrowed slices with lifetime `'d` and written to the transport as an
    /// iovec chain, never copied into the scratch buffer.
    pub fn call_raw_sg<'d>(
        &mut self,
        proc: u32,
        encode_args: impl FnOnce(&mut XdrSgEncoder<'d, '_>),
    ) -> RpcResult<Reply<'_>> {
        self.call_raw_sg_tagged(proc, false, encode_args)
    }

    /// The full-featured call primitive: scatter-gather argument encoding
    /// plus the resilience machinery. The request is encoded *once*; each
    /// attempt re-sends the same bytes under the same xid, so a server-side
    /// replay cache can recognize retransmissions. Retries happen only for
    /// transport-level failures (timeout, reset, EOF, corrupt reply) and only
    /// when the call is `idempotent` or the policy opts non-idempotent calls
    /// in; RPC-level failures (accepted-but-failed, rejection) are returned
    /// immediately.
    pub fn call_raw_sg_tagged<'d>(
        &mut self,
        proc: u32,
        idempotent: bool,
        encode_args: impl FnOnce(&mut XdrSgEncoder<'d, '_>),
    ) -> RpcResult<Reply<'_>> {
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);

        let mut call = CallBody::new(self.prog, self.vers, proc);
        call.cred = self.cred.clone();
        let msg = RpcMessage::call(xid, call);

        self.scratch.clear();
        msg.encode(&mut self.scratch);
        let mut sg = XdrSgEncoder::new(&mut self.scratch);
        encode_args(&mut sg);
        let total = sg.total_len();
        // Only the owned stream was memcpy'd into scratch; deferred slices
        // travel as borrowed iovec entries.
        telemetry::add_memmoved(sg.len());

        let may_retry = idempotent || self.policy.retry_non_idempotent;
        let mut attempt = 0u32;
        let payload_start = loop {
            attempt += 1;
            let outcome = sg
                .with_segments(|segs| write_record_sg(&mut self.transport, segs, self.max_fragment))
                .and_then(|_| {
                    self.stats.bytes_sent += total as u64;
                    Self::receive_reply(
                        &mut self.transport,
                        &mut self.reply_buf,
                        &mut self.stats,
                        xid,
                    )
                });
            match outcome {
                Ok(pos) => break pos,
                Err(e) => {
                    let transient = matches!(
                        e,
                        RpcError::Io(_)
                            | RpcError::ConnectionClosed
                            | RpcError::TimedOut
                            | RpcError::Xdr(_)
                    );
                    // A shed call (`Busy`) never executed, so retrying it is
                    // safe regardless of idempotency.
                    let shed = matches!(e, RpcError::Busy { .. });
                    if !(((may_retry && transient) || shed) && attempt < self.policy.max_attempts) {
                        return Err(e);
                    }
                    self.stats.retries += 1;
                    if matches!(e, RpcError::Io(_) | RpcError::ConnectionClosed) {
                        // The stream is dead or desynchronized: only a fresh
                        // transport can carry the retransmission.
                        let Some(reconnect) = self.reconnect.as_mut() else {
                            return Err(e);
                        };
                        let mut fresh = reconnect()?;
                        fresh.set_read_timeout(self.call_timeout)?;
                        self.transport = fresh;
                        self.stats.reconnects += 1;
                    }
                    let mut delay = Self::backoff_delay(&self.policy, attempt, &mut self.jitter);
                    if let RpcError::Busy { retry_after_ns } = e {
                        // Honor the server's hint, but never sleep past the
                        // policy's cap — the hint is advisory, not a lease.
                        delay = delay
                            .max(Duration::from_nanos(retry_after_ns).min(self.policy.max_delay));
                    }
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
            }
        };
        self.stats.calls += 1;
        Ok(Reply {
            payload: &self.reply_buf[payload_start..],
        })
    }

    /// Read reply records until `xid` answers, draining stale replies from
    /// abandoned attempts. On success returns the offset where the result
    /// payload begins in `reply_buf`.
    fn receive_reply(
        transport: &mut Box<dyn Transport>,
        reply_buf: &mut Vec<u8>,
        stats: &mut ClientStats,
        xid: u32,
    ) -> RpcResult<usize> {
        let mut last_got = 0u32;
        for _ in 0..MAX_STALE_REPLIES {
            let received = read_record_into(transport, reply_buf, MAX_RECORD)?
                .ok_or(RpcError::ConnectionClosed)?;
            stats.bytes_received += received as u64;

            let mut dec = XdrDecoder::new(reply_buf);
            let reply = RpcMessage::decode(&mut dec)?;
            if reply.xid != xid {
                // A late or duplicated reply to an earlier call: with
                // same-xid retransmission the answer we want is still ahead.
                last_got = reply.xid;
                stats.stale_replies += 1;
                continue;
            }
            let body = match reply.body {
                MessageBody::Reply(b) => b,
                MessageBody::Call(_) => return Err(RpcError::UnexpectedMessageType),
            };
            return match body {
                ReplyBody::Accepted {
                    stat: AcceptStat::Success,
                    ..
                } => Ok(dec.position()),
                ReplyBody::Accepted {
                    stat: AcceptStat::Busy,
                    ..
                } => Err(RpcError::Busy {
                    retry_after_ns: body.busy_retry_after_ns().unwrap_or(0),
                }),
                ReplyBody::Accepted { stat, .. } => Err(RpcError::Accepted(stat)),
                ReplyBody::Denied(stat) => Err(RpcError::Rejected(stat)),
            };
        }
        Err(RpcError::XidMismatch {
            expected: xid,
            got: last_got,
        })
    }

    /// Capped exponential backoff with deterministic jitter in [75%, 125%].
    fn backoff_delay(policy: &RetryPolicy, attempt: u32, jitter: &mut u64) -> Duration {
        if policy.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(16);
        let scaled = policy.base_delay.saturating_mul(1u32 << exp);
        let capped = scaled.min(policy.max_delay);
        *jitter = jitter
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let permille = 750 + (*jitter >> 33) % 500; // 750..1250
        let us = capped.as_micros() as u64;
        Duration::from_micros(us * permille / 1000)
    }

    /// The conventional "null" procedure (proc 0): no args, no results.
    /// Useful as a ping / latency probe.
    pub fn call_null(&mut self) -> RpcResult<()> {
        self.call::<(), ()>(0, &())
    }

    /// Describe the underlying transport.
    pub fn describe(&self) -> String {
        self.transport.describe()
    }
}

impl std::fmt::Debug for RpcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcClient")
            .field("prog", &self.prog)
            .field("vers", &self.vers)
            .field("next_xid", &self.next_xid)
            .field("stats", &self.stats)
            .finish()
    }
}
