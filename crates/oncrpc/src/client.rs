//! Synchronous RPC client.
//!
//! [`RpcClient`] issues calls over any [`Transport`], matching replies by
//! transaction id. Generated stubs (from `rpcl`) wrap it with typed methods;
//! see `cricket-proto` for the Cricket CUDA interface.

use crate::auth::OpaqueAuth;
use crate::error::{RpcError, RpcResult};
use crate::msg::{AcceptStat, CallBody, MessageBody, ReplyBody, RpcMessage};
use crate::record::{read_record, write_record, DEFAULT_MAX_FRAGMENT, MAX_RECORD};
use crate::transport::Transport;
use xdr::{Xdr, XdrDecoder, XdrEncoder};

/// Running tallies of client activity.
///
/// The paper reports per-application CUDA API call counts and transferred
/// bytes (§4.1); these counters are how our harness reproduces that table.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClientStats {
    /// Completed calls.
    pub calls: u64,
    /// Request bytes written (payload, excluding fragment headers).
    pub bytes_sent: u64,
    /// Reply bytes read (payload, excluding fragment headers).
    pub bytes_received: u64,
}

/// A synchronous ONC RPC client bound to one program+version on one transport.
pub struct RpcClient {
    transport: Box<dyn Transport>,
    prog: u32,
    vers: u32,
    next_xid: u32,
    max_fragment: usize,
    cred: OpaqueAuth,
    stats: ClientStats,
    /// Scratch encoder reused across calls to avoid per-call allocation.
    scratch: XdrEncoder,
}

impl RpcClient {
    /// Create a client for `prog`/`vers` over `transport`.
    pub fn new(transport: Box<dyn Transport>, prog: u32, vers: u32) -> Self {
        Self {
            transport,
            prog,
            vers,
            // Start from a fixed seed; xids only need per-connection
            // uniqueness on a reliable transport.
            next_xid: 1,
            max_fragment: DEFAULT_MAX_FRAGMENT,
            cred: OpaqueAuth::none(),
            stats: ClientStats::default(),
            scratch: XdrEncoder::with_capacity(256),
        }
    }

    /// Override the maximum fragment size (fragmentation ablation).
    pub fn set_max_fragment(&mut self, max_fragment: usize) {
        assert!(max_fragment > 0);
        self.max_fragment = max_fragment;
    }

    /// Use a non-default credential for subsequent calls.
    pub fn set_credential(&mut self, cred: OpaqueAuth) {
        self.cred = cred;
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Reset the activity counters.
    pub fn reset_stats(&mut self) {
        self.stats = ClientStats::default();
    }

    /// Issue procedure `proc`, encoding `args` and decoding the reply as `R`.
    pub fn call<A: Xdr, R: Xdr>(&mut self, proc: u32, args: &A) -> RpcResult<R> {
        let reply = self.call_raw(proc, |enc| args.encode(enc))?;
        let mut dec = XdrDecoder::new(&reply);
        let result = R::decode(&mut dec)?;
        dec.finish()?;
        Ok(result)
    }

    /// Issue procedure `proc` with a caller-controlled argument encoder,
    /// returning the raw reply payload. This is the primitive the generated
    /// stubs use; it avoids intermediate argument structs for multi-parameter
    /// procedures.
    pub fn call_raw(
        &mut self,
        proc: u32,
        encode_args: impl FnOnce(&mut XdrEncoder),
    ) -> RpcResult<Vec<u8>> {
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);

        let mut call = CallBody::new(self.prog, self.vers, proc);
        call.cred = self.cred.clone();
        let msg = RpcMessage::call(xid, call);

        self.scratch.clear();
        msg.encode(&mut self.scratch);
        encode_args(&mut self.scratch);

        write_record(
            &mut self.transport,
            self.scratch.as_slice(),
            self.max_fragment,
        )?;
        self.stats.bytes_sent += self.scratch.len() as u64;

        let record = read_record(&mut self.transport, MAX_RECORD)?
            .ok_or(RpcError::ConnectionClosed)?;
        self.stats.bytes_received += record.len() as u64;

        let mut dec = XdrDecoder::new(&record);
        let reply = RpcMessage::decode(&mut dec)?;
        if reply.xid != xid {
            return Err(RpcError::XidMismatch {
                expected: xid,
                got: reply.xid,
            });
        }
        let body = match reply.body {
            MessageBody::Reply(b) => b,
            MessageBody::Call(_) => return Err(RpcError::UnexpectedMessageType),
        };
        match body {
            ReplyBody::Accepted {
                stat: AcceptStat::Success,
                ..
            } => {
                self.stats.calls += 1;
                Ok(record[dec.position()..].to_vec())
            }
            ReplyBody::Accepted { stat, .. } => Err(RpcError::Accepted(stat)),
            ReplyBody::Denied(stat) => Err(RpcError::Rejected(stat)),
        }
    }

    /// The conventional "null" procedure (proc 0): no args, no results.
    /// Useful as a ping / latency probe.
    pub fn call_null(&mut self) -> RpcResult<()> {
        self.call::<(), ()>(0, &())
    }

    /// Describe the underlying transport.
    pub fn describe(&self) -> String {
        self.transport.describe()
    }
}

impl std::fmt::Debug for RpcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcClient")
            .field("prog", &self.prog)
            .field("vers", &self.vers)
            .field("next_xid", &self.next_xid)
            .field("stats", &self.stats)
            .finish()
    }
}
