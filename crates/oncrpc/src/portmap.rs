//! Minimal portmapper / rpcbind (program 100000, version 2, RFC 1833),
//! extended into a GPU-fleet shard directory.
//!
//! Real ONC RPC deployments locate services by asking the portmapper which
//! TCP port a (program, version) pair listens on. Cricket points clients at
//! the server directly, but we implement the portmapper both for protocol
//! completeness and because tests use it to exercise a second, independently
//! specified RPC program through the same stack.
//!
//! Beyond RFC 1833, procedures 5–8 turn the portmapper into a **shard
//! directory**: many servers ("shards") of the *same* (program, version)
//! register simultaneously, each with a [`LoadReport`] snapshot (free device
//! memory, served device-time, live sessions) refreshed by periodic
//! heartbeats. Clients fetch the shard table once at connect time, run a
//! placement policy over it, and then talk to their chosen shard directly —
//! the directory is never on the per-call path. [`procs::SHARD_ASSIGN`]
//! lets a connecting client bump its chosen shard's `assigned` counter so
//! a burst of concurrent connects spreads even between heartbeats.

use crate::msg::AcceptStat;
use crate::server::{Dispatch, DispatchResult};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use xdr::{XdrDecoder, XdrEncoder};

/// The portmapper's own program number.
pub const PMAP_PROG: u32 = 100_000;
/// The portmapper protocol version implemented here.
pub const PMAP_VERS: u32 = 2;

/// Procedure numbers (RFC 1833 §3, plus the shard-directory extension).
pub mod procs {
    /// Do nothing (ping).
    pub const NULL: u32 = 0;
    /// Register a mapping.
    pub const SET: u32 = 1;
    /// Remove a mapping.
    pub const UNSET: u32 = 2;
    /// Look up the port for a mapping.
    pub const GETPORT: u32 = 3;
    /// Enumerate all mappings.
    pub const DUMP: u32 = 4;
    /// Register a fleet shard, or refresh its load report (heartbeat).
    /// Unlike [`SET`], many shards of one (prog, vers) may coexist.
    pub const SHARD_SET: u32 = 5;
    /// Deregister one shard of (prog, vers) by port.
    pub const SHARD_UNSET: u32 = 6;
    /// Enumerate the shards of (prog, vers) with their load reports.
    pub const SHARD_DUMP: u32 = 7;
    /// Record that a client placed a new session on a shard (bumps the
    /// shard's `assigned` counter until its next heartbeat).
    pub const SHARD_ASSIGN: u32 = 8;
    /// Pin a client token's session to the shard of (prog, vers) at a
    /// port — written by live migration at cutover so the evicted client's
    /// reconnect is pointed at the session's new home. Port 0 clears.
    pub const SHARD_HOME_SET: u32 = 9;
    /// Look up the pinned home of a client token (0 = none / shard gone).
    pub const SHARD_HOME_GET: u32 = 10;
}

/// Transport protocol numbers used in mappings.
pub const IPPROTO_TCP: u32 = 6;
/// UDP protocol number (accepted in mappings, unused by this crate).
pub const IPPROTO_UDP: u32 = 17;

/// One registered mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mapping {
    /// RPC program number.
    pub prog: u32,
    /// Program version.
    pub vers: u32,
    /// Transport protocol ([`IPPROTO_TCP`] or [`IPPROTO_UDP`]).
    pub prot: u32,
    /// Listening port.
    pub port: u32,
}

/// One shard's load snapshot, as carried by `SHARD_SET` heartbeats.
///
/// All fields are cumulative or instantaneous server-side facts; the
/// directory stores them verbatim and placement policies interpret them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Free device memory across the shard's whole device set, bytes.
    pub free_mem: u64,
    /// Total device memory across the shard's device set, bytes.
    pub total_mem: u64,
    /// Cumulative device-time nanoseconds the shard has served.
    pub served_ns: u64,
    /// Live client sessions on the shard.
    pub sessions: u32,
    /// QoS pressure in permille: session-watermark occupancy (0–1000),
    /// saturating at 1000 when the shard has recently shed calls with
    /// `CRICKET_BUSY`. Placement steers away from saturated (>=1000)
    /// shards.
    pub qos_pressure: u32,
}

/// One registered shard of a (prog, vers) fleet, as returned by
/// `SHARD_DUMP`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardEntry {
    /// The shard's listening TCP port (on the directory's host).
    pub port: u32,
    /// Its latest heartbeat load report.
    pub load: LoadReport,
    /// Sessions placed on this shard (via `SHARD_ASSIGN`) since its last
    /// heartbeat — the directory's freshest load signal during a connect
    /// burst, reset to zero whenever the shard reports in.
    pub assigned: u32,
}

impl ShardEntry {
    /// Sessions the directory believes the shard is carrying right now:
    /// what the shard last reported plus placements since that heartbeat.
    pub fn effective_sessions(&self) -> u32 {
        self.load.sessions.saturating_add(self.assigned)
    }
}

/// In-memory portmapper service.
#[derive(Default)]
pub struct Portmap {
    table: RwLock<HashMap<(u32, u32, u32), u32>>,
    /// Fleet extension: (prog, vers) → port → shard state. A `BTreeMap`
    /// keyed by port keeps dumps deterministic.
    shards: RwLock<HashMap<(u32, u32), BTreeMap<u32, ShardState>>>,
    /// Migration extension: (prog, vers, client token) → pinned home port.
    homes: RwLock<HashMap<(u32, u32, u64), u32>>,
}

#[derive(Debug, Default, Clone, Copy)]
struct ShardState {
    load: LoadReport,
    assigned: u32,
}

impl Portmap {
    /// Create an empty portmapper.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a mapping; returns false if one already existed (RFC 1833
    /// semantics: SET fails if the tuple is taken).
    pub fn set(&self, m: Mapping) -> bool {
        let mut t = self.table.write();
        match t.entry((m.prog, m.vers, m.prot)) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(m.port);
                true
            }
        }
    }

    /// Remove all mappings for (prog, vers); returns whether any existed.
    pub fn unset(&self, prog: u32, vers: u32) -> bool {
        let mut t = self.table.write();
        let before = t.len();
        t.retain(|&(p, v, _), _| !(p == prog && v == vers));
        t.len() != before
    }

    /// Look up the port for (prog, vers, prot); 0 if absent.
    pub fn getport(&self, prog: u32, vers: u32, prot: u32) -> u32 {
        self.table
            .read()
            .get(&(prog, vers, prot))
            .copied()
            .unwrap_or(0)
    }

    /// All current mappings, unordered.
    pub fn dump(&self) -> Vec<Mapping> {
        self.table
            .read()
            .iter()
            .map(|(&(prog, vers, prot), &port)| Mapping {
                prog,
                vers,
                prot,
                port,
            })
            .collect()
    }

    /// Register a shard of (prog, vers) at `port`, or — if it is already
    /// registered — refresh its load report (heartbeat). Refreshing resets
    /// the `assigned` counter: the report's `sessions` now accounts for
    /// every placement the counter was covering.
    pub fn shard_set(&self, prog: u32, vers: u32, port: u32, load: LoadReport) {
        self.shards
            .write()
            .entry((prog, vers))
            .or_default()
            .insert(port, ShardState { load, assigned: 0 });
    }

    /// Deregister the shard of (prog, vers) at `port`; returns whether it
    /// was registered.
    pub fn shard_unset(&self, prog: u32, vers: u32, port: u32) -> bool {
        let mut t = self.shards.write();
        match t.get_mut(&(prog, vers)) {
            Some(m) => {
                let existed = m.remove(&port).is_some();
                if m.is_empty() {
                    t.remove(&(prog, vers));
                }
                existed
            }
            None => false,
        }
    }

    /// All shards of (prog, vers), ordered by port.
    pub fn shard_dump(&self, prog: u32, vers: u32) -> Vec<ShardEntry> {
        self.shards
            .read()
            .get(&(prog, vers))
            .map(|m| {
                m.iter()
                    .map(|(&port, st)| ShardEntry {
                        port,
                        load: st.load,
                        assigned: st.assigned,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Record one placement on the shard of (prog, vers) at `port`;
    /// returns false if no such shard is registered.
    pub fn shard_assign(&self, prog: u32, vers: u32, port: u32) -> bool {
        match self
            .shards
            .write()
            .get_mut(&(prog, vers))
            .and_then(|m| m.get_mut(&port))
        {
            Some(st) => {
                st.assigned = st.assigned.saturating_add(1);
                true
            }
            None => false,
        }
    }

    /// Pin `token`'s session to the shard of (prog, vers) at `port`
    /// (port 0 clears the pin). Written by migration at cutover.
    pub fn home_set(&self, prog: u32, vers: u32, token: u64, port: u32) {
        let mut homes = self.homes.write();
        if port == 0 {
            homes.remove(&(prog, vers, token));
        } else {
            homes.insert((prog, vers, token), port);
        }
    }

    /// The pinned home port of `token`, or 0 if it has none — or if the
    /// pinned shard is no longer registered (crashed mid-migration), so a
    /// reconnecting client falls back to ranked candidates instead of
    /// hammering a dead address.
    pub fn home_get(&self, prog: u32, vers: u32, token: u64) -> u32 {
        let port = match self.homes.read().get(&(prog, vers, token)) {
            Some(&p) => p,
            None => return 0,
        };
        let alive = self
            .shards
            .read()
            .get(&(prog, vers))
            .is_some_and(|m| m.contains_key(&port));
        if alive {
            port
        } else {
            0
        }
    }

    /// Wrap in the RPC [`Dispatch`] adapter.
    pub fn into_dispatch(self: Arc<Self>) -> Arc<dyn Dispatch> {
        Arc::new(PortmapDispatch(self))
    }

    /// Serve this portmapper over real TCP as [`PMAP_PROG`]/[`PMAP_VERS`]
    /// — the standalone directory process of a GPU fleet. Returns the
    /// serving handle; `handle.addr()` is the directory address shards
    /// register with and clients resolve through.
    pub fn serve<A: std::net::ToSocketAddrs>(
        self: &Arc<Self>,
        addr: A,
    ) -> crate::error::RpcResult<crate::server::ServerHandle> {
        let rpc = Arc::new(crate::server::RpcServer::new());
        rpc.register(PMAP_PROG, PMAP_VERS, Arc::clone(self).into_dispatch());
        crate::server::serve_tcp(rpc, addr)
    }
}

struct PortmapDispatch(Arc<Portmap>);

fn decode_mapping(args: &mut XdrDecoder<'_>) -> Result<Mapping, AcceptStat> {
    Ok(Mapping {
        prog: args.get_u32().map_err(|_| AcceptStat::GarbageArgs)?,
        vers: args.get_u32().map_err(|_| AcceptStat::GarbageArgs)?,
        prot: args.get_u32().map_err(|_| AcceptStat::GarbageArgs)?,
        port: args.get_u32().map_err(|_| AcceptStat::GarbageArgs)?,
    })
}

/// Wire layout of the shard procedures' common prefix: prog, vers, port.
fn decode_shard_key(args: &mut XdrDecoder<'_>) -> Result<(u32, u32, u32), AcceptStat> {
    let garbage = |_| AcceptStat::GarbageArgs;
    Ok((
        args.get_u32().map_err(garbage)?,
        args.get_u32().map_err(garbage)?,
        args.get_u32().map_err(garbage)?,
    ))
}

fn decode_load(args: &mut XdrDecoder<'_>) -> Result<LoadReport, AcceptStat> {
    let garbage = |_| AcceptStat::GarbageArgs;
    Ok(LoadReport {
        free_mem: args.get_u64().map_err(garbage)?,
        total_mem: args.get_u64().map_err(garbage)?,
        served_ns: args.get_u64().map_err(garbage)?,
        sessions: args.get_u32().map_err(garbage)?,
        qos_pressure: args.get_u32().map_err(garbage)?,
    })
}

fn encode_load(reply: &mut XdrEncoder, load: &LoadReport) {
    reply.put_u64(load.free_mem);
    reply.put_u64(load.total_mem);
    reply.put_u64(load.served_ns);
    reply.put_u32(load.sessions);
    reply.put_u32(load.qos_pressure);
}

impl Dispatch for PortmapDispatch {
    fn dispatch(
        &self,
        proc: u32,
        args: &mut XdrDecoder<'_>,
        reply: &mut XdrEncoder,
    ) -> DispatchResult {
        match proc {
            procs::NULL => Ok(()),
            procs::SET => {
                let m = decode_mapping(args)?;
                reply.put_bool(self.0.set(m));
                Ok(())
            }
            procs::UNSET => {
                let m = decode_mapping(args)?;
                reply.put_bool(self.0.unset(m.prog, m.vers));
                Ok(())
            }
            procs::GETPORT => {
                let m = decode_mapping(args)?;
                reply.put_u32(self.0.getport(m.prog, m.vers, m.prot));
                Ok(())
            }
            procs::DUMP => {
                // Encoded as an XDR linked list: (bool more, mapping)* false.
                for m in self.0.dump() {
                    reply.put_bool(true);
                    reply.put_u32(m.prog);
                    reply.put_u32(m.vers);
                    reply.put_u32(m.prot);
                    reply.put_u32(m.port);
                }
                reply.put_bool(false);
                Ok(())
            }
            procs::SHARD_SET => {
                let (prog, vers, port) = decode_shard_key(args)?;
                let load = decode_load(args)?;
                self.0.shard_set(prog, vers, port, load);
                reply.put_bool(true);
                Ok(())
            }
            procs::SHARD_UNSET => {
                let (prog, vers, port) = decode_shard_key(args)?;
                reply.put_bool(self.0.shard_unset(prog, vers, port));
                Ok(())
            }
            procs::SHARD_DUMP => {
                let garbage = |_| AcceptStat::GarbageArgs;
                let prog = args.get_u32().map_err(garbage)?;
                let vers = args.get_u32().map_err(garbage)?;
                // XDR linked list, like DUMP: (bool more, entry)* false.
                for e in self.0.shard_dump(prog, vers) {
                    reply.put_bool(true);
                    reply.put_u32(e.port);
                    encode_load(reply, &e.load);
                    reply.put_u32(e.assigned);
                }
                reply.put_bool(false);
                Ok(())
            }
            procs::SHARD_ASSIGN => {
                let (prog, vers, port) = decode_shard_key(args)?;
                reply.put_bool(self.0.shard_assign(prog, vers, port));
                Ok(())
            }
            procs::SHARD_HOME_SET => {
                let garbage = |_| AcceptStat::GarbageArgs;
                let prog = args.get_u32().map_err(garbage)?;
                let vers = args.get_u32().map_err(garbage)?;
                let token = args.get_u64().map_err(garbage)?;
                let port = args.get_u32().map_err(garbage)?;
                self.0.home_set(prog, vers, token, port);
                reply.put_bool(true);
                Ok(())
            }
            procs::SHARD_HOME_GET => {
                let garbage = |_| AcceptStat::GarbageArgs;
                let prog = args.get_u32().map_err(garbage)?;
                let vers = args.get_u32().map_err(garbage)?;
                let token = args.get_u64().map_err(garbage)?;
                reply.put_u32(self.0.home_get(prog, vers, token));
                Ok(())
            }
            _ => Err(AcceptStat::ProcUnavail),
        }
    }
}

/// Client-side helpers for talking to a portmapper.
pub mod client {
    use super::*;
    use crate::client::RpcClient;
    use crate::error::RpcResult;
    use crate::transport::Transport;

    /// Typed portmapper client.
    pub struct PortmapClient {
        rpc: RpcClient,
    }

    impl PortmapClient {
        /// Bind a portmap client over `transport`.
        pub fn new(transport: Box<dyn Transport>) -> Self {
            Self {
                rpc: RpcClient::new(transport, PMAP_PROG, PMAP_VERS),
            }
        }

        /// Ping.
        pub fn null(&mut self) -> RpcResult<()> {
            self.rpc.call_null()
        }

        /// Register a mapping.
        pub fn set(&mut self, m: Mapping) -> RpcResult<bool> {
            self.rpc.call(procs::SET, &(m.prog, m.vers, m.prot, m.port))
        }

        /// Remove mappings for (prog, vers).
        pub fn unset(&mut self, prog: u32, vers: u32) -> RpcResult<bool> {
            self.rpc.call(procs::UNSET, &(prog, vers, 0u32, 0u32))
        }

        /// Look up a port (0 = unregistered).
        pub fn getport(&mut self, prog: u32, vers: u32, prot: u32) -> RpcResult<u32> {
            self.rpc.call(procs::GETPORT, &(prog, vers, prot, 0u32))
        }

        /// Enumerate mappings.
        pub fn dump(&mut self) -> RpcResult<Vec<Mapping>> {
            let raw = self.rpc.call_raw(procs::DUMP, |_| {})?;
            let mut dec = XdrDecoder::new(&raw);
            let mut out = Vec::new();
            while dec.get_bool()? {
                out.push(Mapping {
                    prog: dec.get_u32()?,
                    vers: dec.get_u32()?,
                    prot: dec.get_u32()?,
                    port: dec.get_u32()?,
                });
            }
            dec.finish()?;
            Ok(out)
        }

        /// Register a shard of (prog, vers) at `port`, or refresh its load
        /// report (heartbeat).
        pub fn shard_set(
            &mut self,
            prog: u32,
            vers: u32,
            port: u32,
            load: LoadReport,
        ) -> RpcResult<bool> {
            let raw = self.rpc.call_raw(procs::SHARD_SET, |enc| {
                enc.put_u32(prog);
                enc.put_u32(vers);
                enc.put_u32(port);
                enc.put_u64(load.free_mem);
                enc.put_u64(load.total_mem);
                enc.put_u64(load.served_ns);
                enc.put_u32(load.sessions);
                enc.put_u32(load.qos_pressure);
            })?;
            Self::one_bool(&raw)
        }

        /// Deregister the shard of (prog, vers) at `port`.
        pub fn shard_unset(&mut self, prog: u32, vers: u32, port: u32) -> RpcResult<bool> {
            let raw = self.rpc.call_raw(procs::SHARD_UNSET, |enc| {
                enc.put_u32(prog);
                enc.put_u32(vers);
                enc.put_u32(port);
            })?;
            Self::one_bool(&raw)
        }

        /// Enumerate the shards of (prog, vers) with their load reports,
        /// ordered by port.
        pub fn shard_dump(&mut self, prog: u32, vers: u32) -> RpcResult<Vec<ShardEntry>> {
            let raw = self.rpc.call_raw(procs::SHARD_DUMP, |enc| {
                enc.put_u32(prog);
                enc.put_u32(vers);
            })?;
            let mut dec = XdrDecoder::new(&raw);
            let mut out = Vec::new();
            while dec.get_bool()? {
                out.push(ShardEntry {
                    port: dec.get_u32()?,
                    load: LoadReport {
                        free_mem: dec.get_u64()?,
                        total_mem: dec.get_u64()?,
                        served_ns: dec.get_u64()?,
                        sessions: dec.get_u32()?,
                        qos_pressure: dec.get_u32()?,
                    },
                    assigned: dec.get_u32()?,
                });
            }
            dec.finish()?;
            Ok(out)
        }

        /// Tell the directory a new session was placed on the shard at
        /// `port` (so concurrent connectors see the load before the
        /// shard's next heartbeat).
        pub fn shard_assign(&mut self, prog: u32, vers: u32, port: u32) -> RpcResult<bool> {
            let raw = self.rpc.call_raw(procs::SHARD_ASSIGN, |enc| {
                enc.put_u32(prog);
                enc.put_u32(vers);
                enc.put_u32(port);
            })?;
            Self::one_bool(&raw)
        }

        /// Pin `token`'s session home to the shard at `port` (0 clears).
        pub fn shard_home_set(
            &mut self,
            prog: u32,
            vers: u32,
            token: u64,
            port: u32,
        ) -> RpcResult<bool> {
            let raw = self.rpc.call_raw(procs::SHARD_HOME_SET, |enc| {
                enc.put_u32(prog);
                enc.put_u32(vers);
                enc.put_u64(token);
                enc.put_u32(port);
            })?;
            Self::one_bool(&raw)
        }

        /// The pinned home port of `token` (0 = none / shard gone).
        pub fn shard_home_get(&mut self, prog: u32, vers: u32, token: u64) -> RpcResult<u32> {
            let raw = self.rpc.call_raw(procs::SHARD_HOME_GET, |enc| {
                enc.put_u32(prog);
                enc.put_u32(vers);
                enc.put_u64(token);
            })?;
            let mut dec = XdrDecoder::new(&raw);
            let port = dec.get_u32()?;
            dec.finish()?;
            Ok(port)
        }

        fn one_bool(raw: &[u8]) -> RpcResult<bool> {
            let mut dec = XdrDecoder::new(raw);
            let b = dec.get_bool()?;
            dec.finish()?;
            Ok(b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve_tcp, RpcServer};
    use crate::transport::TcpTransport;

    #[test]
    fn local_table_semantics() {
        let pm = Portmap::new();
        let m = Mapping {
            prog: 99,
            vers: 1,
            prot: IPPROTO_TCP,
            port: 2048,
        };
        assert!(pm.set(m));
        assert!(!pm.set(m), "duplicate SET must fail");
        assert_eq!(pm.getport(99, 1, IPPROTO_TCP), 2048);
        assert_eq!(pm.getport(99, 2, IPPROTO_TCP), 0);
        assert!(pm.unset(99, 1));
        assert!(!pm.unset(99, 1));
        assert_eq!(pm.getport(99, 1, IPPROTO_TCP), 0);
    }

    #[test]
    fn portmap_over_tcp() {
        let pm = Arc::new(Portmap::new());
        let server = Arc::new(RpcServer::new());
        server.register(PMAP_PROG, PMAP_VERS, Arc::clone(&pm).into_dispatch());
        let handle = serve_tcp(server, "127.0.0.1:0").unwrap();

        let t = TcpTransport::connect(handle.addr()).unwrap();
        let mut client = client::PortmapClient::new(Box::new(t));
        client.null().unwrap();
        assert!(client
            .set(Mapping {
                prog: 99,
                vers: 1,
                prot: IPPROTO_TCP,
                port: 4242
            })
            .unwrap());
        assert_eq!(client.getport(99, 1, IPPROTO_TCP).unwrap(), 4242);
        let dumped = client.dump().unwrap();
        assert_eq!(dumped.len(), 1);
        assert_eq!(dumped[0].port, 4242);
        assert!(client.unset(99, 1).unwrap());
        assert_eq!(client.getport(99, 1, IPPROTO_TCP).unwrap(), 0);
        handle.shutdown();
    }

    #[test]
    fn shard_table_semantics() {
        let pm = Portmap::new();
        let load = LoadReport {
            free_mem: 100,
            total_mem: 200,
            served_ns: 5,
            sessions: 1,
            qos_pressure: 0,
        };
        // Many shards of one (prog, vers) may coexist — unlike SET.
        pm.shard_set(7, 1, 5001, load);
        pm.shard_set(7, 1, 5002, LoadReport::default());
        assert_eq!(pm.shard_dump(7, 1).len(), 2);
        assert_eq!(pm.shard_dump(7, 2).len(), 0);

        // Assign bumps the freshness counter; a heartbeat resets it.
        assert!(pm.shard_assign(7, 1, 5001));
        assert!(pm.shard_assign(7, 1, 5001));
        assert!(!pm.shard_assign(7, 1, 9999), "unknown port");
        let dump = pm.shard_dump(7, 1);
        assert_eq!(dump[0].assigned, 2);
        assert_eq!(dump[0].effective_sessions(), 3);
        pm.shard_set(
            7,
            1,
            5001,
            LoadReport {
                sessions: 3,
                ..load
            },
        );
        assert_eq!(pm.shard_dump(7, 1)[0].assigned, 0);

        // Deregistration removes exactly one shard.
        assert!(pm.shard_unset(7, 1, 5001));
        assert!(!pm.shard_unset(7, 1, 5001));
        let rest = pm.shard_dump(7, 1);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].port, 5002);
    }

    #[test]
    fn home_pins_follow_shard_liveness() {
        let pm = Portmap::new();
        pm.shard_set(7, 1, 5001, LoadReport::default());
        pm.shard_set(7, 1, 5002, LoadReport::default());

        assert_eq!(pm.home_get(7, 1, 0xAB), 0, "no pin yet");
        pm.home_set(7, 1, 0xAB, 5002);
        assert_eq!(pm.home_get(7, 1, 0xAB), 5002);
        assert_eq!(pm.home_get(7, 2, 0xAB), 0, "pins are per (prog, vers)");

        // A pin to a deregistered shard reads as 0 so reconnecting clients
        // fall back to the ranked candidate list.
        pm.shard_unset(7, 1, 5002);
        assert_eq!(pm.home_get(7, 1, 0xAB), 0);

        // Re-pin and clear.
        pm.home_set(7, 1, 0xAB, 5001);
        assert_eq!(pm.home_get(7, 1, 0xAB), 5001);
        pm.home_set(7, 1, 0xAB, 0);
        assert_eq!(pm.home_get(7, 1, 0xAB), 0);
    }

    #[test]
    fn shard_directory_over_tcp() {
        let pm = Arc::new(Portmap::new());
        let handle = pm.serve("127.0.0.1:0").unwrap();

        let t = TcpTransport::connect(handle.addr()).unwrap();
        let mut client = client::PortmapClient::new(Box::new(t));
        let load = LoadReport {
            free_mem: 1 << 30,
            total_mem: 2 << 30,
            served_ns: 123,
            sessions: 4,
            qos_pressure: 250,
        };
        assert!(client.shard_set(77, 1, 6001, load).unwrap());
        assert!(client
            .shard_set(77, 1, 6002, LoadReport::default())
            .unwrap());
        assert!(client.shard_assign(77, 1, 6002).unwrap());
        let shards = client.shard_dump(77, 1).unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].port, 6001);
        assert_eq!(shards[0].load, load);
        assert_eq!(shards[1].assigned, 1);
        assert!(client.shard_home_set(77, 1, 0xF00D, 6002).unwrap());
        assert_eq!(client.shard_home_get(77, 1, 0xF00D).unwrap(), 6002);
        assert_eq!(client.shard_home_get(77, 1, 0xBEEF).unwrap(), 0);
        assert!(client.shard_unset(77, 1, 6001).unwrap());
        assert_eq!(client.shard_dump(77, 1).unwrap().len(), 1);
        handle.shutdown();
    }
}
