//! Minimal portmapper / rpcbind (program 100000, version 2, RFC 1833).
//!
//! Real ONC RPC deployments locate services by asking the portmapper which
//! TCP port a (program, version) pair listens on. Cricket points clients at
//! the server directly, but we implement the portmapper both for protocol
//! completeness and because tests use it to exercise a second, independently
//! specified RPC program through the same stack.

use crate::msg::AcceptStat;
use crate::server::{Dispatch, DispatchResult};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use xdr::{XdrDecoder, XdrEncoder};

/// The portmapper's own program number.
pub const PMAP_PROG: u32 = 100_000;
/// The portmapper protocol version implemented here.
pub const PMAP_VERS: u32 = 2;

/// Procedure numbers (RFC 1833 §3).
pub mod procs {
    /// Do nothing (ping).
    pub const NULL: u32 = 0;
    /// Register a mapping.
    pub const SET: u32 = 1;
    /// Remove a mapping.
    pub const UNSET: u32 = 2;
    /// Look up the port for a mapping.
    pub const GETPORT: u32 = 3;
    /// Enumerate all mappings.
    pub const DUMP: u32 = 4;
}

/// Transport protocol numbers used in mappings.
pub const IPPROTO_TCP: u32 = 6;
/// UDP protocol number (accepted in mappings, unused by this crate).
pub const IPPROTO_UDP: u32 = 17;

/// One registered mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mapping {
    /// RPC program number.
    pub prog: u32,
    /// Program version.
    pub vers: u32,
    /// Transport protocol ([`IPPROTO_TCP`] or [`IPPROTO_UDP`]).
    pub prot: u32,
    /// Listening port.
    pub port: u32,
}

/// In-memory portmapper service.
#[derive(Default)]
pub struct Portmap {
    table: RwLock<HashMap<(u32, u32, u32), u32>>,
}

impl Portmap {
    /// Create an empty portmapper.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a mapping; returns false if one already existed (RFC 1833
    /// semantics: SET fails if the tuple is taken).
    pub fn set(&self, m: Mapping) -> bool {
        let mut t = self.table.write();
        match t.entry((m.prog, m.vers, m.prot)) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(m.port);
                true
            }
        }
    }

    /// Remove all mappings for (prog, vers); returns whether any existed.
    pub fn unset(&self, prog: u32, vers: u32) -> bool {
        let mut t = self.table.write();
        let before = t.len();
        t.retain(|&(p, v, _), _| !(p == prog && v == vers));
        t.len() != before
    }

    /// Look up the port for (prog, vers, prot); 0 if absent.
    pub fn getport(&self, prog: u32, vers: u32, prot: u32) -> u32 {
        self.table
            .read()
            .get(&(prog, vers, prot))
            .copied()
            .unwrap_or(0)
    }

    /// All current mappings, unordered.
    pub fn dump(&self) -> Vec<Mapping> {
        self.table
            .read()
            .iter()
            .map(|(&(prog, vers, prot), &port)| Mapping {
                prog,
                vers,
                prot,
                port,
            })
            .collect()
    }

    /// Wrap in the RPC [`Dispatch`] adapter.
    pub fn into_dispatch(self: Arc<Self>) -> Arc<dyn Dispatch> {
        Arc::new(PortmapDispatch(self))
    }
}

struct PortmapDispatch(Arc<Portmap>);

fn decode_mapping(args: &mut XdrDecoder<'_>) -> Result<Mapping, AcceptStat> {
    Ok(Mapping {
        prog: args.get_u32().map_err(|_| AcceptStat::GarbageArgs)?,
        vers: args.get_u32().map_err(|_| AcceptStat::GarbageArgs)?,
        prot: args.get_u32().map_err(|_| AcceptStat::GarbageArgs)?,
        port: args.get_u32().map_err(|_| AcceptStat::GarbageArgs)?,
    })
}

impl Dispatch for PortmapDispatch {
    fn dispatch(
        &self,
        proc: u32,
        args: &mut XdrDecoder<'_>,
        reply: &mut XdrEncoder,
    ) -> DispatchResult {
        match proc {
            procs::NULL => Ok(()),
            procs::SET => {
                let m = decode_mapping(args)?;
                reply.put_bool(self.0.set(m));
                Ok(())
            }
            procs::UNSET => {
                let m = decode_mapping(args)?;
                reply.put_bool(self.0.unset(m.prog, m.vers));
                Ok(())
            }
            procs::GETPORT => {
                let m = decode_mapping(args)?;
                reply.put_u32(self.0.getport(m.prog, m.vers, m.prot));
                Ok(())
            }
            procs::DUMP => {
                // Encoded as an XDR linked list: (bool more, mapping)* false.
                for m in self.0.dump() {
                    reply.put_bool(true);
                    reply.put_u32(m.prog);
                    reply.put_u32(m.vers);
                    reply.put_u32(m.prot);
                    reply.put_u32(m.port);
                }
                reply.put_bool(false);
                Ok(())
            }
            _ => Err(AcceptStat::ProcUnavail),
        }
    }
}

/// Client-side helpers for talking to a portmapper.
pub mod client {
    use super::*;
    use crate::client::RpcClient;
    use crate::error::RpcResult;
    use crate::transport::Transport;

    /// Typed portmapper client.
    pub struct PortmapClient {
        rpc: RpcClient,
    }

    impl PortmapClient {
        /// Bind a portmap client over `transport`.
        pub fn new(transport: Box<dyn Transport>) -> Self {
            Self {
                rpc: RpcClient::new(transport, PMAP_PROG, PMAP_VERS),
            }
        }

        /// Ping.
        pub fn null(&mut self) -> RpcResult<()> {
            self.rpc.call_null()
        }

        /// Register a mapping.
        pub fn set(&mut self, m: Mapping) -> RpcResult<bool> {
            self.rpc.call(procs::SET, &(m.prog, m.vers, m.prot, m.port))
        }

        /// Remove mappings for (prog, vers).
        pub fn unset(&mut self, prog: u32, vers: u32) -> RpcResult<bool> {
            self.rpc.call(procs::UNSET, &(prog, vers, 0u32, 0u32))
        }

        /// Look up a port (0 = unregistered).
        pub fn getport(&mut self, prog: u32, vers: u32, prot: u32) -> RpcResult<u32> {
            self.rpc.call(procs::GETPORT, &(prog, vers, prot, 0u32))
        }

        /// Enumerate mappings.
        pub fn dump(&mut self) -> RpcResult<Vec<Mapping>> {
            let raw = self.rpc.call_raw(procs::DUMP, |_| {})?;
            let mut dec = XdrDecoder::new(&raw);
            let mut out = Vec::new();
            while dec.get_bool()? {
                out.push(Mapping {
                    prog: dec.get_u32()?,
                    vers: dec.get_u32()?,
                    prot: dec.get_u32()?,
                    port: dec.get_u32()?,
                });
            }
            dec.finish()?;
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve_tcp, RpcServer};
    use crate::transport::TcpTransport;

    #[test]
    fn local_table_semantics() {
        let pm = Portmap::new();
        let m = Mapping {
            prog: 99,
            vers: 1,
            prot: IPPROTO_TCP,
            port: 2048,
        };
        assert!(pm.set(m));
        assert!(!pm.set(m), "duplicate SET must fail");
        assert_eq!(pm.getport(99, 1, IPPROTO_TCP), 2048);
        assert_eq!(pm.getport(99, 2, IPPROTO_TCP), 0);
        assert!(pm.unset(99, 1));
        assert!(!pm.unset(99, 1));
        assert_eq!(pm.getport(99, 1, IPPROTO_TCP), 0);
    }

    #[test]
    fn portmap_over_tcp() {
        let pm = Arc::new(Portmap::new());
        let server = Arc::new(RpcServer::new());
        server.register(PMAP_PROG, PMAP_VERS, Arc::clone(&pm).into_dispatch());
        let handle = serve_tcp(server, "127.0.0.1:0").unwrap();

        let t = TcpTransport::connect(handle.addr()).unwrap();
        let mut client = client::PortmapClient::new(Box::new(t));
        client.null().unwrap();
        assert!(client
            .set(Mapping {
                prog: 99,
                vers: 1,
                prot: IPPROTO_TCP,
                port: 4242
            })
            .unwrap());
        assert_eq!(client.getport(99, 1, IPPROTO_TCP).unwrap(), 4242);
        let dumped = client.dump().unwrap();
        assert_eq!(dumped.len(), 1);
        assert_eq!(dumped[0].port, 4242);
        assert!(client.unset(99, 1).unwrap());
        assert_eq!(client.getport(99, 1, IPPROTO_TCP).unwrap(), 0);
        handle.shutdown();
    }
}
