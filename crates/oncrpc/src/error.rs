//! Error types for the ONC RPC layer.

use crate::msg::{AcceptStat, RejectStat};
use std::fmt;
use xdr::XdrError;

/// Result alias for RPC operations.
pub type RpcResult<T> = Result<T, RpcError>;

/// Errors produced while performing remote procedure calls.
#[derive(Debug)]
pub enum RpcError {
    /// Transport-level I/O failure.
    Io(std::io::Error),
    /// XDR (de)serialization failure.
    Xdr(XdrError),
    /// The server accepted the call but reported a failure status.
    Accepted(AcceptStat),
    /// The server rejected the call (RPC version mismatch or auth error).
    Rejected(RejectStat),
    /// The reply's transaction id did not match any outstanding call.
    XidMismatch {
        /// The xid we sent.
        expected: u32,
        /// The xid the server answered with.
        got: u32,
    },
    /// A message that was not a reply arrived where a reply was expected
    /// (or vice versa).
    UnexpectedMessageType,
    /// A record exceeded the configured maximum size.
    RecordTooLarge {
        /// Observed (or declared) size in bytes.
        size: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The peer closed the connection mid-record.
    ConnectionClosed,
    /// Deadline expired while waiting for a reply.
    TimedOut,
    /// The server shed the call without executing it (`AcceptStat::Busy`).
    ///
    /// The call had no side effects; retrying after `retry_after_ns` is safe
    /// even for non-idempotent procedures.
    Busy {
        /// Server-suggested backoff before the next attempt, in nanoseconds.
        retry_after_ns: u64,
    },
    /// The requested program/version is not registered on this server.
    ProgramUnavailable {
        /// Program number requested.
        prog: u32,
        /// Version requested.
        vers: u32,
    },
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Io(e) => write!(f, "transport I/O error: {e}"),
            RpcError::Xdr(e) => write!(f, "XDR error: {e}"),
            RpcError::Accepted(s) => write!(f, "call accepted but failed: {s:?}"),
            RpcError::Rejected(s) => write!(f, "call rejected: {s:?}"),
            RpcError::XidMismatch { expected, got } => {
                write!(f, "xid mismatch: expected {expected}, got {got}")
            }
            RpcError::UnexpectedMessageType => write!(f, "unexpected RPC message type"),
            RpcError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds maximum {max}")
            }
            RpcError::ConnectionClosed => write!(f, "connection closed by peer"),
            RpcError::TimedOut => write!(f, "RPC timed out"),
            RpcError::Busy { retry_after_ns } => {
                write!(f, "server busy, retry after {retry_after_ns}ns")
            }
            RpcError::ProgramUnavailable { prog, vers } => {
                write!(f, "program {prog} version {vers} unavailable")
            }
        }
    }
}

impl std::error::Error for RpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RpcError::Io(e) => Some(e),
            RpcError::Xdr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RpcError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => RpcError::ConnectionClosed,
            // Read-deadline expiry surfaces as either kind depending on the
            // platform and transport; both mean the same typed timeout.
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RpcError::TimedOut,
            _ => RpcError::Io(e),
        }
    }
}

impl From<XdrError> for RpcError {
    fn from(e: XdrError) -> Self {
        RpcError::Xdr(e)
    }
}
