//! Zero-page sparse codec for bulk H2D payloads.
//!
//! GPU tensors are routinely mostly zero (freshly initialized weights,
//! padded batches, one-hot encodings), yet an eager `CUDA_MEMCPY_HTOD` or a
//! batched sub-op ships every byte. This module encodes a payload as a
//! page-granular zero map plus the literal bytes of the nonzero pages, so a
//! 90 %-zero tensor pays roughly a tenth of the wire bytes.
//!
//! Wire layout (ordinary XDR, travels as an opaque blob inside the
//! `CUDA_MEMCPY_HTOD_SPARSE` argument or a batch sub-op):
//!
//! ```text
//!   u32  page_size           (bytes per page, final page may be short)
//!   u64  raw_len             (decoded payload length)
//!   opaque<> bitmap          (ceil(n_pages/8) bytes; bit i set = page i
//!                             is literal, clear = page i is all zero;
//!                             bit i lives at byte i/8, mask 1 << (i%8))
//!   opaque<> literals        (concatenated bytes of the literal pages,
//!                             in page order)
//! ```
//!
//! Encoding is *adaptive*: [`encode_adaptive`] refuses to encode when the
//! sparse form would not be smaller than the raw payload, so fully dense
//! payloads keep the plain path and pay zero wire overhead. The scan itself
//! is one pass over the payload.

use xdr::{XdrDecoder, XdrEncoder, XdrError, XdrResult};

/// Default page granularity of the zero map. Matches the guest page size:
/// zero detection then aligns with how guests allocate and memset.
pub const SPARSE_PAGE: usize = 4096;

/// Number of pages `len` bytes occupy at `page` granularity.
#[inline]
fn page_count(len: usize, page: usize) -> usize {
    len.div_ceil(page)
}

/// Count the all-zero pages of `data` at `page` granularity.
pub fn zero_pages(data: &[u8], page: usize) -> usize {
    data.chunks(page)
        .filter(|c| c.iter().all(|&b| b == 0))
        .count()
}

/// Unconditionally sparse-encode `data` into `out` (cleared first).
/// Returns the encoded length.
pub fn encode_into(data: &[u8], page: usize, out: &mut Vec<u8>) -> usize {
    assert!(page >= 8, "sparse page size too small: {page}");
    out.clear();
    let pages = page_count(data.len(), page);
    let mut bitmap = vec![0u8; pages.div_ceil(8)];
    let mut literals: Vec<&[u8]> = Vec::with_capacity(pages);
    for (i, chunk) in data.chunks(page).enumerate() {
        if chunk.iter().any(|&b| b != 0) {
            bitmap[i / 8] |= 1 << (i % 8);
            literals.push(chunk);
        }
    }
    let mut enc = XdrEncoder::new();
    enc.put_u32(page as u32);
    enc.put_u64(data.len() as u64);
    enc.put_opaque(&bitmap);
    let lit_len: usize = literals.iter().map(|c| c.len()).sum();
    enc.put_u32(lit_len as u32);
    // The final literal page may be unaligned, so the opaque body is
    // assembled on the raw buffer; padding restores XDR alignment.
    let mut buf = enc.into_inner();
    for chunk in literals {
        buf.extend_from_slice(chunk);
    }
    buf.extend_from_slice(&[0u8; 3][..xdr::pad_bytes(lit_len)]);
    *out = buf;
    out.len()
}

/// Sparse-encode `data` into `out` only when the encoding is strictly
/// smaller than the raw payload. Returns the encoded length, or `None` when
/// the payload is too dense to win (dense payloads then ride the plain path
/// byte-for-byte unchanged). Also returns the number of zero pages elided,
/// for telemetry.
pub fn encode_adaptive(data: &[u8], page: usize, out: &mut Vec<u8>) -> Option<(usize, usize)> {
    let zeros = zero_pages(data, page);
    if zeros == 0 {
        return None;
    }
    let wire = encode_into(data, page, out);
    if wire < data.len() {
        Some((wire, zeros))
    } else {
        out.clear();
        None
    }
}

/// Decoded payload length of a sparse blob, read from the header without
/// decoding the body. Used for transfer accounting: a sparse H2D moves
/// `raw_len` bytes into device memory no matter how few travel the wire.
pub fn raw_len(enc: &[u8]) -> XdrResult<u64> {
    let mut dec = XdrDecoder::new(enc);
    let _page = dec.get_u32()?;
    dec.get_u64()
}

/// Decode a sparse blob into `out` (cleared first), materializing zero
/// pages as zero bytes — the result is byte-identical to the original
/// payload.
pub fn decode_into(enc: &[u8], out: &mut Vec<u8>) -> XdrResult<()> {
    let mut dec = XdrDecoder::new(enc);
    let page = dec.get_u32()? as usize;
    if page < 8 {
        return Err(XdrError::Custom(format!("sparse page size {page} invalid")));
    }
    let raw_len = dec.get_u64()? as usize;
    let bitmap = dec.get_opaque_ref()?;
    let literals = dec.get_opaque_ref()?;
    dec.finish()?;
    let pages = page_count(raw_len, page);
    if bitmap.len() != pages.div_ceil(8) {
        return Err(XdrError::Custom(format!(
            "sparse bitmap {} bytes, {} pages need {}",
            bitmap.len(),
            pages,
            pages.div_ceil(8)
        )));
    }
    out.clear();
    out.reserve(raw_len);
    let mut lit = literals;
    for i in 0..pages {
        let this = (raw_len - i * page).min(page);
        if bitmap[i / 8] & (1 << (i % 8)) != 0 {
            if lit.len() < this {
                return Err(XdrError::Truncated {
                    needed: this,
                    remaining: lit.len(),
                });
            }
            out.extend_from_slice(&lit[..this]);
            lit = &lit[this..];
        } else {
            out.resize(out.len() + this, 0);
        }
    }
    if !lit.is_empty() {
        return Err(XdrError::TrailingBytes {
            remaining: lit.len(),
        });
    }
    Ok(())
}

/// Decode a sparse blob into a fresh buffer.
pub fn decode(enc: &[u8]) -> XdrResult<Vec<u8>> {
    let mut out = Vec::new();
    decode_into(enc, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(len: usize, page: usize, zero_every: usize) -> Vec<u8> {
        // Page i is zero when i % zero_every != 0 (so 1/zero_every dense).
        let mut v = vec![0u8; len];
        for (i, chunk) in v.chunks_mut(page).enumerate() {
            if zero_every == 0 || i % zero_every == 0 {
                chunk.fill(0xab);
            }
        }
        v
    }

    #[test]
    fn roundtrip_mixed() {
        let data = payload(64 * 1024 + 123, 4096, 3);
        let mut enc = Vec::new();
        encode_into(&data, 4096, &mut enc);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_all_zero_and_all_dense() {
        for data in [vec![0u8; 40960], vec![0x5a; 40960], Vec::new()] {
            let mut enc = Vec::new();
            encode_into(&data, 4096, &mut enc);
            assert_eq!(decode(&enc).unwrap(), data);
        }
    }

    #[test]
    fn roundtrip_short_final_page() {
        for tail in [1usize, 7, 4095] {
            // Zero final short page.
            let mut data = payload(8192, 4096, 0);
            data.extend(std::iter::repeat_n(0u8, tail));
            let mut enc = Vec::new();
            encode_into(&data, 4096, &mut enc);
            assert_eq!(decode(&enc).unwrap(), data);
            // Dense final short page.
            let mut data = vec![0u8; 8192];
            data.extend(std::iter::repeat_n(0x77u8, tail));
            encode_into(&data, 4096, &mut enc);
            assert_eq!(decode(&enc).unwrap(), data);
        }
    }

    #[test]
    fn adaptive_refuses_dense_payloads() {
        let data = vec![0x11u8; 1 << 20];
        let mut out = Vec::new();
        assert_eq!(encode_adaptive(&data, SPARSE_PAGE, &mut out), None);
        assert!(out.is_empty());
    }

    #[test]
    fn adaptive_wins_big_on_ninety_percent_zeros() {
        // 1 dense page in 10.
        let data = payload(10 * 4096 * 32, 4096, 10);
        let mut out = Vec::new();
        let (wire, zeros) = encode_adaptive(&data, 4096, &mut out).unwrap();
        assert_eq!(zeros, 9 * 32);
        assert!(
            wire * 5 <= data.len(),
            "90%-zero payload must shrink >=5x: {wire} vs {}",
            data.len()
        );
        assert_eq!(decode(&out).unwrap(), data);
    }

    #[test]
    fn decode_rejects_corrupt_blobs() {
        let data = payload(16 * 4096, 4096, 2);
        let mut enc = Vec::new();
        encode_into(&data, 4096, &mut enc);
        // Truncated literals.
        assert!(decode(&enc[..enc.len() - 8]).is_err());
        // Bad page size.
        let mut bad = enc.clone();
        bad[..4].copy_from_slice(&1u32.to_be_bytes());
        assert!(decode(&bad).is_err());
        // Bitmap length mismatch: lie about raw_len.
        let mut bad = enc.clone();
        bad[4..12].copy_from_slice(&(1u64 << 30).to_be_bytes());
        assert!(decode(&bad).is_err());
    }
}
