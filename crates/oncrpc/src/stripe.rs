//! Multi-connection striping for large transfers.
//!
//! A single RPC connection serializes one record at a time, so a large
//! H2D/D2H copy is wire-bound on that connection's bandwidth. A
//! [`StripePool`] holds N independent [`RpcClient`] lanes and shards one
//! logical copy into fixed-size stripes issued round-robin across the lanes
//! as *independent* RPC calls carrying `(offset, seq, bytes)`. The far end
//! writes each stripe at `base + offset`, so reassembly is positional — no
//! ordering requirement between lanes — and the result is byte-identical to
//! the unstriped transfer.
//!
//! Exactly-once: every stripe is its own call under the lane's retry
//! machinery, and each lane owns a disjoint xid space
//! (`lane_i` starts at `(i << 24) | 1`), so the server's at-most-once replay
//! cache (keyed by client token + xid) dedupes retransmitted stripes without
//! cross-lane collisions. A duplicated or replayed stripe re-delivers the
//! recorded reply instead of re-executing the write.
//!
//! Size threshold policy lives with the caller (the `core` client raw path):
//! small ops keep the single-connection fast path, only copies at or above
//! the stripe threshold fan out here.

use crate::client::RpcClient;
use crate::error::RpcResult;
use crate::telemetry;

/// Default stripe granularity. Large enough to amortize per-call overhead,
/// small enough that 4 lanes all stay busy on a multi-MiB copy.
pub const DEFAULT_STRIPE_LEN: usize = 256 * 1024;

/// Hook for accounting wall-clock (or virtual-time) overlap of the lanes.
///
/// Real transports overlap naturally — each lane is its own connection and
/// the OS transmits them concurrently. The simulated transports used by the
/// benches charge wire time to a clock, so without help N lanes would be
/// charged serially. A timer implementation aligns the per-lane clocks with
/// a shared clock before a striped transfer ([`begin`](StripeTimer::begin))
/// and folds the slowest lane back into the shared clock after
/// ([`commit`](StripeTimer::commit)). The default [`NullTimer`] does
/// nothing, which is correct for real transports.
pub trait StripeTimer: Send {
    /// Called before the first stripe of a transfer is issued.
    fn begin(&mut self) {}
    /// Called after every stripe of the transfer completed.
    fn commit(&mut self) {}
}

/// No-op timer for transports that overlap physically.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTimer;

impl StripeTimer for NullTimer {}

/// A pool of RPC connections striping one logical transfer.
pub struct StripePool {
    lanes: Vec<RpcClient>,
    stripe_len: usize,
    timer: Box<dyn StripeTimer>,
}

impl StripePool {
    /// Build a pool over `lanes` pre-connected clients. Each lane is rebased
    /// onto a disjoint xid space so replay-cache entries never collide.
    pub fn new(mut lanes: Vec<RpcClient>) -> Self {
        assert!(!lanes.is_empty(), "stripe pool needs at least one lane");
        assert!(
            lanes.len() <= 128,
            "stripe pool xid partitioning supports at most 128 lanes"
        );
        for (i, lane) in lanes.iter_mut().enumerate() {
            lane.set_xid_base(((i as u32) << 24) | 1);
        }
        Self {
            lanes,
            stripe_len: DEFAULT_STRIPE_LEN,
            timer: Box::new(NullTimer),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Current stripe granularity in bytes.
    pub fn stripe_len(&self) -> usize {
        self.stripe_len
    }

    /// Override the stripe granularity.
    pub fn set_stripe_len(&mut self, len: usize) {
        assert!(len > 0);
        self.stripe_len = len;
    }

    /// Install a lane-overlap timer (see [`StripeTimer`]).
    pub fn set_timer(&mut self, timer: impl StripeTimer + 'static) {
        self.timer = Box::new(timer);
    }

    /// Apply one credential to every lane (all lanes share the client token
    /// so the server's replay cache sees one logical client).
    pub fn set_credential(&mut self, cred: crate::auth::OpaqueAuth) {
        for lane in &mut self.lanes {
            lane.set_credential(cred.clone());
        }
    }

    /// Mutable access to the lane clients, for installing retry policies,
    /// timeouts, or reconnectors per lane.
    pub fn lanes_mut(&mut self) -> &mut [RpcClient] {
        &mut self.lanes
    }

    /// Shard `data` into stripes and issue each via `call` on a round-robin
    /// lane. `call` receives the lane client, the byte offset of the stripe
    /// within `data`, the stripe sequence number, and the stripe bytes. All
    /// stripes must succeed; the first error aborts the transfer.
    pub fn scatter(
        &mut self,
        data: &[u8],
        mut call: impl FnMut(&mut RpcClient, u64, u32, &[u8]) -> RpcResult<()>,
    ) -> RpcResult<()> {
        self.timer.begin();
        let lanes = self.lanes.len();
        for (seq, chunk) in data.chunks(self.stripe_len).enumerate() {
            let offset = (seq * self.stripe_len) as u64;
            let lane = &mut self.lanes[seq % lanes];
            call(lane, offset, seq as u32, chunk)?;
            telemetry::add_stripes_sent(1);
        }
        self.timer.commit();
        Ok(())
    }

    /// Fill `out` by fetching stripes via `call` on round-robin lanes.
    /// `call` receives the lane client, the byte offset within `out`, the
    /// stripe sequence number, and the destination sub-slice to fill.
    pub fn gather(
        &mut self,
        out: &mut [u8],
        mut call: impl FnMut(&mut RpcClient, u64, u32, &mut [u8]) -> RpcResult<()>,
    ) -> RpcResult<()> {
        self.timer.begin();
        let lanes = self.lanes.len();
        let stripe_len = self.stripe_len;
        for (seq, chunk) in out.chunks_mut(stripe_len).enumerate() {
            let offset = (seq * stripe_len) as u64;
            let lane = &mut self.lanes[seq % lanes];
            call(lane, offset, seq as u32, chunk)?;
            telemetry::add_stripes_sent(1);
        }
        self.timer.commit();
        Ok(())
    }
}

impl std::fmt::Debug for StripePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StripePool")
            .field("lanes", &self.lanes.len())
            .field("stripe_len", &self.stripe_len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::duplex_pair;

    fn pool(lanes: usize) -> StripePool {
        let clients = (0..lanes)
            .map(|_| {
                let (a, _b) = duplex_pair();
                // The peer end is dropped: these tests never touch the wire,
                // they only exercise the chunking arithmetic.
                RpcClient::new(Box::new(a), 99, 1)
            })
            .collect();
        StripePool::new(clients)
    }

    #[test]
    fn scatter_covers_every_byte_once() {
        let mut p = pool(4);
        p.set_stripe_len(1000);
        let data: Vec<u8> = (0..10_240u32).map(|i| (i % 251) as u8).collect();
        let mut seen = vec![false; data.len()];
        let mut seqs = Vec::new();
        p.scatter(&data, |_lane, offset, seq, chunk| {
            let off = offset as usize;
            assert_eq!(&data[off..off + chunk.len()], chunk);
            for s in &mut seen[off..off + chunk.len()] {
                assert!(!*s, "byte covered twice");
                *s = true;
            }
            seqs.push(seq);
            Ok(())
        })
        .unwrap();
        assert!(seen.iter().all(|&s| s));
        // 10240 / 1000 -> 10 full stripes + 1 short tail.
        assert_eq!(seqs, (0..11).collect::<Vec<u32>>());
    }

    #[test]
    fn gather_reassembles_by_offset() {
        let mut p = pool(3);
        p.set_stripe_len(4096);
        let src: Vec<u8> = (0..100_003u32).map(|i| (i % 241) as u8).collect();
        let mut out = vec![0u8; src.len()];
        p.gather(&mut out, |_lane, offset, _seq, chunk| {
            let off = offset as usize;
            chunk.copy_from_slice(&src[off..off + chunk.len()]);
            Ok(())
        })
        .unwrap();
        assert_eq!(out, src);
    }

    #[test]
    fn lanes_rotate_round_robin() {
        let mut p = pool(2);
        p.set_stripe_len(8);
        let lane_ptrs: Vec<*const RpcClient> = p
            .lanes_mut()
            .iter()
            .map(|l| l as *const RpcClient)
            .collect();
        let data = [0u8; 64];
        let mut visits = Vec::new();
        p.scatter(&data, |lane, _offset, _seq, chunk| {
            assert_eq!(chunk.len(), 8);
            visits.push(lane as *const RpcClient);
            Ok(())
        })
        .unwrap();
        let expect: Vec<*const RpcClient> = (0..8).map(|i| lane_ptrs[i % 2]).collect();
        assert_eq!(visits, expect);
    }

    #[test]
    fn stripes_counted_in_telemetry() {
        let before = telemetry::wire_snapshot();
        let mut p = pool(2);
        p.set_stripe_len(16);
        p.scatter(&[0u8; 64], |_l, _o, _s, _c| Ok(())).unwrap();
        let delta = telemetry::wire_snapshot().since(&before);
        assert!(delta.stripes_sent >= 4);
    }

    #[test]
    fn empty_transfer_is_a_no_op() {
        let mut p = pool(2);
        let mut calls = 0;
        p.scatter(&[], |_l, _o, _s, _c| {
            calls += 1;
            Ok(())
        })
        .unwrap();
        p.gather(&mut [], |_l, _o, _s, _c| {
            calls += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(calls, 0);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_pool_panics() {
        let _ = StripePool::new(Vec::new());
    }
}
