//! ONC RPC — Open Network Computing Remote Procedure Call (RFC 5531).
//!
//! This crate is the reproduction of the paper's **RPC-Lib**: a Rust ONC RPC
//! implementation whose distinguishing features (vs. the pre-existing
//! `onc_rpc` crate the paper reviews) are:
//!
//! * **Fragmented record marking** ([`record`]): messages larger than one
//!   fragment are split/reassembled transparently, which is what lets GPU
//!   memory transfers of hundreds of MiB travel as RPC arguments.
//! * **No OS-specific dependencies**: everything is written against
//!   `std::io::{Read, Write}` so the same code runs on Linux and inside the
//!   (simulated) unikernels; libtirpc's Linux-isms were the paper's motivation
//!   for a rewrite.
//! * **Generated client/server stubs**: the `rpcl` crate compiles `.x` RPCL
//!   interface specifications into typed stubs over [`client::RpcClient`] and
//!   [`server::Dispatch`].
//!
//! Layering:
//!
//! ```text
//!   generated stubs (rpcl)            cricket protocol
//!          │
//!   client::RpcClient / server::RpcServer
//!          │
//!   msg: RpcMessage { xid, Call | Reply }          (RFC 5531 §9)
//!          │
//!   record: record marking, fragmentation          (RFC 5531 §11)
//!          │
//!   transport: TCP, in-memory duplex, simulated
//! ```

pub mod auth;
pub mod batch;
pub mod chaos;
pub mod client;
pub mod error;
pub mod msg;
pub mod noalloc;
pub mod portmap;
pub mod reactor;
pub mod record;
pub mod replay;
pub mod server;
pub mod sparse;
pub mod stripe;
pub mod telemetry;
pub mod transport;
pub mod udp;

pub use auth::{AuthFlavor, OpaqueAuth};
pub use batch::{BatchBuilder, BatchPolicy, BatchStats, FlushReason, BATCH_SKIPPED};
pub use chaos::{
    ChaosRng, Fault, FaultConfig, FaultPlan, FaultyTransport, SharedFaultPlan, TraceEvent,
};
pub use client::{Reply, RetryPolicy, RpcClient};
pub use error::{RpcError, RpcResult};
pub use msg::{AcceptStat, CallBody, MsgType, RejectStat, ReplyBody, RpcMessage};
pub use noalloc::NoAllocRpcClient;
pub use portmap::{client::PortmapClient, LoadReport, Mapping, Portmap, ShardEntry};
pub use reactor::{serve_tcp_reactor, Classifier, ConnHandler, ProcClass, ReactorConfig};
pub use record::{RecordAssembler, RecordReader, RecordWriter, DEFAULT_MAX_FRAGMENT};
pub use replay::{ReplayCache, ReplayStats};
pub use server::{Dispatch, RpcServer, ServerHandle, PIPELINE_DEPTH};
pub use stripe::{NullTimer, StripePool, StripeTimer, DEFAULT_STRIPE_LEN};
pub use transport::{duplex_pair, MemTransport, TcpTransport, Transport};

/// The RPC protocol version this crate speaks (RFC 5531 mandates 2).
pub const RPC_VERSION: u32 = 2;
