//! Property tests for record marking — the RPC-Lib capability the paper
//! contrasts against the `onc_rpc` crate (which "lacks support for
//! fragmented messages").

use oncrpc::record::{read_record, write_record, MAX_RECORD};
use proptest::prelude::*;

proptest! {
    #[test]
    fn roundtrip_any_payload_any_fragment_size(
        payload in proptest::collection::vec(any::<u8>(), 0..50_000),
        max_fragment in 1usize..10_000,
    ) {
        let mut wire = Vec::new();
        write_record(&mut wire, &payload, max_fragment).unwrap();
        let mut cursor = std::io::Cursor::new(&wire);
        let back = read_record(&mut cursor, MAX_RECORD).unwrap().unwrap();
        prop_assert_eq!(back, payload);
        // The cursor must consume exactly the record.
        prop_assert_eq!(cursor.position() as usize, wire.len());
    }

    #[test]
    fn wire_overhead_is_exactly_headers(
        payload in proptest::collection::vec(any::<u8>(), 1..100_000),
        max_fragment in 1usize..10_000,
    ) {
        let mut wire = Vec::new();
        write_record(&mut wire, &payload, max_fragment).unwrap();
        let fragments = payload.len().div_ceil(max_fragment);
        prop_assert_eq!(wire.len(), payload.len() + 4 * fragments);
    }

    #[test]
    fn concatenated_records_reparse(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..2_000), 1..8),
        max_fragment in 1usize..1_000,
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            write_record(&mut wire, p, max_fragment).unwrap();
        }
        let mut cursor = std::io::Cursor::new(&wire);
        for p in &payloads {
            let got = read_record(&mut cursor, MAX_RECORD).unwrap().unwrap();
            prop_assert_eq!(&got, p);
        }
        prop_assert!(read_record(&mut cursor, MAX_RECORD).unwrap().is_none());
    }

    #[test]
    fn truncation_never_panics_never_succeeds_fully(
        payload in proptest::collection::vec(any::<u8>(), 1..5_000),
        max_fragment in 1usize..1_000,
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        write_record(&mut wire, &payload, max_fragment).unwrap();
        let cut = ((wire.len() as f64) * cut_fraction) as usize;
        if cut < wire.len() {
            let mut cursor = std::io::Cursor::new(&wire[..cut]);
            match read_record(&mut cursor, MAX_RECORD) {
                Ok(Some(got)) => prop_assert!(
                    got.len() < payload.len(),
                    "a truncated stream cannot yield the full record"
                ),
                Ok(None) | Err(_) => {}
            }
        }
    }

    #[test]
    fn garbage_headers_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..4_096)) {
        let mut cursor = std::io::Cursor::new(&bytes);
        let _ = read_record(&mut cursor, 1 << 20);
    }
}
