//! Property tests for record marking — the RPC-Lib capability the paper
//! contrasts against the `onc_rpc` crate (which "lacks support for
//! fragmented messages").

use oncrpc::record::{read_record, write_record, write_record_sg, MAX_RECORD};
use proptest::prelude::*;
use std::io::{self, Write};

/// Reference implementation: the seed's copying record writer — build each
/// fragment as header-then-payload with plain `extend_from_slice`. The
/// scatter-gather path must be byte-identical to this.
fn legacy_write_record(payload: &[u8], max_fragment: usize) -> Vec<u8> {
    let mut wire = Vec::new();
    let mut offset = 0;
    loop {
        let remaining = payload.len() - offset;
        let frag = remaining.min(max_fragment);
        let last = frag == remaining;
        let header = (frag as u32) | if last { 0x8000_0000 } else { 0 };
        wire.extend_from_slice(&header.to_be_bytes());
        wire.extend_from_slice(&payload[offset..offset + frag]);
        offset += frag;
        if last {
            break;
        }
    }
    wire
}

/// Split `payload` at the (deduplicated, sorted) cut points into a gather
/// list, including any empty segments the cuts produce.
fn split_segments<'a>(payload: &'a [u8], cuts: &[usize]) -> Vec<&'a [u8]> {
    let mut points: Vec<usize> = cuts.iter().map(|c| c % (payload.len() + 1)).collect();
    points.sort_unstable();
    let mut segs = Vec::new();
    let mut prev = 0;
    for c in points {
        segs.push(&payload[prev..c]);
        prev = c;
    }
    segs.push(&payload[prev..]);
    segs
}

/// A writer that accepts at most `max` bytes per `write` call, forcing the
/// vectored writer through its short-write/advance paths.
struct ShortWriter {
    out: Vec<u8>,
    max: usize,
}

impl Write for ShortWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = buf.len().min(self.max);
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

proptest! {
    /// The scatter-gather writer must emit byte-identical wire output to
    /// the legacy copying path for any segmentation of the payload, any
    /// fragment size.
    #[test]
    fn sg_wire_output_identical_to_legacy(
        payload in proptest::collection::vec(any::<u8>(), 0..50_000),
        max_fragment in 1usize..10_000,
        cuts in proptest::collection::vec(any::<usize>(), 0..6),
    ) {
        let segs = split_segments(&payload, &cuts);
        let mut wire = Vec::new();
        write_record_sg(&mut wire, &segs, max_fragment).unwrap();
        prop_assert_eq!(wire, legacy_write_record(&payload, max_fragment));
    }

    /// Same equivalence through a writer that only accepts a few bytes per
    /// call — exercises `write_vectored` slice advancement across short
    /// writes and fragment-header boundaries.
    #[test]
    fn sg_wire_output_survives_short_writes(
        payload in proptest::collection::vec(any::<u8>(), 0..5_000),
        max_fragment in 1usize..600,
        cuts in proptest::collection::vec(any::<usize>(), 0..4),
        max_write in 1usize..7,
    ) {
        let segs = split_segments(&payload, &cuts);
        let mut w = ShortWriter { out: Vec::new(), max: max_write };
        write_record_sg(&mut w, &segs, max_fragment).unwrap();
        prop_assert_eq!(w.out, legacy_write_record(&payload, max_fragment));
    }

    #[test]
    fn roundtrip_any_payload_any_fragment_size(
        payload in proptest::collection::vec(any::<u8>(), 0..50_000),
        max_fragment in 1usize..10_000,
    ) {
        let mut wire = Vec::new();
        write_record(&mut wire, &payload, max_fragment).unwrap();
        let mut cursor = std::io::Cursor::new(&wire);
        let back = read_record(&mut cursor, MAX_RECORD).unwrap().unwrap();
        prop_assert_eq!(back, payload);
        // The cursor must consume exactly the record.
        prop_assert_eq!(cursor.position() as usize, wire.len());
    }

    #[test]
    fn wire_overhead_is_exactly_headers(
        payload in proptest::collection::vec(any::<u8>(), 1..100_000),
        max_fragment in 1usize..10_000,
    ) {
        let mut wire = Vec::new();
        write_record(&mut wire, &payload, max_fragment).unwrap();
        let fragments = payload.len().div_ceil(max_fragment);
        prop_assert_eq!(wire.len(), payload.len() + 4 * fragments);
    }

    #[test]
    fn concatenated_records_reparse(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..2_000), 1..8),
        max_fragment in 1usize..1_000,
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            write_record(&mut wire, p, max_fragment).unwrap();
        }
        let mut cursor = std::io::Cursor::new(&wire);
        for p in &payloads {
            let got = read_record(&mut cursor, MAX_RECORD).unwrap().unwrap();
            prop_assert_eq!(&got, p);
        }
        prop_assert!(read_record(&mut cursor, MAX_RECORD).unwrap().is_none());
    }

    #[test]
    fn truncation_never_panics_never_succeeds_fully(
        payload in proptest::collection::vec(any::<u8>(), 1..5_000),
        max_fragment in 1usize..1_000,
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        write_record(&mut wire, &payload, max_fragment).unwrap();
        let cut = ((wire.len() as f64) * cut_fraction) as usize;
        if cut < wire.len() {
            let mut cursor = std::io::Cursor::new(&wire[..cut]);
            if let Ok(Some(got)) = read_record(&mut cursor, MAX_RECORD) { prop_assert!(
                got.len() < payload.len(),
                "a truncated stream cannot yield the full record"
            ) }
        }
    }

    #[test]
    fn garbage_headers_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..4_096)) {
        let mut cursor = std::io::Cursor::new(&bytes);
        let _ = read_record(&mut cursor, 1 << 20);
    }
}
