//! Regression: a steady-state client call loop performs **zero heap
//! allocations** — the pooled scratch encoder, reply buffer, and
//! scatter-gather record writer must not touch the allocator once warm.
//!
//! The transport is an in-process loopback that answers every call with a
//! canned `MSG_ACCEPTED`/`SUCCESS` reply (patching in the request xid) from
//! fixed-capacity buffers, so any allocation observed inside the measured
//! loop is attributable to the client data path.
//!
//! Installs [`oncrpc::telemetry::CountingAllocator`] process-wide, so this
//! file must stay a dedicated integration-test binary.

use oncrpc::telemetry::{allocation_count, CountingAllocator};
use oncrpc::{RpcClient, Transport};
use std::io::{self, Read, Write};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const REPLY_PAYLOAD: usize = 24; // xid, REPLY, MSG_ACCEPTED, verf(0,0), SUCCESS

/// Loopback RPC "server": buffers one request record, replies with success.
struct Loopback {
    /// Request bytes accumulated from vectored writes (fixed capacity).
    req: Vec<u8>,
    /// Canned reply record: 4-byte record mark + 24-byte accepted reply.
    reply: [u8; 4 + REPLY_PAYLOAD],
    reply_off: usize,
}

impl Loopback {
    fn new() -> Self {
        let mut reply = [0u8; 4 + REPLY_PAYLOAD];
        reply[..4].copy_from_slice(&(0x8000_0000u32 | REPLY_PAYLOAD as u32).to_be_bytes());
        reply[8..12].copy_from_slice(&1u32.to_be_bytes()); // msg_type = REPLY
        Self {
            req: Vec::with_capacity(1 << 16),
            reply,
            reply_off: reply.len(),
        }
    }
}

impl Write for Loopback {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        assert!(
            self.req.len() + buf.len() <= self.req.capacity(),
            "request larger than the preallocated loopback buffer"
        );
        self.req.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if !self.req.is_empty() {
            // xid sits right after the 4-byte record mark; echo it back.
            let xid: [u8; 4] = self.req[4..8].try_into().unwrap();
            self.reply[4..8].copy_from_slice(&xid);
            self.reply_off = 0;
            self.req.clear();
        }
        Ok(())
    }
}

impl Read for Loopback {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let avail = &self.reply[self.reply_off..];
        let n = avail.len().min(buf.len());
        buf[..n].copy_from_slice(&avail[..n]);
        self.reply_off += n;
        Ok(n)
    }
}

impl Transport for Loopback {
    fn describe(&self) -> String {
        "loopback".into()
    }
}

#[test]
fn steady_state_call_loop_is_allocation_free() {
    let mut client = RpcClient::new(Box::new(Loopback::new()), 0x2000_0099, 1);
    let bulk = vec![0x5au8; 4096];

    // Warm-up: size the pooled scratch/reply buffers and fault in lazy
    // state (formatting machinery, channel nodes, ...).
    for _ in 0..16 {
        client.call_raw(3, |enc| enc.put_u64(0xdead_beef)).unwrap();
        client
            .call_raw_sg(9, |enc| {
                enc.put_u64(0x1000);
                enc.put_opaque_deferred(&bulk);
            })
            .unwrap();
    }

    // The counter is process-wide, so allocations from other threads (the
    // libtest harness) can leak into a measured window. A genuine per-call
    // leak allocates in *every* round; ambient noise does not. Measure
    // several rounds and require at least one to be exactly zero.
    let mut best = u64::MAX;
    for _ in 0..5 {
        let before = allocation_count();
        for i in 0..1000u64 {
            // Small-args call (covers the owned-scratch path)…
            let r = client.call_raw(3, |enc| enc.put_u64(i)).unwrap();
            assert!(r.is_empty());
            // …and a bulk scatter-gather call (covers the deferred iovec path).
            let r = client
                .call_raw_sg(9, |enc| {
                    enc.put_u64(0x1000 + i);
                    enc.put_opaque_deferred(&bulk);
                })
                .unwrap();
            assert!(r.is_empty());
        }
        best = best.min(allocation_count() - before);
        if best == 0 {
            break;
        }
    }
    assert_eq!(
        best, 0,
        "steady-state client loop performed {best} heap allocations per 1000-call round"
    );
}
