//! Property tests for the zero-page sparse codec: any payload — arbitrary
//! density, arbitrary length, short final page — must round-trip
//! byte-identically, and the adaptive encoder must never emit a form
//! larger than the raw payload.

use oncrpc::sparse::{decode, encode_adaptive, encode_into, zero_pages};
use proptest::prelude::*;

/// Build a payload with page-granular density controlled per page: page `i`
/// is zero-filled when `density_bits` says so, else filled with a nonzero
/// pattern. A tail of `extra` literal bytes exercises short final pages.
fn mixed_payload(pages: usize, page: usize, density_bits: u64, extra: usize, fill: u8) -> Vec<u8> {
    let fill = fill | 1; // nonzero, so "dense" pages really are dense
    let mut v = vec![0u8; pages * page + extra];
    for (i, chunk) in v.chunks_mut(page).enumerate() {
        if density_bits & (1 << (i % 64)) != 0 {
            chunk.fill(fill);
        }
    }
    v
}

proptest! {
    /// Unconditional encode → decode is the identity for any payload.
    #[test]
    fn roundtrip_arbitrary_payloads(
        data in proptest::collection::vec(any::<u8>(), 0..20_000),
        page_shift in 3u32..13,
    ) {
        let page = 1usize << page_shift;
        let mut enc = Vec::new();
        encode_into(&data, page, &mut enc);
        prop_assert_eq!(decode(&enc).unwrap(), data);
    }

    /// Page-structured payloads (the realistic shape: some pages zero,
    /// some dense, possibly a short tail) round-trip at the default page
    /// size, and the adaptive encoder wins exactly when it should.
    #[test]
    fn roundtrip_page_structured_payloads(
        pages in 0usize..40,
        density_bits in any::<u64>(),
        extra in 0usize..4096,
        fill in any::<u8>(),
    ) {
        let page = 4096;
        let data = mixed_payload(pages, page, density_bits, extra, fill);
        let mut enc = Vec::new();
        encode_into(&data, page, &mut enc);
        prop_assert_eq!(decode(&enc).unwrap(), data.clone());

        let mut adaptive = Vec::new();
        match encode_adaptive(&data, page, &mut adaptive) {
            Some((wire, zeros)) => {
                prop_assert!(wire < data.len(), "adaptive must be strictly smaller");
                prop_assert_eq!(wire, adaptive.len());
                prop_assert_eq!(zeros, zero_pages(&data, page));
                prop_assert_eq!(decode(&adaptive).unwrap(), data);
            }
            None => {
                // Refusal is only allowed when there is nothing to elide
                // or the sparse form would not be smaller.
                prop_assert!(
                    zero_pages(&data, page) == 0 || enc.len() >= data.len(),
                    "adaptive refused a winnable payload: {} zero pages, \
                     sparse {} vs raw {}",
                    zero_pages(&data, page), enc.len(), data.len()
                );
                prop_assert!(adaptive.is_empty());
            }
        }
    }

    /// Corrupting any single byte of an encoded blob must never panic —
    /// decode either fails cleanly or yields *some* payload (bitmap bit
    /// flips are semantically invisible to the codec).
    #[test]
    fn corrupt_blobs_never_panic(
        pages in 1usize..16,
        density_bits in any::<u64>(),
        corrupt_at in any::<usize>(),
        corrupt_val in any::<u8>(),
    ) {
        let data = mixed_payload(pages, 4096, density_bits, 77, 0x5a);
        let mut enc = Vec::new();
        encode_into(&data, 4096, &mut enc);
        let at = corrupt_at % enc.len();
        enc[at] ^= corrupt_val | 1;
        let _ = decode(&enc); // must not panic
    }
}
