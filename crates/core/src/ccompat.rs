//! C/libtirpc client compatibility behavior.
//!
//! The paper compares its Rust clients against the original C applications
//! using libtirpc and finds two systematic differences (§4.1, §4.2):
//!
//! 1. **Kernel launches**: "the Rust implementations perform approx. 6.3 %
//!    better than the C implementation because the Rust implementations
//!    omit some logic required in the C implementation to ensure
//!    compatibility with launching CUDA kernels using the `<<<...>>>`
//!    operator." The C launch path stages the argument array through the
//!    generic `void* args[]` ABI; [`launch_compat_marshal`] reproduces that
//!    work and its cost.
//! 2. **Initialization**: "the C applications use a slower random number
//!    generator" — glibc `rand()` called per byte vs. a Rust PRNG filling
//!    words. Both generators are implemented here so the histogram proxy
//!    app can show the paper's init-time gap.

use simnet::SimClock;

/// Extra host time of one C-style launch (the `<<<...>>>` compatibility
/// marshalling), charged on top of the regular path.
pub const LAUNCH_COMPAT_NS: u64 = 1_800;

/// Per-call overhead of libtirpc's argument handling relative to RPC-Lib
/// (XDR through function-pointer dispatch, extra malloc per call).
pub const TIRPC_CALL_NS: u64 = 300;

/// glibc `rand()` cost per call (one output byte per call, as the CUDA
/// sample's init loop uses it). ~21 ns per `rand()` call matches glibc's
/// TYPE_3 generator through the PLT on EPYC-class cores, and makes the
/// full-scale histogram app reproduce the paper's 37.6 % overall C-vs-Rust
/// gap (§4.1).
pub const C_RAND_NS_PER_BYTE: f64 = 21.0;

/// Rust PRNG fill cost per byte (xorshift filling 8 bytes per step).
pub const RUST_RAND_NS_PER_BYTE: f64 = 0.6;

/// Reproduce the C launch path's staging work: copy every parameter slot
/// through a `void* args[]`-style indirection table. Returns the staged
/// blob (identical content — the work is the point).
pub fn launch_compat_marshal(params: &[u8]) -> Vec<u8> {
    let slots: Vec<&[u8]> = params.chunks(8).collect(); // build void* args[]
    let mut staged = Vec::with_capacity(params.len());
    for slot in slots {
        let mut word = [0u8; 8];
        word[..slot.len()].copy_from_slice(slot);
        staged.extend_from_slice(&word[..slot.len()]);
    }
    staged
}

/// glibc-style `rand()`: the classic TYPE_3 additive generator is
/// approximated by the POSIX example LCG, producing 31-bit values.
#[derive(Debug, Clone)]
pub struct CRand {
    state: u64,
}

impl CRand {
    /// `srand(seed)`.
    pub fn new(seed: u32) -> Self {
        Self { state: seed as u64 }
    }

    /// `rand()`: next value in `0..=RAND_MAX` (2^31-1).
    #[allow(clippy::should_implement_trait)] // mirrors libc `rand()`, not an Iterator
    pub fn next(&mut self) -> u32 {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((self.state >> 33) & 0x7fff_ffff) as u32
    }

    /// Fill `out` one `rand()` call per byte (as the CUDA samples do),
    /// charging `clock` the per-byte cost.
    pub fn fill_bytes(&mut self, out: &mut [u8], clock: Option<&SimClock>) {
        for b in out.iter_mut() {
            *b = (self.next() & 0xff) as u8;
        }
        if let Some(c) = clock {
            c.advance((out.len() as f64 * C_RAND_NS_PER_BYTE) as u64);
        }
    }
}

/// Rust-side PRNG (xorshift64*), filling eight bytes per step.
#[derive(Debug, Clone)]
pub struct RustRand {
    state: u64,
}

impl RustRand {
    /// Seeded constructor (deterministic across runs).
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed | 1, // xorshift state must be non-zero
        }
    }

    /// Next 64-bit value.
    #[allow(clippy::should_implement_trait)] // RNG step, not an Iterator
    pub fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Fill `out`, charging `clock` the per-byte cost.
    pub fn fill_bytes(&mut self, out: &mut [u8], clock: Option<&SimClock>) {
        let mut chunks = out.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
        if let Some(c) = clock {
            c.advance((out.len() as f64 * RUST_RAND_NS_PER_BYTE) as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compat_marshal_preserves_contents() {
        let params: Vec<u8> = (0..40).collect();
        assert_eq!(launch_compat_marshal(&params), params);
        assert_eq!(launch_compat_marshal(&[]), Vec::<u8>::new());
    }

    #[test]
    fn c_rand_is_deterministic_and_in_range() {
        let mut a = CRand::new(1);
        let mut b = CRand::new(1);
        for _ in 0..100 {
            let v = a.next();
            assert_eq!(v, b.next());
            assert!(v <= 0x7fff_ffff);
        }
        let mut c = CRand::new(2);
        assert_ne!(a.next(), c.next());
    }

    #[test]
    fn rust_rand_fills_any_length() {
        let mut r = RustRand::new(42);
        for len in [0usize, 1, 7, 8, 9, 64, 1000] {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf, None);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} produced zeros");
            }
        }
    }

    #[test]
    fn generators_charge_different_costs() {
        let clock = SimClock::new();
        let mut c = CRand::new(1);
        let mut buf = vec![0u8; 100_000];
        c.fill_bytes(&mut buf, Some(&clock));
        let c_time = clock.now_ns();
        clock.reset();
        let mut r = RustRand::new(1);
        r.fill_bytes(&mut buf, Some(&clock));
        let r_time = clock.now_ns();
        assert!(
            c_time > 10 * r_time,
            "C rand ({c_time} ns) must be much slower than Rust ({r_time} ns)"
        );
    }

    #[test]
    fn byte_distribution_is_not_degenerate() {
        let mut r = CRand::new(7);
        let mut buf = vec![0u8; 65536];
        r.fill_bytes(&mut buf, None);
        let mut hist = [0u32; 256];
        for &b in &buf {
            hist[b as usize] += 1;
        }
        let nonzero = hist.iter().filter(|&&h| h > 0).count();
        assert!(nonzero > 250, "only {nonzero} byte values seen");
    }
}
